"""Unit tests for repro.arch.cacheline."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.cacheline import (
    distinct_lines_count,
    group_by_line,
    line_of_index,
    line_span,
    lines_touched,
)


@pytest.fixture
def p64():
    return ArrayPlacement.aligned(64)


class TestLineHelpers:
    def test_line_of_index(self, p64):
        assert list(line_of_index([0, 7, 8, 63], p64)) == [0, 0, 1, 7]

    def test_lines_touched_sorted_unique(self, p64):
        out = lines_touched([17, 1, 9, 2], p64)
        assert list(out) == [0, 1, 2]

    def test_distinct_lines_count(self, p64):
        assert distinct_lines_count([0, 1, 2], p64) == 1
        assert distinct_lines_count([0, 8, 16], p64) == 3
        assert distinct_lines_count([], p64) == 0

    def test_line_span_delegates(self, p64):
        assert line_span(9, 100, p64) == p64.line_span(9, 100)


class TestGroupByLine:
    def test_groups(self, p64):
        idx = np.array([0, 3, 7, 8, 20])
        groups = list(group_by_line(idx, p64))
        assert [g[0] for g in groups] == [0, 1, 2]
        assert list(groups[0][1]) == [0, 3, 7]
        assert list(groups[1][1]) == [8]
        assert list(groups[2][1]) == [20]

    def test_empty(self, p64):
        assert list(group_by_line(np.array([], dtype=np.int64), p64)) == []

    def test_misaligned_grouping(self):
        p = ArrayPlacement.with_element_offset(64, 4)
        # elements 0..3 are line 0; 4..11 line 1.
        groups = list(group_by_line(np.array([0, 3, 4, 11]), p))
        assert [list(g[1]) for g in groups] == [[0, 3], [4, 11]]
