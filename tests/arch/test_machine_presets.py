"""Unit tests for repro.arch.machine and repro.arch.presets."""

import pytest

from repro.arch.machine import BYTES_PER_ELEMENT, CacheLevelSpec, MachineModel
from repro.arch.presets import A64FX, MACHINES, POWER9, SKYLAKE, get_machine
from repro.errors import ConfigurationError


class TestCacheLevelSpec:
    def test_geometry(self):
        l1 = CacheLevelSpec("L1", 32 * 1024, 8, 64)
        assert l1.n_lines == 512
        assert l1.n_sets == 64
        assert l1.elements_per_line == 8

    def test_line_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec("L1", 32 * 1024, 8, 48)

    def test_positive_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec("L1", 32 * 1024, 0, 64)

    def test_non_power_of_two_associativity_allowed(self):
        # POWER9's L3 is 20-way.
        spec = CacheLevelSpec("L3", 10 * 1024 * 1024, 20, 64)
        assert spec.n_sets * spec.associativity == spec.n_lines

    def test_size_divisibility(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec("L1", 1000, 8, 64)


class TestMachineModel:
    def test_line_bytes_from_l1(self):
        assert SKYLAKE.line_bytes == 64
        assert A64FX.line_bytes == 256

    def test_elements_per_line(self):
        assert SKYLAKE.elements_per_line == 8
        assert A64FX.elements_per_line == 32

    def test_level_lookup(self):
        assert SKYLAKE.level("l2").name == "L2"
        with pytest.raises(ConfigurationError):
            SKYLAKE.level("L9")

    def test_needs_cache_levels(self):
        with pytest.raises(ConfigurationError):
            MachineModel(
                name="x", cores=1, frequency_ghz=1.0, cache_levels=(),
                memory_bandwidth_bps=1.0, peak_flops=1.0, spmv_flops=1.0,
            )

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineModel(
                name="x", cores=1, frequency_ghz=1.0,
                cache_levels=(
                    CacheLevelSpec("L1", 32 * 1024, 8, 64),
                    CacheLevelSpec("L2", 256 * 1024, 8, 128),
                ),
                memory_bandwidth_bps=1.0, peak_flops=1.0, spmv_flops=1.0,
            )

    def test_str_mentions_line_size(self):
        assert "64 B lines" in str(POWER9)


class TestPresets:
    def test_registry_complete(self):
        assert set(MACHINES) == {"skylake", "power9", "a64fx"}

    def test_get_machine_case_insensitive(self):
        assert get_machine("SkyLake") is SKYLAKE

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError):
            get_machine("graviton")

    def test_paper_core_counts(self):
        # §7.1: 48-core Skylake, 40-core POWER9, 48-core A64FX.
        assert SKYLAKE.cores == 48
        assert POWER9.cores == 40
        assert A64FX.cores == 48

    def test_a64fx_line_is_4x(self):
        # §7.6: the key architectural difference.
        assert A64FX.line_bytes == 4 * SKYLAKE.line_bytes
        assert BYTES_PER_ELEMENT * A64FX.elements_per_line == 256
