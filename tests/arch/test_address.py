"""Unit tests for repro.arch.address (the §4.1 virtual-address model)."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.errors import ConfigurationError


class TestConstruction:
    def test_aligned(self):
        p = ArrayPlacement.aligned(64)
        assert p.element_offset == 0
        assert p.elements_per_line == 8

    def test_with_element_offset(self):
        p = ArrayPlacement.with_element_offset(64, 3)
        assert p.element_offset == 3

    def test_offset_wraps(self):
        assert ArrayPlacement.with_element_offset(64, 11).element_offset == 3

    def test_for_numpy_reads_real_address(self):
        arr = np.zeros(16)
        p = ArrayPlacement.for_numpy(arr, 64)
        addr = arr.__array_interface__["data"][0]
        assert p.base_address == addr
        assert p.element_offset == (addr % 64) // 8

    def test_for_numpy_rejects_non_double(self):
        with pytest.raises(ConfigurationError):
            ArrayPlacement.for_numpy(np.zeros(4, dtype=np.float32), 64)

    def test_line_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            ArrayPlacement(line_bytes=96)

    def test_base_must_be_element_aligned(self):
        with pytest.raises(ConfigurationError):
            ArrayPlacement(line_bytes=64, base_address=4)


class TestMapping:
    def test_line_of_aligned(self):
        p = ArrayPlacement.aligned(64)
        assert p.line_of(0) == 0
        assert p.line_of(7) == 0
        assert p.line_of(8) == 1

    def test_line_of_vectorised(self):
        p = ArrayPlacement.aligned(64)
        assert list(p.line_of(np.array([0, 8, 16]))) == [0, 1, 2]

    def test_slot_of_paper_modulo(self):
        # §4.1: address_virtual(x[i]) mod 8 for 64-byte lines.
        p = ArrayPlacement.aligned(64)
        for i in range(32):
            assert p.slot_of(i) == i % 8

    def test_misaligned_shifts_boundaries(self):
        p = ArrayPlacement.with_element_offset(64, 3)
        # Elements 0..4 complete the first line (slots 3..7).
        assert p.line_of(4) == 0
        assert p.line_of(5) == 1

    def test_256B_line_modulo_32(self):
        # §4.1: A64FX — address mod 32.
        p = ArrayPlacement.aligned(256)
        assert p.elements_per_line == 32
        assert p.line_of(31) == 0
        assert p.line_of(32) == 1


class TestLineSpan:
    def test_aligned_span(self):
        p = ArrayPlacement.aligned(64)
        assert p.line_span(0, 100) == (0, 7)
        assert p.line_span(10, 100) == (8, 15)

    def test_span_clipped_at_end(self):
        p = ArrayPlacement.aligned(64)
        assert p.line_span(98, 100) == (96, 99)

    def test_span_clipped_at_start_when_misaligned(self):
        p = ArrayPlacement.with_element_offset(64, 3)
        assert p.line_span(2, 100) == (0, 4)

    def test_span_contains_query(self):
        for off in range(8):
            p = ArrayPlacement.with_element_offset(64, off)
            for i in range(0, 40):
                lo, hi = p.line_span(i, 40)
                assert lo <= i <= hi
                # All members share i's line.
                assert p.line_of(lo) == p.line_of(i) == p.line_of(hi)

    def test_span_out_of_range(self):
        with pytest.raises(IndexError):
            ArrayPlacement.aligned(64).line_span(100, 100)

    def test_address_of(self):
        p = ArrayPlacement(line_bytes=64, base_address=128)
        assert p.address_of(0) == 128
        assert p.address_of(2) == 144

    def test_lines_used(self):
        p = ArrayPlacement.aligned(64)
        assert p.lines_used(8) == 1
        assert p.lines_used(9) == 2
        assert p.lines_used(0) == 0
        # Misaligned vector of 8 elements straddles two lines.
        q = ArrayPlacement.with_element_offset(64, 3)
        assert q.lines_used(8) == 2
