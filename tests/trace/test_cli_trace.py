"""End-to-end ``repro-fsai trace <case>`` CLI (ISSUE 3 acceptance check).

Runs one real suite case under tracing and validates both artifacts: the
JSON export must carry the stable schema with per-phase times that cover
the case wall time to within 5%, and the Chrome trace must be a loadable
Trace-Event-Format document.
"""

import json
import re

import pytest

from repro.cli import main
from repro.trace import JSON_SCHEMA, TraceSummary

CASE_ID = 37  # small campaign case: full method x filter grid in < 1 s

#: Phases the instrumented layers must all contribute.
EXPECTED_PHASES = {
    "case",
    "case.prepare",
    "case.evaluate",
    "fsai.setup",
    "solvers.cg",
    "cachesim.spmv_sim",
}


@pytest.fixture(scope="module")
def cli_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("trace-cli")
    json_path = tmp / "trace.json"
    chrome_path = tmp / "trace.chrome.json"
    rc = main([
        "trace", str(CASE_ID),
        "--json", str(json_path),
        "--chrome", str(chrome_path),
    ])
    return rc, json_path, chrome_path


class TestTraceCli:
    def test_exit_code_and_files(self, cli_run):
        rc, json_path, chrome_path = cli_run
        assert rc == 0
        assert json_path.exists() and chrome_path.exists()

    def test_json_schema_and_phases(self, cli_run):
        _, json_path, _ = cli_run
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == JSON_SCHEMA
        assert f"case {CASE_ID}" in doc["label"]
        assert EXPECTED_PHASES <= set(doc["phase_seconds"])
        assert doc["counter_totals"]["cg.iterations"] > 0
        assert doc["counter_totals"]["pattern.final_nnz"] > 0

    def test_phase_times_cover_wall_within_5pct(self, cli_run):
        """The CLI reports its own wall-vs-span coverage; enforce >= 95%."""
        _, json_path, _ = cli_run
        doc = json.loads(json_path.read_text())
        summary = TraceSummary.from_dict(doc)
        # The single root "case" span covers the whole grid; its direct
        # children (prepare + evaluations) must account for >= 95% of it.
        (root,) = summary.spans
        assert root.name == "case"
        child_sum = sum(c.duration for c in root.children)
        assert child_sum <= root.duration * 1.0001
        assert child_sum >= 0.95 * root.duration, (
            f"children cover {100 * child_sum / root.duration:.1f}% "
            f"of the case span"
        )

    def test_cli_reports_full_coverage(self, capsys, tmp_path):
        """The printed wall-vs-span line must show >= 95% coverage."""
        rc = main([
            "trace", str(CASE_ID),
            "--json", str(tmp_path / "t.json"),
            "--chrome", str(tmp_path / "t.chrome.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        match = re.search(r"spans cover [\d.]+s \(([\d.]+)%\)", out)
        assert match, f"coverage line missing from CLI output:\n{out}"
        coverage_pct = float(match.group(1))
        assert 95.0 <= coverage_pct <= 101.0
        assert "phase breakdown" in out

    def test_chrome_trace_loadable(self, cli_run):
        _, _, chrome_path = cli_run
        doc = json.loads(chrome_path.read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert EXPECTED_PHASES <= names
        for e in events:
            assert e["dur"] >= 0.0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
