"""JSON / Chrome-trace exporters and the TraceSummary aggregation layer."""

import json

import pytest

from repro import trace
from repro.trace import (
    JSON_SCHEMA,
    TraceSummary,
    to_chrome_trace,
    to_json_dict,
    write_chrome_trace,
    write_json,
)
from repro.trace.core import SpanRecord


@pytest.fixture
def summary():
    """Small two-root forest with nesting, counters and attrs."""
    with trace.collecting() as collector:
        with trace.span("fsai.setup", method="fsaie_sp", n=100):
            trace.add_counter("fsai.frobenius_flops", 1000)
            with trace.span("solvers.cg"):
                trace.add_counter("cg.iterations", 42)
        with trace.span("cachesim.spmv_sim"):
            trace.add_counter("cachesim.l1_misses", 7)
        trace.add_counter("loose", 2)
    return TraceSummary.from_collector(collector)


class TestTraceSummary:
    def test_phase_seconds_keys(self, summary):
        phases = summary.phase_seconds()
        assert set(phases) == {"fsai.setup", "solvers.cg", "cachesim.spmv_sim"}
        assert all(v >= 0.0 for v in phases.values())
        # Inclusive semantics: the parent covers at least its child.
        assert phases["fsai.setup"] >= phases["solvers.cg"]

    def test_counter_totals_include_loose(self, summary):
        assert summary.counter_totals() == {
            "fsai.frobenius_flops": 1000,
            "cg.iterations": 42,
            "cachesim.l1_misses": 7,
            "loose": 2,
        }

    def test_total_seconds_sums_roots(self, summary):
        assert summary.total_seconds() == pytest.approx(
            sum(r.duration for r in summary.spans)
        )

    def test_structure_is_timing_free_forest(self, summary):
        assert summary.structure() == (
            ("fsai.setup", (("solvers.cg", ()),)),
            ("cachesim.spmv_sim", ()),
        )

    def test_round_trip(self, summary):
        payload = json.loads(json.dumps(summary.to_dict()))
        clone = TraceSummary.from_dict(payload)
        assert clone == summary
        assert clone.structure() == summary.structure()
        assert clone.counter_totals() == summary.counter_totals()

    def test_from_span_single_tree(self, summary):
        solo = TraceSummary.from_span(summary.spans[0])
        assert solo.structure() == (summary.structure()[0],)
        assert solo.counters == {}

    def test_summary_lines_mention_phases_and_counters(self, summary):
        text = "\n".join(summary.summary_lines())
        for name in ("fsai.setup", "solvers.cg", "cg.iterations", "loose"):
            assert name in text


class TestJsonExport:
    def test_stable_schema_shape(self, summary):
        doc = to_json_dict(summary, label="unit test")
        assert doc["schema"] == JSON_SCHEMA
        assert doc["label"] == "unit test"
        assert set(doc) == {
            "schema", "label", "environment", "phase_seconds",
            "counter_totals", "counters", "spans",
        }
        assert doc["phase_seconds"] == summary.phase_seconds()
        assert doc["counter_totals"] == summary.counter_totals()
        assert len(doc["spans"]) == 2

    def test_write_json_round_trips(self, tmp_path, summary):
        path = write_json(tmp_path / "trace.json", summary, label="x")
        doc = json.loads(path.read_text())
        assert doc["schema"] == JSON_SCHEMA
        clone = TraceSummary.from_dict(doc)
        assert clone.structure() == summary.structure()


class TestChromeExport:
    def test_complete_events_per_span(self, summary):
        doc = to_chrome_trace(summary)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3  # one "X" event per span in the forest
        assert {e["ph"] for e in events} == {"X"}
        by_name = {e["name"]: e for e in events}
        assert by_name["solvers.cg"]["args"]["cg.iterations"] == 42
        assert by_name["fsai.setup"]["args"]["method"] == "fsaie_sp"
        for e in events:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0  # microseconds

    def test_roots_get_distinct_lanes(self, summary):
        events = to_chrome_trace(summary)["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["fsai.setup"]["tid"] != by_name["cachesim.spmv_sim"]["tid"]
        # Children share their root's lane so nesting renders stacked.
        assert by_name["solvers.cg"]["tid"] == by_name["fsai.setup"]["tid"]

    def test_explicit_pid_tid_attrs_win(self):
        root = SpanRecord(name="case", start=0.0, duration=1.0,
                          attrs={"pid": 7, "tid": 99})
        events = to_chrome_trace(TraceSummary(spans=[root]))["traceEvents"]
        assert events[0]["pid"] == 7 and events[0]["tid"] == 99

    def test_write_chrome_trace_is_loadable_json(self, tmp_path, summary):
        path = write_chrome_trace(tmp_path / "t.chrome.json", summary)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
