"""LatencyHistogram: conservative percentiles, merging, serialization."""

import json

import pytest

from repro.trace import LatencyHistogram


class TestRecording:
    def test_exact_side_statistics(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.004, 0.002):
            hist.record(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.007)
        assert hist.mean == pytest.approx(0.007 / 3)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.004)

    def test_negative_durations_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.min == 0.0
        assert hist.total == 0.0

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        assert "empty" in repr(hist)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="start"):
            LatencyHistogram(start=0.0)
        with pytest.raises(ValueError, match="factor"):
            LatencyHistogram(factor=1.0)
        with pytest.raises(ValueError, match="buckets"):
            LatencyHistogram(n_buckets=1)


class TestPercentiles:
    def test_upper_bound_contract(self):
        """The estimate is >= the true percentile and <= 2x (factor=2)."""
        hist = LatencyHistogram()
        values = [i * 1e-4 for i in range(1, 101)]  # 0.1 ms .. 10 ms
        for v in values:
            hist.record(v)
        for q in (50, 90, 99):
            true = values[int(-(-q * len(values) // 100)) - 1]
            estimate = hist.percentile(q)
            assert estimate >= true - 1e-12
            assert estimate <= 2.0 * true + 1e-12

    def test_percentile_100_is_exact_max(self):
        hist = LatencyHistogram()
        for v in (0.002, 0.007, 0.0031):
            hist.record(v)
        assert hist.percentile(100) == pytest.approx(0.007)

    def test_estimate_clamps_to_observed_max(self):
        hist = LatencyHistogram()
        hist.record(1.5e-6)  # lands in a bucket whose edge is 2e-6
        assert hist.percentile(99) == pytest.approx(1.5e-6)

    def test_single_value_all_percentiles(self):
        hist = LatencyHistogram()
        hist.record(0.005)
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(0.005)

    def test_out_of_range_percentile_rejected(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(-1)

    def test_percentiles_map(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.003):
            hist.record(v)
        result = hist.percentiles((50, 99))
        assert set(result) == {"p50", "p99"}
        assert result["p99"] >= result["p50"]

    def test_overflow_bucket_uses_exact_max(self):
        """A duration beyond the last edge still reports a finite p99."""
        hist = LatencyHistogram(n_buckets=2, start=1e-6)
        hist.record(10.0)  # way past the single bounded edge
        assert hist.percentile(99) == pytest.approx(10.0)


class TestMergeAndSerialisation:
    def test_merge_matches_combined_recording(self):
        a, b, combined = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for v in (0.001, 0.005):
            a.record(v)
            combined.record(v)
        for v in (0.0002, 0.02):
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min == pytest.approx(combined.min)
        assert a.max == pytest.approx(combined.max)

    def test_merge_rejects_mismatched_ladders(self):
        a = LatencyHistogram(start=1e-6)
        b = LatencyHistogram(start=1e-3)
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_round_trip_preserves_statistics(self):
        hist = LatencyHistogram()
        for v in (0.0001, 0.004, 0.07):
            hist.record(v)
        payload = json.loads(json.dumps(hist.to_dict()))
        back = LatencyHistogram.from_dict(payload)
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.mean == pytest.approx(hist.mean)
        assert back.min == pytest.approx(hist.min)
        assert back.max == pytest.approx(hist.max)
        for q in (50, 90, 99):
            assert back.percentile(q) == pytest.approx(hist.percentile(q))

    def test_empty_round_trip(self):
        back = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert back.count == 0
        assert back.percentile(99) == 0.0
        assert back.min == float("inf")
