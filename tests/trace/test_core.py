"""Core span/counter semantics of :mod:`repro.trace`."""

import json
import threading

from repro import trace
from repro.trace import Collector, SpanRecord


class TestDisabledByDefault:
    def test_disabled_at_import(self):
        assert not trace.enabled()

    def test_span_is_shared_null_object(self):
        s1 = trace.span("a", attr=1)
        s2 = trace.span("b")
        assert s1 is s2  # one shared no-op instance, no allocation

    def test_null_span_supports_full_surface(self):
        with trace.span("a") as s:
            s.add_counter("x", 3)
            s.set_attr("k", "v")
        trace.add_counter("loose")
        trace.set_attr("k", 1)
        assert trace.current_span() is None


class TestSpanTree:
    def test_nesting_builds_tree(self):
        with trace.collecting() as collector:
            with trace.span("outer", case=5) as outer:
                with trace.span("inner.a"):
                    pass
                with trace.span("inner.b"):
                    with trace.span("leaf"):
                        pass
        assert collector.roots == [outer]
        assert outer.attrs == {"case": 5}
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.structure() == (
            "outer",
            (("inner.a", ()), ("inner.b", (("leaf", ()),))),
        )

    def test_durations_closed_and_ordered(self):
        with trace.collecting() as collector:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        (outer,) = collector.roots
        (inner,) = outer.children
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_sibling_roots(self):
        with trace.collecting() as collector:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        assert [r.name for r in collector.roots] == ["first", "second"]

    def test_exception_still_closes_span(self):
        with trace.collecting() as collector:
            try:
                with trace.span("boom"):
                    raise ValueError("propagates")
            except ValueError:
                pass
        (root,) = collector.roots
        assert root.duration >= 0.0
        assert trace.current_span() is None

    def test_current_span_tracks_stack(self):
        with trace.collecting():
            assert trace.current_span() is None
            with trace.span("outer") as outer:
                assert trace.current_span() is outer
                with trace.span("inner") as inner:
                    assert trace.current_span() is inner
                assert trace.current_span() is outer
            assert trace.current_span() is None


class TestCounters:
    def test_counters_attach_to_innermost_span(self):
        with trace.collecting() as collector:
            with trace.span("outer"):
                trace.add_counter("flops", 10)
                with trace.span("inner"):
                    trace.add_counter("flops", 5)
                    trace.add_counter("iters")
        (outer,) = collector.roots
        assert outer.counters == {"flops": 10}
        assert outer.children[0].counters == {"flops": 5, "iters": 1}
        assert outer.total_counters() == {"flops": 15, "iters": 1}

    def test_loose_counters_land_on_collector(self):
        with trace.collecting() as collector:
            trace.add_counter("scheduler.retries", 2)
            with trace.span("s"):
                trace.add_counter("inside")
        assert collector.counters == {"scheduler.retries": 2}
        assert collector.total_counters() == {
            "scheduler.retries": 2,
            "inside": 1,
        }

    def test_set_attr_on_open_span(self):
        with trace.collecting() as collector:
            with trace.span("s"):
                trace.set_attr("converged", True)
        assert collector.roots[0].attrs == {"converged": True}


class TestEnableDisable:
    def test_collecting_restores_previous_state(self):
        assert not trace.enabled()
        with trace.collecting():
            assert trace.enabled()
            with trace.collecting() as nested:
                assert trace.enabled()
                with trace.span("inner-only"):
                    pass
            # The nested collector kept its own roots...
            assert [r.name for r in nested.roots] == ["inner-only"]
        assert not trace.enabled()

    def test_nested_collecting_isolates_collectors(self):
        with trace.collecting() as outer_c:
            with trace.span("outer-span"):
                pass
            with trace.collecting() as inner_c:
                with trace.span("inner-span"):
                    pass
            with trace.span("outer-again"):
                pass
        assert [r.name for r in inner_c.roots] == ["inner-span"]
        assert [r.name for r in outer_c.roots] == ["outer-span", "outer-again"]

    def test_enable_disable_explicit(self):
        collector = trace.enable()
        try:
            assert trace.enabled()
            with trace.span("s"):
                pass
            assert [r.name for r in collector.roots] == ["s"]
        finally:
            trace.disable()
        assert not trace.enabled()

    def test_enable_accepts_existing_collector(self):
        mine = Collector()
        got = trace.enable(mine)
        try:
            assert got is mine
        finally:
            trace.disable()


class TestEvent:
    def test_event_records_premeasured_duration(self):
        with trace.collecting() as collector:
            trace.event("orchestrator.case", 0.25, case_id=37, slot=0)
        (root,) = collector.roots
        assert root.name == "orchestrator.case"
        assert root.duration == 0.25
        assert root.attrs == {"case_id": 37, "slot": 0}

    def test_event_nests_under_open_span(self):
        with trace.collecting() as collector:
            with trace.span("campaign"):
                trace.event("orchestrator.case", 0.1, case_id=5)
        (root,) = collector.roots
        assert [c.name for c in root.children] == ["orchestrator.case"]

    def test_event_noop_when_disabled(self):
        trace.event("ignored", 1.0)  # must not raise or record anywhere


class TestThreadSafety:
    def test_concurrent_roots_all_collected(self):
        n_threads, n_spans = 4, 50

        def work(tid):
            for i in range(n_spans):
                with trace.span(f"t{tid}", i=i):
                    trace.add_counter("work", 1)

        with trace.collecting() as collector:
            threads = [
                threading.Thread(target=work, args=(t,))
                for t in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(collector.roots) == n_threads * n_spans
        assert collector.total_counters() == {"work": n_threads * n_spans}

    def test_threads_do_not_share_span_stack(self):
        seen = {}

        def work():
            # A fresh thread starts with an empty stack even though the
            # main thread holds an open span.
            seen["current"] = trace.current_span()
            with trace.span("thread-root") as s:
                seen["own"] = trace.current_span() is s

        with trace.collecting() as collector:
            with trace.span("main-root"):
                t = threading.Thread(target=work)
                t.start()
                t.join()
        assert seen == {"current": None, "own": True}
        assert sorted(r.name for r in collector.roots) == [
            "main-root", "thread-root",
        ]


class TestSerialisation:
    def test_round_trip_preserves_tree(self):
        with trace.collecting() as collector:
            with trace.span("outer", case=5, label="x"):
                trace.add_counter("flops", 12.5)
                with trace.span("inner"):
                    trace.add_counter("iters", 3)
        (root,) = collector.roots
        payload = json.loads(json.dumps(root.to_dict()))  # JSON-able
        clone = SpanRecord.from_dict(payload)
        assert clone == root
        assert clone.structure() == root.structure()
        assert clone.total_counters() == root.total_counters()

    def test_open_span_serialises_with_sentinel_duration(self):
        record = SpanRecord(name="open", start=1.0)
        assert record.duration == -1.0
        assert SpanRecord.from_dict(record.to_dict()).duration == -1.0

    def test_iter_spans_preorder(self):
        root = SpanRecord(name="r", start=0.0, children=[
            SpanRecord(name="a", start=0.0, children=[
                SpanRecord(name="b", start=0.0),
            ]),
            SpanRecord(name="c", start=0.0),
        ])
        assert [s.name for s in root.iter_spans()] == ["r", "a", "b", "c"]
