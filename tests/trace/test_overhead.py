"""Disabled-tracing overhead guarantee (ISSUE 3 acceptance criterion).

Hot loops (CG iterations, per-access cache replays) carry unconditional
``trace.span`` / ``trace.add_counter`` calls, so the disabled path must be
a single module-global boolean check.  The budget asserted here is the
documented contract: a no-op span costs **< 1 µs**.
"""

import time

from repro import trace

#: Enough iterations to average out timer noise while staying < 0.5 s.
N = 100_000

#: Contractual per-call budget, seconds.
BUDGET = 1e-6


def _per_call_seconds(fn, n=N):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n


def _noop_span():
    with trace.span("hot.loop"):
        pass


def _noop_counter():
    trace.add_counter("hot.counter", 1)


class TestDisabledOverhead:
    def test_tracing_is_off(self):
        assert not trace.enabled()

    def test_noop_span_under_one_microsecond(self):
        _per_call_seconds(_noop_span, n=1000)  # warm up
        best = min(_per_call_seconds(_noop_span) for _ in range(3))
        assert best < BUDGET, (
            f"disabled span averaged {best * 1e9:.0f} ns/call "
            f"(budget {BUDGET * 1e9:.0f} ns)"
        )

    def test_noop_counter_under_one_microsecond(self):
        _per_call_seconds(_noop_counter, n=1000)  # warm up
        best = min(_per_call_seconds(_noop_counter) for _ in range(3))
        assert best < BUDGET, (
            f"disabled add_counter averaged {best * 1e9:.0f} ns/call "
            f"(budget {BUDGET * 1e9:.0f} ns)"
        )

    def test_span_with_attrs_still_cheap_when_disabled(self):
        def call():
            with trace.span("hot.loop", n=100, backend="vector"):
                pass

        call()  # warm up
        best = min(_per_call_seconds(call) for _ in range(3))
        # Keyword packing costs a dict; allow 2x the bare-span budget.
        assert best < 2 * BUDGET
