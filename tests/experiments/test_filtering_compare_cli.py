"""Unit tests for filtering_compare (Table 3 logic) and the CLI."""

import pytest

from repro.arch.address import ArrayPlacement
from repro.cli import build_parser, main
from repro.collection.suite import get_case
from repro.experiments.filtering_compare import (
    compare_filtering_strategies,
    table3_rows,
)


class TestFilteringCompare:
    @pytest.fixture(scope="class")
    def comparison(self):
        a = get_case(65).build()  # fv3-syn: small, moderate iterations
        return compare_filtering_strategies(
            a, ArrayPlacement.aligned(64), 0.1, case_name="fv3-syn"
        )

    def test_both_converge(self, comparison):
        assert comparison.converged_precalc
        assert comparison.converged_standard

    def test_entry_counts_comparable(self, comparison):
        # The paper's premise: both flows land on the same entry count
        # (approximately, since thresholds act on different values).
        ratio = comparison.nnz_standard / comparison.nnz_precalc
        assert 0.7 < ratio < 1.3

    def test_standard_not_better(self, comparison):
        """Table 3's claim: the proposed strategy never loses."""
        assert comparison.iter_increase_pct >= -5.0  # small noise tolerated

    def test_table3_rows_shape(self):
        cases = [get_case(i) for i in (52, 65)]
        rows = table3_rows(
            cases, ArrayPlacement.aligned(64), filters=(0.01, 0.1)
        )
        assert [r[0] for r in rows] == [0.01, 0.1]
        for _, avg, high in rows:
            assert high >= avg


class TestCLI:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in (
            "suite", "table1", "table2", "table3", "figure1", "figure2",
            "figure3", "figure4", "figure7", "setup-overhead",
            "extension-stats", "report",
        ):
            assert cmd in text

    def test_suite_command(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "shipsec5-syn" in out and len(out.splitlines()) == 72

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        assert "Initial lower-triangular pattern" in capsys.readouterr().out

    def test_table2_with_cases(self, capsys):
        assert main(["table2", "--cases", "52"]) == 0
        assert "FSAIE(full)" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "suite.txt"
        assert main(["suite", "-o", str(out)]) == 0
        assert "shipsec5-syn" in out.read_text()

    def test_export_suite_command(self, tmp_path, capsys):
        target = tmp_path / "mtx"
        assert main(["export-suite", str(target), "--cases", "52"]) == 0
        assert (target / "52_Muu-syn.mtx").exists()

    def test_machine_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--machine", "epyc"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
