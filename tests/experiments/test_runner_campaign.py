"""Unit tests for repro.experiments.runner and .campaign.

A single small campaign (3 easy cases, all methods + random baseline) is
run once per module and shared across tests — campaign mechanics are cheap
to assert but expensive to produce.
"""

import numpy as np
import pytest

from repro.collection.suite import get_case
from repro.experiments.campaign import QUICK_CASE_IDS, quick_case_ids, run_campaign
from repro.experiments.runner import (
    ExperimentConfig,
    make_rhs,
    run_case,
)

CASE_IDS = (37, 52, 65)  # small, fast-converging cases


@pytest.fixture(scope="module")
def campaign():
    cfg = ExperimentConfig(
        machine="skylake",
        filters=(0.0, 0.01),
        include_random_baseline=True,
    )
    return run_campaign(cfg, case_ids=CASE_IDS)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.rtol == 1e-8
        assert cfg.max_iterations == 10_000
        assert cfg.filters == (0.0, 0.001, 0.01, 0.1)

    def test_machine_model(self):
        assert ExperimentConfig(machine="a64fx").machine_model().line_bytes == 256


class TestMakeRhs:
    def test_normalised_by_max_norm(self):
        a = get_case(37).build()
        b = make_rhs(a, seed=1)
        assert np.abs(b).max() <= 1.0 / a.max_norm() + 1e-15

    def test_deterministic(self):
        a = get_case(37).build()
        assert np.array_equal(make_rhs(a, 5), make_rhs(a, 5))
        assert not np.array_equal(make_rhs(a, 5), make_rhs(a, 6))


class TestCampaign:
    def test_all_cases_present(self, campaign):
        assert len(campaign) == len(CASE_IDS)
        assert [r.case.case_id for r in campaign.results] == list(CASE_IDS)

    def test_by_id(self, campaign):
        assert campaign.by_id(52).case.name == "Muu-syn"
        with pytest.raises(KeyError):
            campaign.by_id(999)

    def test_run_grid_complete(self, campaign):
        r = campaign.results[0]
        for method in ("fsaie_sp", "fsaie_full"):
            for f in (0.0, 0.01):
                assert r.get(method, f).method == method
        assert r.get("fsaie_random", 0.01).method == "fsaie_random"

    def test_all_runs_converged(self, campaign):
        for r in campaign.results:
            assert r.baseline.converged
            for run in r.runs.values():
                assert run.converged
                assert run.relative_residual <= 1e-8

    def test_improvements_consistent(self, campaign):
        r = campaign.results[0]
        run = r.get("fsaie_full", 0.01)
        expected = 100.0 * (
            r.baseline.solve_seconds - run.solve_seconds
        ) / r.baseline.solve_seconds
        assert r.time_improvement(run) == pytest.approx(expected)

    def test_best_filter_run_is_min_time(self, campaign):
        r = campaign.results[0]
        best = r.best_filter_run("fsaie_full")
        times = [
            run.solve_seconds for (m, _), run in r.runs.items()
            if m == "fsaie_full"
        ]
        assert best.solve_seconds == min(times)

    def test_best_filter_unknown_method(self, campaign):
        with pytest.raises(KeyError):
            campaign.results[0].best_filter_run("nope")

    def test_random_baseline_matches_full_nnz(self, campaign):
        for r in campaign.results:
            assert (
                r.get("fsaie_random", 0.01).g_nnz
                == r.get("fsaie_full", 0.01).g_nnz
            )

    def test_positive_modelled_times(self, campaign):
        for r in campaign.results:
            assert r.baseline.solve_seconds > 0
            assert r.baseline.setup_seconds > 0

    def test_elapsed_recorded(self, campaign):
        assert campaign.elapsed_seconds > 0

    def test_progress_callback(self):
        lines = []
        cfg = ExperimentConfig(filters=(0.01,), methods=("fsaie_sp",))
        run_campaign(cfg, case_ids=(52,), progress=lines.append)
        assert len(lines) == 1 and "Muu-syn" in lines[0]

    def test_quick_ids_subset_of_suite(self):
        assert set(quick_case_ids()) == set(QUICK_CASE_IDS)
        assert all(1 <= i <= 72 for i in QUICK_CASE_IDS)


class TestMachineDependence:
    def test_a64fx_extends_more_than_skylake(self):
        cfg64 = ExperimentConfig(machine="skylake", filters=(0.0,))
        cfg256 = ExperimentConfig(machine="a64fx", filters=(0.0,))
        r64 = run_case(get_case(65), cfg64)
        r256 = run_case(get_case(65), cfg256)
        assert (
            r256.get("fsaie_full", 0.0).pct_nnz
            > r64.get("fsaie_full", 0.0).pct_nnz
        )

    def test_reuse_prebuilt_matrix(self):
        case = get_case(52)
        a = case.build()
        cfg = ExperimentConfig(filters=(0.01,), methods=("fsaie_sp",))
        r = run_case(case, cfg, a=a)
        assert r.n == a.n_rows
