"""Span trees must survive the orchestrator's process boundary (ISSUE 3).

A ``--jobs 2`` campaign runs each case in a forked worker under its own
trace collector; the resulting :class:`CaseResult.trace_summary` rides the
existing pipe messages and JSONL checkpoint shards back to the parent.
The merged per-case span trees must be *structurally* identical to a
sequential in-process run's — timings differ, shapes may not.
"""

import json

import pytest

from repro import trace
from repro.collection.suite import get_case
from repro.experiments.campaign import run_campaign
from repro.experiments.orchestrator import run_campaign_parallel
from repro.experiments.runner import CaseResult, ExperimentConfig, run_case
from repro.trace import TraceSummary

#: Two-case campaign (ISSUE 3 satellite): small matrices, reduced grid.
IDS = (37, 52)
CFG = ExperimentConfig(filters=(0.0, 0.01), methods=("fsaie_sp",))


@pytest.fixture(scope="module")
def sequential():
    """In-process run of both cases under one collector."""
    with trace.collecting():
        campaign = run_campaign(CFG, case_ids=IDS)
    return {r.case.case_id: r for r in campaign.results}


@pytest.fixture(scope="module")
def parallel(tmp_path_factory):
    checkpoint_dir = tmp_path_factory.mktemp("trace-ckpt")
    outcome = run_campaign_parallel(
        CFG, case_ids=IDS, jobs=2, trace_spans=True,
        checkpoint_dir=checkpoint_dir,
    )
    assert outcome.ok
    return outcome, checkpoint_dir


class TestTracePropagation:
    def test_sequential_results_carry_summaries(self, sequential):
        for result in sequential.values():
            assert result.trace_summary is not None
            (root,) = result.trace_summary.spans
            assert root.name == "case"

    def test_parallel_results_carry_summaries(self, parallel):
        outcome, _ = parallel
        assert len(outcome.campaign.results) == len(IDS)
        for result in outcome.campaign.results:
            assert result.trace_summary is not None

    def test_parallel_trees_match_sequential_structure(
        self, sequential, parallel
    ):
        outcome, _ = parallel
        for result in outcome.campaign.results:
            seq = sequential[result.case.case_id]
            assert (
                result.trace_summary.structure()
                == seq.trace_summary.structure()
            ), f"span tree diverged for case {result.case.case_id}"

    def test_span_tree_attrs_identify_the_case(self, parallel):
        outcome, _ = parallel
        for result in outcome.campaign.results:
            (root,) = result.trace_summary.spans
            assert root.attrs["case_id"] == result.case.case_id
            assert root.duration > 0.0

    def test_summaries_live_in_jsonl_shards(self, parallel):
        """The propagation medium is the existing checkpoint records."""
        _, checkpoint_dir = parallel
        shards = sorted(checkpoint_dir.glob("shard-*.jsonl"))
        assert shards
        seen = set()
        for shard in shards:
            for line in shard.read_text().splitlines():
                record = json.loads(line)
                result_payload = record["result"]
                assert "trace_summary" in result_payload
                seen.add(result_payload["case_id"])
                clone = TraceSummary.from_dict(
                    result_payload["trace_summary"]
                )
                assert clone.spans[0].name == "case"
        assert seen == set(IDS)

    def test_tracing_off_means_no_summary_overhead(self, tmp_path):
        """Default (untraced) parallel runs keep results summary-free."""
        outcome = run_campaign_parallel(
            CFG, case_ids=IDS[:1], jobs=1,
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert outcome.ok
        assert outcome.campaign.results[0].trace_summary is None


class TestRoundTripThroughDict:
    def test_case_result_dict_round_trip_preserves_tree(self):
        with trace.collecting():
            result = run_case(get_case(IDS[0]), CFG)
        clone = CaseResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.trace_summary is not None
        assert (
            clone.trace_summary.structure()
            == result.trace_summary.structure()
        )
