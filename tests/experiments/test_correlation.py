"""Unit tests for the paper-vs-measured correlation analysis."""

import numpy as np
import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.correlation import (
    CorrelationReport,
    paper_correlations,
    spearman,
)
from repro.experiments.runner import ExperimentConfig


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        x = [1.0, 5.0, 2.0, 9.0, 3.0]
        y = [np.exp(v) for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_ties_handled(self):
        rho = spearman([1, 1, 2, 2], [1, 1, 2, 2])
        assert rho == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(500)
        y = rng.standard_normal(500)
        assert abs(spearman(x, y)) < 0.15

    def test_matches_known_value(self):
        # Hand-computed: x = [1,2,3,4,5], y = [2,1,4,3,5] -> rho = 0.8.
        assert spearman([1, 2, 3, 4, 5], [2, 1, 4, 3, 5]) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman([1], [1])
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestPaperCorrelations:
    @pytest.fixture(scope="class")
    def campaign(self):
        cfg = ExperimentConfig(machine="skylake", filters=(0.01,))
        # Mix of easy and hard cases so the ordering signal exists.
        return run_campaign(cfg, case_ids=(5, 9, 12, 21, 28, 52, 65, 72))

    def test_report_fields(self, campaign):
        rep = paper_correlations(campaign)
        assert isinstance(rep, CorrelationReport)
        assert rep.n_matrices == 8
        for rho in (rep.iterations_rho, rep.improvement_rho, rep.pct_nnz_rho):
            assert -1.0 <= rho <= 1.0

    def test_difficulty_ordering_preserved(self, campaign):
        """The suite's raison d'être: paper-hard matrices are hard here."""
        rep = paper_correlations(campaign)
        assert rep.iterations_rho > 0.6

    def test_render(self, campaign):
        text = paper_correlations(campaign).render()
        assert "rank correlations" in text
        assert "rho" in text
