"""Tests for the parallel fault-tolerant campaign orchestrator.

Worker processes are spawned per case, so every injected ``case_runner``
here is a module-level function (picklable under any start method).
Cross-attempt state (e.g. "fail once, then succeed") goes through marker
files in ``tmp_path`` handed over via an environment variable, since each
attempt runs in a fresh process.
"""

import json
import os
import time

import pytest

from repro.errors import CampaignIncompleteError, ConfigurationError
from repro.experiments.campaign import run_campaign
from repro.experiments.orchestrator import (
    CHECKPOINT_VERSION,
    CaseFailure,
    checkpoint_key,
    load_checkpoints,
    require_complete,
    run_campaign_parallel,
)
from repro.experiments.runner import (
    CaseResult,
    ExperimentConfig,
    MethodRun,
    run_case,
)

#: Small cross-section + reduced filter sweep: enough to exercise the
#: merge order (ids intentionally not sorted) while staying fast.
IDS = (52, 37, 72, 65)
CFG = ExperimentConfig(filters=(0.0, 0.01))

_MARKER_ENV = "REPRO_TEST_ORCH_MARKER"


# ----------------------------------------------------------------------
# Injectable case runners (module-level: workers import them by reference)
# ----------------------------------------------------------------------
def _fake_run(case, config, *, iters=10):
    mr = MethodRun(
        method="fsaie_full", filter_value=0.0, iterations=iters,
        converged=True, relative_residual=1e-9, setup_seconds=0.01,
        solve_seconds=0.02, g_nnz=3 * case.case_id, pct_nnz=12.5,
        x_misses_per_g_nnz=0.25, gflops=1.5,
    )
    return CaseResult(
        case=case, n=10 * case.case_id, nnz=40 * case.case_id,
        machine=config.machine, baseline=mr,
        runs={("fsaie_full", 0.0): mr},
    )


def fast_runner(case, config):
    return _fake_run(case, config)


def bomb_runner(case, config):
    raise AssertionError(f"case {case.case_id} must not be recomputed")


def fail_case_37_runner(case, config):
    if case.case_id == 37:
        raise ValueError("synthetic failure for case 37")
    return _fake_run(case, config)


def hang_case_37_runner(case, config):
    if case.case_id == 37:
        time.sleep(60.0)
    return _fake_run(case, config)


def crash_case_37_runner(case, config):
    if case.case_id == 37:
        os._exit(3)  # dies without reporting: simulated segfault/OOM kill
    return _fake_run(case, config)


def flaky_case_37_runner(case, config):
    """Fails case 37 until the marker file exists, then succeeds."""
    if case.case_id == 37:
        marker = os.environ[_MARKER_ENV]
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("attempt seen\n")
            raise RuntimeError("transient failure, retry should recover")
    return _fake_run(case, config)


# ----------------------------------------------------------------------
# Equivalence with the sequential runner
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_campaign(CFG, case_ids=IDS)

    def test_parallel_equals_sequential(self, sequential):
        outcome = run_campaign_parallel(CFG, case_ids=IDS, jobs=4)
        assert outcome.ok
        assert outcome.campaign.config == sequential.config
        seq_sorted = sorted(sequential.results, key=lambda r: r.case.case_id)
        assert outcome.campaign.results == seq_sorted

    def test_single_job_supervised_path(self, sequential):
        outcome = run_campaign_parallel(CFG, case_ids=IDS[:2], jobs=1)
        assert outcome.ok
        by_id = {r.case.case_id: r for r in sequential.results}
        assert outcome.campaign.results == [
            by_id[i] for i in sorted(IDS[:2])
        ]

    def test_merge_is_sorted_by_case_id(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=4, case_runner=fast_runner
        )
        got = [r.case.case_id for r in outcome.campaign.results]
        assert got == sorted(IDS)

    def test_metrics_populated(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=2, case_runner=fast_runner
        )
        m = outcome.metrics
        assert m.jobs == 2
        assert m.cases_total == len(IDS)
        assert m.cases_completed == len(IDS)
        assert m.cases_skipped == 0
        assert m.failures == 0
        assert m.cases_per_second > 0


# ----------------------------------------------------------------------
# Failure isolation, timeout, retry, crash
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def test_exception_captured_without_killing_sweep(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=2, retries=0,
            case_runner=fail_case_37_runner,
        )
        assert not outcome.ok
        assert [f.case_id for f in outcome.failures] == [37]
        f = outcome.failures[0]
        assert f.kind == "error"
        assert f.error_type == "ValueError"
        assert "synthetic failure" in f.message
        assert "ValueError" in f.traceback  # full worker-side trace
        assert f.attempts == 1
        # The three healthy cases still completed and merged in order.
        done = [r.case.case_id for r in outcome.campaign.results]
        assert done == sorted(set(IDS) - {37})

    def test_timeout_triggers_retry_then_failure(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=(37, 52), jobs=2, timeout=0.4, retries=1,
            backoff_seconds=0.05, case_runner=hang_case_37_runner,
        )
        assert [f.case_id for f in outcome.failures] == [37]
        f = outcome.failures[0]
        assert f.kind == "timeout"
        assert f.error_type == "CaseTimeout"
        assert f.attempts == 2  # first run + one retry, both killed
        assert outcome.metrics.retries == 1
        assert [r.case.case_id for r in outcome.campaign.results] == [52]

    def test_retry_recovers_transient_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "marker"))
        outcome = run_campaign_parallel(
            CFG, case_ids=(37, 52), jobs=2, retries=1,
            backoff_seconds=0.05, case_runner=flaky_case_37_runner,
        )
        assert outcome.ok
        assert outcome.metrics.retries == 1
        assert [r.case.case_id for r in outcome.campaign.results] == [37, 52]

    def test_worker_crash_recorded(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=(37, 52), jobs=2, retries=0,
            case_runner=crash_case_37_runner,
        )
        assert [f.case_id for f in outcome.failures] == [37]
        f = outcome.failures[0]
        assert f.kind == "crash"
        assert "exited with code 3" in f.message
        assert [r.case.case_id for r in outcome.campaign.results] == [52]

    def test_require_complete_raises_with_failures(self):
        outcome = run_campaign_parallel(
            CFG, case_ids=(37,), jobs=1, retries=0,
            case_runner=fail_case_37_runner,
        )
        with pytest.raises(CampaignIncompleteError) as exc_info:
            require_complete(outcome)
        assert exc_info.value.failures == outcome.failures
        assert require_complete(
            run_campaign_parallel(
                CFG, case_ids=(52,), jobs=1, case_runner=fast_runner
            )
        ).ok

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(CFG, case_ids=(37,), jobs=0)
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(CFG, case_ids=(37,), retries=-1)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_skips_checkpointed_cases(self, tmp_path):
        first = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=2, checkpoint_dir=tmp_path,
            case_runner=fast_runner,
        )
        assert first.ok
        assert list(tmp_path.glob("shard-*.jsonl"))
        # Resume with a runner that would blow up on any recompute: every
        # case must come back from the shards, none from the bomb.
        resumed = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=2, checkpoint_dir=tmp_path,
            resume=True, case_runner=bomb_runner,
        )
        assert resumed.ok
        assert resumed.metrics.cases_skipped == len(IDS)
        assert resumed.metrics.cases_completed == 0
        assert resumed.campaign.results == first.campaign.results

    def test_partial_checkpoint_resumes_remainder(self, tmp_path):
        run_campaign_parallel(
            CFG, case_ids=IDS[:2], jobs=2, checkpoint_dir=tmp_path,
            case_runner=fast_runner,
        )
        resumed = run_campaign_parallel(
            CFG, case_ids=IDS, jobs=2, checkpoint_dir=tmp_path,
            resume=True, case_runner=fast_runner,
        )
        assert resumed.ok
        assert resumed.metrics.cases_skipped == 2
        assert resumed.metrics.cases_completed == 2
        assert [r.case.case_id for r in resumed.campaign.results] == sorted(IDS)

    def test_different_config_hash_not_reused(self, tmp_path):
        run_campaign_parallel(
            CFG, case_ids=(37,), jobs=1, checkpoint_dir=tmp_path,
            case_runner=fast_runner,
        )
        other = ExperimentConfig(filters=(0.0,))  # different knobs
        assert load_checkpoints(tmp_path, other) == {}
        done = load_checkpoints(tmp_path, CFG)
        assert sorted(done) == [37]

    def test_torn_tail_and_bad_records_skipped(self, tmp_path):
        run_campaign_parallel(
            CFG, case_ids=(37,), jobs=1, checkpoint_dir=tmp_path,
            case_runner=fast_runner,
        )
        shard = next(tmp_path.glob("shard-*.jsonl"))
        good = shard.read_text()
        wrong_version = json.loads(good.splitlines()[0])
        wrong_version["version"] = CHECKPOINT_VERSION + 1
        wrong_version["case_id"] = 52
        with open(shard, "a") as fh:
            fh.write(json.dumps(wrong_version) + "\n")
            fh.write('{"version": 1, "machine": "skylake", "case')  # torn
        done = load_checkpoints(tmp_path, CFG)
        assert sorted(done) == [37]

    def test_failures_logged_to_checkpoint_dir(self, tmp_path):
        run_campaign_parallel(
            CFG, case_ids=(37,), jobs=1, retries=0,
            checkpoint_dir=tmp_path, case_runner=fail_case_37_runner,
        )
        log = tmp_path / f"failures-{CFG.machine}.jsonl"
        records = [json.loads(s) for s in log.read_text().splitlines()]
        assert [r["case_id"] for r in records] == [37]
        assert records[0]["kind"] == "error"
        metrics_file = tmp_path / f"orchestration-{CFG.machine}.json"
        assert json.loads(metrics_file.read_text())["failures"] == 1


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------
class TestSerialization:
    def test_experiment_config_round_trip(self):
        assert ExperimentConfig.from_dict(CFG.to_dict()) == CFG

    def test_config_hash_stable_and_discriminating(self):
        assert CFG.config_hash() == ExperimentConfig(filters=(0.0, 0.01)).config_hash()
        assert CFG.config_hash() != ExperimentConfig(machine="a64fx", filters=(0.0, 0.01)).config_hash()
        assert len(CFG.config_hash()) == 12

    def test_case_result_round_trip_exact(self):
        from repro.collection.suite import get_case

        result = run_case(get_case(37), CFG)
        rebuilt = CaseResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt == result  # floats survive the JSON round-trip exactly

    def test_case_failure_round_trip(self):
        f = CaseFailure(
            case_id=3, case_name="x", machine="skylake", config_hash="ab",
            kind="error", error_type="ValueError", message="m",
            traceback="tb", attempts=2, elapsed_seconds=1.5,
        )
        assert CaseFailure.from_dict(f.to_dict()) == f
        assert "case 3" in f.summary()

    def test_checkpoint_key(self):
        assert checkpoint_key("skylake", 7, "abc") == ("skylake", 7, "abc")


# ----------------------------------------------------------------------
# Kernel-backend propagation into workers
# ----------------------------------------------------------------------
def backend_probe_runner(case, config):
    """Record what the *worker* resolved: env var + registry answer."""
    from repro.kernels import ENV_VAR, get_backend

    result = _fake_run(case, config)
    result.kernel_backend = get_backend().name
    result.runs[("fsaie_full", 0.0)].method = (
        f"env={os.environ.get(ENV_VAR, '<unset>')}"
    )
    return result


class TestBackendPropagation:
    def test_parent_override_reaches_workers(self):
        """A use_backend(...) override in the parent pins every worker.

        Workers are fresh processes (possibly spawned, not forked), so the
        parent's in-process registry override cannot travel by itself; the
        orchestrator resolves the name once and pins it through the
        environment variable the registry honours.
        """
        from repro.kernels import use_backend

        with use_backend("reference"):
            outcome = run_campaign_parallel(
                CFG, case_ids=IDS[:2], jobs=2,
                case_runner=backend_probe_runner,
            )
        assert outcome.ok
        for r in outcome.campaign.results:
            assert r.kernel_backend == "reference"
            assert r.runs[("fsaie_full", 0.0)].method == "env=reference"

    def test_default_backend_recorded_on_results(self):
        from repro.kernels import get_backend

        outcome = run_campaign_parallel(
            CFG, case_ids=IDS[:2], jobs=2, case_runner=backend_probe_runner,
        )
        assert outcome.ok
        expected = get_backend().name
        for r in outcome.campaign.results:
            assert r.kernel_backend == expected

    def test_real_runner_stamps_kernel_backend(self):
        outcome = run_campaign_parallel(CFG, case_ids=IDS[:1], jobs=1)
        assert outcome.ok
        (result,) = outcome.campaign.results
        assert result.kernel_backend is not None
        # And the stamp survives the checkpoint JSON round-trip.
        rebuilt = CaseResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.kernel_backend == result.kernel_backend


# ----------------------------------------------------------------------
# Thread-budget propagation + setup-backend recording
# ----------------------------------------------------------------------
def thread_env_probe_runner(case, config):
    """Record the thread-budget env exactly as the worker received it."""
    result = _fake_run(case, config)
    result.runs[("fsaie_full", 0.0)].method = (
        f"numba={os.environ.get('NUMBA_NUM_THREADS', '<unset>')}"
        f",omp={os.environ.get('OMP_NUM_THREADS', '<unset>')}"
    )
    return result


class TestThreadBudget:
    def test_workers_receive_thread_budget_env(self):
        """Every worker sees NUMBA_NUM_THREADS/OMP_NUM_THREADS set to the
        parent-computed budget (cores // jobs, at least 1)."""
        from repro.parallel.threadbudget import threads_per_worker

        jobs = 2
        expected = str(threads_per_worker(jobs))
        outcome = run_campaign_parallel(
            CFG, case_ids=IDS[:2], jobs=jobs,
            case_runner=thread_env_probe_runner,
        )
        assert outcome.ok
        for r in outcome.campaign.results:
            assert (
                r.runs[("fsaie_full", 0.0)].method
                == f"numba={expected},omp={expected}"
            )

    def test_policy_never_oversubscribes(self):
        from repro.parallel.threadbudget import (
            THREAD_ENV_VARS,
            thread_budget_env,
            threads_per_worker,
        )

        for cores in (1, 2, 4, 7, 48):
            for jobs in (1, 2, 3, cores, cores + 5):
                t = threads_per_worker(jobs, cores=cores)
                assert t >= 1
                assert jobs * t <= max(cores, jobs)  # never oversubscribed
        env = thread_budget_env(4, cores=48)
        assert set(env) == set(THREAD_ENV_VARS)
        assert all(v == "12" for v in env.values())

    def test_real_runner_stamps_setup_backend(self):
        from repro.fsai.frobenius import resolve_setup_backend

        outcome = run_campaign_parallel(CFG, case_ids=IDS[:1], jobs=1)
        assert outcome.ok
        (result,) = outcome.campaign.results
        assert result.setup_backend == resolve_setup_backend(None)
        rebuilt = CaseResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.setup_backend == result.setup_backend

    def test_explicit_setup_backend_recorded(self):
        cfg = ExperimentConfig(
            filters=(0.0,), methods=("fsaie_sp",), setup_backend="bucketed"
        )
        from repro.collection.suite import get_case

        result = run_case(get_case(52), cfg)
        assert result.setup_backend == "bucketed"
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg
