"""Focused unit tests for report helpers and table edge cases."""

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.report import (
    PAPER_SWEEPS,
    PAPER_TABLE3,
    _sweep_comparison,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import table1, table2


@pytest.fixture(scope="module")
def tiny_campaign():
    cfg = ExperimentConfig(machine="skylake", filters=(0.01,))
    return run_campaign(cfg, case_ids=(52, 72))


class TestPaperConstants:
    def test_sweep_tables_complete(self):
        # Every (machine, method) block the paper reports is transcribed.
        assert ("skylake", "fsaie_sp") in PAPER_SWEEPS
        assert ("skylake", "fsaie_full") in PAPER_SWEEPS
        assert ("power9", "fsaie_full") in PAPER_SWEEPS
        assert ("a64fx", "fsaie_full") in PAPER_SWEEPS
        for block in PAPER_SWEEPS.values():
            assert set(block) == {"0", "0.001", "0.01", "0.1", "best"}

    def test_paper_table2_values_spotcheck(self):
        # Table 2: FSAIE(full) best filter = 15.02% avg time on Skylake.
        assert PAPER_SWEEPS[("skylake", "fsaie_full")]["best"][1] == 15.02
        # Table 5: A64FX best = 22.85%.
        assert PAPER_SWEEPS[("a64fx", "fsaie_full")]["best"][1] == 22.85

    def test_paper_table3_monotone(self):
        avgs = [PAPER_TABLE3[f][0] for f in (0.0, 0.001, 0.01, 0.1)]
        assert avgs == sorted(avgs)


class TestSweepComparison:
    def test_contains_paper_and_measured(self, tiny_campaign):
        text = _sweep_comparison(
            tiny_campaign, "fsaie_full", "FSAIE(full) on Skylake"
        )
        assert "paper avg iter" in text
        assert "| best |" in text
        # paper figures transcribed into the row for the best filter
        assert "16.60" in text

    def test_sp_block_prints_matching_filter_rows(self, tiny_campaign):
        # The campaign only ran filter 0.01, so only that paper row (11.76)
        # and the best row appear — never the unrun f=0 row (12.40).
        text = _sweep_comparison(tiny_campaign, "fsaie_sp", "label")
        assert "11.76" in text
        assert "12.40" not in text


class TestTableEdgeCases:
    def test_table1_missing_filter_raises(self, tiny_campaign):
        with pytest.raises(KeyError):
            table1(tiny_campaign, filter_value=0.5)

    def test_table2_single_filter(self, tiny_campaign):
        text = table2(tiny_campaign)
        # One filter + best row per method.
        assert text.count("best") == 2

    def test_table1_reports_case_names(self, tiny_campaign):
        text = table1(tiny_campaign, filter_value=0.01)
        assert "Muu-syn" in text and "bcsstk27-syn" in text
