"""Unit tests for the model-sensitivity sweep."""

import pytest

import repro.perf.costmodel as costmodel_mod
from repro.arch.presets import SKYLAKE
from repro.experiments.sensitivity import (
    SensitivityPoint,
    _PenaltyOverride,
    render_sensitivity,
    sweep_model_parameters,
)
from repro.perf.costmodel import CostModel


class TestPenaltyOverride:
    def test_scoped_override(self):
        original = costmodel_mod.RANDOM_ACCESS_PENALTY
        with _PenaltyOverride(99.0):
            assert costmodel_mod.RANDOM_ACCESS_PENALTY == 99.0
            assert CostModel(SKYLAKE).random_access_penalty == 99.0
        assert costmodel_mod.RANDOM_ACCESS_PENALTY == original

    def test_restores_on_exception(self):
        original = costmodel_mod.RANDOM_ACCESS_PENALTY
        with pytest.raises(RuntimeError):
            with _PenaltyOverride(5.0):
                raise RuntimeError("boom")
        assert costmodel_mod.RANDOM_ACCESS_PENALTY == original

    def test_explicit_argument_wins(self):
        with _PenaltyOverride(3.0):
            assert CostModel(
                SKYLAKE, random_access_penalty=7.0
            ).random_access_penalty == 7.0


class TestSensitivityPoint:
    def test_shapes_hold_logic(self):
        good = SensitivityPoint(0.125, 8.0, 10.0, 8.0, 2.0, 20.0)
        assert good.shapes_hold
        no_improvement = SensitivityPoint(0.125, 8.0, -1.0, -2.0, -5.0, 20.0)
        assert not no_improvement.shapes_hold
        f0_wins = SensitivityPoint(0.125, 8.0, 5.0, 4.0, 6.0, 20.0)
        assert not f0_wins.shapes_hold


class TestSweep:
    def test_small_sweep_runs_and_renders(self):
        points = sweep_model_parameters(
            (52, 65),
            cache_scales=(0.125,),
            penalties=(4.0, 8.0),
        )
        assert len(points) == 2
        text = render_sensitivity(points)
        assert "shapes hold at" in text
        assert "0.125" in text

    def test_iterations_independent_of_model_params(self):
        # Iteration counts come from real solves: identical across the grid.
        points = sweep_model_parameters(
            (65,), cache_scales=(0.25, 0.0625), penalties=(8.0,),
        )
        assert points[0].avg_iters_f0_full == points[1].avg_iters_f0_full
