"""Unit tests for experiments.tables and experiments.figures."""

import pytest

from repro.arch.address import ArrayPlacement
from repro.collection.generators.fem import wathen
from repro.experiments.campaign import run_campaign
from repro.experiments.figures import (
    BarSeries,
    figure1,
    figure1_patterns,
    figure2_series,
    figure3_histogram,
    figure4_histogram,
    figure7_histogram,
    render_bars,
    render_histogram,
    render_pattern_ascii,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import (
    extension_stats,
    filter_sweep_stats,
    setup_overhead,
    table1,
    table2,
    table3,
)

CASE_IDS = (37, 52, 65)


@pytest.fixture(scope="module")
def campaign():
    cfg = ExperimentConfig(
        machine="skylake", filters=(0.0, 0.01), include_random_baseline=True
    )
    return run_campaign(cfg, case_ids=CASE_IDS)


@pytest.fixture(scope="module")
def campaign_a64(campaign):
    cfg = ExperimentConfig(machine="a64fx", filters=(0.0, 0.01))
    return run_campaign(cfg, case_ids=CASE_IDS)


class TestTables:
    def test_table1_structure(self, campaign):
        text = table1(campaign, filter_value=0.01)
        lines = text.splitlines()
        assert len(lines) == 2 + len(CASE_IDS)
        assert "crystm02-syn" in text
        assert "skylake" in lines[0]

    def test_filter_sweep_stats_keys(self, campaign):
        stats = filter_sweep_stats(campaign, "fsaie_full")
        assert set(stats) == {"0", "0.01", "best"}
        assert stats["best"].avg_time >= max(
            stats["0"].avg_time, stats["0.01"].avg_time
        ) - 1e-9

    def test_table2_contains_both_methods(self, campaign):
        text = table2(campaign)
        assert "FSAIE(sp)" in text and "FSAIE(full)" in text
        assert "best" in text

    def test_table3_formatting(self):
        text = table3([(0.01, 1.5, 10.0), (0.1, 8.0, 120.0)])
        assert "0.01" in text and "120.00" in text

    def test_setup_overhead_mentions_stats(self, campaign):
        text = setup_overhead(campaign)
        assert "avg" in text and "%" in text

    def test_extension_stats_orders_by_line_size(self, campaign, campaign_a64):
        text = extension_stats([campaign, campaign_a64])
        assert "skylake" in text and "a64fx" in text
        assert "256 B" in text


class TestFigure1:
    def test_patterns_nested(self):
        a = wathen(3, 3, seed=1)
        base, extended, filtered = figure1_patterns(a, ArrayPlacement.aligned(64))
        assert base.is_subset_of(filtered)
        assert filtered.is_subset_of(extended)

    def test_ascii_render_glyphs(self):
        a = wathen(3, 3, seed=1)
        base, extended, _ = figure1_patterns(a, ArrayPlacement.aligned(64))
        text = render_pattern_ascii(extended, base=base)
        assert "#" in text and "+" in text and "." in text
        assert len(text.splitlines()) == extended.n_rows

    def test_full_figure_three_panels(self):
        text = figure1(wathen(3, 3, seed=1), ArrayPlacement.aligned(64))
        assert text.count("---") == 6  # 3 panels x 2 dashes-lines


class TestFigure2:
    def test_series_contents(self, campaign):
        s = figure2_series(campaign)
        assert isinstance(s, BarSeries)
        assert s.ids == list(CASE_IDS)
        assert len(s.best_filter) == len(CASE_IDS)
        # best-filter improvement can only beat the common filter.
        for b, c in zip(s.best_filter, s.common_filter):
            assert b >= c - 1e-9

    def test_render(self, campaign):
        text = render_bars(figure2_series(campaign))
        assert "skylake" in text
        assert text.count("#") >= len(CASE_IDS)


class TestHistograms:
    def test_figure3_series_and_medians(self, campaign):
        h = figure3_histogram(campaign)
        assert set(h.counts) == {"G_FSAI", "G_FSAIE(full)", "G_random"}
        # The paper's claim: random extensions miss far more.
        assert h.median["G_random"] > h.median["G_FSAIE(full)"]

    def test_figure3_bin_totals(self, campaign):
        h = figure3_histogram(campaign)
        for counts in h.counts.values():
            assert counts.sum() == len(CASE_IDS)

    def test_figure4_gflops_ordering(self, campaign):
        h = figure4_histogram(campaign)
        assert h.median["G_FSAIE(full)"] > h.median["G_random"]

    def test_figure7_multiple_machines(self, campaign, campaign_a64):
        h = figure7_histogram([campaign, campaign_a64])
        assert set(h.counts) == {"skylake", "a64fx"}

    def test_render_histogram(self, campaign):
        text = render_histogram(figure3_histogram(campaign))
        assert "median" in text and "misses / nnz(G)" in text
