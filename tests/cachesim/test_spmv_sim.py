"""Unit tests for repro.cachesim.spmv_sim — including the paper's central
cache-behaviour claims on small instances."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.presets import SKYLAKE
from repro.cachesim.spmv_sim import (
    misses_per_nnz,
    simulate_fsai_application,
    simulate_spmv,
)
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.random_ext import extend_pattern_random
from repro.perf.costmodel import scale_caches
from repro.sparse.pattern import Pattern

SMALL_SKX = scale_caches(SKYLAKE, 1 / 16)  # 2 KiB L1: forces capacity misses


def banded(n, bw):
    rows, cols = [], []
    for i in range(n):
        for j in range(max(0, i - bw), i + 1):
            rows.append(i)
            cols.append(j)
    return Pattern.from_coo(n, n, np.array(rows), np.array(cols))


class TestSimulateSpmv:
    def test_sequential_pattern_few_misses(self):
        p = banded(512, 2)
        res = simulate_spmv(p, SMALL_SKX, include_streams=False)
        # Sequential access: roughly one miss per line of x.
        assert res.x_misses <= 1.2 * (512 / 8) + 2

    def test_random_pattern_many_misses(self):
        rng = np.random.default_rng(0)
        rows = np.repeat(np.arange(512), 3)
        cols = rng.integers(0, 512, len(rows))
        p = Pattern.from_coo(512, 512, rows, cols)
        res = simulate_spmv(p, SMALL_SKX, include_streams=False)
        seq = simulate_spmv(banded(512, 2), SMALL_SKX, include_streams=False)
        assert res.x_misses > 4 * seq.x_misses

    def test_result_counters_consistent(self):
        p = banded(256, 1)
        res = simulate_spmv(p, SMALL_SKX)
        assert res.x_accesses == p.nnz
        assert 0 <= res.x_misses <= res.x_accesses
        assert res.total_accesses >= res.x_accesses
        assert res.memory_misses == res.total_misses  # l1_only mode

    def test_x_misses_per_nnz(self):
        p = banded(256, 1)
        res = simulate_spmv(p, SMALL_SKX)
        assert res.x_misses_per_nnz == pytest.approx(res.x_misses / p.nnz)

    def test_full_hierarchy_reduces_memory_misses(self):
        rng = np.random.default_rng(1)
        rows = np.repeat(np.arange(512), 4)
        cols = rng.integers(0, 512, len(rows))
        p = Pattern.from_coo(512, 512, rows, cols)
        l1 = simulate_spmv(p, SMALL_SKX, l1_only=True)
        full = simulate_spmv(p, SMALL_SKX, l1_only=False)
        assert full.memory_misses <= l1.memory_misses


class TestPaperClaims:
    """The §4/§7.3 cache claims, verified by simulation."""

    def test_cache_friendly_extension_adds_no_compulsory_misses(self):
        base = banded(512, 2)
        pl = ArrayPlacement.aligned(64)
        ext = extend_pattern_cache_friendly(base, pl)
        assert ext.nnz > base.nnz
        # With streams off and an effectively-infinite cache the miss count
        # equals distinct lines touched, which the extension must not grow.
        res_base = simulate_spmv(base, SKYLAKE, include_streams=False)
        res_ext = simulate_spmv(ext, SKYLAKE, include_streams=False)
        assert res_ext.x_misses == res_base.x_misses

    def test_cache_friendly_beats_random_at_equal_nnz(self):
        base = banded(512, 2)
        pl = ArrayPlacement.aligned(64)
        ext = extend_pattern_cache_friendly(base, pl)
        added = np.asarray(ext.row_lengths() - base.row_lengths())
        rnd = extend_pattern_random(base, added, seed=3)
        m_ext = simulate_spmv(ext, SMALL_SKX).x_misses
        m_rnd = simulate_spmv(rnd, SMALL_SKX).x_misses
        assert m_rnd > 2 * m_ext

    def test_misses_per_nnz_decreases_with_extension(self):
        # Same misses over more entries => smaller normalised metric
        # (the Figure 3 shift towards the first bins).
        base = banded(512, 2)
        pl = ArrayPlacement.aligned(64)
        ext = extend_pattern_cache_friendly(base, pl)
        assert (
            misses_per_nnz(ext, SMALL_SKX, include_streams=False)
            < misses_per_nnz(base, SMALL_SKX, include_streams=False)
        )


class TestFSAIApplication:
    def test_covers_both_products(self):
        g = banded(128, 2)
        res = simulate_fsai_application(g, SMALL_SKX)
        assert res.x_accesses == 2 * g.nnz

    def test_custom_gt_pattern(self):
        g = banded(128, 2)
        gt = extend_pattern_cache_friendly(
            g.transpose(), ArrayPlacement.aligned(64), triangular="upper"
        )
        res = simulate_fsai_application(g, SMALL_SKX, gt_pattern=gt)
        assert res.x_accesses == g.nnz + gt.nnz

    def test_repetitions_scale_counters(self):
        g = banded(128, 2)
        r1 = simulate_fsai_application(g, SMALL_SKX, repetitions=1)
        r3 = simulate_fsai_application(g, SMALL_SKX, repetitions=3)
        assert r3.x_accesses == 3 * r1.x_accesses
        # Warm repetitions hit more: per-repetition misses can only drop.
        assert r3.x_misses <= 3 * r1.x_misses
