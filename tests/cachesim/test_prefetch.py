"""Unit tests for the next-line prefetcher model."""

import numpy as np

from repro.arch.machine import CacheLevelSpec
from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.prefetch import PrefetchingCache


def spec(lines=64, ways=8):
    return CacheLevelSpec("L1", lines * 64, ways, 64)


class TestPrefetcher:
    def test_sequential_stream_mostly_covered(self):
        """The paper's §1 premise: streams are prefetch-friendly."""
        c = PrefetchingCache(spec())
        stream = np.arange(200)
        c.access_many(stream)
        # One cold demand miss, then every subsequent line was prefetched.
        assert c.stats.demand_misses <= 5
        assert c.stats.covered_misses >= 190
        assert c.stats.coverage > 0.95

    def test_random_stream_not_covered(self):
        """...and random accesses (vector x) are not."""
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 10_000, 500)
        c = PrefetchingCache(spec())
        plain = SetAssociativeCache(spec())
        c.access_many(stream)
        plain.access_many(stream)
        assert c.stats.coverage < 0.1
        # Prefetch pollution cannot reduce demand misses below the plain
        # cache's misses by much on random streams.
        assert c.stats.demand_misses >= 0.8 * plain.stats.misses

    def test_stall_semantics(self):
        c = PrefetchingCache(spec())
        assert c.access(0) is False      # cold miss stalls
        assert c.access(1) is True       # prefetched: no stall
        assert c.access(1) is True       # now a regular hit
        assert c.stats.covered_misses == 1
        assert c.stats.demand_misses == 1

    def test_effective_miss_ratio(self):
        c = PrefetchingCache(spec())
        c.access_many(np.arange(100))
        assert c.stats.effective_miss_ratio < 0.05

    def test_reset(self):
        c = PrefetchingCache(spec())
        c.access_many(np.arange(10))
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False

    def test_strided_stream_defeats_next_line(self):
        # Stride-2 in lines: next-line prefetch never lands on the stream.
        c = PrefetchingCache(spec(lines=256, ways=8))
        c.access_many(np.arange(0, 400, 2))
        assert c.stats.coverage == 0.0

    def test_prefetch_not_counted_as_demand_access(self):
        c = PrefetchingCache(spec())
        c.access(0)
        assert c.stats.accesses == 1
