"""Unit tests for repro.cachesim.cache (exact LRU model)."""

import numpy as np
import pytest

from repro.arch.machine import CacheLevelSpec
from repro.cachesim.cache import CacheStats, InfiniteCache, SetAssociativeCache


def tiny_cache(ways=2, sets=2):
    # sets*ways lines of 64B.
    return SetAssociativeCache(
        CacheLevelSpec("T", sets * ways * 64, ways, 64)
    )


class TestSetAssociative:
    def test_compulsory_miss_then_hit(self):
        c = tiny_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_set_mapping(self):
        c = tiny_cache(ways=1, sets=2)
        # lines 0 and 2 both map to set 0 with 1 way -> conflict.
        c.access(0)
        c.access(2)
        assert c.access(0) is False
        assert c.stats.evictions >= 1

    def test_lru_order(self):
        c = tiny_cache(ways=2, sets=1)
        c.access(0)
        c.access(1)
        c.access(0)        # 1 is now LRU
        c.access(2)        # evicts 1
        assert c.access(0) is True
        assert c.access(1) is False

    def test_access_many_matches_scalar(self):
        stream = np.array([0, 1, 2, 0, 3, 1, 0, 2, 5, 0])
        c1, c2 = tiny_cache(), tiny_cache()
        mask = c1.access_many(stream)
        scalar = np.array([c2.access(x) for x in stream])
        assert np.array_equal(mask, scalar)
        assert c1.stats.misses == c2.stats.misses

    def test_capacity_eviction(self):
        c = tiny_cache(ways=2, sets=2)  # capacity 4 lines
        c.access_many(np.arange(8))
        assert c.resident_lines == 4
        assert c.stats.misses == 8

    def test_working_set_within_capacity_all_hits(self):
        c = tiny_cache(ways=4, sets=4)  # 16 lines
        stream = np.tile(np.arange(16), 5)
        c.access_many(stream)
        assert c.stats.misses == 16  # compulsory only
        assert c.stats.hits == 64

    def test_reset(self):
        c = tiny_cache()
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False

    def test_contains_non_mutating(self):
        c = tiny_cache()
        c.access(0)
        assert c.contains(0)
        assert not c.contains(1)
        assert c.stats.accesses == 1


class TestInfiniteCache:
    def test_only_compulsory(self):
        c = InfiniteCache()
        stream = np.array([0, 1, 0, 2, 1, 0, 3])
        c.access_many(stream)
        assert c.stats.misses == 4
        assert c.stats.hits == 3

    def test_never_evicts(self):
        c = InfiniteCache()
        c.access_many(np.arange(10_000))
        assert all(c.contains(i) for i in (0, 9_999))

    def test_scalar_and_batch_agree(self):
        c1, c2 = InfiniteCache(), InfiniteCache()
        stream = np.array([5, 5, 7, 5, 9])
        mask = c1.access_many(stream)
        scalar = np.array([c2.access(x) for x in stream])
        assert np.array_equal(mask, scalar)

    def test_reset(self):
        c = InfiniteCache()
        c.access(1)
        c.reset()
        assert not c.contains(1)


class TestCacheStats:
    def test_ratios(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.miss_ratio == pytest.approx(0.3)
        assert s.hit_ratio == pytest.approx(0.7)

    def test_empty_ratios(self):
        assert CacheStats().miss_ratio == 0.0

    def test_merge(self):
        a = CacheStats(10, 7, 3, 1)
        b = CacheStats(5, 2, 3, 0)
        m = a.merge(b)
        assert (m.accesses, m.hits, m.misses, m.evictions) == (15, 9, 6, 1)
