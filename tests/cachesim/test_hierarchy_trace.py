"""Unit tests for repro.cachesim.hierarchy and repro.cachesim.trace."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.machine import CacheLevelSpec
from repro.arch.presets import SKYLAKE
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.trace import (
    REGION_MATRIX,
    REGION_X,
    REGION_Y,
    REGION_Z,
    fsai_apply_trace,
    spmv_trace,
)
from repro.sparse.pattern import Pattern


def band_pattern(n, bandwidth=1):
    rows, cols = [], []
    for i in range(n):
        for j in range(max(0, i - bandwidth), min(n, i + bandwidth + 1)):
            rows.append(i)
            cols.append(j)
    return Pattern.from_coo(n, n, np.array(rows), np.array(cols))


class TestHierarchy:
    def test_l2_sees_only_l1_misses(self):
        h = CacheHierarchy([
            CacheLevelSpec("L1", 2 * 64, 1, 64),
            CacheLevelSpec("L2", 16 * 64, 2, 64),
        ])
        stream = np.array([0, 1, 0, 1, 2, 0])
        h.access_many(stream)
        stats = h.level_stats()
        assert stats["L2"].accesses == stats["L1"].misses
        assert stats["L1"].accesses == len(stream)

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy([
            CacheLevelSpec("L1", 1 * 64, 1, 64),   # 1 line
            CacheLevelSpec("L2", 64 * 64, 4, 64),
        ])
        h.access_many(np.array([0, 1, 0]))  # 0 evicted from L1, still in L2
        stats = h.level_stats()
        assert stats["L2"].hits == 1

    def test_memory_misses(self):
        h = CacheHierarchy([CacheLevelSpec("L1", 2 * 64, 1, 64)])
        h.access_many(np.array([0, 1, 2, 3]))
        assert h.memory_misses == 4

    def test_for_machine_builds_all_levels(self):
        h = CacheHierarchy.for_machine(SKYLAKE)
        assert [c.spec.name for c in h.caches] == ["L1", "L2", "L3"]
        assert [c.spec.name for c in CacheHierarchy.l1_only(SKYLAKE).caches] == ["L1"]

    def test_reset(self):
        h = CacheHierarchy.l1_only(SKYLAKE)
        h.access_many(np.array([1, 2, 3]))
        h.reset()
        assert h.l1.stats.accesses == 0

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestTrace:
    def test_x_only_trace_lines(self):
        p = band_pattern(16)
        pl = ArrayPlacement.aligned(64)
        tr = spmv_trace(p, pl, include_streams=False)
        assert len(tr) == p.nnz
        assert tr.is_x.all()
        # Line ids match the placement mapping of the column indices.
        assert np.array_equal(tr.lines, pl.line_of(p.indices))

    def test_streams_interleaved(self):
        p = band_pattern(16)
        tr = spmv_trace(p, ArrayPlacement.aligned(64), include_streams=True)
        assert len(tr) > p.nnz
        assert tr.is_x.sum() == p.nnz
        # Stream lines live in their own regions.
        stream_lines = tr.lines[~tr.is_x]
        assert (stream_lines >= min(REGION_MATRIX, REGION_Y) // 64).all()

    def test_empty_pattern(self):
        tr = spmv_trace(Pattern.empty(4, 4), ArrayPlacement.aligned(64))
        assert len(tr) == 0

    def test_matrix_stream_line_count(self):
        # nnz entries consume 16 B each; one matrix-stream event per 64 B.
        p = band_pattern(64, bandwidth=0)  # diagonal: 64 entries
        tr = spmv_trace(p, ArrayPlacement.aligned(64), include_streams=True)
        mat_events = (
            (tr.lines >= REGION_MATRIX // 64) & (tr.lines < REGION_Y // 64)
        ).sum()
        assert mat_events == 64 * 16 // 64

    def test_x_region_offset(self):
        p = band_pattern(8)
        pl = ArrayPlacement.aligned(64)
        tr0 = spmv_trace(p, pl, include_streams=False, x_region=REGION_X)
        trz = spmv_trace(p, pl, include_streams=False, x_region=REGION_Z)
        assert np.array_equal(trz.lines - trz.lines.min(), tr0.lines - tr0.lines.min())
        assert trz.lines.min() >= REGION_Z // 64

    def test_fsai_apply_concatenates(self):
        g = band_pattern(16).tril()
        tr = fsai_apply_trace(g, g.transpose(), ArrayPlacement.aligned(64))
        single = spmv_trace(g, ArrayPlacement.aligned(64))
        assert len(tr) > len(single)
        assert tr.is_x.sum() == 2 * g.nnz

    def test_concat_preserves_order(self):
        p = band_pattern(4)
        pl = ArrayPlacement.aligned(64)
        a = spmv_trace(p, pl, include_streams=False)
        b = spmv_trace(p, pl, include_streams=False, x_region=REGION_Z)
        c = a.concat(b)
        assert np.array_equal(c.lines[: len(a)], a.lines)
        assert np.array_equal(c.lines[len(a):], b.lines)
