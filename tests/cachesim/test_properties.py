"""Property-based tests for the cache simulator (hypothesis).

Classical cache-theory invariants that any correct LRU implementation must
satisfy — these catch subtle replacement/indexing bugs that example-based
tests miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import ArrayPlacement
from repro.arch.machine import CacheLevelSpec
from repro.cachesim.cache import InfiniteCache, SetAssociativeCache
from repro.cachesim.trace import spmv_trace
from repro.sparse.pattern import Pattern

streams = st.lists(st.integers(0, 63), min_size=1, max_size=300).map(np.asarray)


def cache(ways: int, sets: int) -> SetAssociativeCache:
    return SetAssociativeCache(CacheLevelSpec("T", sets * ways * 64, ways, 64))


class TestLRUInclusion:
    @given(streams, st.sampled_from([1, 2, 4]), st.sampled_from([2, 4]))
    @settings(max_examples=80, deadline=None)
    def test_more_ways_never_more_misses(self, stream, ways, sets):
        """LRU inclusion property: with the set count fixed, adding ways can
        only turn misses into hits (true-LRU is a stack algorithm per set)."""
        small = cache(ways, sets)
        big = cache(2 * ways, sets)
        small.access_many(stream)
        big.access_many(stream)
        assert big.stats.misses <= small.stats.misses

    @given(streams, st.sampled_from([1, 2, 4]))
    @settings(max_examples=80, deadline=None)
    def test_infinite_cache_lower_bounds_misses(self, stream, ways):
        finite = cache(ways, 4)
        infinite = InfiniteCache()
        finite.access_many(stream)
        infinite.access_many(stream)
        assert infinite.stats.misses <= finite.stats.misses

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_compulsory_misses_equal_distinct_lines(self, stream):
        infinite = InfiniteCache()
        infinite.access_many(stream)
        assert infinite.stats.misses == len(np.unique(stream))

    @given(streams, st.sampled_from([2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_counters_are_consistent(self, stream, ways):
        c = cache(ways, 2)
        c.access_many(stream)
        st_ = c.stats
        assert st_.accesses == len(stream)
        assert st_.hits + st_.misses == st_.accesses
        assert c.resident_lines <= ways * 2

    @given(streams, st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_replay_determinism(self, stream, ways):
        c1, c2 = cache(ways, 4), cache(ways, 4)
        m1 = c1.access_many(stream)
        m2 = c2.access_many(stream)
        assert np.array_equal(m1, m2)


@st.composite
def small_patterns(draw):
    n = draw(st.integers(2, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.05, 0.5))
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=(n, n)) < density
    np.fill_diagonal(mask, True)
    return Pattern.from_dense_mask(mask)


class TestTraceProperties:
    @given(small_patterns(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_x_access_count_is_nnz(self, p, offset):
        pl = ArrayPlacement.with_element_offset(64, offset)
        tr = spmv_trace(p, pl, include_streams=True)
        assert int(tr.is_x.sum()) == p.nnz

    @given(small_patterns())
    @settings(max_examples=60, deadline=None)
    def test_stream_and_x_regions_disjoint(self, p):
        pl = ArrayPlacement.aligned(64)
        tr = spmv_trace(p, pl, include_streams=True)
        x_lines = set(tr.lines[tr.is_x].tolist())
        s_lines = set(tr.lines[~tr.is_x].tolist())
        assert not (x_lines & s_lines)

    @given(small_patterns(), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_compulsory_x_misses_equal_lines_touched(self, p, offset):
        pl = ArrayPlacement.with_element_offset(64, offset)
        tr = spmv_trace(p, pl, include_streams=False)
        infinite = InfiniteCache()
        infinite.access_many(tr.lines)
        expected = len(np.unique(np.asarray(pl.line_of(p.indices))))
        assert infinite.stats.misses == expected
