"""Property tests: the vectorized engine is bit-exact vs the reference loop.

The offline sort/merge-count engine (:mod:`repro.cachesim.engine`) must
reproduce the per-access ``OrderedDict`` oracle *exactly* — same hit mask,
same counters, same final cache state including per-set LRU order — over
randomized traces spanning set counts, associativities and line ranges, and
over the repeat-heavy traces the collapse fast-path targets.  The bucketed
FSAI gather is held to the same standard against the per-row reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import CacheLevelSpec
from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.engine import (
    set_stack_distances,
    simulate_set_lru,
    stack_distances_vectorized,
)
from repro.cachesim.stackdist import stack_distances
from repro.collection.suite import get_case
from repro.errors import ConfigurationError
from repro.fsai.frobenius import (
    compute_g,
    gather_local_systems,
    gather_local_systems_bucketed,
    precalculate_g,
)
from repro.fsai.patterns import fsai_initial_pattern

# Traces long enough to cross the vector-dispatch threshold and short enough
# for hypothesis throughput; line ids deliberately collide across sets.
traces = st.lists(st.integers(0, 40), min_size=0, max_size=220).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)

#: Repeat-heavy traces (spatial locality): each drawn id is run-length
#: expanded, exercising the immediate-repeat collapse fast path.
repeaty = st.lists(
    st.tuples(st.integers(0, 25), st.integers(1, 6)), min_size=1, max_size=80
).map(
    lambda ps: np.repeat(
        np.asarray([p[0] for p in ps], dtype=np.int64),
        np.asarray([p[1] for p in ps], dtype=np.int64),
    )
)

geometries = st.tuples(st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4, 8]))


def _reference_cache(n_sets: int, ways: int) -> SetAssociativeCache:
    spec = CacheLevelSpec("REF", n_sets * ways * 64, ways, 64)
    return SetAssociativeCache(spec, backend="reference")


def _state_of(cache: SetAssociativeCache):
    """(set index, line, LRU rank) triples of the live OrderedDict state."""
    out = []
    for idx, s in enumerate(cache._sets):
        for rank, line in enumerate(s.keys()):
            out.append((idx, line, rank))
    return out


class TestEngineVsReference:
    @given(traces, geometries)
    @settings(max_examples=120, deadline=None)
    def test_simulate_matches_reference_replay(self, trace, geom):
        n_sets, ways = geom
        ref = _reference_cache(n_sets, ways)
        ref_hits = ref.access_many(trace)
        outcome = simulate_set_lru(trace, n_sets, ways)
        assert np.array_equal(outcome.hits, ref_hits)
        assert outcome.evictions == ref.stats.evictions
        engine_state = list(
            zip(outcome.state_sets.tolist(), outcome.state_lines.tolist())
        )
        ref_state = [(s, line) for s, line, _ in _state_of(ref)]
        assert engine_state == ref_state  # same residents, same LRU order

    @given(repeaty, geometries)
    @settings(max_examples=120, deadline=None)
    def test_repeat_heavy_traces(self, trace, geom):
        n_sets, ways = geom
        ref = _reference_cache(n_sets, ways)
        ref_hits = ref.access_many(trace)
        outcome = simulate_set_lru(trace, n_sets, ways)
        assert np.array_equal(outcome.hits, ref_hits)
        assert outcome.evictions == ref.stats.evictions

    @given(traces, traces, geometries)
    @settings(max_examples=80, deadline=None)
    def test_warm_start_equals_stateful_continuation(self, first, second, geom):
        """Splitting a trace across two access_many calls (vector backend
        carries state via the warm prefix) must match one reference run."""
        n_sets, ways = geom
        ref = _reference_cache(n_sets, ways)
        h1 = ref.access_many(first)
        h2 = ref.access_many(second)
        spec = CacheLevelSpec("VEC", n_sets * ways * 64, ways, 64)
        vec = SetAssociativeCache(spec, backend="vector")
        # Bypass the short-trace dispatch so the engine path is always used.
        v1 = vec._access_many_vector(np.asarray(first, dtype=np.int64))
        v2 = vec._access_many_vector(np.asarray(second, dtype=np.int64))
        assert np.array_equal(v1, h1) and np.array_equal(v2, h2)
        assert vec.stats == ref.stats
        assert _state_of(vec) == _state_of(ref)

    @given(traces, st.lists(st.integers(0, 40), min_size=1, max_size=8), geometries)
    @settings(max_examples=60, deadline=None)
    def test_mixed_scalar_and_batch(self, trace, probes, geom):
        """Scalar accesses interleaved with vector batches stay exact."""
        n_sets, ways = geom
        ref = _reference_cache(n_sets, ways)
        spec = CacheLevelSpec("VEC", n_sets * ways * 64, ways, 64)
        vec = SetAssociativeCache(spec, backend="vector")
        ref.access_many(trace)
        vec._access_many_vector(np.asarray(trace, dtype=np.int64))
        for p in probes:
            assert vec.contains(p) == ref.contains(p)
            assert vec.access(p) == ref.access(p)
        assert vec.stats == ref.stats

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_stack_distances_match_fenwick(self, trace):
        vec = stack_distances_vectorized(trace)
        ref = stack_distances(trace, backend="reference")
        assert np.array_equal(vec, ref)

    @given(traces, st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_set_distances_imply_reference_hits(self, trace, n_sets):
        """hit iff per-set stack distance < ways, for every ways at once."""
        sd, sets = set_stack_distances(trace, n_sets)
        assert np.array_equal(sets, trace % n_sets)
        for ways in (1, 2, 4):
            ref = _reference_cache(n_sets, ways)
            ref_hits = ref.access_many(trace)
            assert np.array_equal((sd >= 0) & (sd < ways), ref_hits)

    def test_unknown_backend_rejected(self):
        spec = CacheLevelSpec("X", 4 * 2 * 64, 2, 64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(spec, backend="turbo")


class TestBucketedGather:
    """Bucketed FSAI local-system assembly vs the per-row reference."""

    @pytest.mark.parametrize("case_id", [5, 9, 24, 46])
    def test_gather_identical(self, case_id):
        a = get_case(case_id).build()
        pattern = fsai_initial_pattern(a)
        ref_systems, ref_rhs = gather_local_systems(a, pattern)
        covered = np.zeros(pattern.n_rows, dtype=bool)
        for bucket in gather_local_systems_bucketed(a, pattern):
            for slot, i in enumerate(bucket.rows.tolist()):
                assert np.array_equal(bucket.systems[slot], ref_systems[i])
                assert np.array_equal(bucket.rhs[slot], ref_rhs[i])
                covered[i] = True
        assert covered.all()

    @pytest.mark.parametrize("case_id", [5, 9, 24, 46])
    def test_compute_g_bit_identical(self, case_id):
        a = get_case(case_id).build()
        pattern = fsai_initial_pattern(a)
        g_ref = compute_g(a, pattern, backend="reference")
        g_vec = compute_g(a, pattern, backend="bucketed")
        assert np.array_equal(g_ref.indptr, g_vec.indptr)
        assert np.array_equal(g_ref.indices, g_vec.indices)
        assert np.array_equal(g_ref.data, g_vec.data)

    @pytest.mark.parametrize("case_id", [5, 24])
    def test_precalculate_g_bit_identical(self, case_id):
        a = get_case(case_id).build()
        pattern = fsai_initial_pattern(a)
        g_ref = precalculate_g(a, pattern, backend="reference")
        g_vec = precalculate_g(a, pattern, backend="bucketed")
        assert np.array_equal(g_ref.data, g_vec.data)

    def test_unknown_backend_rejected(self):
        a = get_case(5).build()
        pattern = fsai_initial_pattern(a)
        with pytest.raises(ConfigurationError):
            compute_g(a, pattern, backend="magic")
