"""Unit + property tests for the stack-distance profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import ArrayPlacement
from repro.arch.machine import CacheLevelSpec
from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.stackdist import (
    profile_stack_distances,
    stack_distances,
)
from repro.cachesim.trace import spmv_trace
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.random_ext import extend_pattern_random
from repro.sparse.pattern import Pattern


class TestStackDistances:
    def test_textbook_example(self):
        # Stream a b c a: distance of the second 'a' is 2 (b, c touched).
        d = stack_distances([0, 1, 2, 0])
        assert list(d) == [-1, -1, -1, 2]

    def test_immediate_reuse_is_zero(self):
        d = stack_distances([5, 5, 5])
        assert list(d) == [-1, 0, 0]

    def test_all_distinct(self):
        d = stack_distances([1, 2, 3, 4])
        assert (d == -1).all()

    def test_interleaved(self):
        # a b a b: each reuse skips exactly one distinct line.
        d = stack_distances([0, 1, 0, 1])
        assert list(d) == [-1, -1, 1, 1]

    def test_empty(self):
        assert len(stack_distances([])) == 0


class TestProfile:
    def test_compulsory_counts_distinct_lines(self):
        p = profile_stack_distances([3, 1, 3, 2, 1])
        assert p.compulsory == 3
        assert p.n_accesses == 5

    def test_misses_at_capacity(self):
        # Cyclic stream over 3 lines: capacity >= 3 -> only compulsory.
        stream = [0, 1, 2] * 4
        p = profile_stack_distances(stream)
        assert p.misses_at(3) == 3
        assert p.misses_at(2) == len(stream)  # LRU thrashes under capacity
        assert p.misses_at(0) == len(stream)

    def test_miss_ratio_curve_monotone(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 50, 500)
        p = profile_stack_distances(stream)
        curve = p.miss_ratio_curve([1, 2, 4, 8, 16, 32, 64])
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(p.compulsory / 500)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_fully_associative_lru(self, stream):
        """Cross-validation: misses_at(C) must equal an exact C-line
        fully-associative LRU simulation, for every C."""
        p = profile_stack_distances(stream)
        for ways in (1, 2, 4, 8):
            cache = SetAssociativeCache(
                CacheLevelSpec("FA", ways * 64, ways, 64)  # 1 set, `ways` lines
            )
            cache.access_many(np.asarray(stream, dtype=np.int64))
            assert p.misses_at(ways) == cache.stats.misses


class TestPaperLens:
    def test_extension_adds_only_tiny_distances(self):
        """Cache-friendly extension accesses reuse just-touched lines, so
        the median finite distance must stay small; random extensions
        inflate it."""
        n = 256
        rows = [[max(0, i - 1), i] for i in range(n)]
        base = Pattern.from_rows(n, n, rows)
        pl = ArrayPlacement.aligned(64)
        ext = extend_pattern_cache_friendly(base, pl)
        added = np.asarray(ext.row_lengths() - base.row_lengths())
        rnd = extend_pattern_random(base, added, seed=1)

        def median_dist(pattern):
            tr = spmv_trace(pattern, pl, include_streams=False)
            return profile_stack_distances(tr.lines).median_finite_distance()

        assert median_dist(ext) <= median_dist(base) + 1e-9
        assert median_dist(rnd) > 2 * median_dist(ext)
