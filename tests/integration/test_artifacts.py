"""Repository-artifact consistency checks.

These keep the documentation deliverables (DESIGN.md, EXPERIMENTS.md,
README, docs/) in lock-step with the code: every experiment row in the
design index must have its bench file, every bench file must be indexed,
and the generated EXPERIMENTS.md must cover every experiment.
"""

import re
from pathlib import Path


ROOT = Path(__file__).resolve().parents[2]


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing deliverable {name}"
    return path.read_text()


class TestDesignIndex:
    def test_every_indexed_bench_exists(self):
        design = read("DESIGN.md")
        benches = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert benches, "DESIGN.md must index bench files"
        for bench in benches:
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_every_bench_is_indexed(self):
        design = read("DESIGN.md")
        on_disk = {
            p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
        }
        indexed = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        # Micro-benchmarks of our own kernels are infrastructure, not
        # experiments; every other bench must be in the index.
        missing = on_disk - indexed - {"bench_kernels.py"}
        assert not missing, f"benches missing from DESIGN.md index: {missing}"

    def test_substitutions_documented(self):
        design = read("DESIGN.md")
        assert "Substitutions" in design
        assert "cache simulator" in design
        assert "synthetic suite" in design.lower()

    def test_paper_check_recorded(self):
        assert "Paper-text check" in read("DESIGN.md")


class TestExperimentsReport:
    def test_exists_with_all_anchors(self):
        text = read("EXPERIMENTS.md")
        for anchor in (
            "E-T1", "E-T2", "E-T3", "E-T4", "E-T5",
            "E-F1", "E-F2", "E-F3", "E-F4", "E-F5", "E-F6", "E-F7",
            "E-S74", "E-A3",
        ):
            assert anchor in text, anchor

    def test_paper_vs_measured_columns(self):
        text = read("EXPERIMENTS.md")
        assert "paper avg iter %" in text
        assert "measured" in text

    def test_deviations_discussed(self):
        assert "Addendum — deviations" in read("EXPERIMENTS.md")


class TestReadme:
    def test_mentions_all_packages(self):
        readme = read("README.md")
        for pkg in (
            "sparse/", "arch/", "cachesim/", "solvers/", "fsai/",
            "collection/", "perf/", "parallel/", "experiments/",
        ):
            assert pkg in readme, pkg

    def test_install_and_quickstart(self):
        readme = read("README.md")
        assert "pip install -e ." in readme
        assert "setup_fsaie_full" in readme


class TestDocs:
    def test_paper_mapping_covers_algorithms(self):
        text = read("docs/paper_mapping.md")
        for anchor in ("Algorithm 1", "Algorithm 3", "Algorithm 4", "§5"):
            assert anchor in text

    def test_simulation_model_documented(self):
        text = read("docs/simulation_model.md")
        assert "RANDOM_ACCESS_PENALTY" in text
        assert "roofline" in text.lower()


class TestExamplesListed:
    def test_readme_lists_each_example(self):
        readme = read("README.md")
        for script in (ROOT / "examples").glob("*.py"):
            # Every example is either in the README table or self-evident
            # (the table lists at least the original five).
            pass
        listed = re.findall(r"`(\w+\.py)`", readme)
        assert "quickstart.py" in listed
        assert len(set(listed)) >= 4
