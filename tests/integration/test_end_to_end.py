"""Integration tests: the paper's headline shapes, end to end.

Each test exercises the full pipeline (suite matrix -> FSAI setups -> PCG
solve -> cache simulation -> cost model) and asserts one of the DESIGN.md §5
reproduction criteria on a small but non-trivial subset.
"""

import numpy as np
import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.report import generate_report
from repro.perf.metrics import summarize_improvements

CASE_IDS = (5, 22, 41, 65)  # Poisson-family cases: reliable mid-difficulty


@pytest.fixture(scope="module")
def skylake():
    cfg = ExperimentConfig(machine="skylake", include_random_baseline=True)
    return run_campaign(cfg, case_ids=CASE_IDS)


@pytest.fixture(scope="module")
def a64fx():
    cfg = ExperimentConfig(machine="a64fx")
    return run_campaign(cfg, case_ids=CASE_IDS)


def sweep(campaign, method):
    out = {}
    for f in campaign.config.filters:
        its = [r.iter_improvement(r.get(method, f)) for r in campaign.results]
        tms = [r.time_improvement(r.get(method, f)) for r in campaign.results]
        out[f] = summarize_improvements(its, tms)
    return out


class TestShape1MethodOrdering:
    """FSAIE(full) >= FSAIE(sp) >= 0 on average solve time (Table 2)."""

    def test_full_beats_sp_on_iterations(self, skylake):
        sp = sweep(skylake, "fsaie_sp")
        fu = sweep(skylake, "fsaie_full")
        for f in (0.0, 0.001, 0.01):
            assert fu[f].avg_iterations >= sp[f].avg_iterations - 1e-9

    def test_best_filter_improves_time(self, skylake):
        for method in ("fsaie_sp", "fsaie_full"):
            best = [
                r.time_improvement(r.best_filter_run(method))
                for r in skylake.results
            ]
            assert np.mean(best) > 0


class TestShape2FilterBehaviour:
    """Low filters maximise iteration gains but not time; the iteration
    gain shrinks at filter 0.1 (Tables 2/4/5)."""

    def test_iteration_gain_monotone_in_filter(self, skylake):
        # Average trend with a small per-sample slack: dropping genuinely
        # weak entries can occasionally *help* convergence by a step or two.
        fu = sweep(skylake, "fsaie_full")
        assert fu[0.0].avg_iterations >= fu[0.01].avg_iterations - 2.0
        assert fu[0.01].avg_iterations >= fu[0.1].avg_iterations - 2.0

    def test_unfiltered_time_worse_than_filtered(self, skylake):
        fu = sweep(skylake, "fsaie_full")
        assert fu[0.0].avg_time < max(fu[0.01].avg_time, fu[0.1].avg_time)


class TestShape4CacheBehaviour:
    """Cache-aware extensions ~ zero extra misses; random many (Fig. 3/4)."""

    def test_misses_per_nnz(self, skylake):
        for r in skylake.results:
            full = r.get("fsaie_full", 0.01)
            rnd = r.get("fsaie_random", 0.01)
            # Cache-aware: at most a modest increase over baseline FSAI.
            assert full.x_misses_per_g_nnz <= 1.5 * r.baseline.x_misses_per_g_nnz + 0.02
            # Random at equal nnz: clearly worse than cache-aware.
            assert rnd.x_misses_per_g_nnz > 1.5 * full.x_misses_per_g_nnz

    def test_gflops_ordering(self, skylake):
        for r in skylake.results:
            assert r.get("fsaie_full", 0.01).gflops > r.get("fsaie_random", 0.01).gflops


class TestShape5A64FX:
    """256 B lines: bigger extensions and at least equal iteration gains
    (Tables 4/5, §7.6-7.7)."""

    def test_larger_extensions(self, skylake, a64fx):
        for r64, r256 in zip(skylake.results, a64fx.results):
            assert (
                r256.get("fsaie_full", 0.0).pct_nnz
                > r64.get("fsaie_full", 0.0).pct_nnz
            )

    def test_iteration_gains_at_least_as_large(self, skylake, a64fx):
        f64 = sweep(skylake, "fsaie_full")
        f256 = sweep(a64fx, "fsaie_full")
        assert f256[0.0].avg_iterations >= f64[0.0].avg_iterations - 1e-9


class TestShape6SetupOverhead:
    """Extended setups cost a small multiple of FSAI setup (§7.4)."""

    def test_overhead_bounded(self, skylake):
        for r in skylake.results:
            full = r.get("fsaie_full", 0.01)
            ratio = full.setup_seconds / r.baseline.setup_seconds
            # Far larger than the paper's ~2.8x: the scaled suite has tiny
            # base rows (k ~ 5) with relatively much larger extensions, and
            # the local-solve cost grows cubically in the row width; see
            # EXPERIMENTS.md E-S74.
            assert 1.0 < ratio < 1000.0


class TestAccuracyInvariant:
    """§7.2: achieved accuracy stays at the 1e-8 target for all methods."""

    def test_relative_residuals(self, skylake):
        for r in skylake.results:
            assert r.baseline.relative_residual <= 1e-8
            for run in r.runs.values():
                assert run.relative_residual <= 1e-8


class TestReportGeneration:
    def test_small_report_builds(self, skylake):
        # Reuse the module campaign for skylake; build the other two fresh
        # (tiny case list keeps this fast).
        from repro.experiments.report import run_all_campaigns

        campaigns = run_all_campaigns(case_ids=(52, 65))
        text = generate_report(campaigns=campaigns, include_table1=True)
        for anchor in (
            "E-T2", "E-T4", "E-T5", "E-T1", "E-T3", "E-F2", "E-F3",
            "E-F4", "E-F7", "E-S74", "E-A3", "E-F1",
        ):
            assert anchor in text
        assert "paper avg iter" in text
