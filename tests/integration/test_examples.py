"""Every example script must run end-to-end without errors."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates what it did


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3
