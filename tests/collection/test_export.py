"""Unit tests for repro.collection.export."""

import numpy as np

from repro.collection.export import export_suite
from repro.collection.suite import get_case
from repro.sparse.io_mm import read_matrix_market


class TestExportSuite:
    def test_writes_selected_cases(self, tmp_path):
        paths = export_suite(tmp_path, cases=[get_case(52), get_case(72)])
        assert [p.name for p in paths] == [
            "52_Muu-syn.mtx", "72_bcsstk27-syn.mtx",
        ]
        for p in paths:
            assert p.exists()

    def test_roundtrip_preserves_matrix(self, tmp_path):
        case = get_case(65)
        (path,) = export_suite(tmp_path, cases=[case])
        back = read_matrix_market(path)
        original = case.build()
        assert back.shape == original.shape
        assert np.allclose(back.to_dense(), original.to_dense())

    def test_comment_carries_provenance(self, tmp_path):
        (path,) = export_suite(tmp_path, cases=[get_case(52)])
        head = path.read_text()[:400]
        assert "generator: mass2d" in head
        assert "mirrors SuiteSparse row: Muu" in head

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_suite(target, cases=[get_case(72)])
        assert (target / "72_bcsstk27-syn.mtx").exists()
