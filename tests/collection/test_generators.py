"""Unit tests for all matrix generators: SPD-ness, structure, knobs."""

import numpy as np
import pytest

from repro.collection.generators.fd import (
    anisotropic_poisson2d,
    poisson2d,
    poisson3d,
    thermal_conduction2d,
)
from repro.collection.generators.fem import (
    elasticity2d,
    elasticity_q4_element,
    mass2d,
    q4_mass_element,
    q4_stiffness_element,
    scaled_stiffness2d,
    shifted_helmholtz2d,
    wathen,
)
from repro.collection.generators.graphs import circuit_network, economic_network
from repro.collection.generators.optimization import (
    bound_constrained_hessian,
    minimal_surface_hessian,
)
from repro.sparse.validate import check_spd_sample, gershgorin_bounds, require_symmetric

ALL_GENERATORS = [
    ("poisson2d", lambda: poisson2d(10)),
    ("poisson3d", lambda: poisson3d(5)),
    ("aniso", lambda: anisotropic_poisson2d(10, epsilon=1e-2, theta=0.3)),
    ("thermal", lambda: thermal_conduction2d(10, contrast=100, seed=1)),
    ("elasticity", lambda: elasticity2d(8, 4)),
    ("mass", lambda: mass2d(8)),
    ("wathen", lambda: wathen(5, 5, seed=1)),
    ("scaled", lambda: scaled_stiffness2d(8, decades=3, seed=1)),
    ("helmholtz", lambda: shifted_helmholtz2d(8, sigma=5.0)),
    ("circuit", lambda: circuit_network(200, seed=1)),
    ("economic", lambda: economic_network(160, seed=1)),
    ("bound", lambda: bound_constrained_hessian(10, seed=1)),
    ("minsurf", lambda: minimal_surface_hessian(10, seed=1)),
]


@pytest.mark.parametrize("name,make", ALL_GENERATORS, ids=[g[0] for g in ALL_GENERATORS])
class TestAllGeneratorsSPD:
    def test_symmetric(self, name, make):
        require_symmetric(make(), 1e-9)

    def test_spd_probe(self, name, make):
        check_spd_sample(make(), n_probes=8)

    def test_deterministic(self, name, make):
        a, b = make(), make()
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.data, b.data)

    def test_positive_diagonal(self, name, make):
        assert np.all(make().diagonal() > 0)


class TestFDGenerators:
    def test_poisson2d_stencil(self):
        a = poisson2d(4)
        d = a.to_dense()
        assert d[5, 5] == 4.0
        assert d[5, 6] == -1.0  # east neighbour
        assert d[5, 9] == -1.0  # south neighbour

    def test_poisson2d_eigen_known(self):
        # Smallest eigenvalue of the n-point 1D stencil composition:
        # lambda_min = 2*(1 - cos(pi/(m+1))) * 2 for the 2D operator.
        m = 8
        a = poisson2d(m).to_dense()
        expected = 4.0 * np.sin(np.pi / (2 * (m + 1))) ** 2 * 2
        assert np.linalg.eigvalsh(a)[0] == pytest.approx(expected, rel=1e-10)

    def test_poisson3d_diag(self):
        assert np.all(poisson3d(4).diagonal() == 6.0)

    def test_poisson_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            poisson2d(1)
        with pytest.raises(ValueError):
            poisson3d(1)

    def test_aniso_limits_to_poisson(self):
        iso = anisotropic_poisson2d(6, epsilon=1.0, theta=0.0)
        assert np.allclose(iso.to_dense(), 2 * poisson2d(6).to_dense() / 2)

    def test_aniso_conditioning_worsens_with_epsilon(self, rng):
        # Rotated anisotropy (theta != 0) produces genuinely harder systems;
        # axis-aligned strong anisotropy decouples into easy 1-D problems at
        # this scale, so the rotation matters for the test.
        from repro.solvers.cg import cg
        b = rng.standard_normal(256)
        easy = cg(
            anisotropic_poisson2d(16, epsilon=0.5, theta=0.4), b
        ).iterations
        hard = cg(
            anisotropic_poisson2d(16, epsilon=1e-3, theta=0.4), b,
            max_iterations=5000,
        ).iterations
        assert hard > easy

    def test_aniso_requires_positive_epsilon(self):
        with pytest.raises(ValueError):
            anisotropic_poisson2d(6, epsilon=0.0)

    def test_thermal_contrast_validation(self):
        with pytest.raises(ValueError):
            thermal_conduction2d(6, contrast=0.5)

    def test_thermal_mass_shift_improves_conditioning(self, rng):
        from repro.solvers.cg import cg
        b = rng.standard_normal(100)
        plain = cg(thermal_conduction2d(10, contrast=100, seed=2), b, max_iterations=5000)
        shifted = cg(
            thermal_conduction2d(10, contrast=100, seed=2, mass_shift=20.0), b
        )
        assert shifted.iterations < plain.iterations


class TestFEMGenerators:
    def test_stiffness_element_rowsums_zero(self):
        # Constant fields are in the stiffness kernel.
        ke = q4_stiffness_element()
        assert np.allclose(ke.sum(axis=1), 0.0)
        assert np.allclose(ke, ke.T)

    def test_mass_element_integrates_to_area(self):
        me = q4_mass_element(2.0, 3.0)
        assert me.sum() == pytest.approx(6.0)

    def test_elasticity_element_rigid_modes(self):
        ke = elasticity_q4_element()
        assert np.allclose(ke, ke.T)
        eigs = np.linalg.eigvalsh(ke)
        # exactly 3 rigid-body modes (2 translations + 1 rotation)
        assert (np.abs(eigs) < 1e-10).sum() == 3

    def test_elasticity_invalid_poisson(self):
        with pytest.raises(ValueError):
            elasticity_q4_element(poisson=0.5)

    def test_elasticity_dof_count(self):
        a = elasticity2d(6, 3)
        assert a.n_rows == 2 * (7 * 4) - 2 * 4  # clamped edge removed

    def test_wathen_size_formula(self):
        nx, ny = 5, 4
        assert wathen(nx, ny).n_rows == 3 * nx * ny + 2 * nx + 2 * ny + 1

    def test_wathen_seed_variation(self):
        assert not np.allclose(wathen(4, 4, seed=0).data, wathen(4, 4, seed=1).data)

    def test_scaled_stiffness_decades_worsen_conditioning(self):
        lo, hi = gershgorin_bounds(scaled_stiffness2d(10, decades=6, seed=3))
        lo2, hi2 = gershgorin_bounds(scaled_stiffness2d(10, decades=1, seed=3))
        assert hi / max(lo, 1e-300) > hi2 / max(lo2, 1e-300)

    def test_helmholtz_requires_positive_sigma(self):
        with pytest.raises(ValueError):
            shifted_helmholtz2d(6, sigma=0.0)

    def test_helmholtz_sigma_dominates(self, rng):
        from repro.solvers.cg import cg
        b = rng.standard_normal(49)
        heavy = cg(shifted_helmholtz2d(6, sigma=100.0), b).iterations
        light = cg(shifted_helmholtz2d(6, sigma=0.01), b, max_iterations=5000).iterations
        assert heavy < light


class TestGraphGenerators:
    def test_circuit_minimum_size(self):
        with pytest.raises(ValueError):
            circuit_network(3)

    def test_circuit_leak_controls_conditioning(self, rng):
        from repro.solvers.cg import cg
        b = rng.standard_normal(300)
        tight = cg(circuit_network(300, leak=1e-4, seed=2), b, max_iterations=20000)
        loose = cg(circuit_network(300, leak=1.0, seed=2), b, max_iterations=20000)
        assert loose.iterations < tight.iterations

    def test_economic_clique_structure(self):
        a = economic_network(64, clique_size=8, seed=0)
        # Within the first clique every pair is connected.
        d = a.to_dense()
        block = d[:8, :8]
        assert np.all(block[np.triu_indices(8, 1)] != 0)

    def test_economic_clique_validation(self):
        with pytest.raises(ValueError):
            economic_network(32, clique_size=1)


class TestOptimizationGenerators:
    def test_bound_active_fraction_range(self):
        with pytest.raises(ValueError):
            bound_constrained_hessian(6, active_fraction=1.5)

    def test_bound_barrier_on_active_set(self):
        a = bound_constrained_hessian(
            10, active_fraction=0.5, barrier=100.0, seed=0
        )
        base = poisson2d(10)
        extra = a.diagonal() - base.diagonal()
        active = extra > 0
        assert 0.2 < active.mean() < 0.8
        assert np.all(extra[active] > 40.0)

    def test_minsurf_coefficients_bounded(self):
        a = minimal_surface_hessian(10, seed=1)
        offdiag = a.data[a.row_ids() != a.indices]
        assert np.all(np.abs(offdiag) <= 1.0 + 1e-12)
