"""Unit tests for the 72-case suite registry."""

import numpy as np
import pytest

from repro.collection.suite import MatrixCase, case_names, get_case, suite72
from repro.sparse.validate import check_spd_sample, require_symmetric


class TestRegistry:
    def test_has_72_cases(self):
        assert len(suite72()) == 72

    def test_ids_are_table1_rows(self):
        assert [c.case_id for c in suite72()] == list(range(1, 73))

    def test_names_unique_and_marked_synthetic(self):
        names = case_names()
        assert len(set(names)) == 72
        assert all(n.endswith("-syn") for n in names)

    def test_get_case_by_id_and_name(self):
        c = get_case(5)
        assert c.case_id == 5
        assert get_case(c.name) is c
        assert get_case(c.name.replace("-syn", "")) is c

    def test_get_case_invalid(self):
        with pytest.raises(KeyError):
            get_case(0)
        with pytest.raises(KeyError):
            get_case("nonexistent")

    def test_paper_metadata_sane(self):
        for c in suite72():
            assert c.paper.rows > 0
            assert c.paper.nnz >= c.paper.rows
            assert c.paper.fsai_iters > 0
            assert c.paper.full_pct_nnz >= 0

    def test_paper_nnz_ordering_roughly_decreasing(self):
        # Table 1 is sorted by nnz descending.
        nnz = [c.paper.nnz for c in suite72()]
        assert nnz == sorted(nnz, reverse=True)

    def test_domains_cover_paper_variety(self):
        domains = {c.domain for c in suite72()}
        for expected in (
            "Structural", "CFD", "Electromagnetics", "Thermal",
            "Optimization", "Circuit Simulation", "Acoustics", "Materials",
            "Economic", "2D/3D",
        ):
            assert expected in domains

    def test_str(self):
        assert "shipsec5-syn" in str(get_case(1))


class TestBuild:
    @pytest.mark.parametrize("cid", [1, 12, 21, 28, 33, 46, 59, 72])
    def test_representative_cases_are_spd(self, cid):
        a = get_case(cid).build()
        require_symmetric(a, 1e-9)
        check_spd_sample(a, n_probes=4)

    def test_build_deterministic(self):
        a = get_case(17).build()
        b = get_case(17).build()
        assert np.allclose(a.data, b.data)

    def test_sizes_are_scaled_down(self):
        for c in suite72():
            a_rows = c.build().n_rows
            assert 100 <= a_rows <= 6000
            assert a_rows < c.paper.rows

    def test_unknown_generator_raises(self):
        from repro.errors import ConfigurationError

        bad = MatrixCase(
            case_id=99, name="bad", domain="X", generator="nope",
            params=(), paper=get_case(1).paper,
        )
        with pytest.raises(ConfigurationError):
            bad.build()
