"""Unit tests for repro.collection.stats."""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.collection.stats import matrix_stats, suite_report
from repro.collection.suite import get_case
from repro.sparse.construct import csr_from_dense, csr_identity


class TestMatrixStats:
    def test_poisson_values(self):
        a = poisson2d(8)
        st = matrix_stats(a)
        assert st.n == 64
        assert st.nnz == a.nnz
        assert st.bandwidth == 8
        assert st.max_row_nnz == 5
        assert st.density == pytest.approx(a.nnz / 64**2)
        # Interior rows: 4 / (4*1) = 1; exactly diagonally semi-dominant.
        assert st.diag_dominance >= 1.0

    def test_identity(self):
        st = matrix_stats(csr_identity(5))
        assert st.bandwidth == 0
        assert st.diag_dominance == np.inf
        assert st.gershgorin_cond_bound == pytest.approx(1.0)

    def test_gershgorin_condition_bound(self):
        a = csr_from_dense(np.diag([1.0, 10.0]))
        st = matrix_stats(a)
        assert st.gershgorin_cond_bound == pytest.approx(10.0)

    def test_indefinite_enclosure_gives_inf_bound(self):
        a = csr_from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert matrix_stats(a).gershgorin_cond_bound == np.inf

    def test_dominance_detects_weak_diagonal(self):
        a = csr_from_dense(np.array([[1.0, 4.0], [4.0, 1.0]]))
        assert matrix_stats(a).diag_dominance == pytest.approx(0.25)


class TestSuiteReport:
    def test_subset_rows(self):
        text = suite_report([get_case(52), get_case(65)])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "Muu-syn" in text and "fv3-syn" in text

    def test_header_columns(self):
        text = suite_report([get_case(52)])
        assert "gersh cond<=" in text.splitlines()[0]
        assert "paper it" in text.splitlines()[0]
