"""Tests for package-level plumbing: errors, typing helpers, version, CLI
module entry point."""

import numpy as np
import pytest

import repro
from repro._typing import as_index_array, as_value_array
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    MatrixFormatError,
    NotSPDError,
    NotSymmetricError,
    PatternError,
    ReproError,
    ShapeError,
)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            ShapeError, PatternError, NotSymmetricError, NotSPDError,
            ConvergenceError, MatrixFormatError, ConfigurationError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_error_compat(self):
        # Callers may catch ValueError for input-validation classes.
        for exc in (ShapeError, PatternError, ConfigurationError):
            assert issubclass(exc, ValueError)

    def test_convergence_error_payload(self):
        e = ConvergenceError("slow", iterations=10, residual=0.5)
        assert e.iterations == 10
        assert e.residual == 0.5
        assert isinstance(e, RuntimeError)

    def test_single_except_catches_all(self):
        with pytest.raises(ReproError):
            raise NotSPDError("nope")


class TestTypingHelpers:
    def test_as_value_array_converts(self):
        out = as_value_array([1, 2, 3])
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_as_value_array_no_copy_when_possible(self):
        src = np.zeros(4, dtype=np.float64)
        out = as_value_array(src)
        assert out is src or np.shares_memory(out, src)

    def test_as_value_array_copy_flag(self):
        src = np.zeros(4, dtype=np.float64)
        out = as_value_array(src, copy=True)
        assert not np.shares_memory(out, src)

    def test_as_index_array(self):
        out = as_index_array([1, 2])
        assert out.dtype == np.int64


class TestVersion:
    def test_exposed(self):
        assert repro.__version__
        assert repro.__version__.count(".") == 2

    def test_matches_module(self):
        from repro.version import __version__
        assert repro.__version__ == __version__


class TestMainModule:
    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-m", "repro", "suite"],
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0
        assert "shipsec5-syn" in out.stdout
