"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.collection.generators.fd import poisson2d
from repro.sparse.construct import csr_from_dense


@pytest.fixture
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def placement64():
    """Line-aligned placement for a 64-byte-line machine."""
    return ArrayPlacement.aligned(64)


@pytest.fixture
def placement256():
    """Line-aligned placement for a 256-byte-line machine (A64FX)."""
    return ArrayPlacement.aligned(256)


@pytest.fixture
def poisson16():
    """Small 2D Poisson matrix (n = 256) — the workhorse SPD test case."""
    return poisson2d(16)


@pytest.fixture
def small_spd():
    """Dense-backed 6x6 SPD CSR matrix with a known inverse structure."""
    rng = np.random.default_rng(7)
    m = rng.standard_normal((6, 6))
    return csr_from_dense(m @ m.T + 6.0 * np.eye(6))


def random_spd_dense(n: int, seed: int = 0, *, density: float = 1.0) -> np.ndarray:
    """Dense random SPD matrix, optionally sparsified while staying SPD.

    Sparsification zeroes symmetric off-diagonal pairs and compensates on
    the diagonal (diagonal dominance), so the result remains SPD for any
    mask — used by property-based tests to build arbitrary SPD sparsity.
    """
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    if density < 1.0:
        mask = rng.uniform(size=(n, n)) < density
        mask = np.triu(mask, 1)
        keep = mask | mask.T | np.eye(n, dtype=bool)
        removed = a * ~keep
        a = a * keep
        a += np.diag(np.abs(removed).sum(axis=1) + 1e-6)
    return a
