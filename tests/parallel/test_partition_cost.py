"""Unit tests for repro.parallel (partitions + parallel roofline)."""

import numpy as np
import pytest

from repro.arch.presets import SKYLAKE
from repro.collection.generators.fd import poisson2d
from repro.errors import ConfigurationError, ShapeError
from repro.parallel.cost import (
    parallel_speedup_curve,
    parallel_spmv_cost,
    simulate_parallel_l1_misses,
)
from repro.parallel.partition import RowPartition
from repro.sparse.pattern import Pattern


@pytest.fixture(scope="module")
def a():
    return poisson2d(30)  # n=900


class TestRowPartition:
    def test_by_rows_balanced(self):
        p = RowPartition.by_rows(10, 3)
        assert p.n_parts == 3
        assert p.n_rows == 10
        assert list(p.rows_per_block()) in ([3, 4, 3], [4, 3, 3], [3, 3, 4])

    def test_by_rows_more_parts_than_rows(self):
        p = RowPartition.by_rows(2, 4)
        assert p.n_parts == 4
        assert sum(p.rows_per_block()) == 2

    def test_by_nnz_balances_skewed(self):
        # Arrowhead pattern: the first row is dense, the rest diagonal.
        n = 64
        rows = [list(range(n))] + [[i] for i in range(1, n)]
        skewed = Pattern.from_rows(n, n, rows)
        by_rows = RowPartition.by_rows(n, 4)
        by_nnz = RowPartition.by_nnz(skewed, 4)
        assert by_nnz.imbalance(skewed) < by_rows.imbalance(skewed)
        # The dense (unsplittable) row sits alone in its block.
        assert by_nnz.rows_per_block()[0] == 1

    def test_nnz_per_block_sums(self, a):
        p = RowPartition.by_nnz(a.pattern, 5)
        assert p.nnz_per_block(a.pattern).sum() == a.nnz

    def test_block_queries(self, a):
        p = RowPartition.by_rows(a.n_rows, 4)
        lo, hi = p.block(1)
        assert p.block_of_row(lo) == 1
        assert p.block_of_row(hi - 1) == 1
        with pytest.raises(IndexError):
            p.block(4)
        with pytest.raises(IndexError):
            p.block_of_row(a.n_rows)

    def test_restrict_pattern(self, a):
        p = RowPartition.by_rows(a.n_rows, 3)
        sub = p.restrict_pattern(a.pattern, 1)
        lo, hi = p.block(1)
        assert sub.n_rows == hi - lo
        assert sub.nnz == p.nnz_per_block(a.pattern)[1]
        assert np.array_equal(sub.row(0), a.pattern.row(lo))

    def test_shape_mismatch(self, a):
        p = RowPartition.by_rows(10, 2)
        with pytest.raises(ShapeError):
            p.nnz_per_block(a.pattern)

    def test_invalid_boundaries(self):
        with pytest.raises(ConfigurationError):
            RowPartition(np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            RowPartition(np.array([0, 3, 2]))
        with pytest.raises(ConfigurationError):
            RowPartition.by_rows(10, 0)

    def test_imbalance_perfect_is_one(self):
        pat = Pattern.from_rows(4, 4, [[0], [1], [2], [3]])
        p = RowPartition.by_rows(4, 2)
        assert p.imbalance(pat) == pytest.approx(1.0)


class TestParallelCost:
    def test_single_thread_positive(self, a):
        c = parallel_spmv_cost(a.pattern, SKYLAKE, 1, cache_scale=0.125)
        assert c.seconds > 0
        assert c.n_threads == 1

    def test_speedup_monotone_until_saturation(self, a):
        curve = parallel_speedup_curve(
            a.pattern, SKYLAKE, (1, 2, 4, 8, 16), cache_scale=0.125
        )
        times = [c.seconds for c in curve]
        assert all(t2 <= t1 + 1e-15 for t1, t2 in zip(times, times[1:]))

    def test_memory_bound_at_scale(self, a):
        c = parallel_spmv_cost(a.pattern, SKYLAKE, 48, cache_scale=0.125)
        assert c.bound == "memory"  # SpMV saturates DRAM on full node

    def test_compute_bound_single_thread(self, a):
        c = parallel_spmv_cost(a.pattern, SKYLAKE, 1, cache_scale=0.125)
        assert c.bound == "compute"

    def test_thread_validation(self, a):
        with pytest.raises(ConfigurationError):
            parallel_spmv_cost(a.pattern, SKYLAKE, 0)
        with pytest.raises(ConfigurationError):
            parallel_spmv_cost(a.pattern, SKYLAKE, SKYLAKE.cores + 1)

    def test_partition_mismatch(self, a):
        bad = RowPartition.by_rows(a.n_rows, 3)
        with pytest.raises(ConfigurationError):
            parallel_spmv_cost(a.pattern, SKYLAKE, 4, partition=bad)

    def test_private_l1_misses_cover_all_threads(self, a):
        part = RowPartition.by_nnz(a.pattern, 4)
        misses = simulate_parallel_l1_misses(
            a.pattern, SKYLAKE, part, cache_scale=0.125
        )
        assert len(misses) == 4
        assert all(m >= 0 for m in misses)
        # Private caches can't have fewer total compulsory misses than the
        # distinct lines each block touches independently.
        assert sum(misses) > 0

    def test_empty_block_zero_misses(self):
        pat = Pattern.from_rows(2, 2, [[0], [1]])
        part = RowPartition(np.array([0, 2, 2, 2]))
        misses = simulate_parallel_l1_misses(pat, SKYLAKE, part)
        assert misses[1] == 0 and misses[2] == 0


class TestCaseCostOrdering:
    """Static LPT cost model used by the campaign orchestrator."""

    def test_estimates_positive_and_monotone_in_setups(self):
        from repro.collection.suite import suite72
        from repro.parallel.cost import estimate_case_seconds

        for case in suite72():
            lo = estimate_case_seconds(case, n_setups=1)
            hi = estimate_case_seconds(case, n_setups=9)
            assert 0.0 < lo < hi

    def test_order_is_lpt_and_deterministic(self):
        from repro.collection.suite import suite72
        from repro.parallel.cost import (
            estimate_case_seconds,
            order_cases_by_cost,
        )

        cases = suite72()
        ordered = order_cases_by_cost(cases)
        costs = [estimate_case_seconds(c) for c in ordered]
        assert costs == sorted(costs, reverse=True)
        assert {c.case_id for c in ordered} == {c.case_id for c in cases}
        # Ties (equal estimates) break by ascending case id.
        for a, b in zip(ordered, ordered[1:]):
            if estimate_case_seconds(a) == estimate_case_seconds(b):
                assert a.case_id < b.case_id
        assert order_cases_by_cost(list(reversed(cases))) == ordered
