"""min_over_repetitions: paper §7.1 protocol + fastest-result pairing."""

import time

import pytest

from repro.perf.timer import min_over_repetitions


class TestMinOverRepetitions:
    def test_returns_min_time(self):
        delays = iter([0.02, 0.002, 0.01])

        def fn():
            time.sleep(next(delays))
            return "x"

        seconds, _ = min_over_repetitions(fn, repetitions=3)
        assert 0.002 <= seconds < 0.01

    def test_result_comes_from_fastest_repetition(self):
        """ISSUE 3 satellite: the (time, result) pair must be consistent."""
        calls = []

        def fn():
            i = len(calls)
            calls.append(i)
            time.sleep([0.02, 0.001, 0.01][i])
            return f"result-{i}"

        seconds, result = min_over_repetitions(fn, repetitions=3)
        assert result == "result-1"  # the 1 ms repetition, not the last one
        assert seconds < 0.01

    def test_single_repetition(self):
        seconds, result = min_over_repetitions(lambda: 42, repetitions=1)
        assert result == 42
        assert seconds >= 0.0

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            min_over_repetitions(lambda: None, repetitions=0)

    def test_runs_exactly_n_times(self):
        calls = []
        min_over_repetitions(lambda: calls.append(1), repetitions=4)
        assert len(calls) == 4
