"""CI perf-regression gate: comparisons, tolerance resolution, CLI."""

import json

import pytest

from repro.perf.bench_gate import (
    DEFAULT_TOLERANCE,
    TOLERANCE_ENV,
    compare_records,
    main,
    resolve_tolerance,
)
from repro.perf.regression import RegressionComponent, RegressionRecord


def _record(speedups, label="bench"):
    """Record with one component per (name, speedup); reference is 1 s."""
    components = [
        RegressionComponent(
            name=name, reference_seconds=1.0, optimized_seconds=1.0 / s,
            detail="synthetic",
        )
        for name, s in speedups.items()
    ]
    return RegressionRecord(label=label, scope="unit", components=components)


BASELINE = {"stack_distances": 10.0, "fsai_setup": 4.0, "cache_replay": 1.0}


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(_record(BASELINE), _record(BASELINE))
        assert report.ok
        assert [v.name for v in report.verdicts] == [
            "stack_distances", "fsai_setup", "cache_replay", "COMPOSITE",
        ]
        assert all(v.ratio == pytest.approx(1.0) for v in report.verdicts)

    def test_small_regression_within_tolerance_passes(self):
        current = dict(BASELINE, stack_distances=8.5)  # 0.85x of baseline
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok

    def test_component_below_tolerance_fails(self):
        current = dict(BASELINE, stack_distances=7.0)  # 0.70x < 0.8 default
        report = compare_records(_record(BASELINE), _record(current))
        assert not report.ok
        bad = {v.name for v in report.verdicts if not v.ok}
        assert "stack_distances" in bad
        assert "GATE FAILED" in "\n".join(report.lines())

    def test_injected_slowdown_trips_composite_too(self):
        # A 4x slowdown of the wall-time-dominant component (cache_replay
        # spends 1 s optimized vs 0.35 s for the rest) sinks the composite.
        current = dict(BASELINE, cache_replay=BASELINE["cache_replay"] / 4)
        report = compare_records(_record(BASELINE), _record(current))
        composite = report.verdicts[-1]
        assert composite.name == "COMPOSITE" and not composite.ok

    def test_missing_component_fails(self):
        current = {k: v for k, v in BASELINE.items() if k != "fsai_setup"}
        report = compare_records(_record(BASELINE), _record(current))
        assert not report.ok
        assert report.missing == ["fsai_setup"]
        assert "missing" in "\n".join(report.lines())

    def test_extra_current_component_is_not_judged(self):
        # A fast new bench changes the composite only mildly and gets no
        # per-component verdict of its own.
        current = dict(BASELINE, brand_new=2.0)
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok
        assert "brand_new" not in {v.name for v in report.verdicts}

    def test_improvement_always_passes(self):
        current = {k: 2 * v for k, v in BASELINE.items()}
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok


class TestToleranceResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert resolve_tolerance() == DEFAULT_TOLERANCE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.5")
        assert resolve_tolerance() == 0.5

    def test_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.5")
        assert resolve_tolerance(0.95) == 0.95

    def test_must_be_positive(self):
        with pytest.raises(ValueError):
            resolve_tolerance(0.0)
        with pytest.raises(ValueError):
            resolve_tolerance(-1.0)

    def test_env_tightens_the_gate(self, monkeypatch):
        current = dict(BASELINE, stack_distances=9.0)  # 0.9x of baseline
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert compare_records(_record(BASELINE), _record(current)).ok
        monkeypatch.setenv(TOLERANCE_ENV, "0.95")
        assert not compare_records(_record(BASELINE), _record(current)).ok


class TestCli:
    def _write(self, path, speedups):
        path.write_text(json.dumps(_record(speedups).to_dict(), indent=2))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(tmp_path / "cur.json", BASELINE)
        assert main([base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(
            tmp_path / "cur.json", dict(BASELINE, fsai_setup=1.0)
        )
        assert main([base, cur]) == 1
        out = capsys.readouterr().out
        assert "FAIL fsai_setup" in out and "GATE FAILED" in out

    def test_tolerance_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(
            tmp_path / "cur.json", dict(BASELINE, stack_distances=7.0)
        )
        assert main([base, cur]) == 1  # 0.70x fails the default 0.8
        assert main([base, cur, "--tolerance", "0.6"]) == 0

    def test_gate_works_on_committed_artifact_shape(self, tmp_path):
        """The real BENCH_engine.json (with trace_summary) must load."""
        from pathlib import Path

        artifact = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        if not artifact.exists():
            pytest.skip("no committed BENCH_engine.json")
        record = RegressionRecord.load(artifact)
        report = compare_records(record, record)
        assert report.ok
