"""CI perf-regression gate: comparisons, tolerance resolution, CLI."""

import json

import pytest

from repro.perf.bench_gate import (
    DEFAULT_TOLERANCE,
    TOLERANCE_ENV,
    compare_records,
    main,
    resolve_tolerance,
)
from repro.perf.regression import RegressionComponent, RegressionRecord


def _record(speedups, label="bench"):
    """Record with one component per (name, speedup); reference is 1 s."""
    components = [
        RegressionComponent(
            name=name, reference_seconds=1.0, optimized_seconds=1.0 / s,
            detail="synthetic",
        )
        for name, s in speedups.items()
    ]
    return RegressionRecord(label=label, scope="unit", components=components)


BASELINE = {"stack_distances": 10.0, "fsai_setup": 4.0, "cache_replay": 1.0}


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(_record(BASELINE), _record(BASELINE))
        assert report.ok
        assert [v.name for v in report.verdicts] == [
            "stack_distances", "fsai_setup", "cache_replay", "COMPOSITE",
        ]
        assert all(v.ratio == pytest.approx(1.0) for v in report.verdicts)

    def test_small_regression_within_tolerance_passes(self):
        current = dict(BASELINE, stack_distances=8.5)  # 0.85x of baseline
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok

    def test_component_below_tolerance_fails(self):
        current = dict(BASELINE, stack_distances=7.0)  # 0.70x < 0.8 default
        report = compare_records(_record(BASELINE), _record(current))
        assert not report.ok
        bad = {v.name for v in report.verdicts if not v.ok}
        assert "stack_distances" in bad
        assert "GATE FAILED" in "\n".join(report.lines())

    def test_injected_slowdown_trips_composite_too(self):
        # A 4x slowdown of the wall-time-dominant component (cache_replay
        # spends 1 s optimized vs 0.35 s for the rest) sinks the composite.
        current = dict(BASELINE, cache_replay=BASELINE["cache_replay"] / 4)
        report = compare_records(_record(BASELINE), _record(current))
        composite = report.verdicts[-1]
        assert composite.name == "COMPOSITE" and not composite.ok

    def test_missing_component_fails(self):
        current = {k: v for k, v in BASELINE.items() if k != "fsai_setup"}
        report = compare_records(_record(BASELINE), _record(current))
        assert not report.ok
        assert report.missing == ["fsai_setup"]
        assert "missing" in "\n".join(report.lines())

    def test_extra_current_component_is_not_judged(self):
        # A fast new bench changes the composite only mildly and gets no
        # per-component verdict of its own.
        current = dict(BASELINE, brand_new=2.0)
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok
        assert "brand_new" not in {v.name for v in report.verdicts}

    def test_improvement_always_passes(self):
        current = {k: 2 * v for k, v in BASELINE.items()}
        report = compare_records(_record(BASELINE), _record(current))
        assert report.ok


def _info_record(speedup, informational):
    # The dominant armed component pins the composite, so the tests
    # below exercise the per-component verdict in isolation.
    return RegressionRecord(label="bench", scope="unit", components=[
        RegressionComponent(
            name="pcg_iteration", reference_seconds=100.0,
            optimized_seconds=10.0, detail="synthetic",
        ),
        RegressionComponent(
            name="serve_throughput_mp", reference_seconds=1.0,
            optimized_seconds=1.0 / speedup, detail="synthetic",
            informational=informational,
        ),
    ])


class TestInformationalComponents:
    """A component whose gate is unarmed on the recording host (e.g. the
    multi-process serving throughput on a small machine) is recorded but
    must never be judged as a regression."""

    @staticmethod
    def _mp_verdict(report):
        return next(
            v for v in report.verdicts if v.name == "serve_throughput_mp"
        )

    def test_informational_regression_passes(self):
        report = compare_records(
            _info_record(4.0, True), _info_record(0.5, True)
        )
        verdict = self._mp_verdict(report)
        assert verdict.ok and verdict.informational
        assert report.ok
        assert "info" in verdict.line()

    def test_flag_from_either_record_suffices(self):
        # Baseline from a big host (armed), current from a small one —
        # and the other way around; neither pairing may trip the gate.
        for base_flag, cur_flag in [(True, False), (False, True)]:
            report = compare_records(
                _info_record(4.0, base_flag), _info_record(0.5, cur_flag)
            )
            assert report.ok and self._mp_verdict(report).informational

    def test_armed_component_still_fails(self):
        report = compare_records(
            _info_record(4.0, False), _info_record(0.5, False)
        )
        assert not report.ok
        assert not self._mp_verdict(report).informational

    def test_flag_round_trips_through_json(self):
        record = _info_record(4.0, True)
        clone = RegressionRecord.from_dict(record.to_dict())
        assert clone.components[1].informational is True
        assert "(informational)" in "\n".join(clone.summary_lines())
        # And the report JSON carries the verdict's flag for CI artifacts.
        report = compare_records(record, clone)
        flags = {
            v["name"]: v["informational"]
            for v in report.to_dict()["verdicts"]
        }
        assert flags["serve_throughput_mp"] is True
        assert flags["pcg_iteration"] is False

    def test_legacy_payload_defaults_to_armed(self):
        payload = _record(BASELINE).to_dict()
        for c in payload["components"]:
            del c["informational"]
        clone = RegressionRecord.from_dict(payload)
        assert not any(c.informational for c in clone.components)

    def test_informational_excluded_from_composite(self):
        # 100 s -> 10 s armed; the informational pair (1 s -> 2 s) must
        # not dilute the 10x composite claim.
        record = _info_record(0.5, True)
        assert record.reference_total == pytest.approx(100.0)
        assert record.optimized_total == pytest.approx(10.0)
        assert record.speedup == pytest.approx(10.0)
        # Armed, the same timings do count.
        armed = _info_record(0.5, False)
        assert armed.speedup == pytest.approx(101.0 / 12.0)


class TestToleranceResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert resolve_tolerance() == DEFAULT_TOLERANCE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.5")
        assert resolve_tolerance() == 0.5

    def test_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(TOLERANCE_ENV, "0.5")
        assert resolve_tolerance(0.95) == 0.95

    def test_must_be_positive(self):
        with pytest.raises(ValueError):
            resolve_tolerance(0.0)
        with pytest.raises(ValueError):
            resolve_tolerance(-1.0)

    def test_env_tightens_the_gate(self, monkeypatch):
        current = dict(BASELINE, stack_distances=9.0)  # 0.9x of baseline
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        assert compare_records(_record(BASELINE), _record(current)).ok
        monkeypatch.setenv(TOLERANCE_ENV, "0.95")
        assert not compare_records(_record(BASELINE), _record(current)).ok


class TestCli:
    def _write(self, path, speedups):
        path.write_text(json.dumps(_record(speedups).to_dict(), indent=2))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(tmp_path / "cur.json", BASELINE)
        assert main([base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(
            tmp_path / "cur.json", dict(BASELINE, fsai_setup=1.0)
        )
        assert main([base, cur]) == 1
        out = capsys.readouterr().out
        assert "FAIL fsai_setup" in out and "GATE FAILED" in out

    def test_tolerance_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TOLERANCE_ENV, raising=False)
        base = self._write(tmp_path / "base.json", BASELINE)
        cur = self._write(
            tmp_path / "cur.json", dict(BASELINE, stack_distances=7.0)
        )
        assert main([base, cur]) == 1  # 0.70x fails the default 0.8
        assert main([base, cur, "--tolerance", "0.6"]) == 0

    def test_gate_works_on_committed_artifact_shape(self, tmp_path):
        """The real BENCH_engine.json (with trace_summary) must load."""
        from pathlib import Path

        artifact = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        if not artifact.exists():
            pytest.skip("no committed BENCH_engine.json")
        record = RegressionRecord.load(artifact)
        report = compare_records(record, record)
        assert report.ok
