"""Unit tests for repro.perf (cost model, metrics, timer)."""

import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.presets import A64FX, SKYLAKE
from repro.collection.generators.fd import poisson2d
from repro.errors import ConfigurationError
from repro.fsai.extended import setup_fsai, setup_fsaie_full
from repro.perf.costmodel import CostModel, KernelCost, scale_caches
from repro.perf.metrics import (
    ImprovementStats,
    gflops_of_application,
    improvement_pct,
    summarize_improvements,
)
from repro.perf.timer import min_over_repetitions


@pytest.fixture(scope="module")
def a():
    return poisson2d(20)


@pytest.fixture(scope="module")
def model():
    return CostModel(SKYLAKE, cache_scale=0.125)


class TestScaleCaches:
    def test_identity_scale(self):
        assert scale_caches(SKYLAKE, 1.0) is SKYLAKE

    def test_shrinks_capacity(self):
        small = scale_caches(SKYLAKE, 0.25)
        assert small.l1.size_bytes == SKYLAKE.l1.size_bytes // 4
        assert small.line_bytes == SKYLAKE.line_bytes  # line never scaled
        assert small.l1.associativity == SKYLAKE.l1.associativity

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            scale_caches(SKYLAKE, 0.0)
        with pytest.raises(ConfigurationError):
            scale_caches(SKYLAKE, 2.0)

    def test_minimum_one_set(self):
        tiny = scale_caches(SKYLAKE, 1e-9)
        assert all(lvl.n_sets >= 1 for lvl in tiny.cache_levels)


class TestKernelCost:
    def test_gflops(self):
        c = KernelCost(flops=2_000_000, bytes_streamed=0, bytes_x_misses=0, seconds=1e-3)
        assert c.gflops() == pytest.approx(2.0)

    def test_zero_seconds(self):
        assert KernelCost(1, 1, 1, 0.0).gflops() == 0.0

    def test_total_bytes(self):
        assert KernelCost(0, 10, 5, 1.0).total_bytes == 15


class TestCostModel:
    def test_spmv_cost_positive(self, a, model):
        c = model.spmv_cost(a.pattern)
        assert c.seconds > 0
        assert c.flops == 2 * a.nnz

    def test_more_nnz_costs_more(self, a, model):
        base = setup_fsai(a)
        ext = setup_fsaie_full(a, ArrayPlacement.aligned(64), filter_value=0.0)
        c_base = model.fsai_application_cost(base.application.g_pattern)
        c_ext = model.fsai_application_cost(
            ext.application.g_pattern, ext.application.gt_pattern
        )
        assert c_ext.seconds > c_base.seconds
        assert c_ext.flops > c_base.flops

    def test_extension_cost_increase_is_sublinear_in_nnz(self, a, model):
        """The paper's §4 economics: +X% entries => much less than +X% time,
        because the added entries hit cached lines."""
        base = setup_fsai(a)
        ext = setup_fsaie_full(a, ArrayPlacement.aligned(64), filter_value=0.0)
        c_base = model.fsai_application_cost(base.application.g_pattern)
        c_ext = model.fsai_application_cost(
            ext.application.g_pattern, ext.application.gt_pattern
        )
        nnz_ratio = (
            (ext.application.g.nnz + ext.application.gt.nnz)
            / (base.application.g.nnz + base.application.gt.nnz)
        )
        time_ratio = c_ext.seconds / c_base.seconds
        assert time_ratio < nnz_ratio

    def test_x_misses_override(self, a, model):
        free = model.spmv_cost(a.pattern, x_misses=0)
        expensive = model.spmv_cost(a.pattern, x_misses=10_000)
        assert expensive.seconds > free.seconds

    def test_iteration_cost_components(self, a, model):
        setup = setup_fsai(a)
        it = model.iteration_cost(a, setup)
        assert it.seconds == pytest.approx(
            it.spmv_a.seconds + it.precond.seconds + it.vector_seconds
        )
        plain = model.iteration_cost(a, None)
        assert plain.precond.seconds == 0.0

    def test_solve_seconds_linear_in_iterations(self, a, model):
        setup = setup_fsai(a)
        assert model.solve_seconds(a, setup, 10) == pytest.approx(
            10 * model.iteration_cost(a, setup).seconds
        )

    def test_setup_seconds_ordering(self, a, model):
        base = setup_fsai(a)
        full = setup_fsaie_full(a, ArrayPlacement.aligned(64))
        assert model.setup_seconds(full) > model.setup_seconds(base)

    def test_a64fx_has_higher_bandwidth_effect(self, a):
        m_skx = CostModel(SKYLAKE)
        m_a64 = CostModel(A64FX)
        c_skx = m_skx.spmv_cost(a.pattern)
        c_a64 = m_a64.spmv_cost(a.pattern)
        assert c_a64.seconds < c_skx.seconds  # HBM wins on streamed bytes

    def test_repr(self, model):
        assert "skylake" in repr(model)


class TestMetrics:
    def test_improvement_pct(self):
        assert improvement_pct(2.0, 1.0) == pytest.approx(50.0)
        assert improvement_pct(1.0, 2.0) == pytest.approx(-100.0)
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)

    def test_gflops_of_application(self):
        c = KernelCost(flops=4e9, bytes_streamed=0, bytes_x_misses=0, seconds=1.0)
        assert gflops_of_application(c) == pytest.approx(4.0)

    def test_summary(self):
        s = summarize_improvements([10, 20, 30], [5, -15, 25])
        assert s.avg_iterations == pytest.approx(20.0)
        assert s.avg_time == pytest.approx(5.0)
        assert s.highest_improvement == 25.0
        assert s.highest_degradation == -15.0
        assert s.count == 3

    def test_summary_no_degradation_clamps_zero(self):
        s = summarize_improvements([1.0], [10.0])
        assert s.highest_degradation == 0.0

    def test_summary_validates(self):
        with pytest.raises(ValueError):
            summarize_improvements([], [])
        with pytest.raises(ValueError):
            summarize_improvements([1.0], [1.0, 2.0])

    def test_stats_row(self):
        s = ImprovementStats(1, 2, 3, -4, 2, 1)
        assert s.row() == (1, 2, 3, -4)


class TestTimer:
    def test_returns_min_and_result(self):
        calls = []

        def fn():
            calls.append(1)
            return "out"

        t, result = min_over_repetitions(fn, repetitions=3)
        assert result == "out"
        assert len(calls) == 3
        assert t >= 0

    def test_validates_repetitions(self):
        with pytest.raises(ValueError):
            min_over_repetitions(lambda: None, repetitions=0)


class TestOrchestrationMetrics:
    def _metrics(self):
        from repro.perf.metrics import OrchestrationMetrics

        return OrchestrationMetrics(
            jobs=4, wall_seconds=8.0, cases_total=12, cases_completed=10,
            cases_skipped=2, failures=0, retries=1,
        )

    def test_throughput(self):
        m = self._metrics()
        assert m.cases_per_second == pytest.approx(10 / 8.0)
        zero = type(m)(jobs=1, wall_seconds=0.0, cases_total=0,
                       cases_completed=0, cases_skipped=0, failures=0,
                       retries=0)
        assert zero.cases_per_second == 0.0

    def test_round_trip(self):
        from repro.perf.metrics import OrchestrationMetrics

        m = self._metrics()
        assert OrchestrationMetrics.from_dict(m.to_dict()) == m

    def test_embeds_in_regression_record(self):
        from repro.perf.regression import RegressionComponent, RegressionRecord

        rec = RegressionRecord(
            label="nightly", scope="full campaign",
            components=[RegressionComponent("engine", 2.0, 1.0)],
            orchestration=self._metrics(),
        )
        back = RegressionRecord.from_dict(rec.to_dict())
        assert back.orchestration == self._metrics()
        # Records without the block stay loadable (old JSON files).
        bare = RegressionRecord(label="old", scope="quick", components=[])
        assert RegressionRecord.from_dict(bare.to_dict()).orchestration is None
