"""Unit tests for sparse triangular solves, level sets, and IC(0)."""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import NotSPDError, ShapeError
from repro.solvers.cg import cg, pcg
from repro.solvers.ichol import IncompleteCholeskyPreconditioner, ichol0
from repro.solvers.sptrsv import (
    level_schedule_stats,
    level_sets,
    sparse_backward_substitution,
    sparse_forward_substitution,
)
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern
from tests.conftest import random_spd_dense


@pytest.fixture
def lower(rng):
    d = np.tril(rng.standard_normal((8, 8)))
    np.fill_diagonal(d, np.abs(np.diag(d)) + 2.0)
    return csr_from_dense(d)


class TestTriangularSolves:
    def test_forward(self, lower, rng):
        b = rng.standard_normal(8)
        x = sparse_forward_substitution(lower, b)
        assert np.allclose(lower.to_dense() @ x, b)

    def test_backward(self, lower, rng):
        b = rng.standard_normal(8)
        x = sparse_backward_substitution(lower, b)
        assert np.allclose(lower.to_dense().T @ x, b)

    def test_roundtrip_is_normal_equations_solve(self, lower, rng):
        b = rng.standard_normal(8)
        y = sparse_forward_substitution(lower, b)
        z = sparse_backward_substitution(lower, y)
        ld = lower.to_dense()
        assert np.allclose(ld @ (ld.T @ z), b)

    def test_rejects_upper(self, lower):
        with pytest.raises(ShapeError):
            sparse_forward_substitution(lower.T, np.ones(8))

    def test_rejects_missing_diagonal(self):
        bad = csr_from_dense(np.array([[1.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(NotSPDError):
            sparse_forward_substitution(bad, np.ones(2))

    def test_shape_check(self, lower):
        with pytest.raises(ShapeError):
            sparse_forward_substitution(lower, np.ones(9))


class TestLevelSets:
    def test_diagonal_is_single_level(self):
        p = Pattern.identity(6)
        assert list(level_sets(p)) == [0] * 6
        assert level_schedule_stats(p) == (1, 6.0)

    def test_bidiagonal_is_fully_sequential(self):
        rows = [[0]] + [[i - 1, i] for i in range(1, 6)]
        p = Pattern.from_rows(6, 6, rows)
        assert list(level_sets(p)) == list(range(6))
        n_levels, avg = level_schedule_stats(p)
        assert n_levels == 6 and avg == 1.0

    def test_poisson_ic_levels_grow_with_grid(self):
        small = poisson2d(8).tril().pattern
        large = poisson2d(16).tril().pattern
        assert level_schedule_stats(large)[0] > level_schedule_stats(small)[0]

    def test_rejects_non_lower(self):
        with pytest.raises(ShapeError):
            level_sets(Pattern.identity(3).union(
                Pattern.from_coo(3, 3, np.array([0]), np.array([2]))
            ))


class TestIChol0:
    def test_exact_on_full_pattern(self):
        # Dense SPD: IC(0) on the full lower pattern IS Cholesky.
        d = random_spd_dense(7, seed=2)
        a = csr_from_dense(d)
        L = ichol0(a)
        assert np.allclose(L.to_dense(), np.linalg.cholesky(d), atol=1e-10)

    def test_pattern_preserved(self, poisson16):
        L = ichol0(poisson16)
        assert L.pattern == poisson16.tril().pattern

    def test_residual_small_on_pattern(self, poisson16):
        # L L^T matches A on the lower pattern of A (IC(0) property).
        L = ichol0(poisson16).to_dense()
        approx = L @ L.T
        dense = poisson16.to_dense()
        mask = np.tril(dense != 0)
        assert np.allclose(approx[mask], dense[mask], atol=1e-10)

    def test_breakdown_raises(self):
        # SPD but strongly non-diagonally-dominant after dropping fill:
        # force breakdown with a handcrafted indefinite restriction.
        d = np.array([
            [1.0, 0.0, 2.0],
            [0.0, 1.0, 2.0],
            [2.0, 2.0, 9.0],
        ])
        # This matrix is SPD? eigenvalues: check quickly — it is close to
        # singular; IC(0) == Cholesky here (full pattern), so use a truly
        # indefinite one to trigger the pivot error.
        d[2, 2] = 7.0  # makes it indefinite
        with pytest.raises(NotSPDError):
            ichol0(csr_from_dense(d))

    def test_shift_repairs_breakdown(self):
        d = np.array([
            [1.0, 0.0, 2.0],
            [0.0, 1.0, 2.0],
            [2.0, 2.0, 7.0],
        ])
        a = csr_from_dense(d)
        pre = IncompleteCholeskyPreconditioner(a)
        assert pre.shift > 0
        z = pre.apply(np.ones(3))
        assert np.all(np.isfinite(z))

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            ichol0(csr_from_dense(np.ones((2, 3))))


class TestICPreconditioner:
    def test_beats_plain_cg(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        plain = cg(poisson16, b)
        ic = pcg(
            poisson16, b,
            preconditioner=IncompleteCholeskyPreconditioner(poisson16),
        )
        assert ic.converged
        assert ic.iterations < plain.iterations

    def test_competitive_with_fsai_numerically(self, poisson16, rng):
        from repro.fsai.extended import setup_fsai

        b = rng.standard_normal(poisson16.n_rows)
        ic = pcg(
            poisson16, b,
            preconditioner=IncompleteCholeskyPreconditioner(poisson16),
        )
        fsai = pcg(
            poisson16, b, preconditioner=setup_fsai(poisson16).application
        )
        # §1's trade-off: implicit IC(0) is numerically at least as strong...
        assert ic.iterations <= fsai.iterations

    def test_parallel_levels_reported(self, poisson16):
        pre = IncompleteCholeskyPreconditioner(poisson16)
        n_levels, avg = pre.parallel_levels()
        assert n_levels > 1  # ...but its application serialises (§1)
        assert avg < poisson16.n_rows

    def test_flops(self, poisson16):
        pre = IncompleteCholeskyPreconditioner(poisson16)
        assert pre.flops_per_application() == 4 * pre.factor.nnz

    def test_apply_shape_check(self, poisson16):
        pre = IncompleteCholeskyPreconditioner(poisson16)
        with pytest.raises(ShapeError):
            pre.apply(np.ones(3))
