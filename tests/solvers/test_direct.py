"""Unit tests for repro.solvers.direct."""

import numpy as np
import pytest

from repro.errors import NotSPDError, ShapeError
from repro.solvers.direct import (
    cholesky_factor,
    solve_lower_triangular,
    solve_spd,
    solve_spd_batched,
    solve_upper_triangular,
)
from tests.conftest import random_spd_dense


class TestCholesky:
    def test_factorisation(self):
        a = random_spd_dense(8, seed=1)
        L = cholesky_factor(a)
        assert np.allclose(L @ L.T, a)
        assert np.allclose(L, np.tril(L))

    def test_matches_lapack(self):
        a = random_spd_dense(10, seed=2)
        assert np.allclose(cholesky_factor(a), np.linalg.cholesky(a))

    def test_rejects_indefinite(self):
        with pytest.raises(NotSPDError, match="pivot"):
            cholesky_factor(np.diag([1.0, -1.0]))

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            cholesky_factor(np.ones((2, 3)))

    def test_1x1(self):
        assert cholesky_factor(np.array([[4.0]]))[0, 0] == 2.0


class TestTriangularSolves:
    def test_forward(self, rng):
        L = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        assert np.allclose(L @ solve_lower_triangular(L, b), b)

    def test_backward(self, rng):
        U = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        assert np.allclose(U @ solve_upper_triangular(U, b), b)

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            solve_lower_triangular(np.eye(3), np.ones(2))
        with pytest.raises(ShapeError):
            solve_upper_triangular(np.eye(3), np.ones(2))

    def test_combined_solves_spd(self, rng):
        a = random_spd_dense(7, seed=3)
        b = rng.standard_normal(7)
        L = cholesky_factor(a)
        x = solve_upper_triangular(L.T, solve_lower_triangular(L, b))
        assert np.allclose(a @ x, b)


class TestSolveSPD:
    def test_solves(self, rng):
        a = random_spd_dense(9, seed=4)
        b = rng.standard_normal(9)
        assert np.allclose(a @ solve_spd(a, b), b)

    def test_empty(self):
        assert solve_spd(np.zeros((0, 0)), np.zeros(0)).shape == (0,)

    def test_indefinite_raises(self):
        with pytest.raises(NotSPDError):
            solve_spd(np.diag([1.0, -2.0]), np.ones(2))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            solve_spd(np.eye(3), np.ones(4))


class TestBatched:
    def test_mixed_sizes_order_preserved(self, rng):
        systems, rhs = [], []
        for k in (3, 7, 3, 5, 7, 1):
            systems.append(random_spd_dense(k, seed=k))
            rhs.append(rng.standard_normal(k))
        outs = solve_spd_batched(systems, rhs)
        for a, b, x in zip(systems, rhs, outs):
            assert np.allclose(a @ x, b, atol=1e-9)

    def test_matches_single(self, rng):
        a = random_spd_dense(6, seed=9)
        b = rng.standard_normal(6)
        batched = solve_spd_batched([a], [b])[0]
        assert np.allclose(batched, solve_spd(a, b))

    def test_empty_system_in_batch(self):
        outs = solve_spd_batched([np.zeros((0, 0))], [np.zeros(0)])
        assert outs[0].shape == (0,)

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            solve_spd_batched([np.eye(2)], [])

    def test_names_offending_system(self):
        good = random_spd_dense(3, seed=1)
        bad = np.diag([1.0, -1.0, 1.0])
        with pytest.raises(NotSPDError, match="system 1"):
            solve_spd_batched([good, bad], [np.ones(3), np.ones(3)])
