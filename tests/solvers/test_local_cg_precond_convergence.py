"""Unit tests for local_cg, preconditioners and convergence tracking."""

import numpy as np
import pytest

from repro.errors import NotSPDError, ShapeError
from repro.solvers.convergence import ConvergenceHistory, SolveResult
from repro.solvers.local_cg import (
    solve_spd_approximate,
    solve_spd_approximate_batched,
)
from repro.solvers.preconditioners import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
)
from repro.sparse.construct import csr_from_dense
from tests.conftest import random_spd_dense


class TestLocalCG:
    def test_converges_to_exact_with_budget(self, rng):
        a = random_spd_dense(10, seed=1)
        b = rng.standard_normal(10)
        x = solve_spd_approximate(a, b, rtol=1e-12, max_iterations=200)
        assert np.allclose(a @ x, b, atol=1e-6)

    def test_loose_tolerance_gives_magnitudes(self, rng):
        a = random_spd_dense(10, seed=2)
        b = rng.standard_normal(10)
        approx = solve_spd_approximate(a, b, rtol=1e-2, max_iterations=20)
        exact = np.linalg.solve(a, b)
        # Large entries must be approximated within a factor ~2.
        big = np.abs(exact) > 0.5 * np.abs(exact).max()
        assert np.all(np.abs(approx[big]) > 0.3 * np.abs(exact[big]))

    def test_zero_rhs(self):
        a = random_spd_dense(5)
        assert np.allclose(solve_spd_approximate(a, np.zeros(5)), 0.0)

    def test_never_raises_on_indefinite(self):
        # dq <= 0 path: returns the current iterate silently.
        a = np.diag([1.0, -1.0])
        out = solve_spd_approximate(a, np.array([1.0, 1.0]))
        assert out.shape == (2,)

    def test_empty(self):
        assert solve_spd_approximate(np.zeros((0, 0)), np.zeros(0)).shape == (0,)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            solve_spd_approximate(np.eye(3), np.ones(2))

    def test_batched_matches_single(self, rng):
        systems = [random_spd_dense(k, seed=k) for k in (4, 6, 4)]
        rhs = [rng.standard_normal(a.shape[0]) for a in systems]
        batched = solve_spd_approximate_batched(
            systems, rhs, rtol=1e-10, max_iterations=100
        )
        for a, b, x in zip(systems, rhs, batched):
            single = solve_spd_approximate(a, b, rtol=1e-10, max_iterations=100)
            assert np.allclose(x, single, atol=1e-6)

    def test_batched_length_mismatch(self):
        with pytest.raises(ShapeError):
            solve_spd_approximate_batched([np.eye(2)], [])

    def test_batched_empty_bucket(self):
        outs = solve_spd_approximate_batched([np.zeros((0, 0))], [np.zeros(0)])
        assert outs[0].shape == (0,)


class TestPreconditioners:
    def test_identity(self):
        p = IdentityPreconditioner(4)
        r = np.arange(4.0)
        z = p.apply(r)
        assert np.array_equal(z, r) and z is not r
        assert p.flops_per_application() == 0

    def test_identity_shape_check(self):
        with pytest.raises(ShapeError):
            IdentityPreconditioner(4).apply(np.ones(5))

    def test_jacobi(self):
        a = csr_from_dense(np.diag([2.0, 4.0]))
        p = JacobiPreconditioner(a)
        assert np.allclose(p.apply(np.array([2.0, 4.0])), [1.0, 1.0])
        assert p.flops_per_application() == 2

    def test_jacobi_requires_positive_diagonal(self):
        with pytest.raises(NotSPDError):
            JacobiPreconditioner(csr_from_dense(np.diag([1.0, 0.0])))

    def test_protocol_runtime_checkable(self):
        assert isinstance(IdentityPreconditioner(3), Preconditioner)
        a = csr_from_dense(np.eye(3))
        assert isinstance(JacobiPreconditioner(a), Preconditioner)


class TestConvergenceHistory:
    def test_iterations_counting(self):
        h = ConvergenceHistory()
        assert h.iterations == 0
        for v in (1.0, 0.5, 0.1):
            h.record(v)
        assert h.iterations == 2
        assert h.initial == 1.0 and h.final == 0.1

    def test_relative(self):
        h = ConvergenceHistory()
        for v in (2.0, 1.0, 0.02):
            h.record(v)
        assert np.allclose(h.relative(), [1.0, 0.5, 0.01])

    def test_reduction_order(self):
        h = ConvergenceHistory()
        h.record(1.0)
        h.record(1e-8)
        assert h.reduction_order() == pytest.approx(8.0)

    def test_reduction_order_degenerate(self):
        h = ConvergenceHistory()
        assert h.reduction_order() == 0.0
        h.record(1.0)
        h.record(0.0)
        assert h.reduction_order() == float("inf")

    def test_solve_result_repr(self):
        r = SolveResult(
            x=np.zeros(2), converged=False, iterations=7,
            residual_norm=1.0, relative_residual=0.5,
        )
        assert "NOT converged" in repr(r)
