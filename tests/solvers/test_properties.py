"""Property-based tests for the solvers (hypothesis).

Random SPD systems of varying conditioning: CG must terminate within n
iterations (exact arithmetic bound, with roundoff slack), FSAI-PCG must
converge and produce the same solution, Cholesky must reproduce LAPACK.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsai.extended import setup_fsai
from repro.solvers.cg import cg, pcg
from repro.solvers.direct import cholesky_factor, solve_spd
from repro.sparse.construct import csr_from_dense


@st.composite
def spd_systems(draw):
    n = draw(st.integers(2, 16))
    seed = draw(st.integers(0, 2**31 - 1))
    spread = draw(st.floats(0.0, 3.0))  # log10 of diagonal scaling spread
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    s = np.diag(10.0 ** rng.uniform(-spread / 2, spread / 2, n))
    a = s @ a @ s
    b = rng.standard_normal(n)
    return a, b


class TestCGProperties:
    @given(spd_systems())
    @settings(max_examples=60, deadline=None)
    def test_finite_termination(self, system):
        a, b = system
        n = a.shape[0]
        res = cg(csr_from_dense(a), b, rtol=1e-8, max_iterations=4 * n)
        assert res.converged

    @given(spd_systems())
    @settings(max_examples=60, deadline=None)
    def test_solution_accuracy(self, system):
        a, b = system
        res = cg(csr_from_dense(a), b, rtol=1e-10, max_iterations=1000)
        assert np.linalg.norm(a @ res.x - b) <= 1e-6 * max(np.linalg.norm(b), 1e-30)

    @given(spd_systems())
    @settings(max_examples=40, deadline=None)
    def test_fsai_pcg_converges_and_agrees(self, system):
        a, b = system
        mat = csr_from_dense(a)
        setup = setup_fsai(mat)
        plain = cg(mat, b, rtol=1e-10, max_iterations=1000)
        precond = pcg(
            mat, b, preconditioner=setup.application,
            rtol=1e-10, max_iterations=1000,
        )
        assert precond.converged
        scale = max(np.linalg.norm(plain.x), 1e-30)
        assert np.linalg.norm(precond.x - plain.x) <= 1e-5 * scale

    @given(spd_systems())
    @settings(max_examples=40, deadline=None)
    def test_residual_history_final_matches(self, system):
        a, b = system
        res = cg(csr_from_dense(a), b)
        assert res.history is not None
        assert res.history.final == res.residual_norm


class TestDirectProperties:
    @given(spd_systems())
    @settings(max_examples=60, deadline=None)
    def test_cholesky_reconstructs(self, system):
        a, _ = system
        L = cholesky_factor(a)
        scale = np.abs(a).max()
        assert np.abs(L @ L.T - a).max() <= 1e-10 * scale

    @given(spd_systems())
    @settings(max_examples=60, deadline=None)
    def test_solve_spd_residual(self, system):
        a, b = system
        x = solve_spd(a, b)
        assert np.linalg.norm(a @ x - b) <= 1e-7 * max(np.linalg.norm(b), 1e-30)
