"""Blocked PCG: every column matches the single-RHS solver exactly.

``pcg_multi`` promises per-column equivalence with :func:`pcg` — same
iteration counts, same residual histories, iterates within 1e-10 — while
doing the work through blocked kernels.  The tests here pin that promise
across every registered backend, drive the compaction path with a block
whose columns converge at wildly different rates (Laplacian eigenvectors
finish in one iteration next to random columns taking dozens), and cover
the satellite aliasing contracts: ``apply_into(r, out=r)`` and
``pcg(..., x0=b)`` must be correct, never silently corrupted.
"""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import ShapeError
from repro.fsai.frobenius import compute_g
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.precond import FSAIApplication
from repro.kernels import available_backends, use_backend
from repro.solvers import JacobiPreconditioner, MultiSolveResult
from repro.solvers.cg import pcg, pcg_multi
from repro.sparse.construct import csr_from_dense

BACKENDS = available_backends()


def _lap1d(n):
    d = np.zeros((n, n))
    i = np.arange(n)
    d[i, i] = 2.0
    d[i[:-1], i[:-1] + 1] = -1.0
    d[i[1:], i[1:] - 1] = -1.0
    return csr_from_dense(d)


def _assert_columns_match(multi, singles, *, x_tol=1e-10):
    assert isinstance(multi, MultiSolveResult)
    assert len(multi.columns) == len(singles)
    for j, (col, ref) in enumerate(zip(multi.columns, singles)):
        assert col.converged == ref.converged, f"column {j}"
        assert col.iterations == ref.iterations, f"column {j}"
        np.testing.assert_allclose(
            col.x, ref.x, rtol=x_tol, atol=x_tol, err_msg=f"column {j}"
        )
        np.testing.assert_allclose(multi.x[:, j], col.x, rtol=0, atol=0)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_matches_single_rhs_unpreconditioned(backend_name):
    a = poisson2d(12)
    b = np.random.default_rng(31).standard_normal((a.n_rows, 6))
    with use_backend(backend_name):
        multi = pcg_multi(a, b, rtol=1e-10)
        singles = [pcg(a, b[:, j].copy(), rtol=1e-10) for j in range(6)]
    _assert_columns_match(multi, singles)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_matches_single_rhs_with_fsai(backend_name):
    a = poisson2d(12)
    g = compute_g(a, fsai_initial_pattern(a))
    b = np.random.default_rng(32).standard_normal((a.n_rows, 5))
    with use_backend(backend_name):
        # Fresh applications per solve: the apply handles pin the backend
        # (and, for the blocked one, the block width) at first use.
        multi = pcg_multi(a, b, preconditioner=FSAIApplication(g))
        singles = [
            pcg(a, b[:, j].copy(), preconditioner=FSAIApplication(g))
            for j in range(5)
        ]
    _assert_columns_match(multi, singles)


def test_matches_single_rhs_with_jacobi_and_x0():
    a = poisson2d(10)
    rng = np.random.default_rng(33)
    b = rng.standard_normal((a.n_rows, 4))
    x0 = rng.standard_normal((a.n_rows, 4))
    M = JacobiPreconditioner(a)
    multi = pcg_multi(a, b, preconditioner=M, x0=x0)
    singles = [
        pcg(a, b[:, j].copy(), preconditioner=M, x0=x0[:, j].copy())
        for j in range(4)
    ]
    _assert_columns_match(multi, singles)
    # x0 must never be mutated (pcg copies; pcg_multi must too).
    np.testing.assert_array_equal(x0, np.array(x0))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_compaction_path_matches_single_rhs(backend_name):
    """Columns converging at wildly different rates force compaction.

    Laplacian eigenvectors make pcg converge in a single iteration, so a
    block mixing six of them with two random columns drops below half
    occupancy immediately — the exact-match assertion then also certifies
    the compaction bookkeeping (banking, reslicing, handle rebinding).
    """
    n = 64
    a = _lap1d(n)
    i = np.arange(1, n + 1)
    b = np.empty((n, 8))
    for c, mode in enumerate((1, 2, 3, 5, 8, 13)):
        b[:, c] = np.sin(np.pi * mode * i / (n + 1))
    rng = np.random.default_rng(34)
    b[:, 6] = rng.standard_normal(n)
    b[:, 7] = rng.standard_normal(n)
    with use_backend(backend_name):
        multi = pcg_multi(a, b, rtol=1e-12)
        singles = [pcg(a, b[:, j].copy(), rtol=1e-12) for j in range(8)]
    iters = [c.iterations for c in multi.columns]
    assert min(iters) == 1 and max(iters) > 10  # the spread compaction needs
    _assert_columns_match(multi, singles)


def test_histories_match_single_rhs():
    a = poisson2d(8)
    b = np.random.default_rng(35).standard_normal((a.n_rows, 3))
    multi = pcg_multi(a, b, rtol=1e-10)
    for j in range(3):
        ref = pcg(a, b[:, j].copy(), rtol=1e-10)
        got = multi.columns[j].history.norms
        np.testing.assert_allclose(got, ref.history.norms, rtol=1e-10)


def test_flops_within_tolerance_of_single_rhs():
    a = poisson2d(8)
    b = np.random.default_rng(36).standard_normal((a.n_rows, 3))
    multi = pcg_multi(a, b)
    for j in range(3):
        ref = pcg(a, b[:, j].copy())
        assert multi.columns[j].flops == ref.flops
    assert multi.flops == sum(c.flops for c in multi.columns)


def test_record_history_false():
    a = poisson2d(8)
    b = np.random.default_rng(37).standard_normal((a.n_rows, 2))
    multi = pcg_multi(a, b, record_history=False)
    assert all(c.history is None for c in multi.columns)
    assert multi.converged


def test_one_dimensional_b_raises():
    a = poisson2d(8)
    with pytest.raises(ShapeError, match="use pcg"):
        pcg_multi(a, np.ones(a.n_rows))


def test_shape_mismatches_raise():
    a = poisson2d(8)
    b = np.ones((a.n_rows, 2))
    with pytest.raises(ShapeError):
        pcg_multi(a, np.ones((a.n_rows + 1, 2)))
    with pytest.raises(ShapeError):
        pcg_multi(a, b, x0=np.ones((a.n_rows, 3)))


def test_zero_width_block():
    a = poisson2d(8)
    multi = pcg_multi(a, np.empty((a.n_rows, 0)))
    assert multi.x.shape == (a.n_rows, 0)
    assert multi.columns == []
    assert multi.converged  # vacuously
    assert multi.iterations == 0


def test_preconverged_columns_skip_iteration():
    """A zero column converges before iterating; others still solve."""
    a = poisson2d(8)
    b = np.zeros((a.n_rows, 3))
    b[:, 1] = np.random.default_rng(38).standard_normal(a.n_rows)
    multi = pcg_multi(a, b, rtol=1e-10)
    assert multi.columns[0].iterations == 0
    assert multi.columns[2].iterations == 0
    assert multi.columns[0].converged and multi.columns[2].converged
    ref = pcg(a, b[:, 1].copy(), rtol=1e-10)
    assert multi.columns[1].iterations == ref.iterations
    np.testing.assert_allclose(multi.columns[1].x, ref.x, rtol=1e-10, atol=1e-10)


def test_iteration_budget_respected():
    a = poisson2d(12)
    b = np.random.default_rng(39).standard_normal((a.n_rows, 3))
    multi = pcg_multi(a, b, rtol=1e-14, atol=0.0, max_iterations=5)
    assert not multi.converged
    assert multi.iterations == 5
    assert all(c.iterations == 5 for c in multi.columns)


def test_multi_result_repr_and_aggregates():
    a = poisson2d(8)
    b = np.random.default_rng(40).standard_normal((a.n_rows, 2))
    multi = pcg_multi(a, b)
    assert "MultiSolveResult" in repr(multi)
    assert multi.iterations == max(c.iterations for c in multi.columns)
    assert multi.converged == all(c.converged for c in multi.columns)


# ----------------------------------------------------------------------
# Aliasing contracts (satellite: in-place application, x0 sharing b)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_fsai_apply_into_aliased_out(backend_name):
    """``apply_into(r, out=r)`` must be exact: both products stage
    through the separate ``tmp`` workspace, so in-place application is a
    supported way to save a buffer."""
    a = poisson2d(10)
    g = compute_g(a, fsai_initial_pattern(a))
    r = np.random.default_rng(41).standard_normal(a.n_rows)
    with use_backend(backend_name):
        app = FSAIApplication(g)
        expected = app.apply(r)
        buf = r.copy()
        got = app.apply_into(buf, buf)
    assert got is buf
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_fsai_apply_multi_into_aliased_out(backend_name):
    a = poisson2d(10)
    g = compute_g(a, fsai_initial_pattern(a))
    r = np.random.default_rng(42).standard_normal((a.n_rows, 4))
    with use_backend(backend_name):
        app = FSAIApplication(g)
        expected = app.apply_multi(r)
        buf = r.copy()
        got = app.apply_multi_into(buf, buf)
    assert got is buf
    np.testing.assert_array_equal(got, expected)


def test_pcg_x0_aliasing_b():
    """``x0=b`` (same array object) must solve correctly and leave b intact."""
    a = poisson2d(10)
    b = np.random.default_rng(43).standard_normal(a.n_rows)
    b_orig = b.copy()
    res = pcg(a, b, x0=b, rtol=1e-10)
    assert res.converged
    np.testing.assert_array_equal(b, b_orig)
    ref = pcg(a, b, x0=b.copy(), rtol=1e-10)
    assert res.iterations == ref.iterations
    np.testing.assert_allclose(res.x, ref.x, rtol=1e-12, atol=1e-12)


def test_pcg_multi_x0_aliasing_b():
    a = poisson2d(10)
    b = np.random.default_rng(44).standard_normal((a.n_rows, 3))
    b_orig = b.copy()
    multi = pcg_multi(a, b, x0=b, rtol=1e-10)
    assert multi.converged
    np.testing.assert_array_equal(b, b_orig)
    ref = pcg_multi(a, b, x0=b.copy(), rtol=1e-10)
    for col, rcol in zip(multi.columns, ref.columns):
        assert col.iterations == rcol.iterations
        np.testing.assert_array_equal(col.x, rcol.x)
