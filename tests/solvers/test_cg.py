"""Unit tests for repro.solvers.cg (CG / PCG)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.solvers.cg import cg, pcg
from repro.solvers.preconditioners import JacobiPreconditioner
from repro.sparse.construct import csr_from_dense
from tests.conftest import random_spd_dense


class TestPlainCG:
    def test_solves_spd(self, rng):
        d = random_spd_dense(20, seed=5)
        a = csr_from_dense(d)
        b = rng.standard_normal(20)
        res = cg(a, b)
        assert res.converged
        assert np.linalg.norm(d @ res.x - b) <= 1e-6 * np.linalg.norm(b)

    def test_exact_in_n_iterations(self):
        d = random_spd_dense(12, seed=6)
        res = cg(csr_from_dense(d), np.ones(12), rtol=1e-12)
        assert res.iterations <= 12 + 2  # finite termination (+ roundoff slack)

    def test_zero_rhs_immediate(self, poisson16):
        res = cg(poisson16, np.zeros(poisson16.n_rows))
        assert res.converged and res.iterations == 0
        assert np.allclose(res.x, 0)

    def test_warm_start(self, poisson16, rng):
        # rtol is relative to the *new* initial residual, so an absolute
        # tolerance expresses "already good enough" for a warm start.
        b = rng.standard_normal(poisson16.n_rows)
        cold = cg(poisson16, b)
        warm = cg(
            poisson16, b, x0=cold.x, rtol=0.0,
            atol=cold.residual_norm * 1.01,
        )
        assert warm.converged and warm.iterations == 0

    def test_budget_exhaustion_reported(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        res = cg(poisson16, b, max_iterations=3)
        assert not res.converged
        assert res.iterations == 3

    def test_history_recorded(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        res = cg(poisson16, b)
        assert res.history is not None
        assert len(res.history.norms) == res.iterations + 1
        assert res.history.reduction_order() >= 8.0

    def test_history_disabled(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        assert cg(poisson16, b, record_history=False).history is None

    def test_monotone_a_norm_error(self, rng):
        # CG minimises the A-norm error over the Krylov space each step.
        d = random_spd_dense(15, seed=7)
        a = csr_from_dense(d)
        b = rng.standard_normal(15)
        x_star = np.linalg.solve(d, b)
        errs = []
        for k in range(1, 10):
            res = cg(a, b, max_iterations=k, rtol=0.0)
            e = res.x - x_star
            errs.append(float(e @ (d @ e)))
        assert all(e2 <= e1 + 1e-12 for e1, e2 in zip(errs, errs[1:]))

    def test_flops_counted(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        res = cg(poisson16, b)
        # At least one SpMV worth of work per iteration.
        assert res.flops >= res.iterations * 2 * poisson16.nnz

    def test_shape_checks(self, poisson16):
        with pytest.raises(ShapeError):
            cg(poisson16, np.ones(3))
        with pytest.raises(ShapeError):
            cg(poisson16, np.ones(poisson16.n_rows), x0=np.ones(2))
        with pytest.raises(ShapeError):
            cg(csr_from_dense(np.ones((2, 3))), np.ones(3))

    def test_negative_tolerance_rejected(self, poisson16):
        with pytest.raises(ValueError):
            cg(poisson16, np.ones(poisson16.n_rows), rtol=-1.0)

    def test_indefinite_breakdown_stops(self):
        a = csr_from_dense(np.diag([1.0, -1.0]))
        res = cg(a, np.array([0.0, 1.0]), max_iterations=10)
        assert not res.converged


class TestPCG:
    def test_jacobi_reduces_iterations_on_scaled_problem(self, rng):
        # Badly diagonally scaled SPD system: Jacobi should help a lot.
        d = random_spd_dense(30, seed=8)
        s = np.diag(10.0 ** rng.uniform(-3, 3, 30))
        d = s @ d @ s
        a = csr_from_dense(d)
        b = rng.standard_normal(30)
        plain = cg(a, b, max_iterations=2000)
        jac = pcg(a, b, preconditioner=JacobiPreconditioner(a), max_iterations=2000)
        assert jac.converged
        assert jac.iterations < plain.iterations

    def test_same_solution_as_cg(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        res_cg = cg(poisson16, b, rtol=1e-10)
        res_pcg = pcg(
            poisson16, b, preconditioner=JacobiPreconditioner(poisson16),
            rtol=1e-10,
        )
        assert np.allclose(res_cg.x, res_pcg.x, atol=1e-6)

    def test_preconditioner_flops_counted(self, poisson16, rng):
        b = rng.standard_normal(poisson16.n_rows)
        plain = cg(poisson16, b)
        jac = pcg(poisson16, b, preconditioner=JacobiPreconditioner(poisson16))
        flops_per_iter_plain = plain.flops / max(plain.iterations, 1)
        flops_per_iter_jac = jac.flops / max(jac.iterations, 1)
        assert flops_per_iter_jac > flops_per_iter_plain

    def test_result_repr(self, poisson16, rng):
        res = cg(poisson16, rng.standard_normal(poisson16.n_rows))
        assert "converged" in repr(res)

    def test_paper_tolerance_default(self, poisson16, rng):
        # §7.1: eight orders of magnitude.
        b = rng.standard_normal(poisson16.n_rows)
        res = cg(poisson16, b)
        assert res.relative_residual <= 1e-8
