"""Preconditioner cache: hits skip setup entirely, capacity is a bound.

The authoritative witness that a hit skipped the work is the trace
collector — ``setup_fsai`` and friends open an ``fsai.setup`` span, so a
probe that returns from the cache must leave **no** such span behind,
only an ``fsai.cache_hit`` counter.
"""

import numpy as np
import pytest

from repro import trace
from repro.arch.address import ArrayPlacement
from repro.collection.generators.fd import poisson2d
from repro.fsai.cache import (
    DEFAULT_CAPACITY,
    PreconditionerCache,
    cached_setup,
    default_cache,
)
from repro.sparse.construct import csr_from_dense


def _span_names(collector):
    names = []

    def walk(span):
        names.append(span.name)
        for child in span.children:
            walk(child)

    for root in collector.roots:
        walk(root)
    return names


def _spd(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return csr_from_dense(m @ m.T + n * np.eye(n))


class TestGetOrBuild:
    def test_hit_returns_same_object_without_building(self):
        cache = PreconditionerCache(capacity=4)
        a = _spd(8, 1)
        calls = []

        def build():
            calls.append(1)
            return object()

        first = cache.get_or_build(a, build, method="fsai")
        second = cache.get_or_build(a, build, method="fsai")
        assert second is first
        assert len(calls) == 1
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "coalesced": 0,
            "deferred_evictions": 0, "pinned": 0, "size": 1, "capacity": 4,
        }

    def test_method_and_config_participate_in_key(self):
        cache = PreconditionerCache(capacity=8)
        a = _spd(8, 2)
        values = {
            ("fsai", None): object(),
            ("fsai", "lvl2"): object(),
            ("fsaie_sp", None): object(),
        }
        got_a = cache.get_or_build(
            a, lambda: values[("fsai", None)], method="fsai"
        )
        got_b = cache.get_or_build(
            a, lambda: values[("fsai", "lvl2")], method="fsai",
            config={"level": 2},
        )
        got_c = cache.get_or_build(
            a, lambda: values[("fsaie_sp", None)], method="fsaie_sp"
        )
        assert got_a is not got_b and got_a is not got_c
        assert cache.misses == 3
        # Same config in a different dict order is the same key.
        a2 = cache.get_or_build(
            a, lambda: object(), method="fsai",
            config={"level": 2},
        )
        assert a2 is got_b
        assert cache.hits == 1

    def test_different_matrices_do_not_collide(self):
        cache = PreconditionerCache(capacity=8)
        a, b = _spd(8, 3), _spd(8, 4)
        va = cache.get_or_build(a, object, method="fsai")
        vb = cache.get_or_build(b, object, method="fsai")
        assert va is not vb
        assert cache.get_or_build(a, object, method="fsai") is va

    def test_capacity_bound_evicts_lru(self):
        cache = PreconditionerCache(capacity=2)
        mats = [_spd(6, seed) for seed in range(5, 9)]
        built = [cache.get_or_build(m, object, method="fsai") for m in mats]
        assert len(cache) == 2  # never exceeds capacity
        assert cache.evictions == 2
        # The two most recent survive; the oldest were evicted.
        assert cache.get_or_build(mats[3], object, method="fsai") is built[3]
        assert cache.get_or_build(mats[2], object, method="fsai") is built[2]
        assert cache.get_or_build(mats[0], object, method="fsai") is not built[0]

    def test_hit_refreshes_recency(self):
        cache = PreconditionerCache(capacity=2)
        a, b, c = _spd(6, 10), _spd(6, 11), _spd(6, 12)
        va = cache.get_or_build(a, object, method="fsai")
        cache.get_or_build(b, object, method="fsai")
        cache.get_or_build(a, object, method="fsai")  # a is now most recent
        cache.get_or_build(c, object, method="fsai")  # evicts b, not a
        assert cache.get_or_build(a, object, method="fsai") is va
        assert cache.hits == 2  # the refresh plus this final probe

    def test_clear_drops_entries_keeps_counters(self):
        cache = PreconditionerCache(capacity=4)
        a = _spd(6, 13)
        cache.get_or_build(a, object, method="fsai")
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.get_or_build(a, object, method="fsai")
        assert cache.misses == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PreconditionerCache(capacity=0)

    def test_repr_mentions_occupancy(self):
        cache = PreconditionerCache(capacity=3)
        assert "0/3" in repr(cache)


class TestCachedSetup:
    def test_hit_skips_fsai_setup_span_entirely(self):
        """The trace collector proves a hit does no setup work."""
        cache = PreconditionerCache(capacity=4)
        a = poisson2d(8)
        with trace.collecting() as cold:
            setup = cached_setup(a, method="fsai", cache=cache)
        assert "fsai.setup" in _span_names(cold)
        assert cold.total_counters().get("fsai.cache_miss") == 1
        with trace.collecting() as warm:
            again = cached_setup(a, method="fsai", cache=cache)
        assert again is setup
        assert "fsai.setup" not in _span_names(warm)
        assert warm.total_counters().get("fsai.cache_hit") == 1
        assert "fsai.cache_miss" not in warm.total_counters()

    def test_kwargs_key_separation(self):
        cache = PreconditionerCache(capacity=8)
        a = poisson2d(6)
        base = cached_setup(a, method="fsai", cache=cache)
        filtered = cached_setup(a, method="fsai", cache=cache, threshold=0.1)
        assert base is not filtered
        assert cached_setup(a, method="fsai", cache=cache) is base
        assert (
            cached_setup(a, method="fsai", cache=cache, threshold=0.1)
            is filtered
        )

    def test_extended_methods_resolve(self):
        cache = PreconditionerCache(capacity=8)
        a = poisson2d(6)
        placement = ArrayPlacement.aligned(64)
        sp = cached_setup(a, method="fsaie_sp", cache=cache, placement=placement)
        assert sp.method == "fsaie_sp"
        # An equal placement (deterministic repr) is the same cache key.
        again = cached_setup(
            a, method="fsaie_sp", cache=cache,
            placement=ArrayPlacement.aligned(64),
        )
        assert again is sp

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown FSAI setup method"):
            cached_setup(poisson2d(4), method="cholesky")

    def test_default_cache_is_shared_and_bounded(self):
        shared = default_cache()
        assert shared.capacity == DEFAULT_CAPACITY
        a = _spd(6, 21)
        before = shared.misses
        v1 = shared.get_or_build(a, object, method="probe")
        v2 = shared.get_or_build(a, object, method="probe")
        assert v1 is v2
        assert shared.misses == before + 1

    def test_eviction_records_trace_counter(self):
        cache = PreconditionerCache(capacity=1)
        a, b = _spd(6, 22), _spd(6, 23)
        with trace.collecting() as collector:
            cache.get_or_build(a, object, method="fsai")
            cache.get_or_build(b, object, method="fsai")
        totals = collector.total_counters()
        assert totals.get("fsai.cache_evict") == 1
        assert totals.get("fsai.cache_miss") == 2


class TestPinsAndSeeding:
    """Shared-memory attachment pins + cross-process factor seeding."""

    def test_pinned_entry_survives_capacity_pressure(self):
        cache = PreconditionerCache(capacity=1)
        a, b = _spd(6, 30), _spd(6, 31)
        pinned = cache.get_or_build(a, object, method="fsai")
        cache.pin(a.fingerprint())
        cache.get_or_build(b, object, method="fsai")  # over capacity
        # The unpinned newcomer is evictable, the pinned entry is not;
        # eviction picks the newcomer even though the pinned entry is LRU.
        again = cache.get_or_build(a, object, method="fsai")
        assert again is pinned
        assert cache.evictions == 1

    def test_all_pinned_defers_eviction_until_unpin(self):
        cache = PreconditionerCache(capacity=1)
        a, b = _spd(6, 32), _spd(6, 33)
        cache.get_or_build(a, object, method="fsai")
        cache.get_or_build(b, object, method="fsai")
        # Rebuild state where both live: pin both, then overfill.
        cache.clear()
        cache.pin(a.fingerprint())
        cache.pin(b.fingerprint())
        with trace.collecting() as collector:
            cache.get_or_build(a, object, method="fsai")
            cache.get_or_build(b, object, method="fsai")
        assert collector.total_counters().get("fsai.cache_evict_deferred") == 1
        assert cache.stats()["size"] == 2  # bound temporarily exceeded
        assert cache.deferred_evictions == 1
        # Last detach re-enforces the bound.
        cache.unpin(a.fingerprint())
        assert cache.stats()["size"] == 1

    def test_pin_is_refcounted(self):
        cache = PreconditionerCache(capacity=1)
        a, b = _spd(6, 34), _spd(6, 35)
        cache.get_or_build(a, object, method="fsai")
        cache.pin(a.fingerprint())
        cache.pin(a.fingerprint())
        assert cache.pin_count(a.fingerprint()) == 2
        cache.unpin(a.fingerprint())
        assert cache.pin_count(a.fingerprint()) == 1
        # Still pinned once: capacity pressure evicts the unpinned
        # newcomer instead of the pinned LRU entry.
        cache.get_or_build(b, object, method="fsai")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["evictions"] == 1
        assert next(iter(cache.entries()))[0] == a.fingerprint()
        cache.unpin(a.fingerprint())
        assert cache.pin_count(a.fingerprint()) == 0

    def test_seed_is_idempotent_and_counts_as_neither_hit_nor_miss(self):
        cache = PreconditionerCache(capacity=4)
        key = ("f" * 64, "fsai", "-")
        first, second = object(), object()
        assert cache.seed(key, first) is True
        assert cache.seed(key, second) is False  # existing entry wins
        assert cache.entries()[key] is first
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_seeded_entry_is_returned_by_get_or_build(self):
        cache = PreconditionerCache(capacity=4)
        a = _spd(6, 36)
        sentinel = object()
        from repro.fsai.cache import config_key

        cache.seed((a.fingerprint(), "fsai", config_key(None)), sentinel)

        def explode():
            raise AssertionError("seeded key must not rebuild")

        assert cache.get_or_build(a, explode, method="fsai") is sentinel
