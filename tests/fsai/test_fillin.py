"""Unit + property tests for the cache-friendly fill-in (Algorithm 3).

The load-bearing invariant (paper §4): extending a pattern adds **no new
cache lines** to any row's footprint on the multiplied vector, for every
line size and alignment offset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import ArrayPlacement
from repro.arch.cacheline import lines_touched
from repro.errors import PatternError
from repro.fsai.fillin import extend_pattern_cache_friendly, extension_entries
from repro.sparse.pattern import Pattern


def lower_banded(n, bw):
    rows, cols = [], []
    for i in range(n):
        for j in range(max(0, i - bw), i + 1):
            rows.append(i)
            cols.append(j)
    return Pattern.from_coo(n, n, np.array(rows), np.array(cols))


class TestPaperExample:
    def test_section41_example(self):
        """§4.1: first row accesses x_0 at slot 0 of a 64 B line — up to 7
        additional non-zeroes can be added without a new cache miss."""
        p = Pattern.from_rows(16, 16, [[0] if i == 0 else [i] for i in range(16)])
        pl = ArrayPlacement.aligned(64)
        ext = extend_pattern_cache_friendly(p, pl, triangular="none")
        # Row 0 should now contain the full first line's 8 columns.
        assert list(ext.row(0)) == list(range(8))

    def test_lower_triangular_clip(self):
        """§4.4: entries above the diagonal are never added."""
        p = lower_banded(16, 1)
        ext = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        assert ext.is_lower_triangular()

    def test_upper_mode(self):
        p = lower_banded(16, 1).transpose()
        ext = extend_pattern_cache_friendly(
            p, ArrayPlacement.aligned(64), triangular="upper"
        )
        assert ext.is_upper_triangular()

    def test_row3_of_aligned_band(self):
        # Row 3 of a bandwidth-1 lower pattern touches columns {2, 3} (line
        # 0); the extension fills 0..3.
        p = lower_banded(16, 1)
        ext = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        assert list(ext.row(3)) == [0, 1, 2, 3]

    def test_misalignment_changes_extension(self):
        p = lower_banded(64, 1)
        aligned = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        shifted = extend_pattern_cache_friendly(
            p, ArrayPlacement.with_element_offset(64, 5)
        )
        assert aligned != shifted

    def test_larger_lines_extend_more(self):
        """§7.6: 256 B lines allow 4x more entries per block."""
        p = lower_banded(256, 1)
        e64 = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        e256 = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(256))
        assert e256.nnz > e64.nnz

    def test_superset(self):
        p = lower_banded(32, 2)
        ext = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        assert p.is_subset_of(ext)

    def test_idempotent(self):
        """Extending an already-extended pattern adds nothing."""
        p = lower_banded(32, 2)
        pl = ArrayPlacement.aligned(64)
        once = extend_pattern_cache_friendly(p, pl)
        twice = extend_pattern_cache_friendly(once, pl)
        assert once == twice

    def test_empty_pattern_passthrough(self):
        p = Pattern.empty(4, 4)
        assert extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64)) is p

    def test_invalid_mode(self):
        with pytest.raises(PatternError):
            extend_pattern_cache_friendly(
                lower_banded(4, 1), ArrayPlacement.aligned(64),
                triangular="diagonal",
            )


class TestExtensionEntries:
    def test_difference(self):
        p = lower_banded(16, 1)
        ext = extend_pattern_cache_friendly(p, ArrayPlacement.aligned(64))
        added = extension_entries(p, ext)
        assert added.nnz == ext.nnz - p.nnz
        assert added.intersection(p).nnz == 0

    def test_rejects_non_superset(self):
        p = lower_banded(8, 1)
        with pytest.raises(PatternError):
            extension_entries(p, Pattern.identity(8))


@st.composite
def random_lower_patterns(draw):
    n = draw(st.integers(4, 48))
    density = draw(st.floats(0.02, 0.4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = np.tril(rng.uniform(size=(n, n)) < density) | np.eye(n, dtype=bool)
    return Pattern.from_dense_mask(mask)


class TestSameLinesInvariant:
    """The central §4 property, checked per row over random patterns,
    line sizes and alignments."""

    @given(
        random_lower_patterns(),
        st.sampled_from([64, 128, 256]),
        st.integers(0, 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_extension_preserves_row_line_footprint(self, p, line, offset):
        pl = ArrayPlacement.with_element_offset(line, offset)
        ext = extend_pattern_cache_friendly(p, pl)
        for i in range(p.n_rows):
            before = lines_touched(p.row(i), pl)
            after = lines_touched(ext.row(i), pl)
            assert np.array_equal(before, after)

    @given(random_lower_patterns(), st.sampled_from([64, 256]))
    @settings(max_examples=40, deadline=None)
    def test_extension_is_maximal(self, p, line):
        """Every admissible same-line column is actually added: adding any
        absent lower-triangular column would touch a new line."""
        pl = ArrayPlacement.aligned(line)
        ext = extend_pattern_cache_friendly(p, pl)
        for i in range(p.n_rows):
            row = set(ext.row(i).tolist())
            lines = set(np.asarray(pl.line_of(ext.row(i))).tolist())
            for j in range(0, i + 1):
                if j not in row:
                    assert int(pl.line_of(j)) not in lines

    @given(random_lower_patterns(), st.sampled_from([64, 256]), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_upper_mode_same_invariant(self, p, line, offset):
        pt = p.transpose()
        pl = ArrayPlacement.with_element_offset(line, offset)
        ext = extend_pattern_cache_friendly(pt, pl, triangular="upper")
        for i in range(pt.n_rows):
            assert np.array_equal(
                lines_touched(pt.row(i), pl), lines_touched(ext.row(i), pl)
            )
