"""Filtered-pattern equivalence: kernel precalc vs legacy bucketed CG.

The ``fsai_precalc`` kernel op does **not** promise bitwise agreement
with the legacy bucketed lockstep CG (the two reduce in different
summation orders, so truncated estimates differ in final ulps).  What §5
actually consumes is the *classification* those estimates feed: which
extension entries are weak.  This suite pins the real contract — across
the FD stencil generators and the paper's full filter grid, the filtered
:class:`~repro.sparse.pattern.Pattern` selected downstream is identical
whichever precalculation produced the estimates.
"""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.collection.generators.fd import (
    anisotropic_poisson2d,
    poisson2d,
    poisson3d,
    thermal_conduction2d,
)
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.filtering import filter_extension_by_precalc
from repro.fsai.frobenius import precalculate_g
from repro.fsai.patterns import fsai_initial_pattern

#: The paper's evaluated filter grid (§5 / Table 3).
FILTER_VALUES = (0.0, 0.001, 0.01, 0.1)

STENCILS = [
    ("poisson2d", lambda: poisson2d(12)),
    ("poisson3d", lambda: poisson3d(5)),
    ("anisotropic", lambda: anisotropic_poisson2d(10, theta=0.3)),
    ("thermal", lambda: thermal_conduction2d(10, seed=4)),
]


@pytest.fixture(scope="module", params=STENCILS, ids=[n for n, _ in STENCILS])
def stencil_case(request):
    """(matrix, base pattern, extended pattern, legacy G, kernel G)."""
    _, build = request.param
    a = build()
    base = fsai_initial_pattern(a)
    ext = extend_pattern_cache_friendly(base, ArrayPlacement.aligned(64))
    g_legacy = precalculate_g(a, ext, backend="bucketed")
    g_kernel = precalculate_g(a, ext, backend="numpy")
    return a, base, ext, g_legacy, g_kernel


@pytest.mark.parametrize("filter_value", FILTER_VALUES)
def test_filtered_pattern_identical_to_legacy(stencil_case, filter_value):
    _, base, _, g_legacy, g_kernel = stencil_case
    p_legacy = filter_extension_by_precalc(g_legacy, base, filter_value)
    p_kernel = filter_extension_by_precalc(g_kernel, base, filter_value)
    np.testing.assert_array_equal(p_kernel.indptr, p_legacy.indptr)
    np.testing.assert_array_equal(p_kernel.indices, p_legacy.indices)


def test_estimates_agree_to_truncation_roundoff(stencil_case):
    """The values themselves stay within CG-roundoff of each other — the
    classifications above are equal because the numbers are, not by
    accident of a coarse threshold."""
    _, _, _, g_legacy, g_kernel = stencil_case
    scale = float(np.max(np.abs(g_legacy.data)))
    np.testing.assert_allclose(
        g_kernel.data, g_legacy.data, rtol=1e-9, atol=1e-9 * scale
    )
