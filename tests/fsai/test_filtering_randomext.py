"""Unit tests for repro.fsai.filtering and repro.fsai.random_ext."""

import numpy as np
import pytest

from repro.errors import PatternError, ShapeError
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.filtering import (
    filter_extension_by_precalc,
    standard_post_filter,
    weak_entry_mask,
)
from repro.fsai.frobenius import compute_g, precalculate_g
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.random_ext import extend_pattern_random
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern
from tests.conftest import random_spd_dense


@pytest.fixture
def setup(placement64):
    a = csr_from_dense(random_spd_dense(16, seed=42, density=0.4))
    base = fsai_initial_pattern(a)
    extended = extend_pattern_cache_friendly(base, placement64)
    g_approx = precalculate_g(a, extended)
    return a, base, extended, g_approx


class TestWeakEntryMask:
    def test_diagonal_never_weak(self, setup):
        _, _, _, g = setup
        weak = weak_entry_mask(g, 1e9)
        rows = g.row_ids()
        assert not weak[rows == g.indices].any()

    def test_zero_filter_marks_only_zeros(self, setup):
        _, _, _, g = setup
        weak = weak_entry_mask(g, 0.0)
        assert np.array_equal(weak, (g.data == 0.0) & (g.row_ids() != g.indices))

    def test_monotone_in_filter(self, setup):
        _, _, _, g = setup
        w1 = weak_entry_mask(g, 0.01)
        w2 = weak_entry_mask(g, 0.1)
        assert np.all(w2 | ~w1 | w1)  # w1 ⊆ w2
        assert w2.sum() >= w1.sum()

    def test_scale_independent(self):
        d = random_spd_dense(8, seed=5, density=0.6)
        a = csr_from_dense(d)
        s = np.diag(10.0 ** np.linspace(-2, 2, 8))
        a_scaled = csr_from_dense(s @ d @ s)
        g1 = compute_g(a, fsai_initial_pattern(a))
        g2 = compute_g(a_scaled, fsai_initial_pattern(a_scaled))
        assert np.array_equal(
            weak_entry_mask(g1, 0.05), weak_entry_mask(g2, 0.05)
        )

    def test_negative_filter_rejected(self, setup):
        _, _, _, g = setup
        with pytest.raises(ValueError):
            weak_entry_mask(g, -0.1)

    def test_non_square_rejected(self):
        """Columns past the last row have no diagonal to compare against;
        historically their index was silently clamped to the last row."""
        rect = csr_from_dense(np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.5]]))
        with pytest.raises(ShapeError, match="square"):
            weak_entry_mask(rect, 0.1)


class TestPrecalcFilter:
    def test_base_entries_immune(self, setup):
        a, base, extended, g_approx = setup
        filtered = filter_extension_by_precalc(g_approx, base, 1e9)
        assert filtered == base  # everything removable removed, base intact

    def test_zero_filter_keeps_nonzero_extension(self, setup):
        a, base, extended, g_approx = setup
        filtered = filter_extension_by_precalc(g_approx, base, 0.0)
        assert base.is_subset_of(filtered)
        assert filtered.is_subset_of(extended)

    def test_monotone_in_filter(self, setup):
        a, base, _, g_approx = setup
        sizes = [
            filter_extension_by_precalc(g_approx, base, f).nnz
            for f in (0.0, 0.01, 0.1, 1.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_base_must_be_subset(self, setup):
        a, base, _, g_approx = setup
        # Construct a pattern definitely not inside g_approx's pattern:
        full_row = Pattern.from_rows(
            16, 16, [list(range(i + 1)) for i in range(16)]
        )
        if not full_row.is_subset_of(g_approx.pattern):
            with pytest.raises(PatternError):
                filter_extension_by_precalc(g_approx, full_row, 0.1)


class TestStandardPostFilter:
    def test_restores_unit_diag(self, setup):
        a, base, extended, _ = setup
        g = compute_g(a, extended)
        filtered = standard_post_filter(g, a, 0.1, base=base)
        gd = filtered.to_dense()
        gagt = gd @ a.to_dense() @ gd.T
        assert np.allclose(np.diag(gagt), 1.0)

    def test_base_restriction(self, setup):
        a, base, extended, _ = setup
        g = compute_g(a, extended)
        filtered = standard_post_filter(g, a, 1e9, base=base)
        assert filtered.pattern == base

    def test_without_base_can_drop_any_offdiagonal(self, setup):
        a, _, extended, _ = setup
        g = compute_g(a, extended)
        filtered = standard_post_filter(g, a, 1e9)
        assert filtered.nnz == a.n_rows  # only diagonals survive

    def test_shape_mismatch(self, setup):
        a, _, extended, _ = setup
        g = compute_g(a, extended)
        other = csr_from_dense(np.eye(3))
        with pytest.raises(ShapeError):
            standard_post_filter(g, other, 0.1)

    def test_not_frobenius_minimal(self, setup):
        """The paper's point: post-filtered G is generally worse than the
        recomputed G on the same pattern."""
        a, base, extended, g_approx = setup
        g_exact_ext = compute_g(a, extended)
        post = standard_post_filter(g_exact_ext, a, 0.2, base=base)
        recomputed = compute_g(a, post.pattern)
        L = np.linalg.cholesky(a.to_dense())
        n = a.n_rows
        err_post = np.linalg.norm(np.eye(n) - post.to_dense() @ L, "fro")
        err_reco = np.linalg.norm(np.eye(n) - recomputed.to_dense() @ L, "fro")
        assert err_reco <= err_post + 1e-12


class TestRandomExtension:
    def test_counts_respected(self):
        base = fsai_initial_pattern(
            csr_from_dense(random_spd_dense(20, seed=1, density=0.3))
        )
        want = np.minimum(np.arange(20), 3)
        ext = extend_pattern_random(base, want, seed=0)
        added = ext.row_lengths() - base.row_lengths()
        # Row i has i+1 admissible columns; the request is met when possible.
        for i in range(20):
            free = (i + 1) - len(base.row(i))
            assert added[i] == min(want[i], free)

    def test_superset_and_lower(self):
        base = fsai_initial_pattern(
            csr_from_dense(random_spd_dense(12, seed=2, density=0.4))
        )
        ext = extend_pattern_random(base, np.full(12, 2), seed=1)
        assert base.is_subset_of(ext)
        assert ext.is_lower_triangular()

    def test_deterministic_by_seed(self):
        base = fsai_initial_pattern(
            csr_from_dense(random_spd_dense(12, seed=3, density=0.4))
        )
        e1 = extend_pattern_random(base, np.full(12, 2), seed=7)
        e2 = extend_pattern_random(base, np.full(12, 2), seed=7)
        e3 = extend_pattern_random(base, np.full(12, 2), seed=8)
        assert e1 == e2
        assert e1 != e3

    def test_zero_request_identity(self):
        base = fsai_initial_pattern(
            csr_from_dense(random_spd_dense(6, seed=4))
        )
        assert extend_pattern_random(base, np.zeros(6, dtype=int)) == base

    def test_length_check(self):
        base = Pattern.identity(4)
        with pytest.raises(ShapeError):
            extend_pattern_random(base, np.zeros(3, dtype=int))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            extend_pattern_random(Pattern.identity(3), np.array([-1, 0, 0]))
