"""Unit tests for repro.fsai.patterns and repro.fsai.frobenius."""

import numpy as np
import pytest

from repro.errors import NotSPDError, PatternError, ShapeError
from repro.fsai.frobenius import (
    compute_g,
    gather_local_systems,
    precalculate_g,
    setup_flops_direct,
    setup_flops_precalc,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern
from tests.conftest import random_spd_dense


@pytest.fixture
def spd8():
    return csr_from_dense(random_spd_dense(8, seed=11, density=0.5))


class TestInitialPattern:
    def test_level1_is_tril_of_a(self, spd8):
        p = fsai_initial_pattern(spd8)
        assert p == spd8.pattern.tril()

    def test_always_has_diagonal(self):
        # Matrix with a structural zero on the diagonal after thresholding.
        d = np.array([[1.0, 0.8], [0.8, 1.0]])
        a = csr_from_dense(d)
        p = fsai_initial_pattern(a, threshold=0.0)
        assert p.has_full_diagonal()

    def test_level2_grows(self, spd8):
        p1 = fsai_initial_pattern(spd8, level=1)
        p2 = fsai_initial_pattern(spd8, level=2)
        assert p1.is_subset_of(p2)
        assert p2.nnz >= p1.nnz

    def test_threshold_shrinks(self):
        a = csr_from_dense(random_spd_dense(10, seed=3))
        p0 = fsai_initial_pattern(a, threshold=0.0)
        pt = fsai_initial_pattern(a, threshold=0.5)
        assert pt.nnz < p0.nnz
        assert pt.has_full_diagonal()

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            fsai_initial_pattern(csr_from_dense(np.ones((2, 3))))


class TestGatherLocalSystems:
    def test_shapes_and_rhs(self, spd8):
        p = fsai_initial_pattern(spd8)
        systems, rhs = gather_local_systems(spd8, p)
        assert len(systems) == 8
        for i in range(8):
            k = len(p.row(i))
            assert systems[i].shape == (k, k)
            assert rhs[i][-1] == 1.0 and rhs[i][:-1].sum() == 0.0

    def test_submatrix_content(self, spd8):
        p = fsai_initial_pattern(spd8)
        systems, _ = gather_local_systems(spd8, p)
        dense = spd8.to_dense()
        for i in range(8):
            cols = p.row(i)
            assert np.allclose(systems[i], dense[np.ix_(cols, cols)])

    def test_missing_diagonal_rejected(self, spd8):
        bad = Pattern.from_coo(8, 8, np.array([1]), np.array([0]))
        # pad to full rows minus diagonals
        with pytest.raises(PatternError):
            gather_local_systems(spd8, bad)

    def test_upper_pattern_rejected(self, spd8):
        with pytest.raises(PatternError):
            compute_g(spd8, spd8.pattern.triu())


class TestComputeG:
    def test_unit_diag_of_gagt(self, spd8):
        g = compute_g(spd8, fsai_initial_pattern(spd8))
        gd = g.to_dense()
        gagt = gd @ spd8.to_dense() @ gd.T
        assert np.allclose(np.diag(gagt), 1.0)

    def test_lower_triangular(self, spd8):
        g = compute_g(spd8, fsai_initial_pattern(spd8))
        assert g.pattern.is_lower_triangular()

    def test_full_pattern_gives_exact_inverse_factor(self):
        # With the full lower-triangular pattern, G^T G = A^{-1} exactly.
        d = random_spd_dense(6, seed=21)
        a = csr_from_dense(d)
        full = Pattern.from_dense_mask(np.tril(np.ones((6, 6), dtype=bool)))
        g = compute_g(a, full).to_dense()
        assert np.allclose(g.T @ g, np.linalg.inv(d), atol=1e-8)

    def test_frobenius_minimality(self):
        # Perturbing any stored entry of G must not decrease ||I - G L||_F.
        d = random_spd_dense(6, seed=22, density=0.6)
        a = csr_from_dense(d)
        L = np.linalg.cholesky(d)
        p = fsai_initial_pattern(a)
        g = compute_g(a, p)
        gd = g.to_dense()
        # The Frobenius-optimal G for pattern S minimises row-by-row; its
        # scaled variant keeps optimality direction-wise: check stationarity.
        base = np.linalg.norm(np.eye(6) - (gd @ L), "fro") ** 2
        rows, cols = p.coo()
        for r, c in zip(rows, cols):
            if r == c:
                continue  # diagonal is constrained by the normalisation
            for eps in (1e-4, -1e-4):
                gp = gd.copy()
                gp[r, c] += eps
                # re-normalise the row to keep (GAG^T)_rr = 1
                quad = gp[r] @ d @ gp[r]
                gp[r] /= np.sqrt(quad)
                perturbed = np.linalg.norm(np.eye(6) - gp @ L, "fro") ** 2
                assert perturbed >= base - 1e-10

    def test_diagonal_pattern_is_jacobi_sqrt(self, spd8):
        p = Pattern.identity(8)
        g = compute_g(spd8, p)
        assert np.allclose(g.diagonal(), 1.0 / np.sqrt(spd8.diagonal()))

    def test_rejects_indefinite(self):
        a = csr_from_dense(np.diag([1.0, -1.0]))
        with pytest.raises(NotSPDError):
            compute_g(a, Pattern.identity(2))

    def test_shape_mismatch(self, spd8):
        with pytest.raises(ShapeError):
            compute_g(spd8, Pattern.identity(5))


class TestPrecalculateG:
    def test_same_pattern(self, spd8):
        p = fsai_initial_pattern(spd8)
        g = precalculate_g(spd8, p)
        assert g.pattern == p

    def test_high_budget_matches_exact(self, spd8):
        p = fsai_initial_pattern(spd8)
        exact = compute_g(spd8, p)
        approx = precalculate_g(spd8, p, rtol=1e-12, max_iterations=500)
        assert np.allclose(approx.data, exact.data, atol=1e-6)

    def test_loose_budget_classifies_magnitudes(self):
        d = random_spd_dense(12, seed=30, density=0.5)
        a = csr_from_dense(d)
        p = fsai_initial_pattern(a)
        exact = compute_g(a, p)
        approx = precalculate_g(a, p, rtol=1e-2, max_iterations=20)
        # Large entries of the exact G must appear large in the approx.
        big = np.abs(exact.data) > 0.5 * np.abs(exact.data).max()
        assert np.all(np.abs(approx.data[big]) > 0.1 * np.abs(exact.data[big]))

    def test_fallback_on_breakdown_keeps_positive_diag(self):
        # Use an indefinite matrix: truncated CG breaks down, the Jacobi
        # fallback must still produce a usable (positive-diagonal) row.
        a = csr_from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        g = precalculate_g(a, a.pattern.tril(), max_iterations=1)
        assert np.all(g.diagonal() > 0)


class TestFlopEstimates:
    def test_direct_scales_cubically(self):
        p1 = Pattern.from_rows(4, 4, [[0], [1], [2], [3]])
        p2 = Pattern.from_rows(4, 4, [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]])
        assert setup_flops_direct(p2) > setup_flops_direct(p1)

    def test_precalc_iterations_clamped_by_row_width(self):
        # CG on a k x k system takes at most k steps, so the estimate stops
        # growing once the budget exceeds the widest row.
        p = Pattern.from_rows(3, 3, [[0], [0, 1], [1, 2]])
        assert setup_flops_precalc(p, 20) == setup_flops_precalc(p, 10)
        assert setup_flops_precalc(p, 2) > setup_flops_precalc(p, 1)

    def test_precalc_linear_below_clamp(self):
        wide = Pattern.from_rows(
            8, 8, [list(range(i + 1)) for i in range(8)]
        )
        assert setup_flops_precalc(wide, 4) < setup_flops_precalc(wide, 8)
