"""Property-based tests over the complete FSAIE pipelines (hypothesis).

Random sparse SPD matrices, random line sizes and alignments: the
structural invariants of the end-to-end setups must hold for all of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import ArrayPlacement
from repro.fsai.extended import (
    setup_fsai,
    setup_fsaie_full,
    setup_fsaie_sp,
)
from repro.sparse.construct import csr_from_dense
from repro.solvers.cg import pcg
from tests.conftest import random_spd_dense


@st.composite
def spd_matrices(draw):
    n = draw(st.integers(6, 28))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.1, 0.6))
    return csr_from_dense(random_spd_dense(n, seed=seed, density=density))


@st.composite
def placements(draw):
    line = draw(st.sampled_from([64, 128, 256]))
    offset = draw(st.integers(0, 7))
    return ArrayPlacement.with_element_offset(line, offset)


class TestPipelineInvariants:
    @given(spd_matrices(), placements(), st.sampled_from([0.0, 0.01, 0.1]))
    @settings(max_examples=30, deadline=None)
    def test_sp_pattern_nesting(self, a, placement, f):
        setup = setup_fsaie_sp(a, placement, filter_value=f)
        assert setup.base_pattern.is_subset_of(setup.final_pattern)
        assert setup.final_pattern.is_lower_triangular()
        assert setup.final_pattern.has_full_diagonal()

    @given(spd_matrices(), placements())
    @settings(max_examples=20, deadline=None)
    def test_full_contains_sp(self, a, placement):
        sp = setup_fsaie_sp(a, placement, filter_value=0.01)
        fu = setup_fsaie_full(a, placement, filter_value=0.01)
        assert sp.final_pattern.is_subset_of(fu.final_pattern)

    @given(spd_matrices(), placements())
    @settings(max_examples=20, deadline=None)
    def test_unit_diagonal_of_gagt(self, a, placement):
        setup = setup_fsaie_full(a, placement, filter_value=0.01)
        gd = setup.g.to_dense()
        diag = np.diag(gd @ a.to_dense() @ gd.T)
        assert np.allclose(diag, 1.0, atol=1e-8)

    @given(spd_matrices(), placements())
    @settings(max_examples=20, deadline=None)
    def test_extension_never_hurts_convergence(self, a, placement):
        rng = np.random.default_rng(0)
        b = rng.uniform(-1, 1, a.n_rows) / a.max_norm()
        base = pcg(a, b, preconditioner=setup_fsai(a).application)
        ext = pcg(
            a, b,
            preconditioner=setup_fsaie_full(
                a, placement, filter_value=0.0
            ).application,
        )
        assert ext.converged
        # Unfiltered cache extension can only enrich the Frobenius space:
        # allow a tiny roundoff slack in iterations.
        assert ext.iterations <= base.iterations + 2

    @given(spd_matrices(), placements())
    @settings(max_examples=20, deadline=None)
    def test_filter_monotone_nnz(self, a, placement):
        sizes = [
            setup_fsaie_sp(a, placement, filter_value=f).final_pattern.nnz
            for f in (0.0, 0.01, 0.1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    @given(spd_matrices(), placements())
    @settings(max_examples=15, deadline=None)
    def test_gt_storage_is_transpose(self, a, placement):
        setup = setup_fsaie_full(a, placement, filter_value=0.01)
        g = setup.application.g
        gt = setup.application.gt
        assert np.allclose(gt.to_dense(), g.to_dense().T)
