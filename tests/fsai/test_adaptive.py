"""Unit tests for the FSPAI-style adaptive patterns (repro.fsai.adaptive)."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.cacheline import lines_touched
from repro.collection.generators.fd import poisson2d
from repro.errors import NotSPDError, ShapeError
from repro.fsai.adaptive import (
    adaptive_pattern,
    setup_fspai,
    setup_fspai_cache_extended,
)
from repro.fsai.extended import setup_fsai
from repro.solvers.cg import pcg
from repro.sparse.construct import csr_from_dense


@pytest.fixture(scope="module")
def a():
    return poisson2d(12)  # n = 144


@pytest.fixture(scope="module")
def b(a):
    rng = np.random.default_rng(3)
    return rng.uniform(-1, 1, a.n_rows) / a.max_norm()


class TestAdaptivePattern:
    def test_lower_triangular_with_diagonal(self, a):
        p = adaptive_pattern(a, max_new_per_row=4)
        assert p.is_lower_triangular()
        assert p.has_full_diagonal()

    def test_budget_zero_gives_diagonal(self, a):
        p = adaptive_pattern(a, max_new_per_row=0)
        assert p.nnz == a.n_rows

    def test_budget_respected(self, a):
        p = adaptive_pattern(a, max_new_per_row=3, tolerance=0.0)
        assert int(p.row_lengths().max()) <= 4

    def test_growth_monotone_in_budget(self, a):
        small = adaptive_pattern(a, max_new_per_row=2, tolerance=1e-4)
        large = adaptive_pattern(a, max_new_per_row=6, tolerance=1e-4)
        assert large.nnz >= small.nnz

    def test_tight_tolerance_grows_more(self, a):
        loose = adaptive_pattern(a, max_new_per_row=8, tolerance=0.5)
        tight = adaptive_pattern(a, max_new_per_row=8, tolerance=1e-4)
        assert tight.nnz >= loose.nnz

    def test_candidates_per_step_batching(self, a):
        one = adaptive_pattern(a, max_new_per_row=4, candidates_per_step=1)
        two = adaptive_pattern(a, max_new_per_row=4, candidates_per_step=2)
        # Both respect the budget; batched growth may differ slightly.
        assert int(two.row_lengths().max()) <= 5
        assert abs(two.nnz - one.nnz) <= a.n_rows

    def test_dense_inverse_row_selected(self):
        # For a tridiagonal SPD matrix, the most valuable lower entries of
        # row i are its immediate predecessors — the adaptive growth must
        # pick the (i, i-1) coupling first.
        d = (
            np.diag(np.full(8, 2.0))
            + np.diag(np.full(7, -1.0), 1)
            + np.diag(np.full(7, -1.0), -1)
        )
        a = csr_from_dense(d)
        p = adaptive_pattern(a, max_new_per_row=1, tolerance=1e-8)
        for i in range(1, 8):
            assert (i, i - 1) in p

    def test_validations(self, a):
        with pytest.raises(ShapeError):
            adaptive_pattern(csr_from_dense(np.ones((2, 3))))
        with pytest.raises(ValueError):
            adaptive_pattern(a, max_new_per_row=-1)
        with pytest.raises(ValueError):
            adaptive_pattern(a, candidates_per_step=0)
        with pytest.raises(NotSPDError):
            adaptive_pattern(csr_from_dense(np.diag([1.0, -1.0])))


class TestSetups:
    def test_fspai_beats_static_fsai_iterations(self, a, b):
        static = setup_fsai(a)
        dynamic = setup_fspai(a, max_new_per_row=8, tolerance=1e-3)
        r_static = pcg(a, b, preconditioner=static.application)
        r_dynamic = pcg(a, b, preconditioner=dynamic.application)
        # §8: "dynamic approximate inverses are more powerful than their
        # static counterparts" — given enough budget.
        assert r_dynamic.iterations <= r_static.iterations

    def test_fspai_unit_diag_invariant(self, a):
        setup = setup_fspai(a, max_new_per_row=4)
        gd = setup.g.to_dense()
        gagt = gd @ a.to_dense() @ gd.T
        assert np.allclose(np.diag(gagt), 1.0, atol=1e-10)

    def test_cache_extension_composes(self, a, b):
        placement = ArrayPlacement.aligned(64)
        plain = setup_fspai(a, max_new_per_row=4, tolerance=1e-2)
        extended = setup_fspai_cache_extended(
            a, placement, max_new_per_row=4, tolerance=1e-2, filter_value=0.0
        )
        assert plain.base_pattern == extended.base_pattern
        assert plain.final_pattern.is_subset_of(extended.final_pattern)
        r_plain = pcg(a, b, preconditioner=plain.application)
        r_ext = pcg(a, b, preconditioner=extended.application)
        assert r_ext.iterations <= r_plain.iterations

    def test_cache_extension_preserves_line_footprint(self, a):
        placement = ArrayPlacement.aligned(64)
        extended = setup_fspai_cache_extended(
            a, placement, max_new_per_row=4, filter_value=0.0
        )
        base = extended.base_pattern
        final = extended.final_pattern
        for i in range(base.n_rows):
            assert np.array_equal(
                lines_touched(base.row(i), placement),
                lines_touched(final.row(i), placement),
            )

    def test_flop_ledger(self, a):
        ext = setup_fspai_cache_extended(a, ArrayPlacement.aligned(64))
        assert set(ext.flops) == {"adaptive", "precalc1", "direct"}
        assert ext.setup_flops > setup_fspai(a).setup_flops
