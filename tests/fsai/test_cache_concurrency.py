"""Concurrent preconditioner-cache access: single-flight and racing evictions.

The serving dispatcher shares one :class:`PreconditionerCache` between
its solver thread and arbitrarily many submitters, so the cache's
concurrency contract is load-bearing: concurrent misses on one key must
coalesce into a single build, a failed leader must not strand waiters,
and evictions racing an in-flight batch must never corrupt results or
deadlock.  These tests force each interleaving with events rather than
sleeps wherever the ordering can be made deterministic.
"""

import threading
import time

import numpy as np

from repro.fsai.cache import PreconditionerCache
from repro.collection.generators.fd import poisson2d
from repro.serve import InProcessClient, SolverService
from repro.serve.client import _as_stream
from repro.solvers.cg import pcg
from repro.sparse.construct import csr_from_dense

JOIN_TIMEOUT = 30.0


def _spd(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return csr_from_dense(m @ m.T + n * np.eye(n))


def _join_all(threads):
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads), "thread deadlocked"


class TestSingleFlight:
    def test_concurrent_misses_coalesce_into_one_build(self):
        cache = PreconditionerCache(capacity=4)
        a = _spd(8, 1)
        build_entered = threading.Event()
        release_build = threading.Event()
        calls = []

        def build():
            calls.append(1)
            build_entered.set()
            assert release_build.wait(JOIN_TIMEOUT)
            return "setup"

        results = []

        def probe():
            results.append(cache.get_or_build(a, build, method="fsai"))

        threads = [threading.Thread(target=probe) for _ in range(5)]
        threads[0].start()
        assert build_entered.wait(JOIN_TIMEOUT)
        for thread in threads[1:]:
            thread.start()
        # All four latecomers must park on the leader's event before it
        # is released (coalesced is bumped under the lock pre-wait).
        deadline = time.monotonic() + JOIN_TIMEOUT
        while cache.coalesced < 4 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert cache.coalesced == 4
        release_build.set()
        _join_all(threads)
        assert calls == [1]
        assert results == ["setup"] * 5
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 4
        assert stats["coalesced"] == 4

    def test_failed_leader_does_not_strand_waiters(self):
        cache = PreconditionerCache(capacity=4)
        a = _spd(8, 2)
        leader_entered = threading.Event()
        release_leader = threading.Event()
        calls = []
        outcome = {}

        def failing_build():
            calls.append("leader")
            leader_entered.set()
            assert release_leader.wait(JOIN_TIMEOUT)
            raise RuntimeError("leader build failed")

        def leader():
            try:
                cache.get_or_build(a, failing_build, method="fsai")
            except RuntimeError as exc:
                outcome["leader"] = exc

        def retry_build():
            calls.append("waiter")
            return "rebuilt"

        def waiter():
            outcome["waiter"] = cache.get_or_build(a, retry_build, method="fsai")

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        assert leader_entered.wait(JOIN_TIMEOUT)
        t_waiter = threading.Thread(target=waiter)
        t_waiter.start()
        deadline = time.monotonic() + JOIN_TIMEOUT
        while cache.coalesced < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert cache.coalesced == 1
        release_leader.set()
        _join_all([t_leader, t_waiter])
        # The leader's exception propagated to the leader only; the
        # waiter retried, became the new leader and built successfully.
        assert isinstance(outcome["leader"], RuntimeError)
        assert outcome["waiter"] == "rebuilt"
        assert calls == ["leader", "waiter"]
        assert cache.stats()["misses"] == 2

    def test_distinct_keys_build_concurrently(self):
        """One key's slow build must not serialize other keys behind it."""
        cache = PreconditionerCache(capacity=4)
        a, b = _spd(8, 3), _spd(8, 4)
        slow_entered = threading.Event()
        release_slow = threading.Event()

        def slow_build():
            slow_entered.set()
            assert release_slow.wait(JOIN_TIMEOUT)
            return "slow"

        def run_slow():
            cache.get_or_build(a, slow_build, method="fsai")

        t_slow = threading.Thread(target=run_slow)
        t_slow.start()
        assert slow_entered.wait(JOIN_TIMEOUT)
        # While A's build is in flight, B must complete immediately.
        fast = cache.get_or_build(b, lambda: "fast", method="fsai")
        assert fast == "fast"
        release_slow.set()
        _join_all([t_slow])
        assert cache.stats()["misses"] == 2
        assert cache.stats()["coalesced"] == 0


class TestEvictionRaces:
    def test_eviction_storm_keeps_results_correct(self):
        """Hammer a capacity-1 cache from many threads over many keys.

        Every get_or_build must return the value built for *its* key no
        matter how aggressively other keys evict it, and the counters
        must stay consistent (every probe is a hit, a miss or a
        coalesced wait that resolves through the loop).
        """
        cache = PreconditionerCache(capacity=1)
        mats = [_spd(6, seed) for seed in range(10, 14)]
        rounds = 25
        errors = []

        def worker(index):
            a = mats[index % len(mats)]
            expected = f"setup-{index % len(mats)}"
            for _ in range(rounds):
                got = cache.get_or_build(
                    a, lambda: expected, method="fsai"
                )
                if got != expected:
                    errors.append((expected, got))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        _join_all(threads)
        assert errors == []
        stats = cache.stats()
        assert stats["size"] <= 1
        assert stats["evictions"] > 0
        assert stats["hits"] + stats["misses"] == 8 * rounds

    def test_eviction_racing_in_flight_batches_through_service(self):
        """Interleaved async requests against a capacity-1 shared cache.

        Two operators round-robin through the dispatcher while the cache
        can hold only one setup, so every batch's ``cached_setup`` races
        the eviction triggered by the *other* operator's batch.  Served
        solutions must still match a direct PCG solve, and the service
        must drain cleanly (no deadlock between the solver thread and
        admission).
        """
        cache = PreconditionerCache(capacity=1)
        mats = [poisson2d(8), poisson2d(10)]
        rng = np.random.default_rng(7)
        blocks = [
            np.ascontiguousarray(rng.standard_normal((a.n_rows, 6)))
            for a in mats
        ]
        # max_batch=2 splits the stream into many small alternating
        # batches instead of one window swallowing everything, so the
        # two operators keep evicting each other mid-flight.
        service = SolverService(
            cache=cache, window_seconds=0.002, max_batch=2,
            queue_capacity=64,
        )
        with InProcessClient(service=service) as client:
            fps = [client.register(a) for a in mats]
            stream = _as_stream(fps, blocks)
            results = client.solve_many(stream, rtol=1e-10)
        assert all(r.converged for r in results)
        # Spot-check a solution per operator against the direct solver.
        by_fp = dict(zip(fps, mats))
        for (fp, rhs), served in zip(stream, results):
            a = by_fp[fp]
            direct = pcg(a, rhs, rtol=1e-10)
            np.testing.assert_allclose(
                served.x, direct.x, rtol=1e-6, atol=1e-8
            )
        stats = cache.stats()
        assert stats["size"] <= 1
        # The alternating operators force misses beyond the first two
        # and evictions while batches are in flight.
        assert stats["evictions"] > 0
        assert stats["misses"] > len(mats)
