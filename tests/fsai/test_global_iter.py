"""Global iterative SAI methods: convergence to FSAI + orchestration flow.

The row-decoupling argument in ``src/repro/fsai/global_iter.py`` says the
whole-matrix iterations solve exactly the FSAI local systems, so the
tests pin (a) data-level convergence of all three iterations to the
direct factor, (b) PCG iteration parity with FSAI on the stencil suite
(the CI acceptance gate allows 20%), and (c) the orchestration plumbing:
method registry contracts, cache integration, the campaign runner's
``(method, None)`` run keys, and sweep metadata surviving the
``CaseResult`` serialisation boundary the orchestrator ships results
across.
"""

import numpy as np
import pytest

from repro import trace
from repro.collection.generators.fd import poisson2d
from repro.collection.suite import get_case
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    CaseResult,
    ExperimentConfig,
    MethodRun,
    run_case,
)
from repro.fsai.cache import PreconditionerCache, cached_setup
from repro.fsai.extended import setup_fsai
from repro.fsai.frobenius import compute_g
from repro.fsai.global_iter import (
    DEFAULT_SWEEPS,
    global_g_chebyshev,
    global_g_minres,
    global_g_newton_schulz,
    normalize_factor,
    setup_gsai_cheb,
    setup_gsai_ns,
    setup_gsai_st,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.registry import (
    available_methods,
    get_method,
    selectable_methods,
)
from repro.solvers.cg import pcg
from repro.sparse.construct import csr_from_dense

from tests.conftest import random_spd_dense

ITERATIONS = {
    "gsai_st": global_g_minres,
    "gsai_cheb": global_g_chebyshev,
    "gsai_ns": global_g_newton_schulz,
}
SETUPS = {
    "gsai_st": setup_gsai_st,
    "gsai_cheb": setup_gsai_cheb,
    "gsai_ns": setup_gsai_ns,
}


# ----------------------------------------------------------------------
# Convergence to the direct FSAI factor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("method", sorted(ITERATIONS))
def test_converges_to_fsai_factor(method):
    a = poisson2d(12)
    pattern = fsai_initial_pattern(a)
    g_ref = compute_g(a, pattern)
    data, info = ITERATIONS[method](a, pattern, sweeps=200, rtol=1e-12)
    assert info.converged
    assert 1 <= info.sweeps <= 200
    assert info.flops > 0
    normalized, fallback_rows = normalize_factor(a, pattern, data)
    assert fallback_rows == 0
    np.testing.assert_allclose(normalized, g_ref.data, atol=1e-10)


@pytest.mark.parametrize("method", sorted(ITERATIONS))
def test_converges_on_random_spd(method):
    a = csr_from_dense(random_spd_dense(30, seed=3))
    pattern = fsai_initial_pattern(a)
    g_ref = compute_g(a, pattern)
    data, info = ITERATIONS[method](a, pattern, sweeps=500, rtol=1e-12)
    normalized, _ = normalize_factor(a, pattern, data)
    np.testing.assert_allclose(normalized, g_ref.data, atol=1e-8)
    assert info.residual <= 1e-10


def test_minres_residual_is_monotone():
    a = poisson2d(10)
    pattern = fsai_initial_pattern(a)
    residuals = [
        global_g_minres(a, pattern, sweeps=s, rtol=0.0)[1].residual
        for s in (1, 3, 6, 12)
    ]
    assert all(b <= a_ + 1e-15 for a_, b in zip(residuals, residuals[1:]))


# ----------------------------------------------------------------------
# End-to-end setups + PCG parity with FSAI (the acceptance gate)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("method", sorted(SETUPS))
@pytest.mark.parametrize("grid", [16, 24])
def test_pcg_iteration_parity_with_fsai(method, grid):
    a = poisson2d(grid)
    rng = np.random.default_rng(2021)
    b = rng.standard_normal(a.n_rows)
    fsai_iters = pcg(
        a, b, preconditioner=setup_fsai(a).application, rtol=1e-8
    ).iterations
    setup = SETUPS[method](a)
    result = pcg(a, b, preconditioner=setup.application, rtol=1e-8)
    assert result.converged
    # ISSUE 8 acceptance: within 20% of FSAI on matching patterns.
    assert result.iterations <= int(np.ceil(1.2 * fsai_iters))


@pytest.mark.parametrize("method", sorted(SETUPS))
def test_setup_metadata(method):
    a = poisson2d(10)
    setup = SETUPS[method](a)
    assert setup.method == method
    assert setup.filter_value is None
    assert setup.sweeps is not None and 1 <= setup.sweeps <= DEFAULT_SWEEPS
    assert set(setup.flops) == {"global"}
    assert setup.setup_flops > 0
    assert setup.final_pattern.is_lower_triangular()
    # Local methods keep the sweep slot empty.
    assert setup_fsai(a).sweeps is None


def test_sweep_budget_is_respected():
    a = poisson2d(12)
    setup = setup_gsai_st(a, sweeps=3, rtol=0.0)
    assert setup.sweeps == 3


def test_invalid_arguments():
    a = poisson2d(8)
    pattern = fsai_initial_pattern(a)
    with pytest.raises(ValueError, match="sweeps must be >= 1"):
        global_g_minres(a, pattern, sweeps=0)
    with pytest.raises(ValueError, match="rtol must be non-negative"):
        global_g_minres(a, pattern, rtol=-1.0)
    with pytest.raises(ValueError, match="lambda_lo"):
        global_g_chebyshev(a, pattern, lambda_lo=2.0, lambda_hi=1.0)


def test_legacy_setup_backend_names_accepted():
    # The LAPACK paths have no SpGEMM; legacy names fall back to the
    # kernel registry default instead of erroring.
    a = poisson2d(8)
    ref = setup_gsai_st(a).g.data
    for name in ("bucketed", "reference", None, "numpy"):
        assert setup_gsai_st(a, setup_backend=name).g.data == pytest.approx(ref)


def test_trace_records_global_iteration():
    a = poisson2d(8)
    with trace.collecting() as collector:
        setup_gsai_cheb(a)
    summary = trace.TraceSummary.from_collector(collector)
    spans = {s.name for s in summary.iter_spans()}
    # The sweeps run through bound spgemm handles (no per-call span, like
    # every other bound handle) — the iteration span carries the counts.
    assert "fsai.setup" in spans
    assert "fsai.global_iter" in spans
    iter_span = next(
        s for s in summary.iter_spans() if s.name == "fsai.global_iter"
    )
    assert iter_span.attrs["method"] == "gsai_cheb"
    assert iter_span.attrs["sweeps"] >= 1


def test_trace_records_spgemm_public_entry():
    from repro.kernels import get_backend

    a = poisson2d(8)
    with trace.collecting() as collector:
        get_backend("numpy").spgemm(a, a)
    summary = trace.TraceSummary.from_collector(collector)
    span = next(s for s in summary.iter_spans() if s.name == "spgemm")
    assert span.attrs["backend"] == "numpy"
    assert span.attrs["products"] > 0
    assert span.attrs["capped"] is False


# ----------------------------------------------------------------------
# Registry contracts
# ----------------------------------------------------------------------


def test_registry_catalogue():
    assert set(available_methods()) >= {
        "fsai", "fsaie_sp", "fsaie_full", "fsaie_joint", "fsaie_random",
        "gsai_st", "gsai_cheb", "gsai_ns",
    }
    assert "fsaie_random" not in selectable_methods()
    spec = get_method("gsai_st")
    assert spec.kind == "global"
    assert spec.uses_sweeps and not spec.uses_filter and not spec.uses_placement
    local = get_method("fsaie_full")
    assert local.uses_filter and local.uses_placement and not local.uses_sweeps


def test_registry_unknown_method():
    with pytest.raises(ConfigurationError, match="unknown FSAI setup method"):
        get_method("nope")
    # ConfigurationError is a ValueError: the historical contract holds.
    with pytest.raises(ValueError, match="unknown FSAI setup method"):
        get_method("nope")


def test_cached_setup_serves_global_methods():
    a = poisson2d(10)
    cache = PreconditionerCache(capacity=4)
    first = cached_setup(a, method="gsai_ns", cache=cache, sweeps=20)
    again = cached_setup(a, method="gsai_ns", cache=cache, sweeps=20)
    assert again is first
    other = cached_setup(a, method="gsai_ns", cache=cache, sweeps=5)
    assert other is not first
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 2


# ----------------------------------------------------------------------
# Campaign runner + serialisation boundary
# ----------------------------------------------------------------------


def test_run_case_records_global_methods():
    case = get_case(1)
    config = ExperimentConfig(
        methods=("fsaie_sp", "gsai_st"), filters=(0.01,), global_sweeps=25
    )
    result = run_case(case, config)
    assert ("fsaie_sp", 0.01) in result.runs
    assert ("gsai_st", None) in result.runs
    run = result.get("gsai_st")
    assert run.method == "gsai_st"
    assert run.filter_value is None
    assert run.sweeps is not None and 1 <= run.sweeps <= 25
    assert result.get("fsaie_sp", 0.01).sweeps is None
    assert run.converged


def test_run_case_rejects_unselectable_method():
    case = get_case(1)
    config = ExperimentConfig(methods=("fsaie_random",))
    with pytest.raises(ConfigurationError, match="cannot be selected"):
        run_case(case, config)


def test_case_result_round_trips_sweep_metadata():
    case = get_case(1)
    config = ExperimentConfig(
        methods=("gsai_cheb",), filters=(), global_sweeps=15
    )
    result = run_case(case, config)
    restored = CaseResult.from_dict(result.to_dict())
    run = restored.get("gsai_cheb")
    assert run.sweeps == result.get("gsai_cheb").sweeps
    assert run.sweeps is not None and run.sweeps >= 1
    assert run.to_dict()["sweeps"] == run.sweeps


def test_method_run_payloads_without_sweeps_still_load():
    payload = MethodRun(
        method="fsaie_sp", filter_value=0.01, iterations=10, converged=True,
        relative_residual=1e-9, setup_seconds=0.1, solve_seconds=0.2,
        g_nnz=100, pct_nnz=5.0, x_misses_per_g_nnz=0.1, gflops=1.0,
    ).to_dict()
    payload.pop("sweeps")  # pre-global-methods checkpoint record
    assert MethodRun.from_dict(payload).sweeps is None


def test_config_round_trip_and_old_payloads():
    config = ExperimentConfig(methods=("gsai_st",), global_sweeps=7)
    assert ExperimentConfig.from_dict(config.to_dict()) == config
    old = config.to_dict()
    old.pop("global_sweeps")
    assert ExperimentConfig.from_dict(old).global_sweeps == 30
    # The sweep budget is part of the checkpoint identity.
    assert config.config_hash() != ExperimentConfig(
        methods=("gsai_st",), global_sweeps=8
    ).config_hash()
