"""Unit tests for repro.fsai.precond and repro.fsai.extended."""

import numpy as np
import pytest

from repro.arch.address import ArrayPlacement
from repro.arch.cacheline import lines_touched
from repro.errors import ShapeError
from repro.fsai.extended import (
    setup_fsai,
    setup_fsaie_full,
    setup_fsaie_joint,
    setup_fsaie_random,
    setup_fsaie_sp,
)
from repro.fsai.precond import FSAIApplication
from repro.fsai.frobenius import compute_g
from repro.fsai.patterns import fsai_initial_pattern
from repro.collection.generators.fd import poisson2d
from repro.solvers.cg import cg, pcg
from repro.sparse.construct import csr_from_dense
from tests.conftest import random_spd_dense


@pytest.fixture(scope="module")
def a():
    return poisson2d(14)  # n = 196


@pytest.fixture(scope="module")
def b(a):
    rng = np.random.default_rng(0)
    return rng.uniform(-1, 1, a.n_rows) / a.max_norm()


@pytest.fixture
def p64():
    return ArrayPlacement.aligned(64)


class TestFSAIApplication:
    def test_apply_is_gtg(self):
        d = random_spd_dense(10, seed=1, density=0.5)
        a = csr_from_dense(d)
        g = compute_g(a, fsai_initial_pattern(a))
        app = FSAIApplication(g)
        r = np.random.default_rng(2).standard_normal(10)
        gd = g.to_dense()
        assert np.allclose(app.apply(r), gd.T @ (gd @ r))

    def test_flops(self):
        d = random_spd_dense(6, seed=2)
        a = csr_from_dense(d)
        g = compute_g(a, fsai_initial_pattern(a))
        app = FSAIApplication(g)
        assert app.flops_per_application() == 2 * (g.nnz + app.gt.nnz)

    def test_shape_check(self):
        d = random_spd_dense(6, seed=3)
        a = csr_from_dense(d)
        app = FSAIApplication(compute_g(a, fsai_initial_pattern(a)))
        with pytest.raises(ShapeError):
            app.apply(np.ones(7))

    def test_requires_square(self):
        from repro.sparse.construct import csr_from_dense as cfd
        with pytest.raises(ShapeError):
            FSAIApplication(cfd(np.ones((2, 3))))

    def test_explicit_inverse_approx_spd(self):
        d = random_spd_dense(8, seed=4)
        a = csr_from_dense(d)
        app = FSAIApplication(compute_g(a, fsai_initial_pattern(a)))
        m = app.as_explicit_inverse_approx()
        assert np.allclose(m, m.T)
        assert np.all(np.linalg.eigvalsh(m) > 0)


class TestSetups:
    def test_baseline(self, a, b):
        s = setup_fsai(a)
        assert s.method == "fsai"
        assert s.nnz_increase_pct == 0.0
        res = pcg(a, b, preconditioner=s.application)
        plain = cg(a, b)
        assert res.converged and res.iterations < plain.iterations

    def test_sp_reduces_iterations(self, a, b, p64):
        base = pcg(a, b, preconditioner=setup_fsai(a).application)
        sp = setup_fsaie_sp(a, p64, filter_value=0.01)
        res = pcg(a, b, preconditioner=sp.application)
        assert res.iterations <= base.iterations
        assert sp.nnz_increase_pct > 0

    def test_full_extends_at_least_sp(self, a, p64):
        sp = setup_fsaie_sp(a, p64, filter_value=0.01)
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        assert fu.final_pattern.nnz >= sp.final_pattern.nnz
        assert sp.final_pattern.is_subset_of(fu.final_pattern)

    def test_full_keeps_gp_cache_friendly(self, a, p64):
        """First-extension invariant survives the whole FSAIE(full) flow:
        the G rows touch the same x lines as the base pattern rows."""
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        base, final = fu.base_pattern, fu.final_pattern
        for i in range(base.n_rows):
            base_lines = set(lines_touched(base.row(i), p64).tolist())
            final_lines = set(lines_touched(final.row(i), p64).tolist())
            # Second (transpose) extension may add entries in *columns* of G,
            # but those must still live in lines the transpose product needs;
            # rows may gain lines only via transpose-extension entries, which
            # are cache-friendly for the G^T product by construction. The
            # first product's line set therefore stays within the union of
            # base lines and the (filtered) transpose-extension lines:
            assert base_lines.issubset(final_lines)

    def test_full_gt_pattern_cache_friendly_for_second_product(self, a, p64):
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        gt_pattern = fu.application.gt_pattern
        # The stored G^T rows must touch no more lines than the transpose of
        # the *first-stage* pattern extended for the second product; the
        # operational check: re-extending G^T adds entries only where the
        # filter removed them (no new lines per row).
        from repro.fsai.fillin import extend_pattern_cache_friendly

        reext = extend_pattern_cache_friendly(gt_pattern, p64, triangular="upper")
        for i in range(gt_pattern.n_rows):
            assert np.array_equal(
                lines_touched(gt_pattern.row(i), p64),
                lines_touched(reext.row(i), p64),
            )

    def test_filter_monotone_pattern_size(self, a, p64):
        sizes = [
            setup_fsaie_full(a, p64, filter_value=f).final_pattern.nnz
            for f in (0.0, 0.01, 0.1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_flop_ledger_keys(self, a, p64):
        assert set(setup_fsai(a).flops) == {"direct"}
        assert set(setup_fsaie_sp(a, p64).flops) == {"precalc1", "direct"}
        assert set(setup_fsaie_full(a, p64).flops) == {
            "precalc1", "precalc2", "direct",
        }

    def test_setup_flops_ordering(self, a, p64):
        """§7.4: extended setups cost more than the baseline."""
        base = setup_fsai(a).setup_flops
        sp = setup_fsaie_sp(a, p64).setup_flops
        fu = setup_fsaie_full(a, p64).setup_flops
        assert base < sp < fu

    def test_256B_extends_more(self, a):
        e64 = setup_fsaie_full(a, ArrayPlacement.aligned(64), filter_value=0.0)
        e256 = setup_fsaie_full(a, ArrayPlacement.aligned(256), filter_value=0.0)
        assert e256.nnz_increase_pct > e64.nnz_increase_pct

    def test_joint_setup_runs(self, a, b, p64):
        s = setup_fsaie_joint(a, p64, filter_value=0.01)
        assert s.method == "fsaie_joint"
        res = pcg(a, b, preconditioner=s.application)
        assert res.converged

    def test_random_matches_counts(self, a, p64):
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        rnd = setup_fsaie_random(a, fu, seed=0)
        assert rnd.final_pattern.nnz == fu.final_pattern.nnz
        assert rnd.method == "fsaie_random"
        assert rnd.filter_value == fu.filter_value

    def test_added_per_row_nonnegative(self, a, p64):
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        assert (fu.added_per_row() >= 0).all()

    def test_unit_diag_invariant_after_full_flow(self, a, p64):
        fu = setup_fsaie_full(a, p64, filter_value=0.01)
        gd = fu.g.to_dense()
        gagt = gd @ a.to_dense() @ gd.T
        assert np.allclose(np.diag(gagt), 1.0, atol=1e-10)

    def test_repr(self, a, p64):
        assert "fsaie_sp" in repr(setup_fsaie_sp(a, p64))


class TestConvergenceQualityChain:
    """More pattern => better preconditioner (iteration counts), the chain
    the whole paper rests on."""

    def test_iteration_chain(self, a, b, p64):
        runs = {}
        for name, setup in (
            ("fsai", setup_fsai(a)),
            ("sp", setup_fsaie_sp(a, p64, filter_value=0.0)),
            ("full", setup_fsaie_full(a, p64, filter_value=0.0)),
        ):
            runs[name] = pcg(a, b, preconditioner=setup.application).iterations
        assert runs["sp"] <= runs["fsai"]
        assert runs["full"] <= runs["sp"] + 1  # allow a tie within noise
