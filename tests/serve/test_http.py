"""Stdlib HTTP front door: routes, JSON wire format, error mapping."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import (
    OverloadRejectedError,
    RequestTimeoutError,
    ServeError,
    ServiceClosedError,
    UnknownOperatorError,
)
from repro.serve import InProcessClient
from repro.serve.http import _status_for, make_server
from repro.solvers.cg import pcg


@pytest.fixture(scope="module")
def served():
    """One client + HTTP server shared by every route test."""
    client = InProcessClient(window_seconds=0.001, max_batch=8)
    client.start()
    server = make_server(client, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield client, base
    finally:
        server.shutdown()
        server.server_close()
        thread.join(30)
        client.close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read().decode())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode())


def _error_body(exc: urllib.error.HTTPError):
    return json.loads(exc.read().decode())


class TestRoutes:
    def test_healthz(self, served):
        _, base = served
        status, body = _get(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert isinstance(body["operators"], int)

    def test_register_then_list_then_solve(self, served):
        client, base = served
        a = poisson2d(6)
        status, body = _post(
            base,
            "/operators",
            {
                "n_rows": a.n_rows,
                "n_cols": a.n_cols,
                "indptr": [int(v) for v in a.indptr],
                "indices": [int(v) for v in a.indices],
                "data": [float(v) for v in a.data],
            },
        )
        assert status == 200
        fp = body["operator"]
        assert fp == a.fingerprint()
        assert body["n"] == a.n_rows

        status, body = _get(base, "/operators")
        assert status == 200
        assert fp in body["operators"]

        rhs = np.random.default_rng(5).standard_normal(a.n_rows)
        status, body = _post(
            base,
            "/solve",
            {"operator": fp, "rhs": [float(v) for v in rhs], "rtol": 1e-8},
        )
        assert status == 200
        assert body["converged"] is True
        assert body["operator"] == fp
        assert body["batch_size"] >= 1
        assert body["latency_seconds"] > 0.0
        direct = pcg(a, rhs, rtol=1e-8)
        np.testing.assert_allclose(
            np.asarray(body["x"]), direct.x, rtol=1e-5, atol=1e-8
        )

    def test_metrics_reflect_served_requests(self, served):
        client, base = served
        a = poisson2d(8)
        fp = client.register(a)
        client.solve(fp, np.ones(a.n_rows), rtol=1e-8)
        status, body = _get(base, "/metrics")
        assert status == 200
        assert body["solved"] >= 1
        assert "latency_seconds" in body

    def test_unknown_operator_maps_to_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/solve", {"operator": "0" * 64, "rhs": [1.0, 2.0]})
        assert info.value.code == 404
        body = _error_body(info.value)
        assert body["type"] == "UnknownOperatorError"

    def test_bad_json_body_maps_to_400(self, served):
        _, base = served
        request = urllib.request.Request(
            base + "/solve", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
        assert "bad JSON body" in _error_body(info.value)["error"]

    def test_missing_solve_fields_map_to_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/solve", {"rhs": [1.0]})
        assert info.value.code == 400

    def test_malformed_register_maps_to_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/operators", {"n_rows": 2})
        assert info.value.code == 400

    def test_unknown_routes_map_to_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(base, "/nope")
        assert info.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(base, "/nope", {})
        assert info.value.code == 404


class TestStatusMapping:
    def test_typed_serve_errors(self):
        assert _status_for(OverloadRejectedError("full", 4)) == 429
        assert _status_for(UnknownOperatorError("who")) == 404
        assert _status_for(RequestTimeoutError("late", 0.5)) == 408
        assert _status_for(ServiceClosedError("bye")) == 503
        assert _status_for(ServeError("generic")) == 503
        assert _status_for(ValueError("nope")) == 400
