"""MultiProcessClient: sharded batching, respawn, cross-process seeding.

These tests spawn real worker processes (2 at most, small operators) so
they run on single-core CI runners; the kill-a-worker chaos test is the
acceptance gate for graceful degradation — typed retryable error for
in-flight requests, automatic respawn, factor-seeded recovery, no
shared-memory leaks.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import (
    ShapeError,
    UnknownOperatorError,
    WorkerCrashedError,
)
from repro.serve import MultiProcessClient, shard_for
from repro.serve.pool import _portable_exception


def _rhs(a, seed=0):
    return np.ascontiguousarray(
        np.random.default_rng(seed).standard_normal(a.n_rows)
    )


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestShardRouting:
    def test_shard_for_is_deterministic_and_in_range(self):
        fps = [poisson2d(n).fingerprint() for n in (5, 6, 7, 8)]
        for n_workers in (1, 2, 3, 4):
            shards = [shard_for(fp, n_workers) for fp in fps]
            assert shards == [shard_for(fp, n_workers) for fp in fps]
            assert all(0 <= s < n_workers for s in shards)

    def test_shard_for_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            shard_for("ab" * 32, 0)

    def test_single_worker_owns_everything(self):
        assert shard_for("ff" * 32, 1) == 0


class TestPortableException:
    def test_multi_arg_errors_survive_pickling(self):
        exc = WorkerCrashedError("shard 3 died", 3)
        out = _portable_exception(exc)
        assert isinstance(out, WorkerCrashedError)
        assert out.shard == 3
        assert out.retryable

    def test_unpicklable_error_degrades_to_runtime_error(self):
        class Weird(Exception):
            def __init__(self, a, b):
                super().__init__(f"{a}/{b}")

        out = _portable_exception(Weird("x", "y"))
        assert isinstance(out, RuntimeError)
        assert "Weird" in str(out)


class TestPoolServing:
    def test_batches_across_two_shards(self):
        a1, a2 = poisson2d(8), poisson2d(9)
        with MultiProcessClient(2, window_seconds=0.02) as client:
            fp1 = client.register(a1)
            fp2 = client.register(a2)
            assert client.operator_count() == 2
            stream = []
            for seed in range(6):
                stream.append((fp1, _rhs(a1, seed)))
                stream.append((fp2, _rhs(a2, seed)))
            results = client.solve_many(stream, rtol=1e-8)
            assert len(results) == 12
            assert all(r.converged for r in results)
            metrics = client.merged_metrics()
            assert metrics.solved == 12
            # Same-operator requests admitted together must batch.
            assert metrics.batches < metrics.batched_rhs
            snap = client.snapshot()
            assert snap["workers"] == 2
            assert snap["respawns"] == 0
            assert set(snap["shards"]) == {"0", "1"}

    def test_register_accepts_matrix_in_solve(self):
        a = poisson2d(8)
        with MultiProcessClient(1, window_seconds=0.005) as client:
            result = client.solve(a, _rhs(a, 1), rtol=1e-8)
            assert result.converged

    def test_unknown_operator_and_bad_shape_are_typed(self):
        a = poisson2d(8)
        with MultiProcessClient(1, window_seconds=0.005) as client:
            with pytest.raises(UnknownOperatorError):
                client.solve("0" * 64, np.ones(4))
            fp = client.register(a)
            with pytest.raises(ShapeError):
                client.solve(fp, np.ones(3))

    def test_merged_metrics_picklable_snapshot(self):
        a = poisson2d(8)
        with MultiProcessClient(1, window_seconds=0.005) as client:
            fp = client.register(a)
            client.solve(fp, _rhs(a, 1), rtol=1e-8)
            snap = client.snapshot()
            assert snap["solved"] == 1
            assert snap["shm"]["published"] == 1


class TestChaosRespawn:
    def test_killed_worker_respawns_and_shard_recovers(self):
        """The acceptance chaos test: SIGKILL the owning worker mid-flight.

        In-flight requests fail with the typed retryable error, the
        shard respawns, and — because the factor was published to the
        store after the first solve — the respawned worker serves cache
        hits without re-running FSAI setup.
        """
        a = poisson2d(10)
        with MultiProcessClient(2, window_seconds=0.005) as client:
            fp = client.register(a)
            shard = client.shard_of(fp)
            # Warm solve: builds the factor and publishes it.
            assert client.solve(fp, _rhs(a, 0), rtol=1e-8).converged
            assert _wait_until(lambda: len(client.store.factors()) == 1)

            victim = client._workers[shard].process
            futures = [
                client.submit(fp, _rhs(a, seed), rtol=1e-8)
                for seed in range(4)
            ]
            os.kill(victim.pid, signal.SIGKILL)

            crashed = 0
            for future in futures:
                try:
                    future.result(timeout=60)
                except WorkerCrashedError as exc:
                    crashed += 1
                    assert exc.shard == shard
                    assert exc.retryable
            assert crashed >= 1  # at least the batch in flight died

            assert _wait_until(lambda: client.respawns == 1)
            assert _wait_until(
                lambda: client._workers[shard].process.is_alive()
            )

            # The respawned shard serves again...
            for seed in range(3):
                assert client.solve(fp, _rhs(a, 10 + seed),
                                    rtol=1e-8).converged
            metrics = client.merged_metrics()
            # ...from the seeded factor: the respawned incarnation never
            # misses (the only miss happened before the kill).
            assert metrics.cache_hits >= 3
            snap = client.snapshot()
            assert snap["respawns"] == 1
            assert snap["shards"][str(shard)]["respawns"] == 1

    def test_submit_after_close_raises(self):
        a = poisson2d(8)
        client = MultiProcessClient(1, window_seconds=0.005)
        client.start()
        fp = client.register(a)
        client.close()
        with pytest.raises(Exception):
            client.solve(fp, _rhs(a, 1))
        client.close()  # idempotent
