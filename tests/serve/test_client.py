"""InProcessClient: the synchronous, multi-thread harness over the loop."""

import threading

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import OverloadRejectedError, UnknownOperatorError
from repro.fsai.extended import setup_fsai
from repro.serve import InProcessClient, SolverService
from repro.serve.client import _as_stream
from repro.solvers.cg import pcg


def _rhs(a, seed=0):
    return np.ascontiguousarray(
        np.random.default_rng(seed).standard_normal(a.n_rows)
    )


class TestLifecycle:
    def test_context_manager_starts_and_drains(self):
        a = poisson2d(6)
        with InProcessClient(window_seconds=0.001) as client:
            fp = client.register(a)
            result = client.solve(fp, _rhs(a, 1), rtol=1e-8)
        assert result.converged

    def test_solve_before_start_raises(self):
        client = InProcessClient()
        with pytest.raises(RuntimeError, match="not started"):
            client.solve("0" * 64, np.ones(4))

    def test_close_is_idempotent_and_restart_works(self):
        a = poisson2d(6)
        client = InProcessClient(window_seconds=0.001)
        client.start()
        client.start()  # second start is a no-op
        fp = client.register(a)
        assert client.solve(fp, _rhs(a, 1), rtol=1e-8).converged
        client.close()
        client.close()  # second close is a no-op

    def test_service_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            InProcessClient(SolverService(), window_seconds=0.01)

    def test_wraps_an_injected_service(self):
        service = SolverService(window_seconds=0.001)
        a = poisson2d(6)
        with InProcessClient(service=service) as client:
            assert client.service is service
            fp = client.register(a)
            assert client.solve(fp, _rhs(a, 2), rtol=1e-8).converged


class TestRequests:
    def test_submit_returns_waitable_future(self):
        a = poisson2d(6)
        with InProcessClient(window_seconds=0.001) as client:
            fp = client.register(a)
            future = client.submit(fp, _rhs(a, 1), rtol=1e-8)
            assert future.result(timeout=30).converged

    def test_typed_errors_surface_through_futures(self):
        with InProcessClient(window_seconds=0.001) as client:
            future = client.submit("0" * 64, np.ones(4))
            with pytest.raises(UnknownOperatorError):
                future.result(timeout=30)

    def test_solve_many_preserves_stream_order(self):
        mats = [poisson2d(6), poisson2d(8)]
        apps = [setup_fsai(a).application for a in mats]
        with InProcessClient(window_seconds=0.005, max_batch=8) as client:
            fps = [client.register(a) for a in mats]
            blocks = [
                np.ascontiguousarray(
                    np.random.default_rng(3 + i).standard_normal(
                        (a.n_rows, 3)
                    )
                )
                for i, a in enumerate(mats)
            ]
            stream = _as_stream(fps, blocks)
            results = client.solve_many(stream, rtol=1e-10)
        assert len(results) == len(stream)
        by_fp = dict(zip(fps, zip(mats, apps)))
        for (fp, rhs), served in zip(stream, results):
            assert served.operator == fp
            a, app = by_fp[fp]
            direct = pcg(a, rhs, preconditioner=app, rtol=1e-10)
            np.testing.assert_allclose(
                served.x, direct.x, rtol=1e-6, atol=1e-9
            )

    def test_solve_many_propagates_first_failure(self):
        a = poisson2d(6)
        with InProcessClient(window_seconds=0.001) as client:
            fp = client.register(a)
            stream = [(fp, _rhs(a, 1)), ("0" * 64, _rhs(a, 2))]
            with pytest.raises(UnknownOperatorError):
                client.solve_many(stream, rtol=1e-8)

    def test_concurrent_submitters_from_many_threads(self):
        """The client surface is thread-safe: N threads share one loop."""
        a = poisson2d(8)
        n_threads, per_thread = 4, 3
        results, errors = [], []
        with InProcessClient(
            window_seconds=0.005, max_batch=32, queue_capacity=64
        ) as client:
            fp = client.register(a)

            def worker(seed):
                try:
                    for i in range(per_thread):
                        results.append(
                            client.solve(
                                fp, _rhs(a, seed * 100 + i), rtol=1e-8
                            )
                        )
                except Exception as exc:  # pragma: no cover - fail the test
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        assert errors == []
        assert len(results) == n_threads * per_thread
        assert all(r.converged for r in results)

    def test_rejection_reaches_the_submitting_thread(self):
        a = poisson2d(6)
        entered = threading.Event()
        release = threading.Event()

        def blocking(matrix, cols, app, rtol, atol, max_iterations):
            from repro.serve.dispatcher import _default_solver

            entered.set()
            assert release.wait(30)
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        service = SolverService(
            window_seconds=0.0, max_batch=1, queue_capacity=1,
            solver=blocking,
        )
        with InProcessClient(service=service) as client:
            fp = client.register(a)
            first = client.submit(fp, _rhs(a, 0), rtol=1e-8)
            assert entered.wait(30)
            second = client.submit(fp, _rhs(a, 1), rtol=1e-8)
            # Queue (capacity 1) now holds the second request; the third
            # must be shed and the rejection must reach this thread.
            with pytest.raises(OverloadRejectedError):
                client.solve(fp, _rhs(a, 2), rtol=1e-8)
            release.set()
            assert first.result(timeout=30).converged
            assert second.result(timeout=30).converged


class TestStreamHelper:
    def test_round_robin_interleaving(self):
        fps = ["op-a", "op-b"]
        blocks = [
            np.arange(6, dtype=np.float64).reshape(2, 3),
            np.arange(4, dtype=np.float64).reshape(2, 2),
        ]
        stream = _as_stream(fps, blocks)
        assert [fp for fp, _ in stream] == [
            "op-a", "op-b", "op-a", "op-b", "op-a",
        ]
        np.testing.assert_array_equal(stream[0][1], blocks[0][:, 0])
        np.testing.assert_array_equal(stream[1][1], blocks[1][:, 0])
        np.testing.assert_array_equal(stream[4][1], blocks[0][:, 2])

    def test_empty_stream(self):
        assert _as_stream([], []) == []
