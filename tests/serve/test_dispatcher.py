"""SolverService contracts: correctness, batching, backpressure, isolation.

Async tests drive the service directly with ``asyncio.run`` (no plugin
dependency); where an interleaving matters the tests force it with
events and injected block solvers instead of sleeping and hoping.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro import trace
from repro.collection.generators.fd import poisson2d
from repro.errors import (
    OverloadRejectedError,
    RequestTimeoutError,
    ServiceClosedError,
    ShapeError,
    UnknownOperatorError,
)
from repro.fsai.extended import setup_fsai
from repro.serve import SolverService
from repro.serve.dispatcher import _default_solver
from repro.solvers.cg import pcg


def _rhs(a, seed=0):
    return np.ascontiguousarray(
        np.random.default_rng(seed).standard_normal(a.n_rows)
    )


class TestCorrectness:
    def test_served_solution_matches_direct_pcg(self):
        a = poisson2d(8)
        b = _rhs(a, 1)

        async def run():
            async with SolverService(window_seconds=0.0) as service:
                fp = service.register_operator(a)
                return await service.solve(fp, b, rtol=1e-10)

        served = asyncio.run(run())
        # Same numerics as a direct FSAI-preconditioned solve.
        direct = pcg(
            a, b, preconditioner=setup_fsai(a).application, rtol=1e-10
        )
        assert served.converged
        assert served.operator == a.fingerprint()
        assert served.batch_size == 1
        np.testing.assert_allclose(served.x, direct.x, rtol=1e-8, atol=1e-10)
        assert served.iterations == direct.iterations

    def test_inline_matrix_auto_registers(self):
        a = poisson2d(6)
        b = _rhs(a, 2)

        async def run():
            async with SolverService(window_seconds=0.0) as service:
                result = await service.solve(a, b, rtol=1e-8)
                assert a.fingerprint() in service.registry
                return result

        assert asyncio.run(run()).converged

    def test_batched_solutions_match_direct_solves(self):
        """Concurrent same-operator requests fuse into one block and every
        column still matches its single-RHS solution."""
        a = poisson2d(8)
        columns = [_rhs(a, seed) for seed in range(6)]
        sizes = []

        def capturing(matrix, cols, app, rtol, atol, max_iterations):
            sizes.append(len(cols))
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.05, max_batch=16, solver=capturing
            ) as service:
                fp = service.register_operator(a)
                return await asyncio.gather(*[
                    service.solve(fp, c, rtol=1e-10) for c in columns
                ])

        results = asyncio.run(run())
        assert max(sizes) > 1  # batching actually happened
        assert sum(sizes) == len(columns)
        for c, served in zip(columns, results):
            direct = pcg(a, c, rtol=1e-10)
            np.testing.assert_allclose(
                served.x, direct.x, rtol=1e-8, atol=1e-10
            )
            assert served.batch_size >= 1

    def test_mixed_operators_group_per_key(self):
        mats = [poisson2d(6), poisson2d(8)]
        batches = []

        def capturing(matrix, cols, app, rtol, atol, max_iterations):
            batches.append((matrix.n_rows, len(cols)))
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.05, max_batch=16, solver=capturing
            ) as service:
                fps = [service.register_operator(a) for a in mats]
                tasks = []
                for seed in range(4):
                    for fp, a in zip(fps, mats):
                        tasks.append(
                            service.solve(fp, _rhs(a, seed), rtol=1e-8)
                        )
                return await asyncio.gather(*tasks)

        results = asyncio.run(run())
        assert all(r.converged for r in results)
        # One block per operator, never a mixed one.
        assert sorted(batches) == [(36, 4), (64, 4)]

    def test_mismatched_tolerances_never_share_a_block(self):
        a = poisson2d(6)
        widths = []

        def capturing(matrix, cols, app, rtol, atol, max_iterations):
            widths.append((rtol, len(cols)))
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.05, max_batch=16, solver=capturing
            ) as service:
                fp = service.register_operator(a)
                return await asyncio.gather(
                    service.solve(fp, _rhs(a, 1), rtol=1e-6),
                    service.solve(fp, _rhs(a, 2), rtol=1e-6),
                    service.solve(fp, _rhs(a, 3), rtol=1e-10),
                )

        asyncio.run(run())
        assert sorted(widths) == [(1e-10, 1), (1e-6, 2)]


class TestAdmission:
    def test_unknown_operator_fails_fast(self):
        async def run():
            async with SolverService() as service:
                with pytest.raises(UnknownOperatorError):
                    await service.solve("0" * 64, np.ones(4))

        asyncio.run(run())

    def test_wrong_rhs_shape_rejected(self):
        a = poisson2d(6)

        async def run():
            async with SolverService() as service:
                fp = service.register_operator(a)
                with pytest.raises(ShapeError):
                    await service.solve(fp, np.ones(a.n_rows + 1))

        asyncio.run(run())

    def test_solve_after_stop_raises_closed(self):
        a = poisson2d(6)

        async def run():
            service = SolverService()
            await service.start()
            fp = service.register_operator(a)
            await service.stop()
            with pytest.raises(ServiceClosedError):
                await service.solve(fp, np.ones(a.n_rows))

        asyncio.run(run())

    def test_double_start_rejected(self):
        async def run():
            async with SolverService() as service:
                with pytest.raises(ServiceClosedError):
                    await service.start()

        asyncio.run(run())

    def test_overload_sheds_with_typed_rejection(self):
        """Fill the bounded queue behind a blocked solver; the next
        admission must raise OverloadRejectedError immediately."""
        a = poisson2d(6)
        solver_entered = threading.Event()
        release_solver = threading.Event()

        def blocking(matrix, cols, app, rtol, atol, max_iterations):
            solver_entered.set()
            assert release_solver.wait(30)
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.0, max_batch=1, queue_capacity=2,
                solver=blocking,
            ) as service:
                fp = service.register_operator(a)
                first = asyncio.ensure_future(
                    service.solve(fp, _rhs(a, 0), rtol=1e-8)
                )
                # Wait until the dispatcher is inside the blocked solve,
                # so the queue is empty and under our control.
                while not solver_entered.is_set():
                    await asyncio.sleep(0.001)
                queued = [
                    asyncio.ensure_future(
                        service.solve(fp, _rhs(a, seed), rtol=1e-8)
                    )
                    for seed in (1, 2)
                ]
                await asyncio.sleep(0)  # let both admissions run
                with trace.collecting() as collector:
                    with pytest.raises(OverloadRejectedError) as exc_info:
                        await service.solve(fp, _rhs(a, 3), rtol=1e-8)
                assert exc_info.value.queue_capacity == 2
                assert service.metrics.rejected == 1
                assert (
                    collector.total_counters().get("serve.rejected") == 1
                )
                release_solver.set()
                results = await asyncio.gather(first, *queued)
                return results

        results = asyncio.run(run())
        assert all(r.converged for r in results)

    def test_timeout_expires_only_before_dispatch(self):
        """A request whose deadline passes while queued gets
        RequestTimeoutError; one already solving always completes."""
        a = poisson2d(6)
        solver_entered = threading.Event()
        release_solver = threading.Event()

        def blocking(matrix, cols, app, rtol, atol, max_iterations):
            solver_entered.set()
            assert release_solver.wait(30)
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.0, max_batch=1, solver=blocking,
            ) as service:
                fp = service.register_operator(a)
                # First request enters the solver and blocks there; its
                # own (generous) timeout must NOT fire mid-solve.
                first = asyncio.ensure_future(
                    service.solve(fp, _rhs(a, 0), rtol=1e-8, timeout=30.0)
                )
                while not solver_entered.is_set():
                    await asyncio.sleep(0.001)
                # Second request waits in the queue with a tiny timeout.
                second = asyncio.ensure_future(
                    service.solve(fp, _rhs(a, 1), rtol=1e-8, timeout=0.01)
                )
                await asyncio.sleep(0.05)  # let the deadline lapse
                release_solver.set()
                first_result = await first
                with pytest.raises(RequestTimeoutError) as exc_info:
                    await second
                return first_result, exc_info.value

        first_result, timeout_error = asyncio.run(run())
        assert first_result.converged
        assert timeout_error.waited_seconds >= 0.01


class TestIsolationAndShutdown:
    def test_solver_failure_is_isolated_to_its_block(self):
        mats = [poisson2d(6), poisson2d(8)]

        def flaky(matrix, cols, app, rtol, atol, max_iterations):
            if matrix.n_rows == mats[0].n_rows:
                raise RuntimeError("numeric explosion")
            return _default_solver(
                matrix, cols, app, rtol, atol, max_iterations
            )

        async def run():
            async with SolverService(
                window_seconds=0.0, solver=flaky
            ) as service:
                fps = [service.register_operator(a) for a in mats]
                with pytest.raises(RuntimeError, match="numeric explosion"):
                    await service.solve(fps[0], _rhs(mats[0], 1))
                # The dispatcher survived: the next block still serves.
                result = await service.solve(
                    fps[1], _rhs(mats[1], 2), rtol=1e-8
                )
                assert service.metrics.failed == 1
                return result

        assert asyncio.run(run()).converged

    def test_stop_drains_admitted_requests(self):
        a = poisson2d(6)

        async def run():
            service = SolverService(window_seconds=0.0, max_batch=1)
            await service.start()
            fp = service.register_operator(a)
            futures = [
                asyncio.ensure_future(
                    service.solve(fp, _rhs(a, seed), rtol=1e-8)
                )
                for seed in range(4)
            ]
            await asyncio.sleep(0)  # admissions reach the queue
            await service.stop()
            return await asyncio.gather(*futures)

        results = asyncio.run(run())
        assert len(results) == 4
        assert all(r.converged for r in results)

    def test_stop_is_idempotent_and_restartable_service_raises(self):
        async def run():
            service = SolverService()
            await service.start()
            await service.stop()
            await service.stop()  # second stop is a no-op
            assert not service.running

        asyncio.run(run())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            SolverService(queue_capacity=0)
        with pytest.raises(ValueError, match="max_batch"):
            SolverService(max_batch=0)
        with pytest.raises(ValueError, match="window_seconds"):
            SolverService(window_seconds=-0.001)


class TestObservability:
    def test_trace_spans_and_counters(self):
        a = poisson2d(6)

        async def run():
            async with SolverService(window_seconds=0.05) as service:
                fp = service.register_operator(a)
                await asyncio.gather(*[
                    service.solve(fp, _rhs(a, seed), rtol=1e-8)
                    for seed in range(3)
                ])

        with trace.collecting() as collector:
            asyncio.run(run())
        counters = collector.total_counters()
        assert counters.get("serve.submitted") == 3
        assert counters.get("serve.batches", 0) >= 1
        assert counters.get("serve.batch_rhs") == 3
        names = []

        def walk(span):
            names.append(span.name)
            for child in span.children:
                walk(child)

        for root in collector.roots:
            walk(root)
        assert "serve.batch" in names
        assert "serve.request" in names

    def test_metrics_snapshot_counts(self):
        a = poisson2d(6)

        async def run():
            async with SolverService(window_seconds=0.05) as service:
                fp = service.register_operator(a)
                await asyncio.gather(*[
                    service.solve(fp, _rhs(a, seed), rtol=1e-8)
                    for seed in range(4)
                ])
                return service.metrics.snapshot()

        snap = asyncio.run(run())
        assert snap["submitted"] == 4
        assert snap["solved"] == 4
        assert snap["rejected"] == 0
        assert snap["batched_rhs"] == 4
        assert snap["mean_batch_size"] > 1.0
        assert snap["latency_seconds"]["p99"] > 0.0
        assert snap["latency_seconds"]["max"] >= snap["latency_seconds"]["p50"]
