"""SharedOperatorStore: publish/attach lifecycle, refcounts, eviction.

Single-process coverage of the shared-memory manifest the worker pool
builds on — cross-process behaviour (worker attach, factor adoption
after a kill) lives in ``test_pool.py``.
"""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.fsai.cache import config_key
from repro.fsai.extended import setup_fsai
from repro.serve.shm import (
    AttachedFactor,
    AttachedOperator,
    SharedOperatorStore,
    publish_factor_segment,
)


@pytest.fixture()
def store():
    s = SharedOperatorStore()
    yield s
    s.close()


class TestPublish:
    def test_publish_returns_spec_and_is_idempotent(self, store):
        a = poisson2d(6)
        spec = store.publish(a, method="fsai", config={})
        assert spec.fingerprint == a.fingerprint()
        assert spec.n_rows == a.n_rows
        assert spec.nnz == a.nnz
        assert spec.generation == 1
        again = store.publish(a, method="fsai", config={})
        assert again is spec  # exactly-once: same manifest entry
        assert len(store) == 1

    def test_segment_name_fits_posix_limit(self, store):
        spec = store.publish(poisson2d(6), method="fsai", config={})
        assert len(spec.segment) <= 31
        assert spec.segment.startswith(store.prefix)

    def test_attached_view_is_zero_copy_and_exact(self, store):
        a = poisson2d(7)
        spec = store.publish(a, method="fsai", config={})
        att = AttachedOperator(spec)
        try:
            m = att.matrix
            assert m.fingerprint() == a.fingerprint()
            np.testing.assert_array_equal(m.data, a.data)
            np.testing.assert_array_equal(m.indices, a.indices)
            entry = att.entry
            assert entry.method == "fsai"
        finally:
            att.close()

    def test_attached_entry_solves_like_the_original(self, store):
        a = poisson2d(6)
        spec = store.publish(a, method="fsai", config={})
        att = AttachedOperator(spec)
        try:
            setup = setup_fsai(att.matrix)
            assert setup.application is not None
        finally:
            att.close()


class TestRefcountsAndEviction:
    def test_acquire_release_tracks_refcount(self, store):
        a = poisson2d(6)
        spec = store.publish(a, method="fsai", config={})
        fp = spec.fingerprint
        assert store.refcount(fp) == 0
        store.acquire(fp)
        store.acquire(fp)
        assert store.refcount(fp) == 2
        store.release(fp)
        assert store.refcount(fp) == 1
        store.release(fp)
        assert store.refcount(fp) == 0

    def test_evict_refuses_while_attached(self, store):
        a = poisson2d(6)
        spec = store.publish(a, method="fsai", config={})
        fp = spec.fingerprint
        store.acquire(fp)
        assert store.evict(fp) is False  # live attachment: deferred
        assert fp in store
        # Last release performs the deferred unlink.
        store.release(fp)
        assert fp not in store

    def test_evict_without_attachments_unlinks_immediately(self, store):
        spec = store.publish(poisson2d(6), method="fsai", config={})
        assert store.evict(spec.fingerprint) is True
        assert spec.fingerprint not in store
        assert len(store) == 0

    def test_republish_after_evict_bumps_generation(self, store):
        a = poisson2d(6)
        first = store.publish(a, method="fsai", config={})
        store.evict(first.fingerprint)
        second = store.publish(a, method="fsai", config={})
        assert second.generation == first.generation + 1
        assert second.segment != first.segment


class TestFactors:
    def _factor_spec(self, store, a):
        setup = setup_fsai(a)
        key = (a.fingerprint(), "fsai", config_key({}))
        return publish_factor_segment(
            key, setup.application.g, prefix=store.prefix
        ), setup

    def test_adopt_factor_first_wins(self, store):
        a = poisson2d(6)
        spec, _ = self._factor_spec(store, a)
        assert store.adopt_factor(spec) is True
        dup, _ = self._factor_spec(store, a)
        assert store.adopt_factor(dup) is False  # duplicate destroyed
        assert [f.segment for f in store.factors()] == [spec.segment]
        assert store.factors_for(a.fingerprint()) == [spec]

    def test_attached_factor_seeds_a_working_application(self, store):
        a = poisson2d(6)
        spec, setup = self._factor_spec(store, a)
        store.adopt_factor(spec)
        att = AttachedFactor(spec)
        try:
            r = np.random.default_rng(0).standard_normal(a.n_rows)
            np.testing.assert_allclose(
                att.setup.application.apply(r.copy()),
                setup.application.apply(r.copy()),
                rtol=0, atol=0,
            )
            assert att.setup.seeded
        finally:
            att.close()

    def test_close_unlinks_everything(self):
        store = SharedOperatorStore()
        a = poisson2d(6)
        store.publish(a, method="fsai", config={})
        spec, _ = TestFactors()._factor_spec(store, a)
        store.adopt_factor(spec)
        store.close()
        from multiprocessing import shared_memory

        for name in (spec.segment,):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_stats_shape(self, store):
        store.publish(poisson2d(6), method="fsai", config={})
        stats = store.stats()
        assert stats["published"] == 1
        assert stats["live_segments"] == 1
        assert stats["attachments"] == 0
        assert set(stats) >= {
            "published", "evicted", "deferred_evictions", "factor_segments",
        }
