"""Serving bench harness: gates, report shape, overload phase."""

import json

from repro.serve.benchrun import (
    ServingBenchConfig,
    ServingBenchReport,
    run_serving_bench,
)

#: Small-but-real scope: enough requests to force batching, tiny grids.
SMOKE = ServingBenchConfig(
    requests=12,
    grids=(8,),
    window_seconds=0.005,
    max_batch=8,
    queue_capacity=64,
    overload_burst=8,
    overload_queue_capacity=2,
    overload_max_batch=2,
)


class TestRun:
    def test_smoke_scope_passes_every_gate(self):
        notes = []
        report = run_serving_bench(SMOKE, progress=notes.append)
        assert report.gate_failures == []
        assert report.all_converged
        assert report.metrics["mean_batch_size"] > 1.0
        assert report.counters.get("fsai.cache_hit", 0) > 0
        assert report.overload is not None
        assert report.overload["rejected"] > 0
        assert report.overload["unresolved"] == 0
        assert report.overload["unexpected_errors"] == 0
        assert report.speedup is not None and report.speedup > 0
        assert any("workload" in note for note in notes)

    def test_no_baseline_skips_serial_timing(self):
        config = ServingBenchConfig(
            requests=6, grids=(8,), baseline=False, overload_burst=0
        )
        report = run_serving_bench(config)
        assert report.serial_seconds is None
        assert report.speedup is None
        assert report.overload is None

    def test_unreachable_speedup_floor_fails_the_gate(self):
        config = ServingBenchConfig(
            requests=6, grids=(8,), overload_burst=0, min_speedup=1000.0
        )
        report = run_serving_bench(config)
        assert any("1000.0x floor" in f for f in report.gate_failures)

    def test_min_speedup_without_baseline_fails_the_gate(self):
        config = ServingBenchConfig(
            requests=6, grids=(8,), baseline=False, overload_burst=0,
            min_speedup=1.0,
        )
        report = run_serving_bench(config)
        assert any("no baseline" in f for f in report.gate_failures)


class TestReportShape:
    def test_to_dict_is_json_complete(self):
        report = run_serving_bench(SMOKE)
        payload = report.to_dict()
        for key in (
            "requests", "n_operators", "served_seconds",
            "served_rhs_per_sec", "serial_seconds", "speedup",
            "all_converged", "metrics", "counters", "overload",
            "gate_failures",
        ):
            assert key in payload
        assert payload["requests"] == SMOKE.requests
        assert "p99" in payload["metrics"]["latency_seconds"]
        json.dumps(payload)  # must be serialisable as-is

    def test_summary_lines_name_the_verdict(self):
        report = run_serving_bench(SMOKE)
        lines = report.summary_lines()
        assert any(line.startswith("gates: PASS") for line in lines)
        assert any("p99" in line for line in lines)
        assert any("overload burst" in line for line in lines)

    def test_failing_report_summarises_failures(self):
        report = ServingBenchReport(
            config=ServingBenchConfig(overload_burst=0),
            n_operators=1,
            served_seconds=0.5,
            served_rhs_per_sec=10.0,
            metrics={
                "mean_batch_size": 1.0,
                "latency_seconds": {"p50": 0.1, "p99": 0.2, "max": 0.3},
            },
            counters={},
            all_converged=True,
            gate_failures=["mean batch size 1.00 <= 1"],
        )
        assert any(
            "FAIL" in line and "mean batch size" in line
            for line in report.summary_lines()
        )
