"""ServiceMetrics/LatencyHistogram across process boundaries.

The pool folds per-worker metrics into one view with
``ServiceMetrics.from_dict(...)`` + ``merge``; this suite pins the three
properties that make the fold correct: lossless pickle/dict round-trips,
merge associativity/commutativity (fold order must not matter — workers
report in arbitrary order), and the histogram bucket contract.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.metrics import ServiceMetrics
from repro.trace.histogram import LatencyHistogram


def _sample_metrics(seed, samples=17):
    rng = np.random.default_rng(seed)
    m = ServiceMetrics()
    m.submitted = int(rng.integers(0, 100))
    m.solved = int(rng.integers(0, 100))
    m.failed = int(rng.integers(0, 10))
    m.rejected = int(rng.integers(0, 10))
    m.timeouts = int(rng.integers(0, 10))
    m.batches = int(rng.integers(0, 50))
    m.batched_rhs = int(rng.integers(0, 200))
    m.cache_hits = int(rng.integers(0, 50))
    m.cache_misses = int(rng.integers(0, 50))
    m.queue_high_water = int(rng.integers(0, 128))
    for value in rng.exponential(0.01, size=samples):
        m.latency.record(float(value))
        m.queue_wait.record(float(value) / 3.0)
    for value in rng.exponential(0.05, size=samples // 2):
        m.solve_seconds.record(float(value))
    return m


def _flat(m):
    d = m.to_dict()
    return {k: v for k, v in d.items() if not isinstance(v, dict)}, {
        k: v for k, v in d.items() if isinstance(v, dict)
    }


class TestRoundTrips:
    def test_pickle_round_trip_is_lossless(self):
        m = _sample_metrics(0)
        clone = pickle.loads(pickle.dumps(m))
        assert clone.to_dict() == m.to_dict()
        # The clone is live: its recreated lock records new samples.
        clone.latency.record(0.5)
        assert clone.latency.count == m.latency.count + 1

    def test_dict_round_trip_is_lossless(self):
        m = _sample_metrics(1)
        clone = ServiceMetrics.from_dict(m.to_dict())
        assert clone.to_dict() == m.to_dict()

    def test_histogram_round_trip_preserves_buckets(self):
        h = LatencyHistogram()
        for v in (1e-4, 3e-3, 0.2, 5.0):
            h.record(v)
        clone = LatencyHistogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()
        assert clone.count == 4
        assert clone.min == h.min and clone.max == h.max


class TestMergeAlgebra:
    def test_merge_adds_counters_and_histograms(self):
        a, b = _sample_metrics(2), _sample_metrics(3)
        expect_solved = a.solved + b.solved
        expect_latency = a.latency.count + b.latency.count
        expect_high = max(a.queue_high_water, b.queue_high_water)
        a.merge(b)
        assert a.solved == expect_solved
        assert a.latency.count == expect_latency
        assert a.queue_high_water == expect_high

    @settings(max_examples=25, deadline=None)
    @given(seeds=st.lists(st.integers(0, 10_000), min_size=2, max_size=5))
    def test_merge_fold_order_does_not_matter(self, seeds):
        """Associativity+commutativity: any fold order, same totals."""
        def fold(order):
            acc = ServiceMetrics()
            for s in order:
                acc.merge(_sample_metrics(s))
            return acc.to_dict()

        forward = fold(seeds)
        backward = fold(list(reversed(seeds)))
        # Bucket counts, extrema and integer counters are exactly fold-
        # order independent; the histograms' running float sums are only
        # reorderings of the same addends, so they agree to roundoff.
        for key, value in forward.items():
            if isinstance(value, dict):
                other = backward[key]
                assert other["counts"] == value["counts"]
                assert other["count"] == value["count"]
                assert other["min_seconds"] == value["min_seconds"]
                assert other["max_seconds"] == value["max_seconds"]
                assert other["total_seconds"] == pytest.approx(
                    value["total_seconds"], rel=1e-12
                )
            else:
                assert backward[key] == value, key

    def test_merge_after_pickle_equals_local_merge(self):
        """The pool's actual path: child pickles, parent merges."""
        a, b = _sample_metrics(4), _sample_metrics(5)
        local = ServiceMetrics.from_dict(a.to_dict())
        local.merge(b)
        remote = ServiceMetrics.from_dict(a.to_dict())
        remote.merge(pickle.loads(pickle.dumps(b)))
        assert local.to_dict() == remote.to_dict()

    def test_merge_rejects_nothing_silently(self):
        m = ServiceMetrics()
        m.merge(ServiceMetrics())
        counters, hists = _flat(m)
        assert all(v == 0 for v in counters.values())
        assert all(h["count"] == 0 for h in hists.values())


class TestSnapshotCompat:
    def test_snapshot_still_summarises(self):
        m = _sample_metrics(6)
        snap = m.snapshot()
        assert snap["solved"] == m.solved
        assert "latency_seconds" in snap

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(KeyError):
            ServiceMetrics.from_dict({"solved": 3})
