"""The ``fsai_setup`` kernel op: byte-identical ``G`` across backends (ISSUE 6).

The op's contract is stronger than the solve-side kernels': not "agrees to
1e-13" but **byte-for-byte equal CSR data** on every available backend.
The tests pin that down with ``tobytes()`` equality over generator
matrices, campaign suite cases, hypothesis-random SPD matrices and the
degenerate bucket shapes (size-1 rows, single-bucket patterns, ``n = 1``,
empty FSAIE extensions), then check the pieces the guarantee rests on:
identity padding must be bitwise neutral, the group plan must be a pure
function of the row-length histogram, and non-SPD failures must surface
as the same ``NotSPDError`` the LAPACK path raises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.generators.fd import poisson2d
from repro.collection.suite import get_case
from repro.errors import ConfigurationError, NotSPDError
from repro.fsai.frobenius import (
    DEFAULT_PRECALC_ITERATIONS,
    DEFAULT_PRECALC_RTOL,
    FSAI_BACKENDS,
    compute_g,
    precalculate_g,
    resolve_setup_backend,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.kernels import ENV_VAR, available_backends, get_backend, use_backend
from repro.kernels.setup import (
    MIN_GROUP_ROWS,
    PAD_CAP,
    gather_group_stack,
    plan_groups,
    solve_group_stack,
)
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern

from tests.conftest import random_spd_dense

BACKENDS = available_backends()


def _setup_bytes(backend_name, a, pattern):
    return get_backend(backend_name).fsai_setup(a, pattern).tobytes()


def _tril_pattern_of(a):
    """The matrix's own lower triangle as a pattern (diagonal included)."""
    return fsai_initial_pattern(a)


# ----------------------------------------------------------------------
# Case zoo: generator matrices + degenerate bucket shapes
# ----------------------------------------------------------------------


def _uniform_band(n=40):
    """Tridiagonal SPD -> every pattern row (past the first) has length 2:
    a single-bucket, single-group plan."""
    d = np.zeros((n, n))
    i = np.arange(n)
    d[i, i] = 4.0 + 0.01 * i
    d[i[1:], i[1:] - 1] = -1.0
    d[i[:-1], i[:-1] + 1] = -1.0
    return csr_from_dense(d)


def _spread_lengths(n=120, seed=3):
    """Row lengths spread 1..~20 so the greedy plan pads and merges."""
    return csr_from_dense(random_spd_dense(n, seed, density=0.15))


def _cases():
    cases = [
        ("one_by_one", csr_from_dense(np.array([[4.0]]))),
        ("uniform_band", _uniform_band()),
        ("spread_lengths", _spread_lengths()),
        ("poisson16", poisson2d(16)),
        ("suite_5", get_case(5).build()),
        ("suite_24", get_case(24).build()),
    ]
    return [(name, a, _tril_pattern_of(a)) for name, a in cases]


CASES = _cases()
IDS = [name for name, _, _ in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_backends_byte_identical(case):
    _, a, pattern = case
    blobs = {name: _setup_bytes(name, a, pattern) for name in BACKENDS}
    baseline = blobs[BACKENDS[0]]
    for name, blob in blobs.items():
        assert blob == baseline, f"{name} diverges from {BACKENDS[0]}"


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_op_matches_legacy_lapack(case):
    """Different factorisation, same minimiser: op vs bucketed LAPACK agree
    to solver roundoff.  Near-zero entries need the absolute tolerance —
    the two paths round them differently around exact cancellation."""
    _, a, pattern = case
    legacy = compute_g(a, pattern, backend="bucketed").data
    op = get_backend(BACKENDS[0]).fsai_setup(a, pattern)
    scale = float(np.max(np.abs(legacy)))
    np.testing.assert_allclose(op, legacy, rtol=1e-9, atol=1e-9 * scale)


def test_identity_pattern_is_jacobi():
    """Size-1 rows only — the fully degenerate bucket.  The op must give
    the exact Jacobi scaling 1/sqrt(a_ii) on every backend."""
    a = poisson2d(8)
    pattern = Pattern.identity(a.n_rows)
    expected = 1.0 / np.sqrt(a.diagonal())
    for name in BACKENDS:
        np.testing.assert_array_equal(
            get_backend(name).fsai_setup(a, pattern), expected
        )


def test_empty_extension_pattern_unchanged():
    """FSAIE with zero extension entries reuses the initial pattern; the
    op must produce the same bytes for the same (matrix, pattern) pair."""
    a = get_case(52).build()
    pattern = _tril_pattern_of(a)
    extended = Pattern.from_rows(
        pattern.n_rows, pattern.n_cols,
        [pattern.row(i) for i in range(pattern.n_rows)],
    )
    for name in BACKENDS:
        assert _setup_bytes(name, a, pattern) == _setup_bytes(name, a, extended)


dims = st.integers(min_value=1, max_value=24)


@given(dims, st.floats(0.05, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_random_spd_byte_identity_and_unit_diagonal(n, density, seed):
    a = csr_from_dense(random_spd_dense(n, seed, density=density))
    pattern = _tril_pattern_of(a)
    blobs = {name: _setup_bytes(name, a, pattern) for name in BACKENDS}
    assert len(set(blobs.values())) == 1
    # And the result is a valid FSAI factor: diag(G A G^T) = 1.
    g = compute_g(a, pattern)
    gd = g.to_dense()
    np.testing.assert_allclose(
        np.diag(gd @ a.to_dense() @ gd.T), np.ones(n), rtol=1e-8, atol=1e-8
    )


# ----------------------------------------------------------------------
# Group planning + identity padding
# ----------------------------------------------------------------------


class TestPlanGroups:
    def test_small_buckets_merge(self):
        groups = plan_groups([1, 2, 3], [10, 10, 10])
        assert groups == [[1, 2, 3]]

    def test_flush_on_row_count(self):
        groups = plan_groups([4, 5], [MIN_GROUP_ROWS, 7])
        assert groups == [[4], [5]]

    def test_flush_on_pad_cap(self):
        wide = int(PAD_CAP * 2 + 2)  # violates PAD_CAP * k0 + 1 for k0=2
        groups = plan_groups([2, wide], [3, 3])
        assert groups == [[2], [wide]]

    def test_covers_all_sizes_in_order(self):
        sizes = list(range(1, 30))
        groups = plan_groups(sizes, [5] * len(sizes))
        flat = [k for g in groups for k in g]
        assert flat == sizes
        for g in groups:
            assert g == sorted(g)
            assert g[-1] <= PAD_CAP * g[0] + 1

    @given(
        st.lists(st.integers(1, 40), min_size=1, max_size=15, unique=True),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_partitions_any_histogram(self, sizes, seed):
        sizes = sorted(sizes)
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 400, size=len(sizes)).tolist()
        groups = plan_groups(sizes, counts)
        assert [k for g in groups for k in g] == sizes
        for g in groups[:-1]:
            rows = sum(counts[sizes.index(k)] for k in g)
            # a non-final group only closes for one of the two reasons
            assert rows >= MIN_GROUP_ROWS or g[-1] <= PAD_CAP * g[0] + 1

    def test_identity_padding_is_bitwise_neutral(self):
        """Solving a bucket alone vs padded into a larger K must produce
        the same bytes for the real systems."""
        rng = np.random.default_rng(17)
        k, m, pad = 4, 6, 3
        small = np.empty((k, k, m))
        for s in range(m):
            q = rng.standard_normal((k, k))
            small[:, :, s] = np.tril(q @ q.T + k * np.eye(k))
        K = k + pad
        padded = np.zeros((K, K, m))
        padded[pad:, pad:, :] = small
        diag = np.arange(pad)
        padded[diag, diag, :] = 1.0
        alone = solve_group_stack(small)
        embedded = solve_group_stack(padded)
        assert embedded[pad:].tobytes() == alone.tobytes()
        np.testing.assert_array_equal(embedded[:pad], 0.0)


def test_gather_matches_dense_restriction():
    a = poisson2d(6)
    pattern = _tril_pattern_of(a)
    lengths = np.diff(pattern.indptr)
    keys = np.concatenate([a.entry_keys(), np.asarray([-1], dtype=np.int64)])
    k = int(lengths.max())
    rows = np.flatnonzero(lengths == k)
    systems = gather_group_stack(
        keys, a.data, np.int64(a.n_cols), pattern.indptr, pattern.indices,
        [rows], [k], k,
    )
    dense = a.to_dense()
    for s, i in enumerate(rows):
        cols = pattern.row(int(i))
        local = np.tril(dense[np.ix_(cols, cols)])
        np.testing.assert_array_equal(systems[:, :, s], local)


# ----------------------------------------------------------------------
# Failure + resolution semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_not_spd_names_first_bad_row(backend_name):
    d = np.array([
        [4.0, 0.0, 0.0],
        [0.0, -1.0, 0.0],   # indefinite restriction at row 1
        [1.0, 0.0, 3.0],
    ])
    a = csr_from_dense(d)
    pattern = _tril_pattern_of(a)
    with pytest.raises(NotSPDError, match="row 1"):
        get_backend(backend_name).fsai_setup(a, pattern)
    # LAPACK path reports the same offending row (its own wording).
    with pytest.raises(NotSPDError, match=r"(row|system) 1"):
        compute_g(a, pattern, backend="bucketed")


class TestResolution:
    def test_default_resolves_through_registry(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_setup_backend() == get_backend("auto").name

    def test_env_var_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_setup_backend() == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_setup_backend("bucketed") == "bucketed"

    def test_legacy_names_stay_legacy(self):
        for name in FSAI_BACKENDS:
            assert resolve_setup_backend(name) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_g(poisson2d(4), _tril_pattern_of(poisson2d(4)),
                      backend="magic")

    def test_setup_threads_reported(self):
        assert get_backend("numpy").setup_threads() == 1
        assert get_backend("reference").setup_threads() == 1


def test_default_compute_g_equals_direct_op():
    """The public entry point routes through the op byte-for-byte."""
    a = get_case(37).build()
    pattern = _tril_pattern_of(a)
    g = compute_g(a, pattern)
    name = resolve_setup_backend()
    assert g.data.tobytes() == _setup_bytes(name, a, pattern)


def test_precalc_kernel_path_runs_the_op():
    """Kernel-name precalc routes through ``fsai_precalc`` byte-for-byte
    and agrees with the legacy bucketed values to truncated-CG roundoff
    (bitwise agreement is not the contract — the legacy lockstep CG
    reduces in a different summation order; the filtered-pattern-level
    equivalence lives in ``tests/fsai/test_precalc_equivalence.py``)."""
    a = poisson2d(10)
    pattern = _tril_pattern_of(a)
    with use_backend("numpy"):
        kernel = precalculate_g(a, pattern, backend="numpy")
    op = get_backend("numpy").fsai_precalc(
        a, pattern, rtol=DEFAULT_PRECALC_RTOL,
        max_iterations=DEFAULT_PRECALC_ITERATIONS,
    )
    assert kernel.data.tobytes() == op.tobytes()
    legacy = precalculate_g(a, pattern, backend="bucketed")
    scale = float(np.max(np.abs(legacy.data)))
    np.testing.assert_allclose(
        kernel.data, legacy.data, rtol=1e-9, atol=1e-9 * scale
    )
