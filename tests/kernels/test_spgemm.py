"""The ``spgemm`` kernel op: CSR×CSR products with optional output caps.

Contract under test (see ``src/repro/kernels/spgemm.py``):

* every backend agrees with the dense product to 1e-13;
* the numpy and numba numeric phases are **byte-identical** (both honour
  the plan's Gustavson accumulation order; the reference backend's dense
  oracle is exempt and held to the tolerance only);
* a capped product's output structure is the cap *itself* — products
  landing outside are dropped, cap entries no product reaches hold an
  explicit ``0.0``;
* plans are reusable: a bound ``spgemm_op`` handle repeats the numeric
  phase bit-for-bit, and ``pattern_multiply`` (now delegating to the
  planner) matches the brute-force boolean product.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.generators.fd import poisson2d
from repro.errors import ShapeError
from repro.kernels import available_backends, get_backend
from repro.kernels.spgemm import plan_spgemm, spgemm_numeric, spgemm_pattern
from repro.sparse.construct import csr_from_dense
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern
from repro.sparse.symbolic import pattern_multiply

from tests.conftest import random_spd_dense

BACKENDS = available_backends()

#: Backends whose numeric phase must be byte-identical (the dense-oracle
#: reference backend only promises 1e-13 agreement).
EXACT_BACKENDS = tuple(b for b in BACKENDS if b != "reference")


def _random_csr(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) >= density] = 0.0
    return csr_from_dense(dense)


def _dense_product(a, b):
    return a.to_dense() @ b.to_dense()


CASES = [
    ("square", _random_csr(24, 24, 0.2, 0), _random_csr(24, 24, 0.2, 1)),
    ("rect", _random_csr(13, 29, 0.3, 2), _random_csr(29, 7, 0.3, 3)),
    ("sparse", _random_csr(40, 40, 0.03, 4), _random_csr(40, 40, 0.03, 5)),
    ("poisson", poisson2d(8), poisson2d(8)),
]


# ----------------------------------------------------------------------
# Uncapped products
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,a,b", CASES, ids=[c[0] for c in CASES])
def test_uncapped_matches_dense(backend, name, a, b):
    out = get_backend(backend).spgemm(a, b)
    rows, cols = out.pattern.coo()
    expected = _dense_product(a, b)
    np.testing.assert_allclose(out.data, expected[rows, cols], atol=1e-13)
    # Everything the pattern omits really is zero in the dense product.
    mask = out.pattern.to_dense_mask()
    assert np.all(expected[~mask] == 0.0)


@pytest.mark.parametrize("name,a,b", CASES, ids=[c[0] for c in CASES])
def test_exact_backends_byte_identical(name, a, b):
    blobs = {
        backend: get_backend(backend).spgemm(a, b).data.tobytes()
        for backend in EXACT_BACKENDS
    }
    reference = blobs[EXACT_BACKENDS[0]]
    assert all(blob == reference for blob in blobs.values())


def test_pattern_multiply_matches_boolean_product():
    a, b = CASES[2][1], CASES[2][2]
    out = pattern_multiply(a.pattern, b.pattern)
    expected = (a.pattern.to_dense_mask() @ b.pattern.to_dense_mask()) > 0
    assert np.array_equal(out.to_dense_mask(), expected)
    assert out == spgemm_pattern(a.pattern, b.pattern)


# ----------------------------------------------------------------------
# Capped products
# ----------------------------------------------------------------------


def _lower_cap(n):
    return Pattern.from_dense_mask(np.tril(np.ones((n, n), dtype=bool)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_capped_output_is_cap_exactly(backend):
    a, b = CASES[0][1], CASES[0][2]
    cap = _lower_cap(a.n_rows)
    out = get_backend(backend).spgemm(a, b, cap=cap)
    # The structure is the cap verbatim — not the subset products reach.
    assert out.pattern == cap
    rows, cols = cap.coo()
    np.testing.assert_allclose(
        out.data, _dense_product(a, b)[rows, cols], atol=1e-13
    )


def test_cap_entries_without_products_are_explicit_zeros():
    # A = e_00 only, B = e_00 only -> product has a single entry (0, 0);
    # a full lower-triangular cap must keep every other slot as 0.0.
    n = 5
    dense = np.zeros((n, n))
    dense[0, 0] = 3.0
    a = csr_from_dense(dense)
    cap = _lower_cap(n)
    out = get_backend("numpy").spgemm(a, a, cap=cap)
    assert out.pattern == cap
    assert out.data[0] == 9.0
    assert np.all(out.data[1:] == 0.0)


def test_cap_drops_outside_products():
    a, b = CASES[1][1], CASES[1][2]
    # Cap = a strict subset of the true product pattern.
    full = spgemm_pattern(a.pattern, b.pattern)
    rows, cols = full.coo()
    keep = np.arange(full.nnz) % 2 == 0
    cap = Pattern.from_coo(full.n_rows, full.n_cols, rows[keep], cols[keep])
    out = get_backend("numpy").spgemm(a, b, cap=cap)
    assert out.pattern == cap
    crows, ccols = cap.coo()
    np.testing.assert_allclose(
        out.data, _dense_product(a, b)[crows, ccols], atol=1e-13
    )


# ----------------------------------------------------------------------
# Plan reuse and bound handles
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_bound_handle_reuses_plan_bit_for_bit(backend):
    a, b = CASES[3][1], CASES[3][2]
    kb = get_backend(backend)
    plan = plan_spgemm(a.pattern, b.pattern)
    op = kb.spgemm_op(plan=plan)
    assert op.plan is plan
    first = kb.spgemm(a, b).data
    assert op(a.data, b.data).tobytes() == first.tobytes()
    # Fresh values through the same plan: full numeric correctness.
    rng = np.random.default_rng(7)
    new_data = rng.standard_normal(a.nnz)
    a2 = CSRMatrix.from_pattern(a.pattern, new_data)
    rows, cols = plan.out.coo()
    np.testing.assert_allclose(
        op(new_data, b.data), _dense_product(a2, b)[rows, cols], atol=1e-13
    )


def test_spgemm_op_from_patterns():
    a, b = CASES[0][1], CASES[0][2]
    kb = get_backend("numpy")
    op = kb.spgemm_op(a.pattern, b.pattern)
    assert op(a.data, b.data).tobytes() == kb.spgemm(a, b).data.tobytes()
    with pytest.raises(ValueError, match="prebuilt plan or both patterns"):
        kb.spgemm_op(a.pattern)


def test_plan_metadata():
    a, b = CASES[0][1], CASES[0][2]
    plan = plan_spgemm(a.pattern, b.pattern)
    assert plan.n_products == len(plan.a_sel) == len(plan.b_sel)
    assert plan.flops == 2 * plan.n_products
    assert not plan.capped
    capped = plan_spgemm(a.pattern, b.pattern, cap=_lower_cap(a.n_rows))
    assert capped.capped
    assert capped.n_products <= plan.n_products


# ----------------------------------------------------------------------
# Degenerate structures
# ----------------------------------------------------------------------


def test_empty_rows_and_columns():
    dense_a = np.zeros((6, 4))
    dense_a[0, 1] = 2.0
    dense_a[4, 3] = -1.0
    dense_b = np.zeros((4, 5))
    dense_b[1, 0] = 3.0
    a, b = csr_from_dense(dense_a), csr_from_dense(dense_b)
    out = get_backend("numpy").spgemm(a, b)
    rows, cols = out.pattern.coo()
    np.testing.assert_allclose(out.data, _dense_product(a, b)[rows, cols])


def test_fully_empty_operands():
    a = CSRMatrix.from_pattern(Pattern.empty(3, 4))
    b = CSRMatrix.from_pattern(Pattern.empty(4, 2))
    out = get_backend("numpy").spgemm(a, b)
    assert out.nnz == 0
    assert out.shape == (3, 2)
    plan = plan_spgemm(a.pattern, b.pattern)
    assert plan.n_products == 0
    assert spgemm_numeric(plan, a.data, b.data).shape == (0,)


def test_one_by_one():
    a = csr_from_dense(np.array([[2.0]]))
    out = get_backend("numpy").spgemm(a, a)
    assert out.to_dense() == pytest.approx(np.array([[4.0]]))


def test_shape_validation():
    a = _random_csr(3, 4, 1.0, 0)
    b = _random_csr(5, 3, 1.0, 1)
    with pytest.raises(ShapeError, match="inner dimensions disagree"):
        plan_spgemm(a.pattern, b.pattern)
    with pytest.raises(ShapeError, match="inner dimensions disagree"):
        get_backend("numpy").spgemm(a, b)
    square = _random_csr(4, 4, 1.0, 2)
    with pytest.raises(ShapeError, match="cap shape"):
        plan_spgemm(a.pattern, square.pattern, cap=_lower_cap(5))


# ----------------------------------------------------------------------
# Property-based sweep
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    density=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_all_backends_agree(n, density, seed):
    rng = np.random.default_rng(seed)
    dense_a = rng.standard_normal((n, n))
    dense_a[rng.random((n, n)) >= density] = 0.0
    a = csr_from_dense(dense_a)
    b = csr_from_dense(random_spd_dense(n, seed=seed, density=density))
    expected = _dense_product(a, b)
    blobs = {}
    for backend in BACKENDS:
        out = get_backend(backend).spgemm(a, b)
        rows, cols = out.pattern.coo()
        np.testing.assert_allclose(
            out.data, expected[rows, cols], atol=1e-12
        )
        blobs[backend] = out.data.tobytes()
    exact = [blobs[b_] for b_ in EXACT_BACKENDS]
    assert all(blob == exact[0] for blob in exact)
