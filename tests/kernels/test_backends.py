"""Every available backend agrees with dense algebra to 1e-13 (ISSUE 4).

The matrix zoo below is chosen to drive each backend through *every* code
path it owns: the adversarial small shapes (empty rows/columns, explicit
zeros, single-row/column, fully empty) all sit under the 256-nnz
fast-path gate and exercise the segment-sum fallbacks, while the large
structured cases are built to trip, respectively, the exact DIA view, the
HYB split with a COO remainder, the HYB split with an ELL remainder, the
row-padded ELL view, and the reduceat fallback with the empty-row
correction.  A structure probe asserts each case really takes the path
it was designed for, so a gate-constant tweak cannot silently turn the
zoo into six copies of the same fallback test.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.generators.fd import poisson2d
from repro.fsai.frobenius import compute_g
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.precond import FSAIApplication
from repro.kernels import available_backends, get_backend, use_backend
from repro.solvers.cg import pcg
from repro.sparse.construct import csr_from_dense
from repro.sparse.csr import CSRMatrix

BACKENDS = available_backends()


def _assert_close(actual, expected):
    scale = max(1.0, float(np.max(np.abs(expected), initial=0.0)))
    np.testing.assert_allclose(actual, expected, rtol=1e-13, atol=1e-13 * scale)


# ----------------------------------------------------------------------
# Matrix zoo
# ----------------------------------------------------------------------


def _with_explicit_zeros():
    """4x4 with stored 0.0 entries (FSAI patterns routinely carry them)."""
    indptr = [0, 3, 3, 5, 6]
    indices = [0, 1, 3, 1, 2, 0]
    data = [2.0, 0.0, -1.0, 0.0, 3.5, 1.25]
    return CSRMatrix(4, 4, indptr, indices, data)


def _rectangular_with_gaps(rng):
    """9x13 random with forced empty rows *and* empty columns."""
    d = rng.standard_normal((9, 13)) * (rng.random((9, 13)) < 0.3)
    d[2, :] = 0.0
    d[7, :] = 0.0
    d[:, 0] = 0.0
    d[:, 11] = 0.0
    return csr_from_dense(d)


def _pure_stencil(n=400):
    """Pentadiagonal: every diagonal dense -> exact DIA view."""
    d = np.zeros((n, n))
    i = np.arange(n)
    for off, val in ((-2, 0.5), (-1, -1.0), (0, 4.0), (1, -1.0), (2, 0.5)):
        sel = (i + off >= 0) & (i + off < n)
        d[i[sel], i[sel] + off] = val + 0.01 * i[sel]
    return csr_from_dense(d)


def _hyb_coo_remainder(n=400, rng=None):
    """Tridiagonal band plus ~40 scattered couplings.

    The scattered entries are too few for an ELL remainder (the 256-nnz
    floor), so the HYB split must fall back to the COO scatter.
    """
    rng = np.random.default_rng(3) if rng is None else rng
    d = np.zeros((n, n))
    i = np.arange(n)
    for off, val in ((-1, -1.0), (0, 4.0), (1, -1.0)):
        sel = (i + off >= 0) & (i + off < n)
        d[i[sel], i[sel] + off] = val
    rows = rng.integers(0, n, size=40)
    cols = (rows + rng.integers(5, n - 5, size=40)) % n
    d[rows, cols] = rng.standard_normal(40)
    return csr_from_dense(d)


def _hyb_ell_remainder(n=400):
    """Tridiagonal band plus one scattered coupling per row.

    ~400 off-band entries spread over ~400 distinct diagonals, one per
    row: enough for the remainder's ELL form (width 1, no padding).
    """
    d = np.zeros((n, n))
    i = np.arange(n)
    for off, val in ((-1, -1.0), (0, 4.0), (1, -1.0)):
        sel = (i + off >= 0) & (i + off < n)
        d[i[sel], i[sel] + off] = val
    far = (i * 13 + 7) % n
    keep = np.abs(far - i) > 1  # don't collide with the band
    d[i[keep], far[keep]] = 0.25 + 0.001 * i[keep]
    return csr_from_dense(d)


def _ell_uniform_rows(rng, n=100, per_row=8):
    """Uniform row lengths, unstructured columns -> row-padded ELL view."""
    d = np.zeros((n, n))
    for i in range(n):
        cols = rng.choice(n, size=per_row, replace=False)
        d[i, cols] = rng.standard_normal(per_row)
    return csr_from_dense(d)


def _skewed_rows(rng, n=300):
    """One huge row, many short ones, some empty -> reduceat fallback."""
    d = np.zeros((n, n))
    d[0, rng.choice(n, size=100, replace=False)] = rng.standard_normal(100)
    for i in range(1, n):
        if i % 5 == 0:
            continue  # empty row
        d[i, rng.choice(n, size=2, replace=False)] = rng.standard_normal(2)
    return csr_from_dense(d)


def _zoo():
    rng = np.random.default_rng(11)
    return [
        ("one_by_one", csr_from_dense(np.array([[3.0]]))),
        ("single_row", csr_from_dense(rng.standard_normal((1, 7)))),
        ("single_col", csr_from_dense(rng.standard_normal((7, 1)))),
        ("all_zero", csr_from_dense(np.zeros((5, 5)))),
        ("explicit_zeros", _with_explicit_zeros()),
        ("rect_gaps", _rectangular_with_gaps(rng)),
        ("dia_stencil", _pure_stencil()),
        ("hyb_coo", _hyb_coo_remainder()),
        ("hyb_ell", _hyb_ell_remainder()),
        ("ell_uniform", _ell_uniform_rows(rng)),
        ("reduceat_skewed", _skewed_rows(rng)),
    ]


ZOO = _zoo()


def test_zoo_exercises_every_format():
    """Structure probe: each case takes the path it was designed for."""
    by_name = dict(ZOO)
    dia = by_name["dia_stencil"].dia_view()
    assert dia is not None and dia.rem_out is None and dia.rem_ell is None
    hyb_coo = by_name["hyb_coo"].dia_view()
    assert hyb_coo is not None and hyb_coo.rem_out is not None
    hyb_ell = by_name["hyb_ell"].dia_view()
    assert hyb_ell is not None and hyb_ell.rem_ell is not None
    ell = by_name["ell_uniform"]
    assert ell.dia_view() is None and ell.ell_view() is not None
    fallback = by_name["reduceat_skewed"]
    assert fallback.dia_view() is None and fallback.ell_view() is None
    _, rows = fallback.row_segments()
    assert rows is not None  # empty rows force the corrected gather path


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
def test_spmv_matches_dense(backend_name, case):
    _, a = case
    backend = get_backend(backend_name)
    dense = a.to_dense()
    x = np.random.default_rng(5).standard_normal(a.n_cols)
    _assert_close(backend.spmv(a, x), dense @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
def test_spmv_t_matches_dense(backend_name, case):
    _, a = case
    backend = get_backend(backend_name)
    dense = a.to_dense()
    x = np.random.default_rng(6).standard_normal(a.n_rows)
    _assert_close(backend.spmv_t(a, x), dense.T @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
def test_workspace_variant_is_identical(backend_name, case):
    """out=/scratch= must change allocation, never the numbers."""
    _, a = case
    backend = get_backend(backend_name)
    x = np.random.default_rng(7).standard_normal(a.n_cols)
    out = np.full(a.n_rows, np.nan)
    scratch = np.empty(a.nnz)
    plain = backend.spmv(a, x)
    buffered = backend.spmv(a, x, out=out, scratch=scratch)
    assert buffered is out
    np.testing.assert_array_equal(buffered, plain)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_spmv_op_binds_the_same_kernel(backend_name):
    backend = get_backend(backend_name)
    for _, a in ZOO:
        x = np.random.default_rng(8).standard_normal(a.n_cols)
        out = np.empty(a.n_rows)
        op = backend.spmv_op(a, np.empty(a.nnz))
        assert op(x, out) is out
        _assert_close(out, a.to_dense() @ x)


# ----------------------------------------------------------------------
# Fused FSAI application
# ----------------------------------------------------------------------


def _lower_triangular_zoo():
    return [
        (name, a.tril())
        for name, a in ZOO
        if a.n_rows == a.n_cols and a.nnz > 0
    ]


TRI_ZOO = _lower_triangular_zoo()


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", TRI_ZOO, ids=[name for name, _ in TRI_ZOO])
def test_fsai_apply_matches_dense(backend_name, case):
    _, g = case
    backend = get_backend(backend_name)
    gd = g.to_dense()
    r = np.random.default_rng(9).standard_normal(g.n_rows)
    expected = gd.T @ (gd @ r)
    _assert_close(backend.fsai_apply(g, r), expected)
    # And the fully-buffered variant used by the solver loop.
    out = np.empty(g.n_rows)
    tmp = np.empty(g.n_rows)
    scratch = np.empty(g.nnz)
    got = backend.fsai_apply(g, r, out=out, tmp=tmp, scratch=scratch)
    assert got is out
    _assert_close(got, expected)
    op = backend.fsai_apply_op(g, tmp, scratch)
    out2 = np.empty(g.n_rows)
    assert op(r, out2) is out2
    _assert_close(out2, expected)


# ----------------------------------------------------------------------
# Hypothesis: random small CSR, all backends vs dense
# ----------------------------------------------------------------------

dims = st.integers(min_value=1, max_value=12)


@given(dims, dims, st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_random_csr_agrees_across_backends(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n_rows, n_cols)) * (rng.random((n_rows, n_cols)) < density)
    a = csr_from_dense(d)
    x = rng.standard_normal(n_cols)
    xt = rng.standard_normal(n_rows)
    for name in BACKENDS:
        backend = get_backend(name)
        _assert_close(backend.spmv(a, x), d @ x)
        _assert_close(backend.spmv_t(a, xt), d.T @ xt)


# ----------------------------------------------------------------------
# PCG: identical iterates across backends
# ----------------------------------------------------------------------


def test_pcg_iterates_match_across_backends():
    """The solver must converge identically whatever backend runs it."""
    a = poisson2d(16)
    b = np.random.default_rng(21).standard_normal(a.n_rows)
    g = compute_g(a, fsai_initial_pattern(a))
    results = {}
    for name in BACKENDS:
        with use_backend(name):
            # Fresh application per backend: the apply handle is pinned
            # at first use, so reuse would leak the previous backend in.
            results[name] = pcg(a, b, preconditioner=FSAIApplication(g))
    baseline = results[BACKENDS[0]]
    assert baseline.converged
    for name, res in results.items():
        assert res.converged, name
        assert res.iterations == baseline.iterations, name
        np.testing.assert_allclose(res.x, baseline.x, rtol=1e-10, atol=1e-12)


def test_pcg_unpreconditioned_matches_across_backends():
    a = poisson2d(12)
    b = np.random.default_rng(22).standard_normal(a.n_rows)
    results = {}
    for name in BACKENDS:
        with use_backend(name):
            results[name] = pcg(a, b, rtol=1e-10)
    baseline = results[BACKENDS[0]]
    assert baseline.converged
    for name, res in results.items():
        assert res.iterations == baseline.iterations, name
        np.testing.assert_allclose(res.x, baseline.x, rtol=1e-10, atol=1e-12)
