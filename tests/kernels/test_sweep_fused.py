"""Fused global-iteration sweep hooks: byte-identity across backends.

The global-SAI sweeps (``repro.fsai.global_iter``) run through four
backend hooks — ``spgemm_numeric_into`` plus ``sweep_axpy_pair`` /
``sweep_cheb_update`` / ``sweep_ns_correction`` (and the scalar
recurrence ``sweep_scale_add``) — so the numba backend can fuse the
capped SpGEMM with the iterate update in one row-parallel pass.  The
contract pinned here:

* every exact backend's hook output is byte-identical to the naive
  numpy expressions the sweeps historically ran (the dense-oracle
  reference backend is exempt from SpGEMM exactness, as elsewhere);
* ``spgemm_numeric_into`` writes the caller's buffer and matches the
  allocating numeric phase bit-for-bit;
* the three end-to-end global iterations produce byte-identical factor
  data on every exact backend (the cross-backend identity gate).
"""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.fsai.global_iter import (
    global_g_chebyshev,
    global_g_minres,
    global_g_newton_schulz,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.kernels import available_backends, get_backend
from repro.kernels.spgemm import plan_spgemm

BACKENDS = available_backends()
EXACT_BACKENDS = tuple(b for b in BACKENDS if b != "reference")

GLOBAL_METHODS = [
    ("gsai_st", global_g_minres),
    ("gsai_cheb", global_g_chebyshev),
    ("gsai_ns", global_g_newton_schulz),
]


def _factor_setup(nx=10, level=2):
    """A matrix, its factor pattern and both sweep plans."""
    a = poisson2d(nx)
    pattern = fsai_initial_pattern(a, level=level, threshold=0.0)
    plan_xa = plan_spgemm(pattern, a.pattern, cap=pattern)
    plan_zx = plan_spgemm(pattern, pattern, cap=pattern)
    return a, pattern, plan_xa, plan_zx


def _pattern_vectors(pattern, seed, count):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(pattern.nnz) for _ in range(count)]


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_spgemm_numeric_into_matches_allocating_phase(backend):
    kb = get_backend(backend)
    a, pattern, plan_xa, _ = _factor_setup()
    (x,) = _pattern_vectors(pattern, 0, 1)
    out = np.full(pattern.nnz, np.nan)  # poison: every slot must be written
    ret = kb.spgemm_numeric_into(plan_xa, x, a.data, out)
    assert ret is out
    expected = kb.spgemm_op(plan=plan_xa)(x, a.data)
    assert out.tobytes() == expected.tobytes()


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_sweep_axpy_pair_matches_numpy_expressions(backend):
    kb = get_backend(backend)
    _, pattern, _, _ = _factor_setup()
    x, r, w = _pattern_vectors(pattern, 1, 3)
    alpha = 0.731
    x_ref, r_ref = x.copy(), r.copy()
    x_ref += alpha * r_ref
    r_ref -= alpha * w
    kb.sweep_axpy_pair(x, r, w, alpha)
    assert x.tobytes() == x_ref.tobytes()
    assert r.tobytes() == r_ref.tobytes()


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_sweep_scale_add_matches_numpy_expressions(backend):
    kb = get_backend(backend)
    _, pattern, _, _ = _factor_setup()
    d, r = _pattern_vectors(pattern, 2, 2)
    c0, c1 = 0.37, -1.29
    d_ref = c0 * d + c1 * r  # the historical allocating form
    kb.sweep_scale_add(d, r, c0, c1)
    assert d.tobytes() == d_ref.tobytes()


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_sweep_cheb_update_matches_unfused_pass(backend):
    kb = get_backend(backend)
    a, pattern, plan_xa, _ = _factor_setup()
    d, x, r = _pattern_vectors(pattern, 3, 3)
    x_ref, r_ref = x.copy(), r.copy()
    x_ref += d
    r_ref -= kb.spgemm_op(plan=plan_xa)(d, a.data)
    w = np.empty(pattern.nnz)
    kb.sweep_cheb_update(plan_xa, d, a.data, x, r, w)
    assert x.tobytes() == x_ref.tobytes()
    assert r.tobytes() == r_ref.tobytes()
    # The scratch buffer holds the capped product (the fused kernel
    # accumulates into it row by row).
    assert w.tobytes() == kb.spgemm_op(plan=plan_xa)(d, a.data).tobytes()


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_sweep_ns_correction_matches_unfused_pass(backend):
    kb = get_backend(backend)
    _, pattern, _, plan_zx = _factor_setup()
    z, x = _pattern_vectors(pattern, 4, 2)
    expected = 2.0 * x - kb.spgemm_op(plan=plan_zx)(z, x)
    x_next = np.full(pattern.nnz, np.nan)
    scratch = np.empty(pattern.nnz)
    ret = kb.sweep_ns_correction(plan_zx, z, x, x_next, scratch)
    assert ret is x_next
    assert x_next.tobytes() == expected.tobytes()


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("method,iterate", GLOBAL_METHODS)
def test_global_iterations_byte_identical_across_backends(
    backend, method, iterate
):
    """End-to-end cross-backend identity for all three global methods.

    ``rtol=0.0`` forces the full sweep budget so every hook runs many
    times; in environments without numba this degenerates to numpy vs
    numpy (still a useful determinism check), while CI's kernel lane
    exercises the fused numba path against the numpy reference.
    """
    a = poisson2d(12)
    pattern = fsai_initial_pattern(a, level=1, threshold=0.0)
    data_ref, info_ref = iterate(a, pattern, sweeps=9, rtol=0.0,
                                 backend="numpy")
    data, info = iterate(a, pattern, sweeps=9, rtol=0.0, backend=backend)
    assert data.tobytes() == data_ref.tobytes(), (method, backend)
    assert info.sweeps == info_ref.sweeps
    assert info.residual == info_ref.residual
