"""Registry behavior: selection order, fallbacks, overrides (ISSUE 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from repro.kernels.numba_backend import NUMBA_AVAILABLE


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_backend().name == DEFAULT_BACKEND == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert get_backend().name == "reference"

    def test_env_var_is_normalised(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  RefErence ")
        assert get_backend().name == "reference"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert get_backend().name == DEFAULT_BACKEND

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert get_backend("numpy").name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("does-not-exist")

    def test_instance_passthrough(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")


class TestOptionalNumba:
    """`numba` must accelerate when present and vanish silently when not."""

    def test_numba_resolves_somewhere(self):
        backend = get_backend("numba")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert backend.name == expected

    def test_auto_picks_fastest_available(self):
        backend = get_backend("auto")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert backend.name == expected

    def test_availability_listing(self):
        names = available_backends()
        assert "numpy" in names
        assert "reference" in names
        assert ("numba" in names) == NUMBA_AVAILABLE

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-free env")
    def test_missing_numba_falls_back_silently(self):
        # The ISSUE 4 acceptance check: requesting the optional backend on
        # a machine without it must not raise, warn, or change semantics.
        assert get_backend("numba").name == "numpy"


class TestOverride:
    def test_use_backend_scopes_the_override(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert get_backend() is backend
        assert get_backend().name == DEFAULT_BACKEND

    def test_use_backend_nests(self):
        with use_backend("reference"):
            with use_backend("numpy"):
                assert get_backend().name == "numpy"
            assert get_backend().name == "reference"

    def test_use_backend_restores_on_error(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                raise RuntimeError("boom")
        assert get_backend().name == DEFAULT_BACKEND

    def test_use_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        with use_backend("reference"):
            assert get_backend().name == "reference"


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("numpy", lambda: None)

    def test_unavailable_factory_stays_out_of_listing(self):
        # A factory returning None marks "registered but cannot run here".
        register_backend("test-ghost", lambda: None)
        try:
            assert "test-ghost" not in available_backends()
            assert get_backend("test-ghost").name == DEFAULT_BACKEND
        finally:
            from repro.kernels import registry

            registry._factories.pop("test-ghost", None)
            registry._instances.pop("test-ghost", None)
