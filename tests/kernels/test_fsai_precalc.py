"""The ``fsai_precalc`` kernel op: byte-identical estimates (ISSUE 10).

Same contract shape as the ``fsai_setup`` suite: every available backend
must produce **byte-for-byte equal** data for the §5 truncated-CG
estimates, pinned with ``tobytes()`` over generator matrices, suite
cases, cache-friendly *extended* patterns (the workload the op exists
for) and the degenerate shapes — size-1 rows, a single-system batch
(exercising the width-2 identity pad), zero iterations, systems that
converge on the very first step, and curvature breakdowns that must fall
back to the Jacobi guess bit-for-bit with the legacy bucketed path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import ArrayPlacement
from repro.collection.generators.fd import poisson2d
from repro.collection.suite import get_case
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.frobenius import (
    DEFAULT_PRECALC_ITERATIONS,
    DEFAULT_PRECALC_RTOL,
    _precalc_bucketed,
    precalculate_g,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.kernels import available_backends, get_backend
from repro.kernels.precalc import solve_precalc_stack, symmetrize
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern

from tests.conftest import random_spd_dense

BACKENDS = available_backends()


def _precalc_bytes(backend_name, a, pattern, **kw):
    kw.setdefault("rtol", DEFAULT_PRECALC_RTOL)
    kw.setdefault("max_iterations", DEFAULT_PRECALC_ITERATIONS)
    return get_backend(backend_name).fsai_precalc(a, pattern, **kw).tobytes()


def _extended(a):
    return extend_pattern_cache_friendly(
        fsai_initial_pattern(a), ArrayPlacement.aligned(64)
    )


def _cases():
    """Initial *and* cache-friendly extended patterns per matrix."""
    mats = [
        ("one_by_one", csr_from_dense(np.array([[4.0]]))),
        ("poisson16", poisson2d(16)),
        ("suite_5", get_case(5).build()),
        ("suite_24", get_case(24).build()),
        ("random_dense", csr_from_dense(random_spd_dense(60, 9, density=0.2))),
    ]
    cases = []
    for name, a in mats:
        cases.append((f"{name}/initial", a, fsai_initial_pattern(a)))
        cases.append((f"{name}/extended", a, _extended(a)))
    return cases


CASES = _cases()
IDS = [name for name, _, _ in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_backends_byte_identical(case):
    _, a, pattern = case
    blobs = {name: _precalc_bytes(name, a, pattern) for name in BACKENDS}
    baseline = blobs[BACKENDS[0]]
    for name, blob in blobs.items():
        assert blob == baseline, f"{name} diverges from {BACKENDS[0]}"


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_precalculate_g_routes_through_op(case):
    """The public §5 entry point returns the op's bytes unchanged.

    ``backend="reference"`` resolves to the *legacy* reference path in
    ``precalculate_g`` (``FSAI_BACKENDS`` wins over the registry), so
    the routing claim is made with a registry-only name.
    """
    _, a, pattern = case
    g = precalculate_g(a, pattern, backend="numpy")
    assert g.data.tobytes() == _precalc_bytes("numpy", a, pattern)


def test_zero_iterations_is_all_jacobi():
    """``max_iterations = 0`` leaves every estimate at zero, so every row
    takes the Jacobi fallback: zeros except ``1/sqrt(a_ii)`` last."""
    a = poisson2d(6)
    pattern = fsai_initial_pattern(a)
    expected = np.zeros(pattern.nnz)
    expected[pattern.indptr[1:] - 1] = 1.0 / np.sqrt(a.diagonal())
    for name in BACKENDS:
        data = get_backend(name).fsai_precalc(
            a, pattern, rtol=DEFAULT_PRECALC_RTOL, max_iterations=0
        )
        np.testing.assert_array_equal(data, expected)


def test_diagonal_matrix_converges_at_first_step():
    """Size-1 systems solve exactly on iteration one; the normalised
    estimate is the exact Jacobi scaling on every backend."""
    diag = np.array([4.0, 0.25, 9.0, 2.0])
    a = csr_from_dense(np.diag(diag))
    pattern = Pattern.identity(a.n_rows)
    expected = 1.0 / np.sqrt(diag)
    for name in BACKENDS:
        np.testing.assert_array_equal(
            get_backend(name).fsai_precalc(
                a, pattern, rtol=DEFAULT_PRECALC_RTOL, max_iterations=5
            ),
            expected,
        )


def test_breakdown_falls_back_bitwise_like_legacy():
    """A curvature breakdown (indefinite restriction) never raises; the
    offending row takes the same Jacobi-fallback bits as the legacy
    bucketed path (1.0 for a non-positive diagonal)."""
    d = np.array([
        [4.0, 0.0, 0.0],
        [0.0, -1.0, 0.0],   # dᵀq = -1 on the first step -> frozen at zero
        [1.0, 0.0, 3.0],
    ])
    a = csr_from_dense(d)
    pattern = fsai_initial_pattern(a)
    legacy = _precalc_bucketed(
        a, pattern, DEFAULT_PRECALC_RTOL, DEFAULT_PRECALC_ITERATIONS
    ).data
    lo, hi = pattern.indptr[1], pattern.indptr[2]
    for name in BACKENDS:
        data = get_backend(name).fsai_precalc(
            a, pattern, rtol=DEFAULT_PRECALC_RTOL,
            max_iterations=DEFAULT_PRECALC_ITERATIONS,
        )
        assert data[lo:hi].tobytes() == legacy[lo:hi].tobytes()
        assert data[lo:hi].tolist() == [1.0]


def test_width_one_identity_pad_is_bitwise_neutral():
    """A single-system stack (batch width 1) pads to width 2 so the
    einsum reductions stay sequential; the padded solve must equal the
    same system solved inside a genuine width-2 batch."""
    rng = np.random.default_rng(23)
    k = 5
    q = rng.standard_normal((k, k))
    sys1 = np.tril(q @ q.T + k * np.eye(k))[:, :, None]
    sys2 = np.concatenate([sys1, sys1], axis=2)
    alone = solve_precalc_stack(sys1, DEFAULT_PRECALC_RTOL, 20)
    paired = solve_precalc_stack(sys2, DEFAULT_PRECALC_RTOL, 20)
    assert alone[:, 0].tobytes() == paired[:, 0].tobytes()
    assert paired[:, 0].tobytes() == paired[:, 1].tobytes()


def test_symmetrize_clears_negative_zero_off_diagonals():
    """The transpose add turns a stored ``-0.0`` off-diagonal into
    ``+0.0`` while keeping the diagonal bits exact — the rule the scalar
    replays mirror with their ``+ 0.0`` reads."""
    systems = np.zeros((2, 2, 2))
    systems[0, 0, :] = 4.0
    systems[1, 1, :] = -0.0     # diagonal keeps its sign bit
    systems[1, 0, :] = -0.0     # off-diagonal loses it
    full = symmetrize(systems)
    assert np.signbit(full[1, 1]).all()
    assert not np.signbit(full[1, 0]).any()
    assert not np.signbit(full[0, 1]).any()


dims = st.integers(min_value=1, max_value=24)


@given(dims, st.floats(0.05, 1.0), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_random_spd_byte_identity(n, density, seed):
    a = csr_from_dense(random_spd_dense(n, seed, density=density))
    pattern = fsai_initial_pattern(a)
    blobs = {name: _precalc_bytes(name, a, pattern) for name in BACKENDS}
    assert len(set(blobs.values())) == 1
