"""Blocked (multi-RHS) kernels agree with dense algebra on every backend.

The SpMM / SpMM^T / fused multi-FSAI kernels reuse the matrix zoo from
``test_backends`` so each vectorized path (exact DIA, HYB with COO or
ELL remainder, row-padded ELL, reduceat fallback, and the adversarial
small shapes) is driven through its blocked twin at several block
widths, including ``k=1`` (degenerate block) and a width wide enough to
matter for the serving workload (``k=32``).

The second half covers the operand-validation satellite: float32 and
integer blocks upcast with :class:`KernelInputWarning`, Fortran-ordered
blocks are compacted silently, and unusable ``out`` buffers raise
instead of being silently copied around.
"""

import warnings

import numpy as np
import pytest

from repro.kernels import KernelInputWarning, get_backend
from repro.sparse.construct import csr_from_dense
from tests.kernels.test_backends import (
    BACKENDS,
    TRI_ZOO,
    ZOO,
    _assert_close,
)

WIDTHS = (1, 3, 32)


def _block(rng, n, k):
    return rng.standard_normal((n, k))


# ----------------------------------------------------------------------
# Dense agreement over the zoo, all backends x all widths
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
@pytest.mark.parametrize("k", WIDTHS)
def test_spmm_matches_dense(backend_name, case, k):
    _, a = case
    backend = get_backend(backend_name)
    x = _block(np.random.default_rng(15), a.n_cols, k)
    _assert_close(backend.spmm(a, x), a.to_dense() @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
@pytest.mark.parametrize("k", WIDTHS)
def test_spmm_t_matches_dense(backend_name, case, k):
    _, a = case
    backend = get_backend(backend_name)
    x = _block(np.random.default_rng(16), a.n_rows, k)
    _assert_close(backend.spmm_t(a, x), a.to_dense().T @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", ZOO, ids=[name for name, _ in ZOO])
def test_spmm_workspace_variant_is_identical(backend_name, case):
    """out=/scratch= must change allocation, never the numbers."""
    _, a = case
    backend = get_backend(backend_name)
    k = 5
    x = _block(np.random.default_rng(17), a.n_cols, k)
    plain = backend.spmm(a, x)
    out = np.full((a.n_rows, k), np.nan)
    scratch = np.empty((a.nnz, k))
    buffered = backend.spmm(a, x, out=out, scratch=scratch)
    assert buffered is out
    np.testing.assert_array_equal(buffered, plain)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_spmm_op_binds_the_same_kernel(backend_name):
    backend = get_backend(backend_name)
    k = 4
    for _, a in ZOO:
        x = _block(np.random.default_rng(18), a.n_cols, k)
        out = np.empty((a.n_rows, k))
        op = backend.spmm_op(a, np.empty((a.nnz, k)))
        assert op(x, out) is out
        _assert_close(out, a.to_dense() @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("case", TRI_ZOO, ids=[name for name, _ in TRI_ZOO])
@pytest.mark.parametrize("k", WIDTHS)
def test_fsai_apply_multi_matches_dense(backend_name, case, k):
    _, g = case
    backend = get_backend(backend_name)
    gd = g.to_dense()
    r = _block(np.random.default_rng(19), g.n_rows, k)
    expected = gd.T @ (gd @ r)
    _assert_close(backend.fsai_apply_multi(g, r), expected)
    # Fully-buffered variant and the bound handle the solver loop uses.
    out = np.empty((g.n_rows, k))
    tmp = np.empty((g.n_rows, k))
    scratch = np.empty((g.nnz, k))
    got = backend.fsai_apply_multi(g, r, out=out, tmp=tmp, scratch=scratch)
    assert got is out
    _assert_close(got, expected)
    op = backend.fsai_apply_multi_op(g, tmp, scratch)
    out2 = np.empty((g.n_rows, k))
    assert op(r, out2) is out2
    _assert_close(out2, expected)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_spmm_column_agrees_with_spmv(backend_name):
    """Per-column agreement with the single-vector kernel (<= 1e-13)."""
    backend = get_backend(backend_name)
    for _, a in ZOO:
        x = _block(np.random.default_rng(20), a.n_cols, 7)
        block = backend.spmm(a, x)
        for j in range(7):
            _assert_close(block[:, j], backend.spmv(a, x[:, j].copy()))


# ----------------------------------------------------------------------
# Operand validation at the kernel boundary (satellite: dtype/contiguity)
# ----------------------------------------------------------------------

A_SMALL = csr_from_dense(
    np.array([[4.0, -1.0, 0.0], [-1.0, 4.0, -1.0], [0.0, -1.0, 4.0]])
)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_float32_vector_upcast_with_warning(backend_name):
    backend = get_backend(backend_name)
    x64 = np.array([1.5, -2.0, 0.25])
    with pytest.warns(KernelInputWarning, match="float64"):
        got = backend.spmv(A_SMALL, x64.astype(np.float32))
    _assert_close(got, A_SMALL.to_dense() @ x64)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_float32_block_upcast_with_warning(backend_name):
    backend = get_backend(backend_name)
    x32 = np.random.default_rng(23).standard_normal((3, 4)).astype(np.float32)
    with pytest.warns(KernelInputWarning, match="float64"):
        got = backend.spmm(A_SMALL, x32)
    _assert_close(got, A_SMALL.to_dense() @ x32.astype(np.float64))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_integer_rhs_upcast_with_warning(backend_name):
    backend = get_backend(backend_name)
    x = np.array([1, 2, 3])
    with pytest.warns(KernelInputWarning):
        got = backend.spmv(A_SMALL, x)
    _assert_close(got, A_SMALL.to_dense() @ x.astype(np.float64))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_fortran_ordered_block_accepted_silently(backend_name):
    backend = get_backend(backend_name)
    x = np.asfortranarray(np.random.default_rng(24).standard_normal((3, 6)))
    assert not x.flags.c_contiguous
    with warnings.catch_warnings():
        warnings.simplefilter("error", KernelInputWarning)
        got = backend.spmm(A_SMALL, x)
    _assert_close(got, A_SMALL.to_dense() @ x)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_wrong_dtype_out_raises(backend_name):
    backend = get_backend(backend_name)
    x = np.ones(3)
    with pytest.raises(TypeError, match="float64"):
        backend.spmv(A_SMALL, x, np.empty(3, dtype=np.float32))
    with pytest.raises(TypeError, match="float64"):
        backend.spmm(A_SMALL, np.ones((3, 2)), np.empty((3, 2), dtype=np.float32))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_wrong_shape_out_raises(backend_name):
    backend = get_backend(backend_name)
    with pytest.raises(ValueError, match="shape"):
        backend.spmv(A_SMALL, np.ones(3), np.empty(4))
    with pytest.raises(ValueError, match="shape"):
        backend.spmm(A_SMALL, np.ones((3, 2)), np.empty((3, 3)))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_wrong_rank_operand_raises(backend_name):
    backend = get_backend(backend_name)
    with pytest.raises(ValueError, match="2-D"):
        backend.spmm(A_SMALL, np.ones(3))
    with pytest.raises(ValueError, match="1-D"):
        backend.spmv(A_SMALL, np.ones((3, 2)))
