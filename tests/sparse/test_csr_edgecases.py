"""CSR degenerate-shape contracts: empty rows, empty matrices, zero tails.

``matvec``/``rmatvec`` build the output with ``np.bincount(..., minlength=n)``
— these tests pin the contract that the result length is *always* the full
dimension, even when the trailing rows (or the whole matrix) hold no entries,
and that the scratch/gather fast path honours the same shapes.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix


def _csr(n_rows, n_cols, rows, cols, vals):
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, np.asarray(rows, dtype=np.int64) + 1, 1)
    indptr = np.cumsum(indptr)
    order = np.lexsort((cols, rows))
    return CSRMatrix(
        n_rows, n_cols, indptr,
        np.asarray(cols, dtype=np.int64)[order],
        np.asarray(vals, dtype=np.float64)[order],
    )


class TestEmptyRows:
    def test_interior_empty_row(self):
        a = _csr(3, 3, [0, 2], [1, 0], [2.0, 5.0])
        y = a.matvec(np.array([1.0, 3.0, -1.0]))
        assert y.shape == (3,)
        assert np.array_equal(y, [6.0, 0.0, 5.0])

    def test_trailing_all_zero_row(self):
        """bincount without minlength would return a short vector here."""
        a = _csr(4, 4, [0, 1], [0, 1], [1.0, 1.0])
        y = a.matvec(np.ones(4))
        assert y.shape == (4,)
        assert np.array_equal(y, [1.0, 1.0, 0.0, 0.0])

    def test_trailing_all_zero_column_rmatvec(self):
        a = _csr(4, 4, [0, 1], [0, 1], [3.0, 4.0])
        y = a.rmatvec(np.ones(4))
        assert y.shape == (4,)
        assert np.array_equal(y, [3.0, 4.0, 0.0, 0.0])

    def test_scratch_path_same_shapes(self):
        a = _csr(4, 4, [0, 1], [0, 1], [1.0, 2.0])
        scratch = np.empty(a.nnz)
        x = np.arange(4.0)
        assert np.array_equal(a.matvec(x), a.matvec(x, scratch=scratch))
        assert np.array_equal(a.rmatvec(x), a.rmatvec(x, scratch=scratch))


class TestEmptyMatrix:
    def test_zero_rows(self):
        a = CSRMatrix(0, 5, np.zeros(1, dtype=np.int64), [], [])
        y = a.matvec(np.ones(5))
        assert y.shape == (0,)
        yt = a.rmatvec(np.empty(0))
        assert yt.shape == (5,)
        assert np.array_equal(yt, np.zeros(5))

    def test_zero_cols(self):
        a = CSRMatrix(5, 0, np.zeros(6, dtype=np.int64), [], [])
        y = a.matvec(np.empty(0))
        assert y.shape == (5,)
        assert np.array_equal(y, np.zeros(5))

    def test_zero_by_zero(self):
        a = CSRMatrix(0, 0, np.zeros(1, dtype=np.int64), [], [])
        assert a.matvec(np.empty(0)).shape == (0,)
        assert a.rmatvec(np.empty(0)).shape == (0,)

    def test_no_entries_scratch(self):
        a = CSRMatrix(3, 3, np.zeros(4, dtype=np.int64), [], [])
        y = a.matvec(np.ones(3), scratch=np.empty(0))
        assert np.array_equal(y, np.zeros(3))


class TestGatherEntries:
    def test_stored_and_absent_entries(self):
        a = _csr(3, 3, [0, 0, 2], [0, 2, 1], [1.0, 2.0, 3.0])
        got = a.gather_entries([0, 0, 2, 1], [0, 2, 1, 1])
        assert np.array_equal(got, [1.0, 2.0, 3.0, 0.0])

    def test_empty_query(self):
        a = _csr(2, 2, [0], [0], [1.0])
        assert a.gather_entries([], []).shape == (0,)

    def test_empty_matrix_query(self):
        a = CSRMatrix(2, 2, np.zeros(3, dtype=np.int64), [], [])
        assert np.array_equal(a.gather_entries([0, 1], [1, 0]), [0.0, 0.0])

    def test_out_of_range_rejected(self):
        a = _csr(2, 2, [0], [0], [1.0])
        with pytest.raises(ShapeError):
            a.gather_entries([2], [0])
        with pytest.raises(ShapeError):
            a.gather_entries([0], [-1])

    def test_shape_mismatch_rejected(self):
        a = _csr(2, 2, [0], [0], [1.0])
        with pytest.raises(ShapeError):
            a.gather_entries([0, 1], [0])


class TestScratchValidation:
    def test_wrong_length_rejected(self):
        a = _csr(2, 2, [0, 1], [0, 1], [1.0, 1.0])
        with pytest.raises(ShapeError):
            a.matvec(np.ones(2), scratch=np.empty(a.nnz + 1))
        with pytest.raises(ShapeError):
            a.rmatvec(np.ones(2), scratch=np.empty(a.nnz - 1))

    def test_scratch_is_actually_used(self):
        a = _csr(2, 2, [0, 1], [0, 1], [2.0, 3.0])
        scratch = np.zeros(a.nnz)
        a.matvec(np.array([1.0, 1.0]), scratch=scratch)
        assert np.array_equal(scratch, [2.0, 3.0])
