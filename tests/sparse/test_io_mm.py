"""Unit tests for repro.sparse.io_mm (Matrix Market I/O)."""

import io

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.sparse.construct import csr_from_dense
from repro.sparse.io_mm import (
    matrix_market_string,
    read_matrix_market,
    write_matrix_market,
)


@pytest.fixture
def spd(small_spd):
    return small_spd


class TestRoundTrip:
    def test_general(self, spd):
        text = matrix_market_string(spd)
        back = read_matrix_market(io.StringIO(text))
        assert np.allclose(back.to_dense(), spd.to_dense())

    def test_symmetric(self, spd):
        text = matrix_market_string(spd, symmetric=True)
        assert "symmetric" in text.splitlines()[0]
        back = read_matrix_market(io.StringIO(text))
        assert np.allclose(back.to_dense(), spd.to_dense())

    def test_file_path_roundtrip(self, spd, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(spd, path, symmetric=True, comment="generated")
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), spd.to_dense())
        assert "% generated" in path.read_text()

    def test_values_exact(self):
        m = csr_from_dense(np.array([[1.0 / 3.0, 0.0], [0.0, 1e-300]]))
        back = read_matrix_market(io.StringIO(matrix_market_string(m)))
        assert np.array_equal(back.data, m.data)

    def test_rectangular(self):
        m = csr_from_dense(np.array([[1.0, 0.0, 2.0]]))
        back = read_matrix_market(io.StringIO(matrix_market_string(m)))
        assert back.shape == (1, 3)


class TestReader:
    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        m = read_matrix_market(io.StringIO(text))
        assert np.allclose(m.to_dense(), np.eye(2))

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 7.0

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 3.5\n"
        )
        assert read_matrix_market(io.StringIO(text)).to_dense()[0, 0] == 3.5

    def test_symmetric_mirrors_offdiagonal(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 1.0\n2 1 5.0\n"
        )
        m = read_matrix_market(io.StringIO(text))
        assert np.allclose(m.to_dense(), [[1.0, 5.0], [5.0, 0.0]])

    def test_bad_header(self):
        with pytest.raises(MatrixFormatError):
            read_matrix_market(io.StringIO("not a matrix\n"))

    def test_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        with pytest.raises(MatrixFormatError):
            read_matrix_market(io.StringIO(text))

    def test_unsupported_format(self):
        text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
        with pytest.raises(MatrixFormatError):
            read_matrix_market(io.StringIO(text))

    def test_entry_count_mismatch(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(MatrixFormatError):
            read_matrix_market(io.StringIO(text))

    def test_missing_value(self):
        text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n"
        with pytest.raises(MatrixFormatError):
            read_matrix_market(io.StringIO(text))

    def test_missing_size_line(self):
        with pytest.raises(MatrixFormatError):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate real general\n")
            )
