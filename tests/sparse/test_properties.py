"""Property-based tests for the sparse substrate (hypothesis).

These pin down the core invariants every other subsystem builds on:
CSR/COO/dense round-trips, kernel agreement with dense algebra, and the
set-algebra laws of patterns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern

# Small dense matrices with controllable sparsity.
dims = st.integers(min_value=1, max_value=12)


@st.composite
def sparse_dense(draw, square=False):
    n = draw(dims)
    m = n if square else draw(dims)
    values = draw(
        arrays(
            np.float64,
            (n, m),
            elements=st.floats(-10, 10, allow_nan=False, width=32).map(float),
        )
    )
    mask = draw(arrays(np.bool_, (n, m)))
    return values * mask


@st.composite
def patterns(draw, square=False):
    return Pattern.from_dense_mask(draw(sparse_dense(square=square)) != 0)


class TestCSRProperties:
    @given(sparse_dense())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, d):
        assert np.array_equal(csr_from_dense(d).to_dense(), d)

    @given(sparse_dense())
    @settings(max_examples=60, deadline=None)
    def test_coo_roundtrip(self, d):
        a = csr_from_dense(d)
        assert np.array_equal(a.to_coo().to_csr().to_dense(), d)

    @given(sparse_dense(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matvec_matches_dense(self, d, seed):
        a = csr_from_dense(d)
        x = np.random.default_rng(seed).standard_normal(d.shape[1])
        assert np.allclose(a.matvec(x), d @ x, atol=1e-9)

    @given(sparse_dense(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rmatvec_is_transpose_matvec(self, d, seed):
        a = csr_from_dense(d)
        x = np.random.default_rng(seed).standard_normal(d.shape[0])
        assert np.allclose(a.rmatvec(x), a.T.matvec(x), atol=1e-9)

    @given(sparse_dense())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, d):
        a = csr_from_dense(d)
        assert np.array_equal(a.T.T.to_dense(), d)

    @given(sparse_dense())
    @settings(max_examples=60, deadline=None)
    def test_csc_kernels_agree(self, d):
        a = csr_from_dense(d)
        c = a.to_csc()
        x = np.ones(d.shape[1])
        y = np.ones(d.shape[0])
        assert np.allclose(c.matvec(x), a.matvec(x))
        assert np.allclose(c.rmatvec(y), a.rmatvec(y))

    @given(sparse_dense(square=True))
    @settings(max_examples=60, deadline=None)
    def test_tril_triu_reassemble(self, d):
        a = csr_from_dense(d)
        re = (
            a.tril(keep_diagonal=False).to_dense()
            + a.triu().to_dense()
        )
        assert np.array_equal(re, d)


class TestPatternProperties:
    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_union_idempotent(self, p):
        assert p.union(p) == p

    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_difference_with_self_empty(self, p):
        assert p.difference(p).nnz == 0

    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_intersection_with_self(self, p):
        assert p.intersection(p) == p

    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_transpose_preserves_nnz(self, p):
        assert p.T.nnz == p.nnz

    @given(patterns(square=True))
    @settings(max_examples=60, deadline=None)
    def test_tri_partition(self, p):
        assert p.tril().nnz + p.triu(keep_diagonal=False).nnz == p.nnz

    @given(patterns())
    @settings(max_examples=60, deadline=None)
    def test_subset_reflexive(self, p):
        assert p.is_subset_of(p)

    @given(patterns(square=True))
    @settings(max_examples=60, deadline=None)
    def test_union_difference_partition(self, p):
        q = Pattern.identity(p.n_rows)
        u = p.union(q)
        assert p.is_subset_of(u) and q.is_subset_of(u)
        assert u.difference(p).is_subset_of(q)
