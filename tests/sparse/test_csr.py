"""Unit tests for repro.sparse.csr."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.construct import csr_from_dense, csr_identity
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern


@pytest.fixture
def dense():
    return np.array(
        [
            [4.0, 1.0, 0.0, 0.0],
            [1.0, 5.0, 2.0, 0.0],
            [0.0, 2.0, 6.0, -1.0],
            [0.0, 0.0, -1.0, 3.0],
        ]
    )


@pytest.fixture
def a(dense):
    return csr_from_dense(dense)


class TestStructure:
    def test_shape_nnz(self, a):
        assert a.shape == (4, 4)
        assert a.nnz == 10

    def test_pattern_shares_structure(self, a):
        p = a.pattern
        assert isinstance(p, Pattern)
        assert p.nnz == a.nnz

    def test_row_view(self, a, dense):
        cols, vals = a.row(1)
        assert list(cols) == [0, 1, 2]
        assert np.allclose(vals, [1, 5, 2])

    def test_data_index_length_mismatch(self):
        with pytest.raises(ShapeError):
            CSRMatrix(1, 2, [0, 1], [0], [1.0, 2.0])

    def test_row_ids(self, a):
        ids = a.row_ids()
        assert len(ids) == a.nnz
        assert list(np.bincount(ids)) == [2, 3, 3, 2]


class TestKernels:
    def test_matvec_matches_dense(self, a, dense, rng):
        x = rng.standard_normal(4)
        assert np.allclose(a.matvec(x), dense @ x)

    def test_matvec_out_param(self, a, dense):
        x = np.ones(4)
        out = np.empty(4)
        y = a.matvec(x, out=out)
        assert y is out
        assert np.allclose(out, dense @ x)

    def test_rmatvec_matches_dense(self, a, dense, rng):
        x = rng.standard_normal(4)
        assert np.allclose(a.rmatvec(x), dense.T @ x)

    def test_matmul_operator(self, a, dense):
        x = np.arange(4.0)
        assert np.allclose(a @ x, dense @ x)

    def test_matvec_wrong_shape(self, a):
        with pytest.raises(ShapeError):
            a.matvec(np.ones(5))

    def test_rmatvec_wrong_shape(self, a):
        with pytest.raises(ShapeError):
            a.rmatvec(np.ones(5))

    def test_empty_rows_give_zero(self):
        m = CSRMatrix(3, 3, [0, 0, 1, 1], [2], [5.0])
        y = m.matvec(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(y, [0.0, 5.0, 0.0])

    def test_rectangular_matvec(self):
        m = csr_from_dense(np.array([[1.0, 2.0, 3.0], [0.0, 1.0, 0.0]]))
        assert np.allclose(m.matvec(np.array([1.0, 1.0, 1.0])), [6.0, 1.0])
        assert np.allclose(m.rmatvec(np.array([1.0, 2.0])), [1.0, 4.0, 3.0])


class TestExtraction:
    def test_diagonal(self, a, dense):
        assert np.allclose(a.diagonal(), np.diag(dense))

    def test_diagonal_with_missing_entries(self):
        m = csr_from_dense(np.array([[0.0, 1.0], [0.0, 2.0]]))
        assert np.allclose(m.diagonal(), [0.0, 2.0])

    def test_tril_triu(self, a, dense):
        assert np.allclose(a.tril().to_dense(), np.tril(dense))
        assert np.allclose(a.triu().to_dense(), np.triu(dense))
        assert np.allclose(
            a.tril(keep_diagonal=False).to_dense(), np.tril(dense, -1)
        )

    def test_drop_small_keeps_diagonal(self, a):
        small = a.drop_small(100.0)
        assert np.allclose(small.diagonal(), a.diagonal())
        assert small.nnz == 4

    def test_drop_small_without_diagonal(self, a):
        assert a.drop_small(100.0, keep_diagonal=False).nnz == 0

    def test_prune_zeros(self):
        m = CSRMatrix(2, 2, [0, 2, 3], [0, 1, 1], [1.0, 0.0, 2.0])
        pruned = m.prune_zeros()
        assert pruned.nnz == 2
        assert np.allclose(pruned.to_dense(), m.to_dense())

    def test_submatrix_matches_dense(self, a, dense):
        rows = np.array([0, 2, 3])
        cols = np.array([1, 2])
        assert np.allclose(a.submatrix(rows, cols), dense[np.ix_(rows, cols)])

    def test_submatrix_empty_selection(self, a):
        out = a.submatrix(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.shape == (0, 0)


class TestConversions:
    def test_transpose_matches_dense(self, a, dense):
        assert np.allclose(a.T.to_dense(), dense.T)

    def test_transpose_involution(self, a):
        assert np.allclose(a.T.T.to_dense(), a.to_dense())

    def test_to_coo_roundtrip(self, a):
        assert np.allclose(a.to_coo().to_csr().to_dense(), a.to_dense())

    def test_to_csc_matvec_agrees(self, a, rng):
        x = rng.standard_normal(4)
        assert np.allclose(a.to_csc().matvec(x), a.matvec(x))

    def test_copy_is_independent(self, a):
        c = a.copy()
        c.data[0] = 99.0
        assert a.data[0] != 99.0

    def test_with_data(self, a):
        doubled = a.with_data(a.data * 2)
        assert np.allclose(doubled.to_dense(), 2 * a.to_dense())

    def test_from_pattern_zero_values(self, a):
        z = CSRMatrix.from_pattern(a.pattern)
        assert z.nnz == a.nnz
        assert np.allclose(z.data, 0.0)


class TestAlgebra:
    def test_scale_rows(self, a, dense):
        s = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(a.scale_rows(s).to_dense(), np.diag(s) @ dense)

    def test_scale_cols(self, a, dense):
        s = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(a.scale_cols(s).to_dense(), dense @ np.diag(s))

    def test_scale_wrong_length(self, a):
        with pytest.raises(ShapeError):
            a.scale_rows(np.ones(3))

    def test_frobenius_norm(self, a, dense):
        assert a.frobenius_norm() == pytest.approx(np.linalg.norm(dense, "fro"))

    def test_max_norm(self, a, dense):
        assert a.max_norm() == pytest.approx(np.abs(dense).max())

    def test_is_symmetric(self, a):
        assert a.is_symmetric()

    def test_is_symmetric_rejects_asymmetric_values(self):
        m = csr_from_dense(np.array([[1.0, 2.0], [3.0, 1.0]]))
        assert not m.is_symmetric()

    def test_identity(self):
        i = csr_identity(3, scale=2.0)
        assert np.allclose(i.to_dense(), 2 * np.eye(3))
