"""Unit tests for repro.sparse.construct and repro.sparse.validate."""

import numpy as np
import pytest

from repro.errors import NotSPDError, NotSymmetricError, ShapeError
from repro.sparse.construct import (
    csr_diagonal_matrix,
    csr_from_coo_arrays,
    csr_from_dense,
    csr_identity,
)
from repro.sparse.validate import (
    check_spd_sample,
    gershgorin_bounds,
    require_positive_diagonal,
    require_square,
    require_symmetric,
)


class TestConstruct:
    def test_from_dense_drop_tolerance(self):
        m = csr_from_dense(np.array([[1.0, 1e-12], [0.0, 2.0]]), drop_tolerance=1e-9)
        assert m.nnz == 2

    def test_from_dense_requires_2d(self):
        with pytest.raises(ShapeError):
            csr_from_dense(np.ones(3))

    def test_identity(self):
        assert np.allclose(csr_identity(3).to_dense(), np.eye(3))

    def test_diagonal_matrix(self):
        d = np.array([1.0, -2.0, 3.0])
        assert np.allclose(csr_diagonal_matrix(d).to_dense(), np.diag(d))

    def test_from_coo_arrays_sums_duplicates(self):
        m = csr_from_coo_arrays(2, 2, [0, 0], [0, 0], [1.0, 2.0])
        assert m.to_dense()[0, 0] == 3.0


class TestValidate:
    def test_require_square(self):
        require_square(csr_identity(3))
        with pytest.raises(ShapeError):
            require_square(csr_from_dense(np.ones((2, 3))))

    def test_require_symmetric_passes(self, small_spd):
        require_symmetric(small_spd)

    def test_require_symmetric_fails(self):
        m = csr_from_dense(np.array([[1.0, 2.0], [3.0, 1.0]]))
        with pytest.raises(NotSymmetricError):
            require_symmetric(m)

    def test_positive_diagonal(self, small_spd):
        require_positive_diagonal(small_spd)

    def test_positive_diagonal_fails(self):
        m = csr_from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(NotSPDError):
            require_positive_diagonal(m)

    def test_spd_sample_passes(self, small_spd):
        check_spd_sample(small_spd)

    def test_spd_sample_catches_indefinite(self):
        m = csr_from_dense(np.diag([1.0, -5.0, 1.0]))
        with pytest.raises(NotSPDError):
            check_spd_sample(m, n_probes=32)

    def test_gershgorin_encloses_spectrum(self, small_spd):
        lo, hi = gershgorin_bounds(small_spd)
        eigs = np.linalg.eigvalsh(small_spd.to_dense())
        assert lo <= eigs.min() + 1e-12
        assert hi >= eigs.max() - 1e-12
