"""Unit tests for repro.sparse.csc."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.construct import csr_from_dense


@pytest.fixture
def dense(rng):
    d = rng.standard_normal((5, 3))
    d[np.abs(d) < 0.5] = 0.0
    return d


@pytest.fixture
def csc(dense):
    return csr_from_dense(dense).to_csc()


class TestCSC:
    def test_shape_preserved(self, csc, dense):
        assert csc.shape == dense.shape

    def test_to_dense(self, csc, dense):
        assert np.allclose(csc.to_dense(), dense)

    def test_matvec(self, csc, dense, rng):
        x = rng.standard_normal(3)
        assert np.allclose(csc.matvec(x), dense @ x)

    def test_rmatvec(self, csc, dense, rng):
        x = rng.standard_normal(5)
        assert np.allclose(csc.rmatvec(x), dense.T @ x)

    def test_matmul(self, csc, dense):
        x = np.ones(3)
        assert np.allclose(csc @ x, dense @ x)

    def test_matvec_shape_check(self, csc):
        with pytest.raises(ShapeError):
            csc.matvec(np.ones(5))
        with pytest.raises(ShapeError):
            csc.rmatvec(np.ones(3))

    def test_col_access(self, csc, dense):
        rows, vals = csc.col(1)
        expected_rows = np.nonzero(dense[:, 1])[0]
        assert np.array_equal(rows, expected_rows)
        assert np.allclose(vals, dense[expected_rows, 1])

    def test_round_trip_csr(self, csc, dense):
        assert np.allclose(csc.to_csr().to_dense(), dense)

    def test_transpose(self, csc, dense):
        assert np.allclose(csc.T.to_dense(), dense.T)

    def test_pattern_is_row_major_of_self(self, csc, dense):
        assert np.array_equal(csc.pattern.to_dense_mask(), dense != 0)

    def test_col_ids_cover_nnz(self, csc):
        assert len(csc.col_ids()) == csc.nnz
