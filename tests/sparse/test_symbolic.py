"""Unit tests for repro.sparse.symbolic."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse.construct import csr_from_dense
from repro.sparse.pattern import Pattern
from repro.sparse.symbolic import (
    pattern_multiply,
    pattern_power,
    symmetrize_pattern,
    threshold_matrix,
    threshold_pattern,
)


def mask_of(dense):
    return Pattern.from_dense_mask(np.asarray(dense) != 0)


class TestPatternMultiply:
    def test_matches_boolean_matmul(self, rng):
        a = (rng.uniform(size=(6, 5)) < 0.4).astype(float)
        b = (rng.uniform(size=(5, 7)) < 0.4).astype(float)
        expected = (a @ b) != 0
        got = pattern_multiply(mask_of(a), mask_of(b))
        assert np.array_equal(got.to_dense_mask(), expected)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            pattern_multiply(Pattern.identity(3), Pattern.identity(4))

    def test_empty_rows_propagate(self):
        a = Pattern.empty(3, 3)
        out = pattern_multiply(a, Pattern.identity(3))
        assert out.nnz == 0

    def test_identity_is_neutral(self, rng):
        m = (rng.uniform(size=(5, 5)) < 0.4)
        p = Pattern.from_dense_mask(m)
        assert pattern_multiply(p, Pattern.identity(5)) == p


class TestPatternPower:
    def test_power_one_is_self(self):
        p = Pattern.identity(4)
        assert pattern_power(p, 1) is p

    def test_power_matches_dense(self, rng):
        m = (rng.uniform(size=(8, 8)) < 0.25) | np.eye(8, dtype=bool)
        p = Pattern.from_dense_mask(m)
        for n in (2, 3):
            expected = np.linalg.matrix_power(m.astype(float), n) != 0
            assert np.array_equal(pattern_power(p, n).to_dense_mask(), expected)

    def test_power_monotone(self, rng):
        # With a full diagonal, pattern(A^n) grows monotonically with n.
        m = (rng.uniform(size=(10, 10)) < 0.15) | np.eye(10, dtype=bool)
        p = Pattern.from_dense_mask(m)
        p2 = pattern_power(p, 2)
        p3 = pattern_power(p, 3)
        assert p.is_subset_of(p2)
        assert p2.is_subset_of(p3)

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            pattern_power(Pattern.identity(3), 0)

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            pattern_power(Pattern.empty(2, 3), 2)


class TestThreshold:
    def test_scale_independence(self):
        d = np.array([[4.0, 0.5, 0.0], [0.5, 2.0, 0.1], [0.0, 0.1, 1.0]])
        a = csr_from_dense(d)
        s = np.diag([10.0, 0.1, 3.0])
        scaled = csr_from_dense(s @ d @ s)
        tau = 0.2
        assert np.array_equal(
            threshold_pattern(a, tau).to_dense_mask(),
            threshold_pattern(scaled, tau).to_dense_mask(),
        )

    def test_zero_threshold_keeps_all(self, small_spd):
        assert threshold_matrix(small_spd, 0.0).nnz == small_spd.nnz

    def test_large_threshold_keeps_only_diagonal(self, small_spd):
        t = threshold_matrix(small_spd, 1e6)
        assert t.nnz == small_spd.n_rows
        assert np.allclose(t.diagonal(), small_spd.diagonal())

    def test_negative_threshold_raises(self, small_spd):
        with pytest.raises(ValueError):
            threshold_matrix(small_spd, -0.1)

    def test_requires_square(self):
        m = csr_from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            threshold_matrix(m, 0.1)


class TestSymmetrize:
    def test_union_with_transpose(self):
        p = Pattern.from_coo(3, 3, np.array([1]), np.array([0]))
        s = symmetrize_pattern(p)
        assert (0, 1) in s and (1, 0) in s

    def test_idempotent_on_symmetric(self, small_spd):
        p = small_spd.pattern
        assert symmetrize_pattern(p) == p

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            symmetrize_pattern(Pattern.empty(2, 3))
