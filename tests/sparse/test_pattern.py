"""Unit tests for repro.sparse.pattern."""

import numpy as np
import pytest

from repro.errors import PatternError, ShapeError
from repro.sparse.pattern import Pattern


def tri_pattern():
    # 4x4: diag + one subdiagonal entry
    return Pattern.from_coo(
        4, 4,
        np.array([0, 1, 1, 2, 3, 3]),
        np.array([0, 0, 1, 2, 1, 3]),
    )


class TestConstruction:
    def test_from_rows(self):
        p = Pattern.from_rows(3, 4, [[0, 2], [1], []])
        assert p.nnz == 3
        assert list(p.row(0)) == [0, 2]
        assert list(p.row(1)) == [1]
        assert list(p.row(2)) == []

    def test_from_rows_sorts_and_dedups(self):
        p = Pattern.from_rows(1, 5, [[3, 1, 3, 0]])
        assert list(p.row(0)) == [0, 1, 3]

    def test_from_rows_wrong_count_raises(self):
        with pytest.raises(ShapeError):
            Pattern.from_rows(2, 2, [[0]])

    def test_from_coo_dedups(self):
        p = Pattern.from_coo(2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]))
        assert p.nnz == 2

    def test_from_coo_out_of_range(self):
        with pytest.raises(PatternError):
            Pattern.from_coo(2, 2, np.array([2]), np.array([0]))
        with pytest.raises(PatternError):
            Pattern.from_coo(2, 2, np.array([0]), np.array([5]))

    def test_from_dense_mask(self):
        mask = np.array([[True, False], [True, True]])
        p = Pattern.from_dense_mask(mask)
        assert np.array_equal(p.to_dense_mask(), mask)

    def test_empty(self):
        p = Pattern.empty(3, 5)
        assert p.nnz == 0 and p.shape == (3, 5)

    def test_identity(self):
        p = Pattern.identity(4)
        assert p.nnz == 4 and p.has_full_diagonal()

    def test_invalid_indptr_rejected(self):
        with pytest.raises(PatternError):
            Pattern(2, 2, np.array([0, 1]), np.array([0]))

    def test_unsorted_row_rejected(self):
        with pytest.raises(PatternError):
            Pattern(1, 3, np.array([0, 2]), np.array([2, 0]))

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(PatternError):
            Pattern(1, 3, np.array([0, 2]), np.array([1, 1]))

    def test_immutable(self):
        p = Pattern.identity(2)
        with pytest.raises(AttributeError):
            p.n_rows = 5


class TestQueries:
    def test_shape_nnz_density(self):
        p = tri_pattern()
        assert p.shape == (4, 4)
        assert p.nnz == 6
        assert p.density() == pytest.approx(6 / 16)

    def test_contains(self):
        p = tri_pattern()
        assert (1, 0) in p
        assert (0, 1) not in p

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            tri_pattern().row(4)

    def test_row_lengths(self):
        assert list(tri_pattern().row_lengths()) == [1, 2, 1, 2]

    def test_coo_roundtrip(self):
        p = tri_pattern()
        r, c = p.coo()
        assert Pattern.from_coo(4, 4, r, c) == p

    def test_iter_rows(self):
        rows = list(tri_pattern().iter_rows())
        assert len(rows) == 4
        assert list(rows[1]) == [0, 1]


class TestTransforms:
    def test_transpose_involution(self):
        p = tri_pattern()
        assert p.transpose().transpose() == p

    def test_transpose_mask(self):
        p = tri_pattern()
        assert np.array_equal(p.T.to_dense_mask(), p.to_dense_mask().T)

    def test_tril_triu_partition(self):
        p = tri_pattern()
        lower = p.tril(keep_diagonal=False)
        upper = p.triu()
        assert lower.nnz + upper.nnz == p.nnz

    def test_tril_is_lower(self):
        assert tri_pattern().tril().is_lower_triangular()

    def test_with_full_diagonal(self):
        p = Pattern.from_coo(3, 3, np.array([1]), np.array([0]))
        q = p.with_full_diagonal()
        assert q.has_full_diagonal()
        assert (1, 0) in q

    def test_union_commutative(self):
        p = tri_pattern()
        q = Pattern.identity(4)
        assert p.union(q) == q.union(p)

    def test_union_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tri_pattern().union(Pattern.identity(3))

    def test_intersection(self):
        p = tri_pattern()
        q = Pattern.identity(4)
        inter = p.intersection(q)
        assert inter.nnz == 4  # the diagonal entries present in p

    def test_difference(self):
        p = tri_pattern()
        d = p.difference(Pattern.identity(4))
        assert d.nnz == p.nnz - 4
        assert all(i != j for i, j in zip(*d.coo()))

    def test_subset(self):
        p = tri_pattern()
        assert Pattern.identity(4).is_subset_of(p)
        assert not p.is_subset_of(Pattern.identity(4))

    def test_subset_different_shape_false(self):
        assert not Pattern.identity(3).is_subset_of(Pattern.identity(4))


class TestPredicates:
    def test_lower_upper(self):
        p = tri_pattern()
        assert p.is_lower_triangular()
        assert not p.is_upper_triangular()
        assert p.T.is_upper_triangular()

    def test_structural_symmetry(self):
        sym = Pattern.from_dense_mask(np.array([[1, 1], [1, 1]], dtype=bool))
        assert sym.is_structurally_symmetric()
        assert not tri_pattern().is_structurally_symmetric()

    def test_eq_and_hash(self):
        p, q = tri_pattern(), tri_pattern()
        assert p == q and hash(p) == hash(q)
        assert p != Pattern.identity(4)

    def test_repr(self):
        assert "nnz=6" in repr(tri_pattern())
