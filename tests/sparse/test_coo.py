"""Unit tests for repro.sparse.coo."""

import numpy as np
import pytest

from repro.errors import PatternError, ShapeError
from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_basic(self):
        m = COOMatrix(2, 3, [0, 1], [2, 0], [1.5, -2.0])
        assert m.shape == (2, 3)
        assert m.nnz == 2

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            COOMatrix(2, 2, [0], [0, 1], [1.0, 2.0])

    def test_out_of_range(self):
        with pytest.raises(PatternError):
            COOMatrix(2, 2, [3], [0], [1.0])
        with pytest.raises(PatternError):
            COOMatrix(2, 2, [0], [-1], [1.0])


class TestCanonical:
    def test_duplicates_summed(self):
        m = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        c = m.canonical()
        assert c.nnz == 2
        assert np.allclose(c.to_dense(), [[0, 3], [5, 0]])

    def test_sorted_row_major(self):
        m = COOMatrix(2, 2, [1, 0], [0, 1], [1.0, 2.0])
        c = m.canonical()
        assert list(c.row) == [0, 1]

    def test_empty(self):
        c = COOMatrix(3, 3, [], [], []).canonical()
        assert c.nnz == 0

    def test_explicit_zero_preserved(self):
        c = COOMatrix(1, 2, [0], [1], [0.0]).canonical()
        assert c.nnz == 1


class TestConversion:
    def test_to_csr_assembly_semantics(self, rng):
        # FE-style assembly: many duplicate contributions.
        n = 10
        rows = rng.integers(0, n, 200)
        cols = rng.integers(0, n, 200)
        vals = rng.standard_normal(200)
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), vals)
        csr = COOMatrix(n, n, rows, cols, vals).to_csr()
        assert np.allclose(csr.to_dense(), dense)

    def test_to_dense(self):
        m = COOMatrix(2, 2, [0, 1], [1, 1], [3.0, 4.0])
        assert np.allclose(m.to_dense(), [[0, 3], [0, 4]])

    def test_transpose(self):
        m = COOMatrix(2, 3, [0, 1], [2, 0], [1.0, 2.0])
        t = m.transpose()
        assert t.shape == (3, 2)
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_repr(self):
        assert "nnz=2" in repr(COOMatrix(2, 2, [0, 1], [0, 1], [1.0, 1.0]))
