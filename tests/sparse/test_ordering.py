"""Unit tests for repro.sparse.ordering (RCM)."""

import numpy as np
import pytest

from repro.collection.generators.fd import poisson2d
from repro.errors import ShapeError
from repro.sparse.construct import csr_from_coo_arrays, csr_from_dense
from repro.sparse.ordering import (
    bandwidth,
    permute_symmetric,
    profile,
    pseudo_peripheral_vertex,
    reverse_cuthill_mckee,
)
from repro.sparse.pattern import Pattern


def shuffled_poisson(m, seed=0):
    """Poisson grid with rows/cols randomly relabelled (large bandwidth)."""
    a = poisson2d(m)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(a.n_rows)
    return permute_symmetric(a, perm)


class TestMetrics:
    def test_bandwidth_tridiagonal(self):
        a = csr_from_dense(np.diag(np.ones(4)) + np.diag(np.ones(3), 1) + np.diag(np.ones(3), -1))
        assert bandwidth(a) == 1

    def test_bandwidth_empty(self):
        assert bandwidth(Pattern.empty(3, 3)) == 0

    def test_profile_nonnegative_and_zero_for_diagonal(self):
        assert profile(Pattern.identity(5)) == 0
        a = poisson2d(5)
        assert profile(a) > 0


class TestRCM:
    def test_is_permutation(self):
        a = shuffled_poisson(8)
        perm = reverse_cuthill_mckee(a)
        assert sorted(perm.tolist()) == list(range(a.n_rows))

    def test_reduces_bandwidth_of_shuffled_grid(self):
        a = shuffled_poisson(10, seed=3)
        perm = reverse_cuthill_mckee(a)
        b = permute_symmetric(a, perm)
        assert bandwidth(b) < bandwidth(a) / 2
        # Grid graph: RCM should approach the natural-order bandwidth.
        assert bandwidth(b) <= 3 * 10

    def test_reduces_profile(self):
        a = shuffled_poisson(9, seed=5)
        b = permute_symmetric(a, reverse_cuthill_mckee(a))
        assert profile(b) < profile(a)

    def test_disconnected_components(self):
        # Two disjoint 3-cliques.
        rows = [0, 0, 1, 3, 3, 4]
        cols = [1, 2, 2, 4, 5, 5]
        r = np.array(rows + cols + list(range(6)))
        c = np.array(cols + rows + list(range(6)))
        a = csr_from_coo_arrays(6, 6, r, c, np.ones(len(r), dtype=float))
        perm = reverse_cuthill_mckee(a)
        assert sorted(perm.tolist()) == list(range(6))

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            reverse_cuthill_mckee(Pattern.empty(2, 3))

    def test_deterministic(self):
        a = shuffled_poisson(7, seed=9)
        assert np.array_equal(reverse_cuthill_mckee(a), reverse_cuthill_mckee(a))


class TestPermuteSymmetric:
    def test_preserves_operator(self, rng):
        a = poisson2d(6)
        perm = rng.permutation(a.n_rows)
        b = permute_symmetric(a, perm)
        x = rng.standard_normal(a.n_rows)
        # (P A P^T)(P x) = P (A x)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(len(perm))
        assert np.allclose(b.matvec(x[perm]), a.matvec(x)[perm])

    def test_preserves_spectrum(self, rng):
        a = poisson2d(4)
        perm = rng.permutation(a.n_rows)
        b = permute_symmetric(a, perm)
        assert np.allclose(
            np.linalg.eigvalsh(a.to_dense()), np.linalg.eigvalsh(b.to_dense())
        )

    def test_identity_permutation(self):
        a = poisson2d(4)
        b = permute_symmetric(a, np.arange(a.n_rows))
        assert np.allclose(a.to_dense(), b.to_dense())

    def test_validates_permutation(self):
        a = poisson2d(3)
        with pytest.raises(ShapeError):
            permute_symmetric(a, np.zeros(a.n_rows, dtype=np.int64))


class TestPeripheral:
    def test_path_graph_ends(self):
        # Path 0-1-2-3-4: peripheral vertices are 0 and 4.
        n = 5
        r = np.array([0, 1, 2, 3, 1, 2, 3, 4] + list(range(n)))
        c = np.array([1, 2, 3, 4, 0, 1, 2, 3] + list(range(n)))
        a = csr_from_coo_arrays(n, n, r, c, np.ones(len(r), dtype=float))
        v = pseudo_peripheral_vertex(a.pattern, start=2)
        assert v in (0, 4)
