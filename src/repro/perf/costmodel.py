"""Roofline-style cost model for CG iterations and FSAI setup.

Model
-----
For one SpMV ``y = M x`` with ``nnz`` stored entries and ``n`` rows:

* flops:  ``2·nnz``;
* streamed bytes: ``12·nnz`` (8 B value + 4 B int32 index, the layout of the
  paper's C implementation) + ``12·n`` (y + indptr);
* x-vector bytes: ``L1_misses(x) · line_bytes · RANDOM_ACCESS_PENALTY``.
  Random-access line fills are latency-bound — no prefetch stream hides
  them — so each such byte costs several times a streamed byte; the penalty
  factor models the stream/random effective-bandwidth ratio of the target
  systems (calibrated to 8x: pointer-chase vs STREAM effective bandwidth
  differs by 5-10x on all three machines);
* time = ``max(flop_time, memory_time)`` — the roofline.

One PCG iteration = SpMV(A) + preconditioner application (two SpMVs for
FSAI) + vector work (2 dots + 3 AXPYs + norm ≈ ``12·n`` streamed doubles).

Setup time = setup flops at a dense-kernel efficiency fraction of machine
peak + one streaming pass over the patterns per phase.  This mirrors §7.4's
observation that setup is dominated by computing the (larger) ``G``.

Cache scaling
-------------
The synthetic suite is ~50× smaller than SuiteSparse, so vectors that
overflowed L1 in the paper fit comfortably here.  ``scale_caches`` shrinks
every level by the same factor, restoring the paper's footprint/capacity
ratios (the default campaign scale is 1/8).  Line size — the quantity the
method depends on — is never scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.arch.address import ArrayPlacement
from repro.arch.machine import MachineModel
from repro.cachesim.spmv_sim import simulate_fsai_application, simulate_spmv
from repro.errors import ConfigurationError
from repro.fsai.extended import FSAISetup
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = ["KernelCost", "IterationCost", "CostModel", "scale_caches"]

#: Fraction of machine peak the batched dense setup kernels sustain.
SETUP_EFFICIENCY = 0.05

#: Streamed bytes per stored entry of a CSR SpMV (8 B value + 4 B int32
#: index — the storage layout of the paper's C implementation).
STREAM_BYTES_PER_NNZ = 12

#: Streamed bytes per row (8 B y + 4 B int32 indptr).
STREAM_BYTES_PER_ROW = 12

#: Effective-bandwidth ratio of prefetched streams vs latency-bound random
#: line fills; multiplies x-miss bytes in the roofline denominator.
RANDOM_ACCESS_PENALTY = 8.0


def scale_caches(machine: MachineModel, factor: float) -> MachineModel:
    """Shrink every cache level's capacity by ``factor`` (line size kept).

    Used to restore paper-scale footprint/capacity ratios for the scaled
    synthetic suite; ``factor = 1`` returns the machine unchanged.
    """
    if factor <= 0 or factor > 1:
        raise ConfigurationError(f"cache scale factor must be in (0, 1], got {factor}")
    if factor == 1.0:
        return machine
    levels = []
    for lvl in machine.cache_levels:
        quantum = lvl.line_bytes * lvl.associativity
        new_size = max(int(lvl.size_bytes * factor) // quantum, 1) * quantum
        levels.append(replace(lvl, size_bytes=new_size))
    return replace(machine, cache_levels=tuple(levels))


@dataclass(frozen=True)
class KernelCost:
    """Modelled cost of one kernel invocation."""

    flops: int
    bytes_streamed: int
    bytes_x_misses: int
    seconds: float

    @property
    def total_bytes(self) -> int:
        return self.bytes_streamed + self.bytes_x_misses

    def gflops(self) -> float:
        """Achieved Gflop/s under the model."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class IterationCost:
    """Modelled cost of one PCG iteration."""

    spmv_a: KernelCost
    precond: KernelCost
    vector_seconds: float

    @property
    def seconds(self) -> float:
        return self.spmv_a.seconds + self.precond.seconds + self.vector_seconds


class CostModel:
    """Roofline cost model bound to one machine (optionally cache-scaled).

    Parameters
    ----------
    machine:
        Target machine model.
    cache_scale:
        Factor applied to cache capacities for the simulation (see module
        docstring).  The *reported* machine name stays the original.
    placement:
        Placement of the multiplied vectors; defaults to line-aligned.
    include_streams:
        Forwarded to the trace generator (stream pollution on).
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        cache_scale: float = 1.0,
        placement: Optional[ArrayPlacement] = None,
        include_streams: bool = True,
        random_access_penalty: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.sim_machine = scale_caches(machine, cache_scale)
        self.cache_scale = cache_scale
        self.placement = placement or ArrayPlacement.aligned(machine.line_bytes)
        self.include_streams = include_streams
        # Resolved at construction time so a scoped override of the module
        # attribute (see experiments.sensitivity) is honoured.
        self.random_access_penalty = (
            RANDOM_ACCESS_PENALTY if random_access_penalty is None
            else random_access_penalty
        )

    # ------------------------------------------------------------------
    # Kernel-level costs
    # ------------------------------------------------------------------
    def _roofline_seconds(self, flops: int, streamed_bytes: int, x_bytes: int) -> float:
        t_flop = flops / self.machine.spmv_flops
        effective_bytes = streamed_bytes + self.random_access_penalty * x_bytes
        t_mem = effective_bytes / self.machine.memory_bandwidth_bps
        return max(t_flop, t_mem)

    def spmv_cost(self, pattern: Pattern, *, x_misses: Optional[int] = None) -> KernelCost:
        """Cost of one SpMV over ``pattern``; misses simulated if not given."""
        if x_misses is None:
            sim = simulate_spmv(
                pattern, self.sim_machine,
                placement=self.placement,
                include_streams=self.include_streams,
            )
            x_misses = sim.x_misses
        flops = 2 * pattern.nnz
        streamed = (
            STREAM_BYTES_PER_NNZ * pattern.nnz
            + STREAM_BYTES_PER_ROW * pattern.n_rows
        )
        x_bytes = x_misses * self.machine.line_bytes
        return KernelCost(
            flops=flops,
            bytes_streamed=streamed,
            bytes_x_misses=x_bytes,
            seconds=self._roofline_seconds(flops, streamed, x_bytes),
        )

    def fsai_application_cost(
        self, g_pattern: Pattern, gt_pattern: Optional[Pattern] = None
    ) -> KernelCost:
        """Cost of ``q = G p; z = G^T q`` with simulated x-vector misses."""
        gt = gt_pattern if gt_pattern is not None else g_pattern.transpose()
        sim = simulate_fsai_application(
            g_pattern, self.sim_machine,
            gt_pattern=gt,
            placement=self.placement,
            include_streams=self.include_streams,
        )
        nnz = g_pattern.nnz + gt.nnz
        flops = 2 * nnz
        streamed = (
            STREAM_BYTES_PER_NNZ * nnz
            + STREAM_BYTES_PER_ROW * (g_pattern.n_rows + gt.n_rows)
        )
        x_bytes = sim.x_misses * self.machine.line_bytes
        return KernelCost(
            flops=flops,
            bytes_streamed=streamed,
            bytes_x_misses=x_bytes,
            seconds=self._roofline_seconds(flops, streamed, x_bytes),
        )

    # ------------------------------------------------------------------
    # Solver-level costs
    # ------------------------------------------------------------------
    def iteration_cost(
        self, a: CSRMatrix, setup: Optional[FSAISetup]
    ) -> IterationCost:
        """Cost of one PCG iteration with the given preconditioner setup.

        ``setup = None`` models plain CG (no preconditioner term).
        """
        spmv_a = self.spmv_cost(a.pattern)
        if setup is not None:
            precond = self.fsai_application_cost(
                setup.application.g_pattern, setup.application.gt_pattern
            )
        else:
            precond = KernelCost(0, 0, 0, 0.0)
        # 2 dots + 3 AXPYs + norm: ~12 streamed doubles per row.
        vector_seconds = (12 * 8 * a.n_rows) / self.machine.memory_bandwidth_bps
        return IterationCost(
            spmv_a=spmv_a, precond=precond, vector_seconds=vector_seconds
        )

    def solve_seconds(
        self, a: CSRMatrix, setup: Optional[FSAISetup], iterations: int
    ) -> float:
        """Modelled solve-phase time: iterations × per-iteration cost."""
        return iterations * self.iteration_cost(a, setup).seconds

    def setup_seconds(self, setup: FSAISetup) -> float:
        """Modelled setup-phase time (dense kernels + pattern passes)."""
        flop_rate = SETUP_EFFICIENCY * self.machine.peak_flops
        t_flops = setup.setup_flops / flop_rate
        # One streaming pass over the final pattern per phase.
        pattern_bytes = (
            len(setup.flops)
            * STREAM_BYTES_PER_NNZ
            * setup.final_pattern.nnz
        )
        return t_flops + pattern_bytes / self.machine.memory_bandwidth_bps

    def __repr__(self) -> str:
        return (
            f"CostModel({self.machine.name}, cache_scale={self.cache_scale}, "
            f"line={self.machine.line_bytes}B)"
        )
