"""Performance metrics and improvement statistics (paper Tables 2/4/5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from repro.perf.costmodel import KernelCost

__all__ = [
    "gflops_of_application",
    "improvement_pct",
    "ImprovementStats",
    "summarize_improvements",
    "OrchestrationMetrics",
]


def gflops_of_application(cost: KernelCost) -> float:
    """Figure 4 metric: achieved Gflop/s of the ``G^T G p`` operation."""
    return cost.gflops()


def improvement_pct(baseline: float, candidate: float) -> float:
    """Time/iteration decrease of ``candidate`` vs ``baseline`` in percent.

    Positive = candidate is better (smaller).  This is the paper's
    "time decrease percentage" (Figures 2/5/6, Tables 2/4/5); negative
    values are degradations.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - candidate) / baseline


@dataclass(frozen=True)
class ImprovementStats:
    """Summary of per-matrix improvements — one row of Tables 2/4/5.

    Attributes mirror the paper's columns: average iteration improvement,
    average time improvement, highest time improvement and highest time
    degradation (the most negative improvement; 0 when nothing degraded).
    """

    avg_iterations: float
    avg_time: float
    highest_improvement: float
    highest_degradation: float
    median_time: float
    count: int

    def row(self) -> tuple:
        return (
            self.avg_iterations,
            self.avg_time,
            self.highest_improvement,
            self.highest_degradation,
        )


def summarize_improvements(
    iteration_improvements: Sequence[float],
    time_improvements: Sequence[float],
) -> ImprovementStats:
    """Aggregate per-matrix improvement percentages into a table row."""
    it = np.asarray(list(iteration_improvements), dtype=np.float64)
    tm = np.asarray(list(time_improvements), dtype=np.float64)
    if len(it) != len(tm) or len(it) == 0:
        raise ValueError("need equal, non-empty improvement sequences")
    worst = float(tm.min())
    return ImprovementStats(
        avg_iterations=float(it.mean()),
        avg_time=float(tm.mean()),
        highest_improvement=float(tm.max()),
        highest_degradation=min(worst, 0.0),
        median_time=float(np.median(tm)),
        count=len(tm),
    )


@dataclass(frozen=True)
class OrchestrationMetrics:
    """Throughput record of one orchestrated campaign run.

    Captured by :func:`repro.experiments.orchestrator.run_campaign_parallel`
    and embeddable in a :class:`~repro.perf.regression.RegressionRecord`, so
    the nightly pipeline can diff campaign throughput the same way CI diffs
    the engine speedups.
    """

    jobs: int
    wall_seconds: float
    cases_total: int
    cases_completed: int
    cases_skipped: int
    failures: int
    retries: int

    @property
    def cases_per_second(self) -> float:
        """Completed-case throughput (checkpoint-skipped cases excluded)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cases_completed / self.wall_seconds

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cases_total": self.cases_total,
            "cases_completed": self.cases_completed,
            "cases_skipped": self.cases_skipped,
            "failures": self.failures,
            "retries": self.retries,
            "cases_per_second": self.cases_per_second,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Union[int, float]]) -> "OrchestrationMetrics":
        return cls(
            jobs=int(payload["jobs"]),
            wall_seconds=float(payload["wall_seconds"]),
            cases_total=int(payload["cases_total"]),
            cases_completed=int(payload["cases_completed"]),
            cases_skipped=int(payload["cases_skipped"]),
            failures=int(payload["failures"]),
            retries=int(payload["retries"]),
        )
