"""Performance model.

Converts *counted* quantities (flops, simulated cache misses, streamed
bytes) into modelled times on a target :class:`~repro.arch.MachineModel`.
This is the substitution layer standing in for the paper's wall-clock
measurements (DESIGN.md §2): iteration counts come from real PCG runs, the
per-iteration cost comes from the roofline model here.
"""

from repro.perf.costmodel import (
    CostModel,
    KernelCost,
    IterationCost,
    scale_caches,
)
from repro.perf.metrics import (
    gflops_of_application,
    improvement_pct,
    ImprovementStats,
    OrchestrationMetrics,
    summarize_improvements,
)
from repro.perf.regression import RegressionComponent, RegressionRecord
from repro.perf.timer import min_over_repetitions

__all__ = [
    "RegressionComponent",
    "RegressionRecord",
    "CostModel",
    "KernelCost",
    "IterationCost",
    "scale_caches",
    "gflops_of_application",
    "improvement_pct",
    "ImprovementStats",
    "OrchestrationMetrics",
    "summarize_improvements",
    "min_over_repetitions",
]
