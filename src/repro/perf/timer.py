"""Wall-clock measurement helpers.

The paper takes the minimum over 20 (setup) / 50 (solve) repetitions
(§7.1).  Modelled times are deterministic so the repetition protocol is moot
for them, but the benchmark harness also reports *actual* wall time of the
Python implementation, for which the same min-over-repetitions protocol is
used.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["min_over_repetitions"]


def min_over_repetitions(
    fn: Callable[[], T], repetitions: int = 5
) -> Tuple[float, T]:
    """Run ``fn`` ``repetitions`` times; return (min seconds, fastest result).

    Mirrors the paper's measurement protocol at a repetition count suited to
    interpreted code (the default 5 rather than 20/50 keeps campaign runtime
    sane; callers override for final numbers).

    The returned result is the one produced by the *fastest* repetition, so
    artifacts attached to it (e.g. traced counters) correspond to the
    reported timing.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(repetitions):
        t0 = time.perf_counter()
        candidate = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            result = candidate
    return best, result
