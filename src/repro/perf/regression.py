"""Performance-regression records for the implementation's own hot paths.

The vectorized simulation engine and the bucketed FSAI setup replace exact
reference implementations; the speedup is an implementation claim that must
stay true as the code evolves.  A :class:`RegressionRecord` captures one
reference-vs-optimized timing comparison — per-component and composite — in
a stable JSON shape (``BENCH_engine.json`` at the repository root) that CI
and later sessions can diff.

Timings use :func:`repro.perf.timer.min_over_repetitions` semantics upstream
(minimum over repetitions, §7.1 style); this module only aggregates and
serialises.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.perf.metrics import OrchestrationMetrics
from repro.trace import TraceSummary

__all__ = ["RegressionComponent", "RegressionRecord"]


def _speedup(reference_seconds: float, optimized_seconds: float) -> float:
    if optimized_seconds <= 0.0:
        return float("inf") if reference_seconds > 0.0 else 1.0
    return reference_seconds / optimized_seconds


@dataclass(frozen=True)
class RegressionComponent:
    """One timed reference-vs-optimized pair (e.g. ``stack_distances``).

    ``informational`` marks a measurement whose gate is unarmed (e.g.
    the multi-process serving throughput on a machine with too few
    cores to show the speedup, or an end-to-end timing whose ratio is
    diluted by cost shared across both sides): it is recorded for the
    trajectory but never judged as a regression, and its wall time is
    excluded from the record's composite totals.
    """

    name: str
    reference_seconds: float
    optimized_seconds: float
    detail: str = ""
    informational: bool = False

    @property
    def speedup(self) -> float:
        return _speedup(self.reference_seconds, self.optimized_seconds)

    def to_dict(self) -> Dict[str, Union[str, float, bool]]:
        return {
            "name": self.name,
            "reference_seconds": self.reference_seconds,
            "optimized_seconds": self.optimized_seconds,
            "speedup": self.speedup,
            "detail": self.detail,
            "informational": self.informational,
        }


@dataclass(frozen=True)
class RegressionRecord:
    """Composite regression record over several components.

    ``scope`` documents the workload (e.g. ``"quick campaign, 12 cases"``)
    so a quick-mode record is never compared against a full-mode one.
    """

    label: str
    scope: str
    components: List[RegressionComponent] = field(default_factory=list)
    #: Optional campaign-throughput block (set by orchestrated runs).
    orchestration: Optional[OrchestrationMetrics] = None
    #: Optional phase breakdown of the benched workload (``repro.trace``).
    trace_summary: Optional[TraceSummary] = None

    @property
    def _judged(self) -> List[RegressionComponent]:
        """Components that participate in the composite claim.

        Informational measurements are excluded: they are either
        host-dependent (unarmed gates) or deliberately diluted
        end-to-end views, and folding their wall time into the
        composite ratio would let them mask — or fake — a regression
        in the components the claim is actually about.
        """
        return [c for c in self.components if not c.informational]

    @property
    def reference_total(self) -> float:
        return sum(c.reference_seconds for c in self._judged)

    @property
    def optimized_total(self) -> float:
        return sum(c.optimized_seconds for c in self._judged)

    @property
    def speedup(self) -> float:
        return _speedup(self.reference_total, self.optimized_total)

    def to_dict(self) -> Dict:
        payload = {
            "label": self.label,
            "scope": self.scope,
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "components": [c.to_dict() for c in self.components],
            "reference_total_seconds": self.reference_total,
            "optimized_total_seconds": self.optimized_total,
            "speedup": self.speedup,
        }
        if self.orchestration is not None:
            payload["orchestration"] = self.orchestration.to_dict()
        if self.trace_summary is not None:
            payload["trace_summary"] = self.trace_summary.to_dict()
        return payload

    def write(self, path: Union[str, Path]) -> Path:
        """Serialise to ``path`` as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: Dict) -> "RegressionRecord":
        return cls(
            label=payload["label"],
            scope=payload["scope"],
            components=[
                RegressionComponent(
                    name=c["name"],
                    reference_seconds=c["reference_seconds"],
                    optimized_seconds=c["optimized_seconds"],
                    detail=c.get("detail", ""),
                    informational=bool(c.get("informational", False)),
                )
                for c in payload["components"]
            ],
            orchestration=(
                OrchestrationMetrics.from_dict(payload["orchestration"])
                if "orchestration" in payload
                else None
            ),
            trace_summary=(
                TraceSummary.from_dict(payload["trace_summary"])
                if "trace_summary" in payload
                else None
            ),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RegressionRecord":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def summary_lines(self) -> Sequence[str]:
        """Human-readable table for bench output."""
        rows = [
            f"{c.name:<18} ref {c.reference_seconds * 1e3:8.1f} ms   "
            f"opt {c.optimized_seconds * 1e3:8.1f} ms   {c.speedup:6.2f}x"
            + ("   (informational)" if c.informational else "")
            for c in self.components
        ]
        rows.append(
            f"{'TOTAL':<18} ref {self.reference_total * 1e3:8.1f} ms   "
            f"opt {self.optimized_total * 1e3:8.1f} ms   {self.speedup:6.2f}x"
        )
        return rows
