"""CI perf-regression gate over ``BENCH_engine.json`` records.

Compares a freshly-measured :class:`~repro.perf.regression.RegressionRecord`
against a baseline one (the latest main-branch artifact, or the committed
``BENCH_engine.json``) and fails — exit code 1 — when any component's
speedup, or the composite, drops below ``tolerance × baseline_speedup``.

Speedups are *ratios* (reference seconds / optimized seconds), so the
comparison is meaningful across runner machines of different absolute
speed; the tolerance absorbs CI noise.  Tolerance resolution order:
``--tolerance`` flag, ``REPRO_BENCH_TOLERANCE`` environment variable,
then :data:`DEFAULT_TOLERANCE`.

Usage (the ``bench-gate`` CI job)::

    python -m repro.perf.bench_gate baseline.json BENCH_engine.json \
        --json gate-report.json

``--json`` additionally writes the full report — tolerance, per-component
verdicts, missing components — as a machine-readable file, which CI
uploads as a workflow artifact so a tripped gate can be inspected without
re-running the bench.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.perf.regression import RegressionRecord

__all__ = [
    "DEFAULT_TOLERANCE",
    "ComponentVerdict",
    "GateReport",
    "compare_records",
    "resolve_tolerance",
    "main",
]

#: A component may lose up to 20% of its baseline speedup before the gate
#: trips (ISSUE 3: "fails if any component's speedup drops below 0.8x").
DEFAULT_TOLERANCE = 0.8

#: Environment variable overriding the tolerance in CI.
TOLERANCE_ENV = "REPRO_BENCH_TOLERANCE"


@dataclass(frozen=True)
class ComponentVerdict:
    """Gate decision for one named component (or the composite).

    ``informational`` verdicts are recorded but never fail: either
    record marked the component's gate unarmed on its host (e.g. the
    multi-process serving throughput on a small machine).
    """

    name: str
    baseline_speedup: float
    current_speedup: float
    ok: bool
    informational: bool = False

    @property
    def ratio(self) -> float:
        """current / baseline speedup (1.0 = unchanged, < 1 = slower)."""
        if self.baseline_speedup <= 0.0:
            return float("inf")
        return self.current_speedup / self.baseline_speedup

    def line(self) -> str:
        status = "info" if self.informational else (
            "ok  " if self.ok else "FAIL"
        )
        return (
            f"{status} {self.name:<18} baseline {self.baseline_speedup:7.2f}x  "
            f"current {self.current_speedup:7.2f}x  ratio {self.ratio:5.2f}"
        )


@dataclass
class GateReport:
    """All verdicts plus the tolerance they were judged against."""

    tolerance: float
    verdicts: List[ComponentVerdict]
    missing: List[str]

    @property
    def ok(self) -> bool:
        return not self.missing and all(v.ok for v in self.verdicts)

    def lines(self) -> List[str]:
        out = [f"bench gate (tolerance {self.tolerance:.2f}x of baseline):"]
        out += ["  " + v.line() for v in self.verdicts]
        out += [
            f"  FAIL {name:<18} missing from the current record"
            for name in self.missing
        ]
        out.append("  PASS" if self.ok else "  GATE FAILED")
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-able report (the ``--json`` artifact CI uploads)."""
        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "verdicts": [
                {
                    "name": v.name,
                    "baseline_speedup": v.baseline_speedup,
                    "current_speedup": v.current_speedup,
                    "ratio": v.ratio,
                    "ok": v.ok,
                    "informational": v.informational,
                }
                for v in self.verdicts
            ],
            "missing": list(self.missing),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def resolve_tolerance(flag: Optional[float] = None) -> float:
    """Flag > ``REPRO_BENCH_TOLERANCE`` env > default; must be positive."""
    if flag is None:
        raw = os.environ.get(TOLERANCE_ENV)
        flag = float(raw) if raw not in (None, "") else DEFAULT_TOLERANCE
    if flag <= 0.0:
        raise ValueError(f"tolerance must be positive, got {flag}")
    return flag


def compare_records(
    baseline: RegressionRecord,
    current: RegressionRecord,
    *,
    tolerance: Optional[float] = None,
) -> GateReport:
    """Judge ``current`` against ``baseline`` component by component.

    A baseline component absent from the current record is a failure (a
    silently-dropped bench must not pass the gate); components that exist
    only in the current record are simply not judged.  The composite
    speedup is judged under the name ``COMPOSITE``.
    """
    tol = resolve_tolerance(tolerance)
    current_by_name = {c.name: c for c in current.components}
    verdicts: List[ComponentVerdict] = []
    missing: List[str] = []
    for base in baseline.components:
        cur = current_by_name.get(base.name)
        if cur is None:
            missing.append(base.name)
            continue
        informational = base.informational or cur.informational
        verdicts.append(
            ComponentVerdict(
                name=base.name,
                baseline_speedup=base.speedup,
                current_speedup=cur.speedup,
                ok=informational or cur.speedup >= tol * base.speedup,
                informational=informational,
            )
        )
    verdicts.append(
        ComponentVerdict(
            name="COMPOSITE",
            baseline_speedup=baseline.speedup,
            current_speedup=current.speedup,
            ok=current.speedup >= tol * baseline.speedup,
        )
    )
    return GateReport(tolerance=tol, verdicts=verdicts, missing=missing)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.bench_gate",
        description="Fail when BENCH_engine.json speedups regress vs baseline.",
    )
    parser.add_argument("baseline", help="baseline RegressionRecord JSON")
    parser.add_argument("current", help="current RegressionRecord JSON")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"minimum current/baseline speedup ratio "
             f"(default ${TOLERANCE_ENV} or {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report (verdicts + tolerance) as JSON",
    )
    args = parser.parse_args(argv)
    baseline = RegressionRecord.load(args.baseline)
    current = RegressionRecord.load(args.current)
    report = compare_records(baseline, current, tolerance=args.tolerance)
    print("\n".join(report.lines()))
    if args.json:
        report.write_json(args.json)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
