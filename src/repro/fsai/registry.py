"""Method registry: one catalogue of every FSAI setup route.

Before this module, the set of known setup methods was duplicated in
three places — the cache front-end's builder dict, the experiment
runner's ``_SETUPS`` table, and ad-hoc name checks in the CLI.  Adding
the global iterative family (:mod:`repro.fsai.global_iter`) would have
meant a fourth copy, so the registry centralises the mapping from method
name to builder plus the *capability flags* the orchestration layers
need to drive a method correctly:

``uses_placement``
    The builder takes an :class:`~repro.arch.address.ArrayPlacement`
    positional (the FSAIE cache-aware extensions).
``uses_filter``
    The builder takes ``filter_value`` and the campaign should sweep it
    over ``config.filters``; methods without it run once per case.
``uses_sweeps``
    The builder takes a ``sweeps`` budget (the global iterations); the
    campaign threads ``config.global_sweeps`` through and records the
    executed count in :class:`~repro.experiments.runner.MethodRun`.
``selectable``
    Whether the campaign accepts the method in ``config.methods``.
    ``fsaie_random`` is registered but not selectable: it needs a
    *reference* setup to mirror, so the runner drives it through the
    dedicated ``include_random_baseline`` switch instead.

Unknown names raise :class:`~repro.errors.ConfigurationError` — a
``ValueError`` subclass, so existing callers catching the cache
front-end's historical ``ValueError`` keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.fsai import extended, global_iter

__all__ = [
    "MethodSpec",
    "register_method",
    "get_method",
    "available_methods",
    "selectable_methods",
]


@dataclass(frozen=True)
class MethodSpec:
    """One registered setup method and how to drive it."""

    name: str
    builder: Callable[..., Any]
    #: ``"local"`` (per-row Frobenius solves), ``"global"`` (whole-matrix
    #: iterations) or ``"baseline"`` (fsai / the random control).
    kind: str
    uses_placement: bool = False
    uses_filter: bool = False
    uses_sweeps: bool = False
    selectable: bool = True


_REGISTRY: Dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec) -> None:
    """Add (or replace) a method in the registry."""
    _REGISTRY[spec.name] = spec


def get_method(name: str) -> MethodSpec:
    """Look up a method; unknown names raise :class:`ConfigurationError`.

    The message deliberately keeps the historical ``cached_setup``
    wording ("unknown FSAI setup method ...") — it is part of the error
    contract tests pin.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown FSAI setup method {name!r}; "
            f"expected one of {sorted(_REGISTRY)}"
        ) from None


def available_methods() -> Tuple[str, ...]:
    """Every registered method name, sorted."""
    return tuple(sorted(_REGISTRY))


def selectable_methods() -> Tuple[str, ...]:
    """Names the campaign accepts in ``config.methods``, sorted."""
    return tuple(
        sorted(name for name, spec in _REGISTRY.items() if spec.selectable)
    )


register_method(MethodSpec("fsai", extended.setup_fsai, kind="baseline"))
register_method(
    MethodSpec(
        "fsaie_sp", extended.setup_fsaie_sp, kind="local",
        uses_placement=True, uses_filter=True,
    )
)
register_method(
    MethodSpec(
        "fsaie_full", extended.setup_fsaie_full, kind="local",
        uses_placement=True, uses_filter=True,
    )
)
register_method(
    MethodSpec(
        "fsaie_joint", extended.setup_fsaie_joint, kind="local",
        uses_placement=True, uses_filter=True,
    )
)
register_method(
    MethodSpec(
        "fsaie_random", extended.setup_fsaie_random, kind="baseline",
        selectable=False,
    )
)
register_method(
    MethodSpec(
        "gsai_st", global_iter.setup_gsai_st, kind="global", uses_sweeps=True
    )
)
register_method(
    MethodSpec(
        "gsai_cheb", global_iter.setup_gsai_cheb, kind="global",
        uses_sweeps=True,
    )
)
register_method(
    MethodSpec(
        "gsai_ns", global_iter.setup_gsai_ns, kind="global", uses_sweeps=True
    )
)
