"""Global iterative SAI factors: whole-matrix sweeps of capped SpGEMMs.

The local Frobenius route (:mod:`repro.fsai.frobenius`) computes the
factor ``Ĝ`` on a lower-triangular pattern ``S`` by solving the per-row
systems ``A[S_i, S_i] ĝ_i = e_i|_{S_i}`` directly.  The *global* family
— the Newton–Schulz / Chebyshev iterations surveyed by Venkovic & Anzt
and the sparse-sparse iteration of Salkuyeh & Toutounian (PAPERS.md) —
reaches the same factor by iterating on the whole-matrix equations

    ``P_S(Ĝ A) = P_S(I)``                                         (★)

where ``P_S`` is the projection onto pattern ``S``.  Every sweep is one
or two **pattern-capped SpGEMMs** on fixed structure, so the symbolic
phase is planned once (:func:`repro.kernels.spgemm.plan_spgemm`) and
each sweep is pure numeric work into preallocated buffers through the
backend's fused sweep hooks (``spgemm_numeric_into`` +
``sweep_axpy_pair`` / ``sweep_cheb_update`` / ``sweep_ns_correction``)
— on the numba backend the capped product and the iterate update run in
one row-parallel pass without materialising the intermediate product
array; the numpy defaults keep the historical expressions byte for
byte.

Why (★) targets exactly the FSAI factor: a row ``x_i`` supported on
``S_i`` satisfies ``(x_i A)|_{S_i} = x_i[S_i] · A[S_i, S_i]``, so the
operator ``T(X) = P_S(X A)`` decouples row-by-row into precisely the
FSAI local systems.  ``T`` is symmetric positive definite in the
Frobenius inner product on pattern-``S`` matrices (each block
``A[S_i, S_i]`` is an SPD principal submatrix of ``A``), the solution of
(★) *is* the unnormalised FSAI ``Ĝ``, and after the usual normalisation
``g_i = ĝ_i / sqrt(ĝ_ii)`` the converged global factor matches
:func:`repro.fsai.frobenius.compute_g` — which is why the campaign can
compare these methods to FSAI/FSAIE on identical patterns.

Three iterations are provided, all early-stopping on the Frobenius
residual of (★) and all finishing with the FSAI normalisation plus a
Jacobi fallback (``1/sqrt(a_ii)`` diagonal) for rows whose iterate is
unusable:

``gsai_st``   Salkuyeh–Toutounian sparse-sparse route: global minimal
              residual — one capped SpGEMM per sweep plus the scalar
              ``α = ⟨R, T(R)⟩_F / ⟨T(R), T(R)⟩_F``.  Monotone on SPD
              ``T``; the safe workhorse.
``gsai_cheb`` Chebyshev semi-iteration on (★) over ``[λ_lo, λ_hi]``;
              ``λ_hi`` defaults to the Gershgorin bound of ``A`` (an
              upper bound for every local block by eigenvalue
              interlacing), ``λ_lo`` to ``λ_hi / 25``.  No inner
              products — one capped SpGEMM per sweep.
``gsai_ns``   Newton–Schulz on the factor equations:
              ``X ← 2X − P_S(P_S(X A) · X)``, two capped SpGEMMs per
              sweep.  The FSAI ``Ĝ`` is a fixed point (at it,
              ``P_S(ĜA)`` is the identity restricted to ``S``), but
              capping breaks the quadratic rate — kept as the
              literature's reference iteration.

See ``docs/global_methods.md`` for the comparison against the local
route under the paper's cache model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import trace
from repro.fsai.frobenius import (
    FSAI_BACKENDS,
    _check_diagonals,
    _check_pattern,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.precond import FSAIApplication
from repro.fsai.extended import FSAISetup
from repro.kernels import get_backend
from repro.kernels.base import KernelBackend
from repro.kernels.spgemm import plan_spgemm
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "DEFAULT_SWEEPS",
    "DEFAULT_GLOBAL_RTOL",
    "GlobalIterInfo",
    "global_g_minres",
    "global_g_chebyshev",
    "global_g_newton_schulz",
    "setup_gsai_st",
    "setup_gsai_cheb",
    "setup_gsai_ns",
]

#: Default sweep budget.  Stencil-suite local systems are well
#: conditioned, so the minimal-residual route contracts the factor
#: residual by a near-constant factor per sweep; 40 sweeps lands the
#: iterate close enough to the exact FSAI ``Ĝ`` that PCG iteration
#: counts match the direct solve (the CI parity gate allows 20%).
DEFAULT_SWEEPS = 40

#: Early-stop tolerance on ``‖P_S(XA) − P_S(I)‖_F / ‖P_S(I)‖_F``.
DEFAULT_GLOBAL_RTOL = 1e-6


@dataclass(frozen=True)
class GlobalIterInfo:
    """Outcome of one global iteration (before normalisation)."""

    method: str
    #: Sweeps actually executed (early stop may use fewer than asked).
    sweeps: int
    #: Final relative Frobenius residual of the factor equations (★).
    residual: float
    converged: bool
    #: Flop estimate across all sweeps (SpGEMM products + vector work).
    flops: int


def _kernel_backend(name: Optional[str]) -> KernelBackend:
    """Resolve ``setup_backend`` for the global route.

    The legacy LAPACK names (``bucketed``/``reference`` in the
    :func:`~repro.fsai.frobenius.compute_g` sense) have no SpGEMM — the
    global methods run entirely on kernel ops — so they fall through to
    the default registry resolution instead of erroring.
    """
    if name in FSAI_BACKENDS:
        name = None
    return get_backend(name)


def _diag_slots(pattern: Pattern) -> np.ndarray:
    """Data-array positions of the diagonal: last slot of each row."""
    return np.asarray(pattern.indptr[1:]) - 1


def _identity_rhs(pattern: Pattern) -> np.ndarray:
    """``P_S(I)`` as a data array over ``pattern`` (1.0 on the diagonal)."""
    rhs = np.zeros(pattern.nnz)
    rhs[_diag_slots(pattern)] = 1.0
    return rhs


def _jacobi_seed(
    a: CSRMatrix, pattern: Pattern, *, scale: float = 1.0
) -> np.ndarray:
    """Diagonal start ``X₀ = scale · D⁻¹`` (ones where ``a_ii ≤ 0``)."""
    diag = a.diagonal()
    seed = np.zeros(pattern.nnz)
    values = np.where(diag > 0, scale / np.where(diag > 0, diag, 1.0), 1.0)
    seed[_diag_slots(pattern)] = values
    return seed


def _validate(a: CSRMatrix, pattern: Pattern, sweeps: int, rtol: float):
    _check_pattern(a, pattern)
    lengths = _check_diagonals(pattern)
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    if rtol < 0:
        raise ValueError(f"rtol must be non-negative, got {rtol}")
    return lengths


def _gershgorin_upper(a: CSRMatrix) -> float:
    """Gershgorin bound ``max_i Σ_j |a_ij| ≥ λ_max(A)``.

    By eigenvalue interlacing it also dominates ``λ_max`` of every
    principal submatrix ``A[S_i, S_i]``, i.e. of the whole spectrum of
    the factor-equation operator ``T``.
    """
    row_ids = np.repeat(
        np.arange(a.n_rows, dtype=np.int64), np.diff(a.indptr)
    )
    sums = np.bincount(row_ids, weights=np.abs(a.data), minlength=a.n_rows)
    return float(sums.max()) if a.n_rows else 1.0


def global_g_minres(
    a: CSRMatrix,
    pattern: Pattern,
    *,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, GlobalIterInfo]:
    """Salkuyeh–Toutounian sparse-sparse iteration (global minimal residual).

    Each sweep takes the steepest step along the current residual ``R``:
    ``α`` minimises ``‖B − T(X + αR)‖_F`` with ``T(X) = P_S(XA)``, which
    costs one capped SpGEMM (``T(R)``) and two Frobenius inner products.
    On SPD ``T`` the residual norm is monotonically non-increasing, and
    the limit is exactly the unnormalised FSAI ``Ĝ``.

    Returns ``(data, info)`` where ``data`` is the *unnormalised*
    iterate over ``pattern`` — the setup wrappers normalise it.
    """
    _validate(a, pattern, sweeps, rtol)
    kb = _kernel_backend(backend)
    plan = plan_spgemm(pattern, a.pattern, cap=pattern)
    rhs = _identity_rhs(pattern)
    rhs_norm = float(np.sqrt(rhs @ rhs))
    x = _jacobi_seed(a, pattern)
    w = np.empty(pattern.nnz)
    r = np.empty(pattern.nnz)
    with trace.span(
        "fsai.global_iter", method="gsai_st",
        rows=pattern.n_rows, nnz=pattern.nnz, max_sweeps=sweeps,
    ):
        kb.spgemm_numeric_into(plan, x, a.data, w)
        np.subtract(rhs, w, out=r)
        done = 0
        res = float(np.sqrt(r @ r))
        for _ in range(sweeps):
            if res <= rtol * rhs_norm or not np.isfinite(res):
                break
            kb.spgemm_numeric_into(plan, r, a.data, w)
            denom = float(w @ w)
            if denom <= 0.0 or not np.isfinite(denom):
                break
            alpha = float(r @ w) / denom
            kb.sweep_axpy_pair(x, r, w, alpha)
            done += 1
            res = float(np.sqrt(r @ r))
        trace.set_attr("sweeps", done)
        trace.set_attr("residual", res)
    rel = res / rhs_norm if rhs_norm else res
    info = GlobalIterInfo(
        method="gsai_st", sweeps=done, residual=rel,
        converged=bool(np.isfinite(rel) and rel <= rtol),
        # Per executed sweep: T(R) plus ~6 nnz of vector work; plus the
        # initial residual product.
        flops=(done + 1) * plan.flops + done * 6 * pattern.nnz,
    )
    return x, info


def global_g_chebyshev(
    a: CSRMatrix,
    pattern: Pattern,
    *,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    lambda_lo: Optional[float] = None,
    lambda_hi: Optional[float] = None,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, GlobalIterInfo]:
    """Chebyshev semi-iteration on the factor equations (★).

    Classic three-term recurrence over the interval
    ``[lambda_lo, lambda_hi]`` — no inner products, one capped SpGEMM
    per sweep.  ``lambda_hi`` defaults to the Gershgorin bound of ``A``
    (safe for every local block by interlacing); ``lambda_lo`` defaults
    to ``lambda_hi / 25``, matching the mild conditioning of
    stencil-suite local systems.  Underestimating ``λ_min`` with
    ``lambda_lo`` only slows convergence for SPD spectra (the residual
    polynomial stays below 1 on ``(0, λ_lo)``); it cannot diverge.
    """
    _validate(a, pattern, sweeps, rtol)
    kb = _kernel_backend(backend)
    hi = float(lambda_hi) if lambda_hi is not None else _gershgorin_upper(a)
    lo = float(lambda_lo) if lambda_lo is not None else hi / 25.0
    if not 0.0 < lo < hi:
        raise ValueError(
            f"need 0 < lambda_lo < lambda_hi, got [{lo:g}, {hi:g}]"
        )
    plan = plan_spgemm(pattern, a.pattern, cap=pattern)
    rhs = _identity_rhs(pattern)
    rhs_norm = float(np.sqrt(rhs @ rhs))
    x = _jacobi_seed(a, pattern)
    w = np.empty(pattern.nnz)
    r = np.empty(pattern.nnz)
    theta = (hi + lo) / 2.0
    delta = (hi - lo) / 2.0
    sigma = theta / delta
    with trace.span(
        "fsai.global_iter", method="gsai_cheb",
        rows=pattern.n_rows, nnz=pattern.nnz, max_sweeps=sweeps,
    ):
        kb.spgemm_numeric_into(plan, x, a.data, w)
        np.subtract(rhs, w, out=r)
        rho = 1.0 / sigma
        d = r / theta
        done = 0
        res = float(np.sqrt(r @ r))
        for _ in range(sweeps):
            if res <= rtol * rhs_norm or not np.isfinite(res):
                break
            kb.sweep_cheb_update(plan, d, a.data, x, r, w)
            done += 1
            res = float(np.sqrt(r @ r))
            rho_next = 1.0 / (2.0 * sigma - rho)
            kb.sweep_scale_add(
                d, r, rho_next * rho, 2.0 * rho_next / delta
            )
            rho = rho_next
        trace.set_attr("sweeps", done)
        trace.set_attr("residual", res)
    rel = res / rhs_norm if rhs_norm else res
    info = GlobalIterInfo(
        method="gsai_cheb", sweeps=done, residual=rel,
        converged=bool(np.isfinite(rel) and rel <= rtol),
        flops=(done + 1) * plan.flops + done * 8 * pattern.nnz,
    )
    return x, info


def global_g_newton_schulz(
    a: CSRMatrix,
    pattern: Pattern,
    *,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, GlobalIterInfo]:
    """Pattern-capped Newton–Schulz on the factor equations.

    ``X ← 2X − P_S(P_S(X A) · X)`` with the damped Jacobi start
    ``X₀ = (2 / (1 + μ)) D⁻¹`` (``μ = max_i Σ_j |a_ij| / a_ii``), which
    guarantees ``ρ(I − X₀A) < 1`` for the uncapped iteration.  The exact
    FSAI ``Ĝ`` is a fixed point — at it ``P_S(ĜA)`` is the identity
    restricted to ``S``, so the correction term reproduces ``Ĝ`` — but
    the per-sweep projection reduces the classical quadratic rate to
    linear, and on hard patterns the capped map can stall above the
    tolerance; the iteration guards against divergence by stopping when
    the residual stops improving.
    """
    _validate(a, pattern, sweeps, rtol)
    kb = _kernel_backend(backend)
    plan_xa = plan_spgemm(pattern, a.pattern, cap=pattern)
    plan_zx = plan_spgemm(pattern, pattern, cap=pattern)
    rhs = _identity_rhs(pattern)
    rhs_norm = float(np.sqrt(rhs @ rhs))
    diag = a.diagonal()
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(diag > 0, 1.0 / diag, 0.0)
    mu = float(np.max(_row_abs_sums(a) * ratios)) if a.n_rows else 1.0
    mu = max(mu, 1.0)
    x = _jacobi_seed(a, pattern, scale=2.0 / (1.0 + mu))
    # Double-buffered iterate (the fused correction writes x_next while
    # reading x) plus one scratch buffer for the capped Z·X product.
    z = np.empty(pattern.nnz)
    x_next = np.empty(pattern.nnz)
    scratch = np.empty(pattern.nnz)
    best = x.copy()
    best_res = np.inf
    with trace.span(
        "fsai.global_iter", method="gsai_ns",
        rows=pattern.n_rows, nnz=pattern.nnz, max_sweeps=sweeps,
    ):
        done = 0
        res = np.inf
        for _ in range(sweeps):
            kb.spgemm_numeric_into(plan_xa, x, a.data, z)
            np.subtract(rhs, z, out=scratch)
            res = float(np.linalg.norm(scratch))
            if res < best_res:
                np.copyto(best, x)
                best_res = res
            if res <= rtol * rhs_norm or not np.isfinite(res):
                break
            if res > 2.0 * best_res:
                # Capped map is diverging; keep the best iterate seen.
                break
            kb.sweep_ns_correction(plan_zx, z, x, x_next, scratch)
            x, x_next = x_next, x
            done += 1
        trace.set_attr("sweeps", done)
        trace.set_attr("residual", best_res)
    rel = best_res / rhs_norm if rhs_norm else best_res
    info = GlobalIterInfo(
        method="gsai_ns", sweeps=done, residual=rel,
        converged=bool(np.isfinite(rel) and rel <= rtol),
        flops=(done + 1) * plan_xa.flops + done * (
            plan_zx.flops + 4 * pattern.nnz
        ),
    )
    return best, info


def _row_abs_sums(a: CSRMatrix) -> np.ndarray:
    row_ids = np.repeat(
        np.arange(a.n_rows, dtype=np.int64), np.diff(a.indptr)
    )
    return np.bincount(row_ids, weights=np.abs(a.data), minlength=a.n_rows)


def normalize_factor(
    a: CSRMatrix, pattern: Pattern, data: np.ndarray
) -> Tuple[np.ndarray, int]:
    """FSAI normalisation ``g_i = ĝ_i / sqrt(ĝ_ii)`` with Jacobi fallback.

    Rows whose iterate is unusable — non-positive or non-finite pivot,
    or any non-finite entry — fall back to the Jacobi row
    (``1/sqrt(a_ii)`` on the diagonal, zeros elsewhere), exactly the
    policy of :func:`repro.fsai.frobenius.precalculate_g`.  Returns the
    normalised data and the number of fallback rows.
    """
    lengths = np.diff(pattern.indptr)
    slots = _diag_slots(pattern)
    pivots = data[slots]
    row_ids = np.repeat(np.arange(pattern.n_rows, dtype=np.int64), lengths)
    finite_rows = (
        np.bincount(
            row_ids,
            weights=(~np.isfinite(data)).astype(np.float64),
            minlength=pattern.n_rows,
        ) == 0
    )
    good = (pivots > 0) & np.isfinite(pivots) & finite_rows
    scale = np.zeros(pattern.n_rows)
    scale[good] = 1.0 / np.sqrt(pivots[good])
    out = np.where(np.repeat(good, lengths), data * np.repeat(scale, lengths), 0.0)
    if not good.all():
        diag = a.diagonal()
        fallback = np.where(diag > 0, 1.0 / np.sqrt(np.abs(diag)), 1.0)
        out[slots[~good]] = fallback[~good]
    return out, int(np.count_nonzero(~good))


_ITERATIONS = {
    "gsai_st": global_g_minres,
    "gsai_cheb": global_g_chebyshev,
    "gsai_ns": global_g_newton_schulz,
}


def _setup_global(
    method: str,
    a: CSRMatrix,
    *,
    level: int,
    threshold: float,
    sweeps: int,
    rtol: float,
    setup_backend: Optional[str],
    flop_key: str = "global",
    **iter_kwargs,
) -> FSAISetup:
    with trace.span("fsai.setup", method=method, n=a.n_rows):
        base = fsai_initial_pattern(a, level=level, threshold=threshold)
        data, info = _ITERATIONS[method](
            a, base, sweeps=sweeps, rtol=rtol, backend=setup_backend,
            **iter_kwargs,
        )
        g_data, fallback_rows = normalize_factor(a, base, data)
        if trace.enabled():
            trace.add_counter("fsai.global_sweeps", info.sweeps)
            if fallback_rows:
                trace.add_counter("fsai.global_fallback_rows", fallback_rows)
        g = CSRMatrix.from_pattern(base, g_data).prune_zeros()
        return FSAISetup(
            method=method,
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=g.pattern,
            flops={flop_key: info.flops},
            filter_value=None,
            sweeps=info.sweeps,
        )


def setup_gsai_st(
    a: CSRMatrix,
    *,
    level: int = 1,
    threshold: float = 0.0,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """End-to-end setup via the Salkuyeh–Toutounian global iteration.

    Same pattern pipeline as :func:`repro.fsai.extended.setup_fsai`
    (threshold → pattern power → lower triangle), but ``G`` comes from
    global minimal-residual sweeps instead of per-row direct solves.
    ``setup_backend`` resolves through the kernel registry; the legacy
    LAPACK names fall back to the default backend (global methods run
    entirely on kernel ops).
    """
    return _setup_global(
        "gsai_st", a, level=level, threshold=threshold,
        sweeps=sweeps, rtol=rtol, setup_backend=setup_backend,
    )


def setup_gsai_cheb(
    a: CSRMatrix,
    *,
    level: int = 1,
    threshold: float = 0.0,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    lambda_lo: Optional[float] = None,
    lambda_hi: Optional[float] = None,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """End-to-end setup via the Chebyshev global semi-iteration."""
    return _setup_global(
        "gsai_cheb", a, level=level, threshold=threshold,
        sweeps=sweeps, rtol=rtol, setup_backend=setup_backend,
        lambda_lo=lambda_lo, lambda_hi=lambda_hi,
    )


def setup_gsai_ns(
    a: CSRMatrix,
    *,
    level: int = 1,
    threshold: float = 0.0,
    sweeps: int = DEFAULT_SWEEPS,
    rtol: float = DEFAULT_GLOBAL_RTOL,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """End-to-end setup via pattern-capped Newton–Schulz sweeps."""
    return _setup_global(
        "gsai_ns", a, level=level, threshold=threshold,
        sweeps=sweeps, rtol=rtol, setup_backend=setup_backend,
    )
