"""LRU cache for FSAI setups keyed on matrix content.

FSAI setup is the expensive half of every solve (pattern construction,
many small dense factorizations, optional precalculation), yet a serving
workload — "heavy traffic from millions of users" in the ROADMAP's terms
— repeatedly solves against the *same* operator with fresh right-hand
sides.  This module makes the second and later requests skip setup
entirely: a bounded LRU keyed by

``(matrix fingerprint, method, config hash)``

where the fingerprint is :meth:`repro.sparse.csr.CSRMatrix.fingerprint`
(SHA-256 over dimensions, structure and values, cached on the matrix) and
the config hash canonicalises the setup keyword arguments, so the same
matrix under different levels/filters caches separately.

Observability: every probe records a ``fsai.cache_hit`` or
``fsai.cache_miss`` trace counter (evictions record ``fsai.cache_evict``)
— see ``docs/tracing.md``.  A hit returns the stored setup without
invoking the builder, so **no** ``fsai.setup`` span is opened; the trace
collector is therefore the authoritative witness that setup was skipped,
which is exactly how ``tests/fsai/test_cache.py`` asserts it.

Thread-safety: probes and insertions hold a lock, so a cache instance may
be shared across threads.  Builds are **single-flight**: when several
threads miss the same key concurrently, one (the leader) runs the
builder while the rest wait on a per-key event and then re-probe; the
waiters count as ``coalesced`` (plus a ``fsai.cache_coalesce`` trace
counter) and resolve to hits without duplicating setup work.  This is
what lets the serving dispatcher share one cache across its solver
thread and any number of callers.  The campaign orchestrator's
*process*-based workers each see their own cache (nothing is shared
through fork), which is the intended isolation.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro import trace
from repro.sparse.csr import CSRMatrix

__all__ = [
    "PreconditionerCache",
    "cached_setup",
    "config_key",
    "default_cache",
]

#: Default bound: a campaign touches a handful of operators at a time;
#: each cached setup holds a factor of roughly the matrix's size, so the
#: bound is deliberately small rather than "as much as fits".
DEFAULT_CAPACITY = 8


def config_key(config: Optional[Dict[str, Any]]) -> str:
    """Canonical hash of the setup kwargs (order-insensitive, stable).

    Public because the multi-process pool (:mod:`repro.serve.pool`) must
    reconstruct the exact cache key ``(fingerprint, method, config_key)``
    when seeding a respawned worker's cache from a published factor.
    """
    payload = json.dumps(config or {}, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


_config_key = config_key  # backwards-compatible private alias


class PreconditionerCache:
    """Bounded LRU of built FSAI setups, keyed on matrix content.

    Parameters
    ----------
    capacity:
        Maximum number of cached setups; inserting beyond it evicts the
        least-recently-used entry.  Must be positive.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight builds: key -> event set when the leader finishes
        #: (successfully or not).  Guarded by ``_lock``.
        self._pending: Dict[Tuple[str, str, str], threading.Event] = {}
        #: Eviction pins: matrix fingerprint -> live attachment count.
        #: An entry whose fingerprint is pinned is never evicted — workers
        #: hold zero-copy shared-memory views into its operator, and LRU
        #: pressure must not invalidate them.  Guarded by ``_lock``.
        self._pins: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
        self.deferred_evictions = 0

    def get_or_build(
        self,
        a: CSRMatrix,
        build: Callable[[], Any],
        *,
        method: str,
        config: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Return the cached setup for ``(a, method, config)``, building on miss.

        ``build`` is only invoked on a miss — a hit therefore opens no
        ``fsai.setup`` span and does no setup work at all.  The built
        value is stored as-is (setups are treated as immutable; callers
        must not mutate a cached factor in place).

        Concurrent misses on the same key are single-flight: the first
        thread builds, the rest block on a per-key event and re-probe
        when it completes, counting as ``coalesced`` + ``hits`` rather
        than duplicate ``misses``.  If the leader's builder raises (or
        the entry is evicted between insertion and wake-up), a waiter
        retries from the top and becomes the new leader — waiting never
        returns a stale or missing entry.
        """
        key = (a.fingerprint(), method, config_key(config))
        while True:
            with self._lock:
                entry = self._entries.get(key, None)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    trace.add_counter("fsai.cache_hit")
                    return entry
                pending = self._pending.get(key, None)
                if pending is None:
                    # Leader: claim the key before releasing the lock so
                    # every other thread arriving for it parks below.
                    self._pending[key] = threading.Event()
                    self.misses += 1
                    break
                self.coalesced += 1
            # Waiter: the build is already in flight on another thread.
            trace.add_counter("fsai.cache_coalesce")
            pending.wait()
            # Re-probe from the top: the usual wake-up finds the entry
            # and returns it as a hit; if the leader failed or the entry
            # was already evicted, the loop elects a new leader.

        # Build outside the lock: setup is the expensive part and must
        # not serialize unrelated keys behind it.
        trace.add_counter("fsai.cache_miss")
        try:
            value = build()
        except BaseException:
            self._finish(key)
            raise
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_over_capacity_locked()
        self._finish(key)
        return value

    def _evict_over_capacity_locked(self) -> None:
        """Evict LRU-first down to capacity, skipping pinned fingerprints.

        When every over-capacity candidate is pinned, eviction is
        *deferred*: the cache temporarily exceeds its bound rather than
        invalidating a worker's live shared-memory views, and
        :meth:`unpin` re-enforces the bound on the last detach.
        """
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k in self._entries if k[0] not in self._pins), None
            )
            if victim is None:
                self.deferred_evictions += 1
                trace.add_counter("fsai.cache_evict_deferred")
                return
            del self._entries[victim]
            self.evictions += 1
            trace.add_counter("fsai.cache_evict")

    # ------------------------------------------------------------------
    # Shared-memory attachment pins (see repro.serve.shm / .pool)
    # ------------------------------------------------------------------
    def pin(self, fingerprint: str) -> None:
        """Protect every entry of ``fingerprint`` from eviction (refcounted)."""
        with self._lock:
            self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1

    def unpin(self, fingerprint: str) -> None:
        """Drop one pin; the last unpin re-enforces the capacity bound."""
        with self._lock:
            refs = self._pins.get(fingerprint, 0) - 1
            if refs > 0:
                self._pins[fingerprint] = refs
            else:
                self._pins.pop(fingerprint, None)
                self._evict_over_capacity_locked()

    def pin_count(self, fingerprint: str) -> int:
        with self._lock:
            return self._pins.get(fingerprint, 0)

    # ------------------------------------------------------------------
    # Cross-process factor adoption (see repro.serve.pool)
    # ------------------------------------------------------------------
    def seed(self, key: Tuple[str, str, str], value: Any) -> bool:
        """Insert a pre-built setup under an explicit key; True if stored.

        Used by pool workers to adopt a factor another process already
        built and published into the shared store — the cross-process
        leg of the single-flight contract: the key is built once
        anywhere, then seeded everywhere.  Idempotent: an existing entry
        wins and ``False`` is returned.
        """
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_over_capacity_locked()
            return True

    def entries(self) -> "Dict[Tuple[str, str, str], Any]":
        """Point-in-time snapshot of cached ``key -> setup`` pairs."""
        with self._lock:
            return dict(self._entries)

    def _finish(self, key: Tuple[str, str, str]) -> None:
        """Release waiters parked on ``key`` (leader done, well or badly)."""
        with self._lock:
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counts plus current occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "deferred_evictions": self.deferred_evictions,
                "coalesced": self.coalesced,
                "pinned": len(self._pins),
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe history)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PreconditionerCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DEFAULT_CACHE = PreconditionerCache()


def default_cache() -> PreconditionerCache:
    """The module-level cache :func:`cached_setup` uses by default."""
    return _DEFAULT_CACHE


def cached_setup(
    a: CSRMatrix,
    *,
    method: str = "fsai",
    cache: Optional[PreconditionerCache] = None,
    **kwargs: Any,
) -> Any:
    """FSAI setup through the cache: build once per (matrix, method, kwargs).

    ``method`` names any method in the registry
    (:func:`repro.fsai.registry.available_methods`): the local setups of
    :mod:`repro.fsai.extended` and the global iterative routes of
    :mod:`repro.fsai.global_iter` alike; ``kwargs`` are forwarded to the
    builder verbatim and participate in the cache key.  Unknown names
    raise :class:`~repro.errors.ConfigurationError` (a ``ValueError``).
    """
    from repro.fsai.registry import get_method

    spec = get_method(method)
    target = cache if cache is not None else _DEFAULT_CACHE
    return target.get_or_build(
        a, lambda: spec.builder(a, **kwargs), method=method, config=kwargs,
    )
