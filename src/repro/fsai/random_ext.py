"""Random pattern extension at matched entry counts (paper §7.3 baseline).

Figures 3 and 4 compare the cache-friendly extension against a *randomly*
extended pattern with the **same number of added entries** per matrix.  The
random extension draws, for each row, the same number of new columns the
cache-friendly extension added to that row, uniformly from the row's
admissible (and absent) column range.  Matching per-row counts keeps the
iteration-cost comparison exact while isolating *placement* as the only
difference — precisely the paper's ablation.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ShapeError
from repro.sparse.pattern import Pattern

__all__ = ["extend_pattern_random"]


def extend_pattern_random(
    base: Pattern,
    n_new_per_row: np.ndarray,
    *,
    triangular: Literal["lower", "upper", "none"] = "lower",
    seed: int = 0,
) -> Pattern:
    """Extend ``base`` with ``n_new_per_row[i]`` random admissible columns.

    Rows whose admissible free column set is smaller than the requested
    count receive all free columns (the shortfall is reported by comparing
    nnz — experiment code logs it; in practice FE-like rows never saturate).
    """
    counts = np.asarray(n_new_per_row, dtype=np.int64)
    if len(counts) != base.n_rows:
        raise ShapeError("n_new_per_row must have one entry per row")
    if np.any(counts < 0):
        raise ValueError("requested extension counts must be non-negative")
    base_rows, base_cols = base.coo()

    # Admissible column window per requesting row (``want > 0``).
    req = np.flatnonzero(counts > 0)
    if triangular == "lower":
        lo, hi = np.zeros(len(req), dtype=np.int64), req + 1
    elif triangular == "upper":
        lo, hi = req.copy(), np.full(len(req), base.n_cols, dtype=np.int64)
    else:
        lo = np.zeros(len(req), dtype=np.int64)
        hi = np.full(len(req), base.n_cols, dtype=np.int64)

    # Flatten every admissible (row, col) candidate pair, then drop the ones
    # already present via one searchsorted against the pattern's row-major
    # keys (CSR order makes them sorted).
    n_adm = hi - lo
    offsets = np.concatenate(([0], np.cumsum(n_adm)))
    cand_row = np.repeat(req, n_adm)
    cand_col = (
        np.arange(offsets[-1], dtype=np.int64)
        - np.repeat(offsets[:-1], n_adm)
        + np.repeat(lo, n_adm)
    )
    n_cols = np.int64(base.n_cols)
    base_keys = base_rows * n_cols + base_cols
    cand_keys = cand_row * n_cols + cand_col
    pos = np.searchsorted(base_keys, cand_keys)
    pos_c = np.minimum(pos, max(len(base_keys) - 1, 0))
    present = (
        (base_keys[pos_c] == cand_keys) if len(base_keys) else
        np.zeros(len(cand_keys), dtype=bool)
    )
    free_row = cand_row[~present]
    free_col = cand_col[~present]

    # One batched draw: a uniform key per free candidate; sorting the keys
    # within each row and keeping the first ``want`` is a uniform sample
    # without replacement for every row simultaneously.
    rng = np.random.default_rng(seed)
    draw = rng.random(len(free_row))
    order = np.lexsort((draw, free_row))
    fr = free_row[order]
    fc = free_col[order]
    if len(fr):
        is_start = np.concatenate(([True], fr[1:] != fr[:-1]))
        starts = np.flatnonzero(is_start)
        group = np.cumsum(is_start) - 1
        rank = np.arange(len(fr)) - starts[group]
        keep = rank < counts[fr]
        new_rows, new_cols = fr[keep], fc[keep]
    else:
        new_rows = new_cols = np.empty(0, dtype=np.int64)

    return Pattern.from_coo(
        base.n_rows, base.n_cols,
        np.concatenate([base_rows, new_rows]),
        np.concatenate([base_cols, new_cols]),
    )
