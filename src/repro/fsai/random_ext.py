"""Random pattern extension at matched entry counts (paper §7.3 baseline).

Figures 3 and 4 compare the cache-friendly extension against a *randomly*
extended pattern with the **same number of added entries** per matrix.  The
random extension draws, for each row, the same number of new columns the
cache-friendly extension added to that row, uniformly from the row's
admissible (and absent) column range.  Matching per-row counts keeps the
iteration-cost comparison exact while isolating *placement* as the only
difference — precisely the paper's ablation.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.errors import PatternError, ShapeError
from repro.sparse.pattern import Pattern

__all__ = ["extend_pattern_random"]


def extend_pattern_random(
    base: Pattern,
    n_new_per_row: np.ndarray,
    *,
    triangular: Literal["lower", "upper", "none"] = "lower",
    seed: int = 0,
) -> Pattern:
    """Extend ``base`` with ``n_new_per_row[i]`` random admissible columns.

    Rows whose admissible free column set is smaller than the requested
    count receive all free columns (the shortfall is reported by comparing
    nnz — experiment code logs it; in practice FE-like rows never saturate).
    """
    if len(n_new_per_row) != base.n_rows:
        raise ShapeError("n_new_per_row must have one entry per row")
    if np.any(np.asarray(n_new_per_row) < 0):
        raise ValueError("requested extension counts must be non-negative")
    rng = np.random.default_rng(seed)
    rows_out = [base.coo()[0]]
    cols_out = [base.coo()[1]]
    for i in range(base.n_rows):
        want = int(n_new_per_row[i])
        if want == 0:
            continue
        if triangular == "lower":
            lo, hi = 0, i + 1
        elif triangular == "upper":
            lo, hi = i, base.n_cols
        else:
            lo, hi = 0, base.n_cols
        admissible = np.arange(lo, hi, dtype=np.int64)
        present = base.row(i)
        free = np.setdiff1d(admissible, present, assume_unique=True)
        if len(free) == 0:
            continue
        take = min(want, len(free))
        chosen = rng.choice(free, size=take, replace=False)
        rows_out.append(np.full(take, i, dtype=np.int64))
        cols_out.append(np.sort(chosen))
    return Pattern.from_coo(
        base.n_rows, base.n_cols,
        np.concatenate(rows_out), np.concatenate(cols_out),
    )
