"""Filtering strategies for FSAI patterns (paper §5).

Two strategies are implemented:

* :func:`standard_post_filter` — the state-of-the-art flow of Algorithm 1
  step 4: compute the exact ``G``, drop small entries, rescale the remaining
  rows so ``diag(G A G^T) = 1`` again.  The resulting ``G`` is *not*
  Frobenius-minimal on the filtered pattern, which degrades convergence for
  aggressive filters (Table 3).
* :func:`filter_extension_by_precalc` — the paper's proposal: classify
  entries with a cheap *approximate* ``G``, drop weak entries from the
  *pattern*, and let the caller recompute the exact ``G`` on the filtered
  pattern (Frobenius-minimal by construction).

Both use the same scale-independent magnitude test: an off-diagonal entry
``(i, j)`` is weak iff ``|g_ij| <= filter · |g_jj|`` where the diagonal
magnitudes come from the same (approximate or exact) ``G``.  Comparing
against the *column* diagonal makes the test exactly invariant under
symmetric diagonal scaling of ``A``: if ``A' = S A S`` then the FSAI rows
transform as ``g'_ij = g_ij / s_j``, so ``|g_ij| / |g_jj|`` is unchanged
(the property-based tests assert this).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import trace
from repro.errors import PatternError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "weak_entry_mask",
    "filter_extension_by_precalc",
    "standard_post_filter",
]


def _diag_magnitudes(g: CSRMatrix) -> np.ndarray:
    """|g_ii| per row with a safe floor for (pathological) zero diagonals."""
    d = np.abs(g.diagonal())
    floor = d[d > 0].min() if np.any(d > 0) else 1.0
    return np.where(d > 0, d, floor)


def weak_entry_mask(g: CSRMatrix, filter_value: float) -> np.ndarray:
    """Boolean mask over stored entries: True where the entry is *weak*.

    Diagonal entries are never weak.  ``filter_value = 0`` marks only exact
    zeros (matching the paper's ``filter = 0.0`` configuration, which keeps
    every extension entry that carries any value at all).
    """
    if filter_value < 0:
        raise ValueError("filter must be non-negative")
    rows = g.row_ids()
    cols = g.indices
    d = _diag_magnitudes(g)
    scale = d[np.minimum(cols, len(d) - 1)]
    weak = np.abs(g.data) <= filter_value * scale
    weak &= rows != cols
    if filter_value == 0:
        weak = (g.data == 0.0) & (rows != cols)
    return weak


def filter_extension_by_precalc(
    g_approx: CSRMatrix,
    base: Pattern,
    filter_value: float,
) -> Pattern:
    """§5 filtration: drop weak *extension* entries from the pattern.

    Parameters
    ----------
    g_approx:
        Approximate ``G`` precalculated on the extended pattern.
    base:
        The pre-extension pattern.  Base entries are immune — the paper's
        filtering "removes only entries of the extension".
    filter_value:
        The *filter* parameter (0.0 / 0.001 / 0.01 / 0.1 in the evaluation).

    Returns
    -------
    Pattern
        ``base ∪ {extension entries that are not weak}``.
    """
    ext_pattern = g_approx.pattern
    if not base.is_subset_of(ext_pattern):
        raise PatternError("base pattern is not contained in the precalculated one")
    with trace.span(
        "fsai.filtering", filter_value=filter_value, nnz=ext_pattern.nnz
    ):
        weak = weak_entry_mask(g_approx, filter_value)

        # Immunise base entries.
        rows = g_approx.row_ids()
        cols = g_approx.indices
        keys = rows * ext_pattern.n_cols + cols
        base_keys = base._keys()
        in_base = np.isin(keys, base_keys, assume_unique=True)
        keep = in_base | ~weak
        if trace.enabled():
            trace.add_counter("pattern.entries_examined", ext_pattern.nnz)
            trace.add_counter(
                "pattern.entries_filtered", int(ext_pattern.nnz - keep.sum())
            )
        return Pattern.from_coo(
            ext_pattern.n_rows, ext_pattern.n_cols, rows[keep], cols[keep]
        )


def standard_post_filter(
    g: CSRMatrix,
    a: CSRMatrix,
    filter_value: float,
    *,
    base: Optional[Pattern] = None,
) -> CSRMatrix:
    """Algorithm 1 step 4: drop weak entries of the *exact* ``G``, rescale.

    ``base`` restricts dropping to extension entries (for the Table 3
    head-to-head against the precalc strategy, where both flows must end on
    the same entry count); ``None`` allows dropping any off-diagonal entry.

    The rescaling recomputes each row norm ``g_i^T A[S,S] g_i`` on the
    filtered support and divides by its square root, restoring
    ``diag(G A G^T) = 1`` — but *not* Frobenius minimality.
    """
    if g.shape != a.shape:
        raise ShapeError("G and A shapes disagree")
    weak = weak_entry_mask(g, filter_value)
    if base is not None:
        rows = g.row_ids()
        keys = rows * g.n_cols + g.indices
        in_base = np.isin(keys, base._keys(), assume_unique=True)
        weak &= ~in_base
    filtered = g._masked(~weak)

    # Rescale rows: (G A G^T)_ii = g_i^T A[S_i,S_i] g_i on the new support.
    data = filtered.data.copy()
    for i in range(filtered.n_rows):
        lo, hi = filtered.indptr[i], filtered.indptr[i + 1]
        cols = filtered.indices[lo:hi]
        vals = filtered.data[lo:hi]
        if len(cols) == 0:
            raise PatternError(f"row {i} lost all entries during filtering")
        local = a.submatrix(cols, cols)
        quad = float(vals @ (local @ vals))
        if quad <= 0:
            raise PatternError(f"row {i}: non-positive norm {quad:.3e} after filter")
        data[lo:hi] = vals / np.sqrt(quad)
    return filtered.with_data(data)
