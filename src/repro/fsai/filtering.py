"""Filtering strategies for FSAI patterns (paper §5).

Two strategies are implemented:

* :func:`standard_post_filter` — the state-of-the-art flow of Algorithm 1
  step 4: compute the exact ``G``, drop small entries, rescale the remaining
  rows so ``diag(G A G^T) = 1`` again.  The resulting ``G`` is *not*
  Frobenius-minimal on the filtered pattern, which degrades convergence for
  aggressive filters (Table 3).
* :func:`filter_extension_by_precalc` — the paper's proposal: classify
  entries with a cheap *approximate* ``G``, drop weak entries from the
  *pattern*, and let the caller recompute the exact ``G`` on the filtered
  pattern (Frobenius-minimal by construction).

Both use the same scale-independent magnitude test: an off-diagonal entry
``(i, j)`` is weak iff ``|g_ij| <= filter · |g_jj|`` where the diagonal
magnitudes come from the same (approximate or exact) ``G``.  Comparing
against the *column* diagonal makes the test exactly invariant under
symmetric diagonal scaling of ``A``: if ``A' = S A S`` then the FSAI rows
transform as ``g'_ij = g_ij / s_j``, so ``|g_ij| / |g_jj|`` is unchanged
(the property-based tests assert this).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import trace
from repro.errors import PatternError, ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "weak_entry_mask",
    "filter_extension_by_precalc",
    "standard_post_filter",
]


def _diag_magnitudes(g: CSRMatrix) -> np.ndarray:
    """|g_ii| per row with a safe floor for (pathological) zero diagonals."""
    d = np.abs(g.diagonal())
    floor = d[d > 0].min() if np.any(d > 0) else 1.0
    return np.where(d > 0, d, floor)


def weak_entry_mask(g: CSRMatrix, filter_value: float) -> np.ndarray:
    """Boolean mask over stored entries: True where the entry is *weak*.

    Diagonal entries are never weak.  ``filter_value = 0`` marks only exact
    zeros (matching the paper's ``filter = 0.0`` configuration, which keeps
    every extension entry that carries any value at all).

    ``g`` must be square: the test compares each entry against its
    *column's* diagonal magnitude, which does not exist for a column
    beyond the last row.  A non-square ``g`` raises
    :class:`~repro.errors.ShapeError` (historically the column index was
    silently clamped to the last row, misclassifying those entries).
    """
    if filter_value < 0:
        raise ValueError("filter must be non-negative")
    if g.n_rows != g.n_cols:
        raise ShapeError(
            f"weak-entry classification needs a square G, got {g.shape}"
        )
    rows = g.row_ids()
    cols = g.indices
    d = _diag_magnitudes(g)
    scale = d[cols]
    weak = np.abs(g.data) <= filter_value * scale
    weak &= rows != cols
    if filter_value == 0:
        weak = (g.data == 0.0) & (rows != cols)
    return weak


def filter_extension_by_precalc(
    g_approx: CSRMatrix,
    base: Pattern,
    filter_value: float,
) -> Pattern:
    """§5 filtration: drop weak *extension* entries from the pattern.

    Parameters
    ----------
    g_approx:
        Approximate ``G`` precalculated on the extended pattern.
    base:
        The pre-extension pattern.  Base entries are immune — the paper's
        filtering "removes only entries of the extension".
    filter_value:
        The *filter* parameter (0.0 / 0.001 / 0.01 / 0.1 in the evaluation).

    Returns
    -------
    Pattern
        ``base ∪ {extension entries that are not weak}``.
    """
    ext_pattern = g_approx.pattern
    if not base.is_subset_of(ext_pattern):
        raise PatternError("base pattern is not contained in the precalculated one")
    with trace.span(
        "fsai.filtering", filter_value=filter_value, nnz=ext_pattern.nnz
    ):
        weak = weak_entry_mask(g_approx, filter_value)

        # Immunise base entries.
        rows = g_approx.row_ids()
        cols = g_approx.indices
        keys = rows * ext_pattern.n_cols + cols
        base_keys = base._keys()
        in_base = np.isin(keys, base_keys, assume_unique=True)
        keep = in_base | ~weak
        if trace.enabled():
            trace.add_counter("pattern.entries_examined", ext_pattern.nnz)
            trace.add_counter(
                "pattern.entries_filtered", int(ext_pattern.nnz - keep.sum())
            )
        return Pattern.from_coo(
            ext_pattern.n_rows, ext_pattern.n_cols, rows[keep], cols[keep]
        )


def standard_post_filter(
    g: CSRMatrix,
    a: CSRMatrix,
    filter_value: float,
    *,
    base: Optional[Pattern] = None,
) -> CSRMatrix:
    """Algorithm 1 step 4: drop weak entries of the *exact* ``G``, rescale.

    ``base`` restricts dropping to extension entries (for the Table 3
    head-to-head against the precalc strategy, where both flows must end on
    the same entry count); ``None`` allows dropping any off-diagonal entry.

    The rescaling recomputes each row norm ``g_i^T A[S,S] g_i`` on the
    filtered support and divides by its square root, restoring
    ``diag(G A G^T) = 1`` — but *not* Frobenius minimality.

    The row norms are computed as a grouped quadratic-form kernel: rows
    of equal filtered length share one vectorised
    :meth:`~repro.sparse.csr.CSRMatrix.gather_entries` of their
    ``A[S_i, S_i]`` blocks (chunked so the ``(m, k, k)`` stack stays
    cache-bounded) and one batched ``g^T A g`` contraction.  The BLAS
    contraction order differs from the historical per-row
    ``vals @ (local @ vals)`` in final ulps; the diagnostics are
    unchanged — the first offending row in ascending order is reported,
    empty rows before non-positive norms.
    """
    if g.shape != a.shape:
        raise ShapeError("G and A shapes disagree")
    weak = weak_entry_mask(g, filter_value)
    if base is not None:
        rows = g.row_ids()
        keys = rows * g.n_cols + g.indices
        in_base = np.isin(keys, base._keys(), assume_unique=True)
        weak &= ~in_base
    filtered = g._masked(~weak)

    # Rescale rows: (G A G^T)_ii = g_i^T A[S_i,S_i] g_i on the new support.
    indptr = filtered.indptr
    lengths = np.diff(indptr)
    quads = np.zeros(filtered.n_rows)  # an empty row keeps 0.0 → flagged below
    for k in np.unique(lengths):
        k = int(k)
        if k == 0:
            continue
        rows_k = np.flatnonzero(lengths == k)
        # Cap each gathered (m, k, k) stack at ~2^22 elements (32 MB).
        step = max(1, (1 << 22) // (k * k))
        offsets = np.arange(k)
        for c0 in range(0, len(rows_k), step):
            rows_c = rows_k[c0:c0 + step]
            span = indptr[rows_c][:, None] + offsets
            cols_c = filtered.indices[span]          # (m, k)
            vals_c = filtered.data[span]             # (m, k)
            shape = (len(rows_c), k, k)
            local = a.gather_entries(
                np.broadcast_to(cols_c[:, :, None], shape),
                np.broadcast_to(cols_c[:, None, :], shape),
            )
            av = np.matmul(local, vals_c[:, :, None])[:, :, 0]
            quads[rows_c] = np.einsum("mi,mi->m", vals_c, av)
    bad = quads <= 0  # NaN propagates into the data exactly as before
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        if lengths[i] == 0:
            raise PatternError(f"row {i} lost all entries during filtering")
        raise PatternError(
            f"row {i}: non-positive norm {quads[i]:.3e} after filter"
        )
    data = filtered.data / np.repeat(np.sqrt(quads), lengths)
    return filtered.with_data(data)
