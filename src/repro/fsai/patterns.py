"""Initial FSAI pattern construction (paper Alg. 1, steps 1-2).

The a-priori pattern of ``G`` is the lower triangle of ``Ã^N`` where ``Ã``
is ``A`` with small entries thresholded away and ``N`` is the *sparse level*.
The paper's evaluation uses the simplest configuration — the lower triangular
pattern of ``A`` itself, no thresholding (``N = 1``, ``τ = 0``) — but the
machinery supports the general form, which the level-sweep ablation bench
exercises.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern
from repro.sparse.symbolic import pattern_power, threshold_matrix

__all__ = ["fsai_initial_pattern"]


def fsai_initial_pattern(
    a: CSRMatrix,
    *,
    level: int = 1,
    threshold: float = 0.0,
) -> Pattern:
    """Lower-triangular a-priori pattern for ``G``.

    Parameters
    ----------
    a:
        SPD system matrix.
    level:
        Sparse level ``N``: the pattern of ``Ã^N`` is used.  ``1`` (default)
        reproduces the paper's evaluation configuration.
    threshold:
        Relative threshold ``τ`` applied to produce ``Ã`` (scale-independent,
        see :func:`repro.sparse.symbolic.threshold_matrix`).  ``0`` keeps all
        structurally non-zero entries.

    Returns
    -------
    Pattern
        Lower-triangular pattern including the full diagonal (required for
        the local systems to be non-singular).
    """
    if a.n_rows != a.n_cols:
        raise ShapeError(f"FSAI needs a square matrix, got {a.shape}")
    base = threshold_matrix(a, threshold).pattern if threshold > 0 else a.pattern
    powered = pattern_power(base, level) if level > 1 else base
    return powered.tril().with_full_diagonal()
