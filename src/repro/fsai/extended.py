"""End-to-end FSAI setups: baseline, FSAIE(sp), FSAIE(full) and ablations.

Each ``setup_*`` function runs the full pipeline of its method and returns a
:class:`FSAISetup` carrying the application object, every intermediate
pattern, and a per-phase flop ledger that the performance model converts to
the paper's setup-time column (§7.4).

Method ↔ paper mapping
----------------------
========================  ====================================================
:func:`setup_fsai`        Algorithm 1 as configured in §7.1 (pattern =
                          ``tril(A)``, no thresholding, null-entry filter).
:func:`setup_fsaie_sp`    Algorithm 4 without steps 5-6: one cache-friendly
                          extension optimising the ``G p`` product.
:func:`setup_fsaie_full`  Algorithm 4 complete: second extension on the
                          transposed pattern optimising ``G^T q``.
:func:`setup_fsaie_joint` §6 ablation: extending ``G`` and ``G^T`` patterns
                          *simultaneously* (single precalc+filter pass) —
                          shown by the paper to break cache-friendliness.
:func:`setup_fsaie_random` §7.3 baseline: random extension at matched
                          per-row entry counts.
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import trace
from repro.arch.address import ArrayPlacement
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.filtering import filter_extension_by_precalc
from repro.fsai.frobenius import (
    compute_g,
    precalculate_g,
    setup_flops_direct,
    setup_flops_precalc,
)
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.precond import FSAIApplication
from repro.fsai.random_ext import extend_pattern_random
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "FSAISetup",
    "setup_fsai",
    "setup_fsaie_sp",
    "setup_fsaie_full",
    "setup_fsaie_joint",
    "setup_fsaie_random",
]

#: Default *filter* for the headline experiments (best common value, §7.2).
DEFAULT_FILTER = 0.01


@dataclass
class FSAISetup:
    """Everything produced by one FSAI setup.

    Attributes
    ----------
    method:
        A name from the method registry (:mod:`repro.fsai.registry`):
        ``"fsai"`` / ``"fsaie_sp"`` / ``"fsaie_full"`` / ``"fsaie_joint"`` /
        ``"fsaie_random"`` here, or one of the global iterative methods
        built in :mod:`repro.fsai.global_iter` (``"gsai_st"`` /
        ``"gsai_cheb"`` / ``"gsai_ns"``).
    application:
        The solver-facing preconditioner.
    base_pattern:
        The a-priori pattern (lower triangle of ``Ã^N``).
    final_pattern:
        Pattern of the computed ``G``.
    flops:
        Per-phase flop ledger (keys: ``precalc1``, ``precalc2``, ``direct``,
        or ``global`` for the iterative methods); the cost model maps the
        total to setup seconds.
    filter_value:
        Filter parameter used (``None`` for the baseline).
    sweeps:
        Global-iteration sweeps actually executed (``None`` for the local
        Frobenius methods, which have no sweep notion).
    """

    method: str
    application: FSAIApplication
    base_pattern: Pattern
    final_pattern: Pattern
    flops: Dict[str, int] = field(default_factory=dict)
    filter_value: Optional[float] = None
    sweeps: Optional[int] = None

    @property
    def g(self) -> CSRMatrix:
        return self.application.g

    @property
    def setup_flops(self) -> int:
        """Total flops across all setup phases."""
        return int(sum(self.flops.values()))

    @property
    def nnz_increase_pct(self) -> float:
        """Paper's %NNZ: pattern-entry increase over the FSAI base pattern."""
        if self.base_pattern.nnz == 0:
            return 0.0
        return 100.0 * (self.final_pattern.nnz - self.base_pattern.nnz) / self.base_pattern.nnz

    def added_per_row(self) -> np.ndarray:
        """Entries added per row w.r.t. the base pattern (random-baseline input)."""
        return np.asarray(
            self.final_pattern.row_lengths() - self.base_pattern.row_lengths()
        )

    def __repr__(self) -> str:
        return (
            f"FSAISetup({self.method}, n={self.final_pattern.n_rows}, "
            f"nnz={self.final_pattern.nnz}, +{self.nnz_increase_pct:.2f}%)"
        )


def _base(a: CSRMatrix, level: int, threshold: float) -> Pattern:
    return fsai_initial_pattern(a, level=level, threshold=threshold)


def setup_fsai(
    a: CSRMatrix,
    *,
    level: int = 1,
    threshold: float = 0.0,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """Baseline FSAI (paper Alg. 1 in the §7.1 configuration).

    ``setup_backend`` selects the local-solve implementation exactly as
    :func:`repro.fsai.frobenius.compute_g`'s ``backend`` does (``None``
    resolves via ``$REPRO_KERNEL_BACKEND``, then ``"auto"``).
    """
    with trace.span("fsai.setup", method="fsai", n=a.n_rows):
        base = _base(a, level, threshold)
        g = compute_g(a, base, backend=setup_backend).prune_zeros()
        final = g.pattern
        return FSAISetup(
            method="fsai",
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=final,
            flops={"direct": setup_flops_direct(base)},
            filter_value=None,
        )


def setup_fsaie_sp(
    a: CSRMatrix,
    placement: ArrayPlacement,
    *,
    filter_value: float = DEFAULT_FILTER,
    level: int = 1,
    threshold: float = 0.0,
    precalc_rtol: float = 1e-2,
    precalc_iterations: int = 20,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """FSAIE(sp): one cache-friendly extension + precalc filtering.

    Optimises spatial locality of the ``G p`` product; the paper notes the
    extension *also* improves temporal locality of ``G^T q`` for free
    (§4.3).
    """
    with trace.span(
        "fsai.setup", method="fsaie_sp", n=a.n_rows, filter_value=filter_value
    ):
        base = _base(a, level, threshold)
        extended = extend_pattern_cache_friendly(
            base, placement, triangular="lower"
        )
        g_approx = precalculate_g(
            a, extended, rtol=precalc_rtol, max_iterations=precalc_iterations,
            backend=setup_backend,
        )
        s_ext = filter_extension_by_precalc(g_approx, base, filter_value)
        g = compute_g(a, s_ext, backend=setup_backend)
        return FSAISetup(
            method="fsaie_sp",
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=s_ext,
            flops={
                "precalc1": setup_flops_precalc(extended, precalc_iterations),
                "direct": setup_flops_direct(s_ext),
            },
            filter_value=filter_value,
        )


def setup_fsaie_full(
    a: CSRMatrix,
    placement: ArrayPlacement,
    *,
    filter_value: float = DEFAULT_FILTER,
    level: int = 1,
    threshold: float = 0.0,
    precalc_rtol: float = 1e-2,
    precalc_iterations: int = 20,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """FSAIE(full): Algorithm 4 — two-step extension of ``G`` then ``G^T``.

    Step order matters (§6): the transpose extension runs on the *filtered*
    first extension, which is what keeps every added entry cache-friendly
    for its own product.
    """
    with trace.span(
        "fsai.setup", method="fsaie_full", n=a.n_rows, filter_value=filter_value
    ):
        base = _base(a, level, threshold)
        # Steps 3-4: extend G's pattern, precalculate, filter.
        ext1 = extend_pattern_cache_friendly(base, placement, triangular="lower")
        g_approx1 = precalculate_g(
            a, ext1, rtol=precalc_rtol, max_iterations=precalc_iterations,
            backend=setup_backend,
        )
        s_ext = filter_extension_by_precalc(g_approx1, base, filter_value)
        # Steps 5-6: extend (S_ext)^T, precalculate, filter.
        ext2_t = extend_pattern_cache_friendly(
            s_ext.transpose(), placement, triangular="upper"
        )
        ext2 = ext2_t.transpose()  # back to the lower-triangular world of G
        g_approx2 = precalculate_g(
            a, ext2, rtol=precalc_rtol, max_iterations=precalc_iterations,
            backend=setup_backend,
        )
        final = filter_extension_by_precalc(g_approx2, s_ext, filter_value)
        # Step 7: exact G on the final pattern.
        g = compute_g(a, final, backend=setup_backend)
        return FSAISetup(
            method="fsaie_full",
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=final,
            flops={
                "precalc1": setup_flops_precalc(ext1, precalc_iterations),
                "precalc2": setup_flops_precalc(ext2, precalc_iterations),
                "direct": setup_flops_direct(final),
            },
            filter_value=filter_value,
        )


def setup_fsaie_joint(
    a: CSRMatrix,
    placement: ArrayPlacement,
    *,
    filter_value: float = DEFAULT_FILTER,
    level: int = 1,
    threshold: float = 0.0,
    precalc_rtol: float = 1e-2,
    precalc_iterations: int = 20,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """§6 ablation: simultaneous extension of ``G`` and ``G^T`` patterns.

    Both extensions start from the *base* pattern and are unioned before a
    single precalculation + filtering pass.  The paper warns this "may
    produce non cache-friendly extended entries": entries added for the
    transposed product land in rows of ``G`` whose cache lines the first
    product never touched (and vice versa after filtering).  The ablation
    bench quantifies the resulting miss increase.
    """
    with trace.span(
        "fsai.setup", method="fsaie_joint", n=a.n_rows, filter_value=filter_value
    ):
        base = _base(a, level, threshold)
        ext_g = extend_pattern_cache_friendly(base, placement, triangular="lower")
        ext_gt = extend_pattern_cache_friendly(
            base.transpose(), placement, triangular="upper"
        ).transpose()
        joint = ext_g.union(ext_gt)
        g_approx = precalculate_g(
            a, joint, rtol=precalc_rtol, max_iterations=precalc_iterations,
            backend=setup_backend,
        )
        final = filter_extension_by_precalc(g_approx, base, filter_value)
        g = compute_g(a, final, backend=setup_backend)
        return FSAISetup(
            method="fsaie_joint",
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=final,
            flops={
                "precalc1": setup_flops_precalc(joint, precalc_iterations),
                "direct": setup_flops_direct(final),
            },
            filter_value=filter_value,
        )


def setup_fsaie_random(
    a: CSRMatrix,
    reference: FSAISetup,
    *,
    seed: int = 0,
    setup_backend: Optional[str] = None,
) -> FSAISetup:
    """§7.3 baseline: random extension with ``reference``'s per-row counts.

    The random pattern receives exactly as many new entries per row as the
    reference cache-friendly setup added (where the admissible range allows
    it), and the exact ``G`` is computed on it — so any performance gap to
    the reference is attributable purely to *where* the entries sit.
    """
    with trace.span("fsai.setup", method="fsaie_random", n=a.n_rows):
        base = reference.base_pattern
        random_pattern = extend_pattern_random(
            base, reference.added_per_row(), triangular="lower", seed=seed
        )
        g = compute_g(a, random_pattern, backend=setup_backend)
        return FSAISetup(
            method="fsaie_random",
            application=FSAIApplication(g),
            base_pattern=base,
            final_pattern=random_pattern,
            flops={"direct": setup_flops_direct(random_pattern)},
            filter_value=reference.filter_value,
        )
