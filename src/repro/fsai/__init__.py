"""FSAI preconditioner family — the paper's core contribution.

Modules
-------
``patterns``
    Initial sparse-pattern construction (threshold + pattern power + lower
    triangle; paper Alg. 1 steps 1-2).
``frobenius``
    Per-row Frobenius-minimal computation of ``G`` (exact, batched LAPACK)
    and the loose-tolerance approximate precalculation of §5.
``fillin``
    The cache-friendly fill-in algorithm (paper Alg. 3 / §4).
``filtering``
    Standard post-filtration (Alg. 1 step 4) and the proposed
    precalculation-based filtration (§5).
``random_ext``
    Random pattern extension at matched entry counts (Figure 3/4 baseline).
``precond``
    Application object ``p ↦ G^T (G p)`` satisfying the solver protocol.
``extended``
    End-to-end setups: ``setup_fsai`` (baseline), ``setup_fsaie_sp``
    (Alg. 4 w/o steps 5-6) and ``setup_fsaie_full`` (Alg. 4), plus the
    single-step joint-extension ablation of §6.
``cache``
    Bounded LRU of built setups keyed on matrix content, so repeated
    solves against the same operator skip FSAI setup entirely.
``global_iter``
    Global iterative SAI routes (Salkuyeh–Toutounian minimal residual,
    Chebyshev semi-iteration, pattern-capped Newton–Schulz) built on
    capped SpGEMM sweeps.
``registry``
    The method registry: one catalogue mapping method names to builders
    plus capability flags for the cache, runner and CLI.
"""

from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.frobenius import (
    FSAI_BACKENDS,
    LocalSystemBucket,
    compute_g,
    gather_local_systems_bucketed,
    precalculate_g,
    resolve_setup_backend,
    setup_flops_direct,
)
from repro.fsai.fillin import extend_pattern_cache_friendly, extension_entries
from repro.fsai.filtering import (
    filter_extension_by_precalc,
    standard_post_filter,
)
from repro.fsai.random_ext import extend_pattern_random
from repro.fsai.precond import FSAIApplication
from repro.fsai.cache import PreconditionerCache, cached_setup, default_cache
from repro.fsai.extended import (
    FSAISetup,
    setup_fsai,
    setup_fsaie_sp,
    setup_fsaie_full,
    setup_fsaie_joint,
    setup_fsaie_random,
)
from repro.fsai.global_iter import (
    GlobalIterInfo,
    global_g_chebyshev,
    global_g_minres,
    global_g_newton_schulz,
    setup_gsai_cheb,
    setup_gsai_ns,
    setup_gsai_st,
)
from repro.fsai.registry import (
    MethodSpec,
    available_methods,
    get_method,
    register_method,
    selectable_methods,
)

__all__ = [
    "fsai_initial_pattern",
    "FSAI_BACKENDS",
    "LocalSystemBucket",
    "compute_g",
    "gather_local_systems_bucketed",
    "precalculate_g",
    "resolve_setup_backend",
    "setup_flops_direct",
    "extend_pattern_cache_friendly",
    "extension_entries",
    "filter_extension_by_precalc",
    "standard_post_filter",
    "extend_pattern_random",
    "FSAIApplication",
    "FSAISetup",
    "PreconditionerCache",
    "cached_setup",
    "default_cache",
    "setup_fsai",
    "setup_fsaie_sp",
    "setup_fsaie_full",
    "setup_fsaie_joint",
    "setup_fsaie_random",
    "GlobalIterInfo",
    "global_g_chebyshev",
    "global_g_minres",
    "global_g_newton_schulz",
    "setup_gsai_cheb",
    "setup_gsai_ns",
    "setup_gsai_st",
    "MethodSpec",
    "available_methods",
    "get_method",
    "register_method",
    "selectable_methods",
]

# Dynamic-pattern (FSPAI) comparator — §8 composability.
from repro.fsai.adaptive import (  # noqa: E402
    adaptive_pattern,
    setup_fspai,
    setup_fspai_cache_extended,
)

__all__ += [
    "adaptive_pattern",
    "setup_fspai",
    "setup_fspai_cache_extended",
]
