"""Dynamic (adaptive) FSAI patterns — FSPAI-style, Huckle [21].

The paper's related work (§8) contrasts the *static* a-priori patterns it
evaluates with *dynamic* methods that grow the pattern adaptively from a
diagonal start (FSPAI, BSAI, PSAI, ...), and argues the cache-friendly
extension is **complementary to any of them**.  This module provides a
from-scratch FSPAI-style adaptive pattern builder so that claim can be
exercised:

* :func:`adaptive_pattern` — per-row greedy pattern growth.  Starting from
  ``J = {i}``, repeatedly solve the local system ``A[J,J] ĝ = e_i`` and add
  the admissible candidate ``j ∉ J`` (a graph neighbour of ``J`` with
  ``j < i``) with the largest normalised residual
  ``|A[j,J] ĝ| / sqrt(a_jj)`` — the first-order decrease of the Kaporin /
  Frobenius functional — until the residual falls below ``tolerance`` or
  the per-row budget is exhausted.
* :func:`setup_fspai` — exact ``G`` on the adaptive pattern.
* :func:`setup_fspai_cache_extended` — the composition: adaptive pattern →
  cache-friendly extension → precalculation filtering → exact ``G``
  (the §9 "complementary to any numerical strategy" pipeline).
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.arch.address import ArrayPlacement
from repro.errors import NotSPDError, ShapeError
from repro.fsai.extended import FSAISetup
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.filtering import filter_extension_by_precalc
from repro.fsai.frobenius import (
    compute_g,
    precalculate_g,
    setup_flops_direct,
    setup_flops_precalc,
)
from repro.fsai.precond import FSAIApplication
from repro.solvers.direct import solve_spd
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = ["adaptive_pattern", "setup_fspai", "setup_fspai_cache_extended"]


def _row_candidates(a: CSRMatrix, support: Set[int], i: int) -> np.ndarray:
    """Graph neighbours of the support, restricted to the lower triangle."""
    cand: Set[int] = set()
    for k in support:
        cols, _ = a.row(k)
        cand.update(int(c) for c in cols if c <= i)
    cand -= support
    return np.fromiter(sorted(cand), dtype=np.int64, count=len(cand))


def adaptive_pattern(
    a: CSRMatrix,
    *,
    max_new_per_row: int = 8,
    tolerance: float = 1e-2,
    candidates_per_step: int = 1,
) -> Pattern:
    """FSPAI-style adaptive lower-triangular pattern.

    Parameters
    ----------
    a:
        SPD matrix.
    max_new_per_row:
        Budget of adaptively added entries per row (dynamic methods trade
        preprocessing cost for pattern quality; the budget bounds it).
    tolerance:
        Stop growing a row when the best candidate's normalised residual
        drops below this value.
    candidates_per_step:
        Entries added per growth step (>1 amortises the local re-solve,
        the batched variant used by practical FSPAI codes).
    """
    if a.n_rows != a.n_cols:
        raise ShapeError("adaptive_pattern requires a square matrix")
    if max_new_per_row < 0 or candidates_per_step < 1:
        raise ValueError("invalid growth budget")
    diag = a.diagonal()
    if np.any(diag <= 0):
        raise NotSPDError("adaptive pattern requires a positive diagonal")

    rows = []
    for i in range(a.n_rows):
        support: Set[int] = {i}
        budget = max_new_per_row
        while budget > 0:
            J = np.fromiter(sorted(support), dtype=np.int64, count=len(support))
            local = a.submatrix(J, J)
            e = np.zeros(len(J))
            e[int(np.searchsorted(J, i))] = 1.0
            g_hat = solve_spd(local, e)
            cand = _row_candidates(a, support, i)
            if len(cand) == 0:
                break
            # Residual r_j = A[j, J] @ ĝ for each candidate, normalised by
            # sqrt(a_jj) (scale independence, as in the §5 filter).
            block = a.submatrix(cand, J)
            scores = np.abs(block @ g_hat) / np.sqrt(diag[cand])
            order = np.argsort(scores)[::-1]
            take = [
                int(cand[k]) for k in order[:candidates_per_step]
                if scores[k] > tolerance
            ]
            if not take:
                break
            take = take[: budget]
            support.update(take)
            budget -= len(take)
        rows.append(sorted(support))
    return Pattern.from_rows(a.n_rows, a.n_cols, rows)


def setup_fspai(
    a: CSRMatrix,
    *,
    max_new_per_row: int = 8,
    tolerance: float = 1e-2,
) -> FSAISetup:
    """Exact FSAI factor on an adaptively grown (FSPAI) pattern."""
    pattern = adaptive_pattern(
        a, max_new_per_row=max_new_per_row, tolerance=tolerance
    )
    g = compute_g(a, pattern)
    return FSAISetup(
        method="fspai",
        application=FSAIApplication(g),
        base_pattern=pattern,
        final_pattern=pattern,
        # The adaptive search re-solves growing local systems; accounting a
        # direct solve per growth step is a faithful lower bound.
        flops={"direct": (max_new_per_row + 1) * setup_flops_direct(pattern)},
        filter_value=None,
    )


def setup_fspai_cache_extended(
    a: CSRMatrix,
    placement: ArrayPlacement,
    *,
    max_new_per_row: int = 8,
    tolerance: float = 1e-2,
    filter_value: float = 0.01,
    precalc_rtol: float = 1e-2,
    precalc_iterations: int = 20,
) -> FSAISetup:
    """Cache-friendly extension on top of the adaptive pattern (§9 claim).

    Pipeline: adaptive pattern → Algorithm 3 extension → §5 precalculation
    filtering → exact ``G`` — i.e. the FSAIE(sp) flow with the dynamic
    pattern replacing ``tril(A)``.
    """
    base = adaptive_pattern(
        a, max_new_per_row=max_new_per_row, tolerance=tolerance
    )
    extended = extend_pattern_cache_friendly(base, placement, triangular="lower")
    g_approx = precalculate_g(
        a, extended, rtol=precalc_rtol, max_iterations=precalc_iterations
    )
    final = filter_extension_by_precalc(g_approx, base, filter_value)
    g = compute_g(a, final)
    return FSAISetup(
        method="fspai_ext",
        application=FSAIApplication(g),
        base_pattern=base,
        final_pattern=final,
        flops={
            "adaptive": (max_new_per_row + 1) * setup_flops_direct(base),
            "precalc1": setup_flops_precalc(extended, precalc_iterations),
            "direct": setup_flops_direct(final),
        },
        filter_value=filter_value,
    )
