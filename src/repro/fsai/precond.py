"""FSAI application object: ``z = G^T (G r)``.

Both factors are stored explicitly in CSR — the paper stores ``G_ext`` and
``G_ext^T`` in CSR and performs two row-order SpMVs (§4.3) — so the cache
simulator can replay exactly the patterns the solver touches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray
from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = ["FSAIApplication"]


class FSAIApplication:
    """Preconditioner object satisfying the solver protocol.

    Parameters
    ----------
    g:
        Lower-triangular factor ``G`` in CSR.
    g_transpose:
        Explicit CSR storage of ``G^T``; computed from ``g`` when omitted.
        FSAIE(full) builds ``G`` from a doubly-extended transpose pattern,
        so both factors always share values but may have been *shaped* by
        different extension steps.
    """

    def __init__(self, g: CSRMatrix, g_transpose: Optional[CSRMatrix] = None) -> None:
        if g.n_rows != g.n_cols:
            raise ShapeError("G must be square")
        self.g = g
        self.gt = g_transpose if g_transpose is not None else g.transpose()
        if self.gt.shape != g.shape:
            raise ShapeError("G^T shape mismatch")
        self.n = g.n_rows
        # Lazily-allocated SpMV gather scratch shared by both factors (they
        # have equal nnz when gt is a true transpose, but not necessarily for
        # FSAIE(full), hence the max).
        self._scratch: Optional[np.ndarray] = None

    def apply(self, r: FloatArray) -> FloatArray:
        """``z = G^T (G r)`` — two row-order CSR SpMVs."""
        if r.shape != (self.n,):
            raise ShapeError(f"expected vector of length {self.n}")
        if self._scratch is None:
            self._scratch = np.empty(max(self.g.nnz, self.gt.nnz))
        return self.gt.matvec(
            self.g.matvec(r, scratch=self._scratch[: self.g.nnz]),
            scratch=self._scratch[: self.gt.nnz],
        )

    def flops_per_application(self) -> int:
        """2 flops per stored entry and product."""
        return 2 * (self.g.nnz + self.gt.nnz)

    @property
    def g_pattern(self) -> Pattern:
        """Pattern of the first product's matrix (``G``)."""
        return self.g.pattern

    @property
    def gt_pattern(self) -> Pattern:
        """Pattern of the second product's matrix (``G^T``)."""
        return self.gt.pattern

    def factor_nnz(self) -> int:
        """Stored entries of ``G`` (the paper's %NNZ baseline quantity)."""
        return self.g.nnz

    def as_explicit_inverse_approx(self) -> np.ndarray:
        """Dense ``G^T G`` — the explicit ``A^{-1}`` approximation.

        Only sensible for small matrices; used by tests to measure
        ``‖I − G L‖_F`` style quality metrics directly.
        """
        gd = self.g.to_dense()
        return gd.T @ gd

    def __repr__(self) -> str:
        return f"FSAIApplication(n={self.n}, nnz(G)={self.g.nnz})"
