"""FSAI application object: ``z = G^T (G r)``.

The paper stores ``G_ext`` and ``G_ext^T`` in CSR and performs two
row-order SpMVs (§4.3).  Here the common case — ``G^T`` *is* the
transpose of ``G`` — routes through the kernel registry's fused
:meth:`~repro.kernels.base.KernelBackend.fsai_apply`, which performs both
products from ``G``'s stored structure alone (the scatter half uses the
cached column-grouped view), with all intermediates in preallocated
workspaces.  The explicit transpose is only materialised lazily for
callers that need its pattern (the cache simulator replays it), or when a
*differently shaped* ``G^T`` is supplied, as FSAIE(full)'s doubly-extended
variant allows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import FloatArray
from repro.errors import ShapeError
from repro.kernels import get_backend
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = ["FSAIApplication"]


class FSAIApplication:
    """Preconditioner object satisfying the solver protocol.

    Parameters
    ----------
    g:
        Lower-triangular factor ``G`` in CSR.
    g_transpose:
        Explicit CSR storage of ``G^T``.  When omitted (the usual case)
        the application is fused over ``G`` alone and the transpose is
        computed lazily only if :attr:`gt`/:attr:`gt_pattern` is read.
        FSAIE(full) builds ``G`` from a doubly-extended transpose pattern,
        so both factors always share values but may have been *shaped* by
        different extension steps — passing one switches the application
        to two explicit SpMVs.
    """

    def __init__(self, g: CSRMatrix, g_transpose: Optional[CSRMatrix] = None) -> None:
        if g.n_rows != g.n_cols:
            raise ShapeError("G must be square")
        self.g = g
        if g_transpose is not None and g_transpose.shape != g.shape:
            raise ShapeError("G^T shape mismatch")
        self._gt = g_transpose
        self._gt_explicit = g_transpose is not None
        self.n = g.n_rows
        # Lazily-allocated workspaces: the fused-apply intermediate t = G r
        # and the SpMV gather scratch shared by both products (equal nnz
        # when gt is a true transpose, but not necessarily for FSAIE(full),
        # hence the max).
        self._tmp: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        # The kernel backend is resolved once at first application and
        # pinned as a bound apply handle (a solver applies the
        # preconditioner thousands of times; re-reading the registry and
        # re-dispatching the format per apply is pure overhead).
        # Construct a fresh application to pick up a backend switch.
        self._apply_op = None
        # Blocked-apply handle plus the block width it was bound for; the
        # multi-RHS solver shrinks its block when columns converge, so the
        # handle (and its (n, k)/(nnz, k) workspaces) rebinds on width
        # change — rare (a handful of compactions per solve) by design.
        self._multi_op = None
        self._multi_k = 0

    @property
    def gt(self) -> CSRMatrix:
        """Explicit ``G^T`` (lazily transposed unless supplied)."""
        if self._gt is None:
            self._gt = self.g.transpose()
        return self._gt

    def _workspaces(self):
        if self._scratch is None:
            nnz = self.g.nnz
            if self._gt_explicit:
                nnz = max(nnz, self.gt.nnz)
            self._scratch = np.empty(nnz)
            self._tmp = np.empty(self.n)
        return self._tmp, self._scratch

    def apply(self, r: FloatArray) -> FloatArray:
        """``z = G^T (G r)`` — fused kernel-backend application."""
        return self.apply_into(r, np.empty(self.n))

    def apply_into(self, r: FloatArray, out: FloatArray) -> FloatArray:
        """As :meth:`apply`, writing into the caller's ``out`` buffer."""
        if r.shape != (self.n,):
            raise ShapeError(f"expected vector of length {self.n}")
        op = self._apply_op
        if op is None:
            op = self._apply_op = self._bind_apply()
        return op(r, out)

    def _bind_apply(self):
        """Resolve the backend and bind the fused-apply handle once."""
        tmp, scratch = self._workspaces()
        backend = get_backend()
        if not self._gt_explicit:
            return backend.fsai_apply_op(self.g, tmp, scratch)
        # Differently-shaped explicit transpose: two row-order SpMVs.
        g_op = backend.spmv_op(self.g, scratch[: self.g.nnz])
        gt_op = backend.spmv_op(self.gt, scratch[: self.gt.nnz])

        def op(r: FloatArray, out: FloatArray) -> FloatArray:
            g_op(r, tmp)
            return gt_op(tmp, out)

        return op

    def apply_multi(self, r: FloatArray) -> FloatArray:
        """Blocked ``Z = G^T (G R)`` over an ``(n, k)`` residual block."""
        return self.apply_multi_into(r, np.empty(r.shape))

    def apply_multi_into(self, r: FloatArray, out: FloatArray) -> FloatArray:
        """As :meth:`apply_multi`, writing into the caller's ``(n, k)`` block."""
        if r.ndim != 2 or r.shape[0] != self.n:
            raise ShapeError(f"expected (n, k) block with n={self.n}")
        op = self._multi_op
        if op is None or self._multi_k != r.shape[1]:
            op = self._multi_op = self._bind_apply_multi(r.shape[1])
            self._multi_k = r.shape[1]
        return op(r, out)

    def _bind_apply_multi(self, k: int):
        """Bind the blocked-apply handle (and its workspaces) for width ``k``."""
        backend = get_backend()
        tmp = np.empty((self.n, k))
        if not self._gt_explicit:
            scratch = np.empty((self.g.nnz, k))
            return backend.fsai_apply_multi_op(self.g, tmp, scratch)
        # Differently-shaped explicit transpose: two row-order SpMMs.
        g_op = backend.spmm_op(self.g, np.empty((self.g.nnz, k)))
        gt_op = backend.spmm_op(self.gt, np.empty((self.gt.nnz, k)))

        def op(r: FloatArray, out: FloatArray) -> FloatArray:
            g_op(r, tmp)
            return gt_op(tmp, out)

        return op

    def flops_per_application(self) -> int:
        """2 flops per stored entry and product."""
        gt_nnz = self.gt.nnz if self._gt_explicit else self.g.nnz
        return 2 * (self.g.nnz + gt_nnz)

    @property
    def g_pattern(self) -> Pattern:
        """Pattern of the first product's matrix (``G``)."""
        return self.g.pattern

    @property
    def gt_pattern(self) -> Pattern:
        """Pattern of the second product's matrix (``G^T``)."""
        return self.gt.pattern

    def factor_nnz(self) -> int:
        """Stored entries of ``G`` (the paper's %NNZ baseline quantity)."""
        return self.g.nnz

    def as_explicit_inverse_approx(self) -> np.ndarray:
        """Dense ``G^T G`` — the explicit ``A^{-1}`` approximation.

        Only sensible for small matrices; used by tests to measure
        ``‖I − G L‖_F`` style quality metrics directly.
        """
        gd = self.g.to_dense()
        return gd.T @ gd

    def __repr__(self) -> str:
        return f"FSAIApplication(n={self.n}, nnz(G)={self.g.nnz})"
