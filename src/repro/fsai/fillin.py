"""Cache-friendly fill-in (paper §4, Algorithm 3).

Given a sparse pattern ``S`` and the cache-line placement of the multiplied
vector ``x``, extend each row of ``S`` with the columns whose ``x`` elements
share a cache line with an element the row already accesses.  By
construction the extended row touches **exactly the same set of cache
lines** as the original row — the central invariant of the paper, asserted
by the property-based tests via :class:`repro.cachesim.InfiniteCache`.

The implementation is fully vectorised: one pass builds all (row, line)
pairs, a second expands each pair into its clipped column block, and the
union with the original pattern happens in a single COO round-trip.
Triangular restriction ("except if they correspond to entries above the
diagonal", §4.4) is a clip against the row index.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro import trace
from repro.arch.address import ArrayPlacement
from repro.errors import PatternError
from repro.sparse.pattern import Pattern

__all__ = ["extend_pattern_cache_friendly", "extension_entries"]

Triangular = Literal["lower", "upper", "none"]


def extend_pattern_cache_friendly(
    pattern: Pattern,
    placement: ArrayPlacement,
    *,
    triangular: Triangular = "lower",
) -> Pattern:
    """Algorithm 3: extend ``pattern`` with same-cache-line columns.

    Parameters
    ----------
    pattern:
        Pattern to extend (the pattern of ``G`` — or of ``G^T`` for the
        second step of FSAIE(full)).
    placement:
        Cache-line placement of the multiplied vector; supplies the line
        size (the algorithm's only architecture input, §4.1) and the
        alignment offset of element 0.
    triangular:
        ``"lower"`` clips added entries to ``col <= row`` (extending the
        pattern of lower-triangular ``G``), ``"upper"`` to ``col >= row``
        (extending the pattern of ``G^T``), ``"none"`` adds the full blocks
        (plain SpMV matrices).

    Returns
    -------
    Pattern
        Superset of ``pattern``; rows touch exactly the same cache lines of
        ``x`` as before.
    """
    if triangular not in ("lower", "upper", "none"):
        raise PatternError(f"invalid triangular mode {triangular!r}")
    if pattern.nnz == 0:
        return pattern

    with trace.span(
        "fsai.extension", triangular=triangular, nnz=pattern.nnz
    ):
        epl = placement.elements_per_line
        offset = placement.element_offset
        n_cols = pattern.n_cols

        rows, cols = pattern.coo()
        lines = (cols + offset) // epl
        # Unique (row, line) pairs == the "already considered column block"
        # skip of Algorithm 3 lines 6-8, applied globally.
        pair_keys = rows * ((n_cols + offset) // epl + 1) + lines
        _, first_idx = np.unique(pair_keys, return_index=True)
        pair_rows = rows[first_idx]
        pair_lines = lines[first_idx]

        # Expand pairs into column blocks [line*epl - offset, ... + epl-1].
        starts = pair_lines * epl - offset
        block = starts[:, None] + np.arange(epl, dtype=np.int64)[None, :]
        block_rows = np.broadcast_to(pair_rows[:, None], block.shape)

        flat_cols = block.ravel()
        flat_rows = block_rows.ravel()
        valid = (flat_cols >= 0) & (flat_cols < n_cols)
        if triangular == "lower":
            valid &= flat_cols <= flat_rows
        elif triangular == "upper":
            valid &= flat_cols >= flat_rows

        all_rows = np.concatenate([rows, flat_rows[valid]])
        all_cols = np.concatenate([cols, flat_cols[valid]])
        extended = Pattern.from_coo(pattern.n_rows, n_cols, all_rows, all_cols)
        if trace.enabled():
            trace.add_counter(
                "pattern.entries_added", int(extended.nnz - pattern.nnz)
            )
        return extended


def extension_entries(base: Pattern, extended: Pattern) -> Pattern:
    """Entries added by an extension: ``extended \\ base``.

    Raises :class:`PatternError` if ``extended`` is not a superset — callers
    always pass a pattern produced by one of the extension functions, and a
    violation indicates a bookkeeping bug upstream.
    """
    if not base.is_subset_of(extended):
        raise PatternError("extended pattern is not a superset of the base pattern")
    return extended.difference(base)
