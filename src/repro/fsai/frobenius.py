"""Frobenius-minimal computation of ``G`` (paper §2.2) and its approximate
precalculation (§5).

For a lower-triangular pattern ``S`` with rows ``S_i ∋ i``, the minimiser of
``‖I − G L‖_F`` over matrices with pattern ``S`` is obtained row-by-row
(Kolotilina–Yeremin [28], Chow [11]) *without forming the Cholesky factor
L*: solve

    ``A[S_i, S_i] ĝ = e_i|_{S_i}``            (local SPD system)

then normalise ``g_i = ĝ / sqrt(ĝ_i)`` so that ``G A G^T`` has unit
diagonal.  ``ĝ_i = (A[S_i,S_i]^{-1})_{ii} > 0`` for SPD ``A``, so the
normalisation is always defined.

Two computation modes:

* **direct** — batched dense Cholesky via LAPACK (exact; Alg. 1 step 3 and
  Alg. 2 step 5);
* **approximate** — truncated CG at loose tolerance (the §5 precalculation
  used only to classify entry magnitudes before filtering).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._typing import FloatArray
from repro.errors import NotSPDError, PatternError, ShapeError
from repro.solvers.direct import solve_spd_batched
from repro.solvers.local_cg import (
    DEFAULT_PRECALC_ITERATIONS,
    DEFAULT_PRECALC_RTOL,
    solve_spd_approximate_batched,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "gather_local_systems",
    "compute_g",
    "precalculate_g",
    "setup_flops_direct",
    "setup_flops_precalc",
]


def _check_pattern(a: CSRMatrix, pattern: Pattern) -> None:
    if a.n_rows != a.n_cols:
        raise ShapeError("FSAI requires a square matrix")
    if pattern.shape != a.shape:
        raise ShapeError(
            f"pattern shape {pattern.shape} does not match matrix {a.shape}"
        )
    if not pattern.is_lower_triangular():
        raise PatternError("FSAI pattern must be lower triangular")


def gather_local_systems(a: CSRMatrix, pattern: Pattern):
    """Extract the dense local systems ``(A[S_i,S_i], e_i|_{S_i})`` per row.

    Returns ``(systems, rhs)`` lists aligned with row order.  The diagonal
    position is the *last* index of each sorted lower-triangular row, which
    is where the unit right-hand side lives.
    """
    systems: List[np.ndarray] = []
    rhs: List[FloatArray] = []
    for i in range(pattern.n_rows):
        cols = pattern.row(i)
        if len(cols) == 0 or cols[-1] != i:
            raise PatternError(f"row {i} of FSAI pattern must contain the diagonal")
        local = a.submatrix(cols, cols)
        e = np.zeros(len(cols))
        e[-1] = 1.0
        systems.append(local)
        rhs.append(e)
    return systems, rhs


def _assemble_g(pattern: Pattern, solutions: List[FloatArray]) -> CSRMatrix:
    """Normalise per-row solutions and assemble the CSR ``G``."""
    data = np.empty(pattern.nnz)
    for i, sol in enumerate(solutions):
        lo, hi = pattern.indptr[i], pattern.indptr[i + 1]
        pivot = sol[-1]
        if pivot <= 0 or not np.isfinite(pivot):
            raise NotSPDError(
                f"row {i}: non-positive diagonal solution {pivot:.3e} "
                "(matrix restriction not SPD)"
            )
        data[lo:hi] = sol / np.sqrt(pivot)
    return CSRMatrix.from_pattern(pattern, data)


def compute_g(a: CSRMatrix, pattern: Pattern) -> CSRMatrix:
    """Exact Frobenius-minimal ``G`` on ``pattern`` (batched direct solves).

    The result satisfies ``diag(G A G^T) = 1`` exactly (up to roundoff);
    :mod:`tests.fsai` asserts this invariant.
    """
    _check_pattern(a, pattern)
    systems, rhs = gather_local_systems(a, pattern)
    solutions = solve_spd_batched(systems, rhs)
    return _assemble_g(pattern, solutions)


def precalculate_g(
    a: CSRMatrix,
    pattern: Pattern,
    *,
    rtol: float = DEFAULT_PRECALC_RTOL,
    max_iterations: int = DEFAULT_PRECALC_ITERATIONS,
) -> CSRMatrix:
    """Approximate ``G`` via truncated CG on the local systems (§5).

    Cheap by construction: the returned values are order-of-magnitude
    estimates used exclusively by the filtering step.  Rows whose truncated
    solve produces a non-positive diagonal estimate fall back to a Jacobi
    guess (``1/sqrt(a_ii)`` on the diagonal, zeros elsewhere) — the filter
    then simply keeps that row's extension decisions conservative rather
    than aborting setup.
    """
    _check_pattern(a, pattern)
    systems, rhs = gather_local_systems(a, pattern)
    solutions = solve_spd_approximate_batched(
        systems, rhs, rtol=rtol, max_iterations=max_iterations
    )
    diag = a.diagonal()
    data = np.empty(pattern.nnz)
    for i, sol in enumerate(solutions):
        lo, hi = pattern.indptr[i], pattern.indptr[i + 1]
        pivot = sol[-1]
        if pivot <= 0 or not np.isfinite(pivot):
            fallback = np.zeros(hi - lo)
            fallback[-1] = 1.0 / np.sqrt(diag[i]) if diag[i] > 0 else 1.0
            data[lo:hi] = fallback
        else:
            data[lo:hi] = sol / np.sqrt(pivot)
    return CSRMatrix.from_pattern(pattern, data)


def setup_flops_direct(pattern: Pattern) -> int:
    """Flop estimate of the exact setup on ``pattern``.

    Per row of size ``k``: Cholesky ``k³/3`` + two triangular solves ``2k²``
    + gather/normalise ``O(k)``.  Feeds the §7.4 setup-overhead model.
    """
    k = pattern.row_lengths().astype(np.float64)
    return int(np.sum(k**3 / 3.0 + 2.0 * k**2 + 4.0 * k))


def setup_flops_precalc(
    pattern: Pattern, iterations: int = DEFAULT_PRECALC_ITERATIONS
) -> int:
    """Flop estimate of the truncated-CG precalculation on ``pattern``.

    Per row of size ``k``: ``min(iterations, k)`` CG steps (CG terminates in
    at most ``k`` steps on a ``k×k`` system, and the batched solver masks
    converged rows out), each a dense matvec ``2k²`` plus ``~8k`` of vector
    work.
    """
    k = pattern.row_lengths().astype(np.float64)
    steps = np.minimum(float(iterations), k)
    return int(np.sum(steps * (2.0 * k**2 + 8.0 * k)))
