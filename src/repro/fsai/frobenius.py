"""Frobenius-minimal computation of ``G`` (paper §2.2) and its approximate
precalculation (§5).

For a lower-triangular pattern ``S`` with rows ``S_i ∋ i``, the minimiser of
``‖I − G L‖_F`` over matrices with pattern ``S`` is obtained row-by-row
(Kolotilina–Yeremin [28], Chow [11]) *without forming the Cholesky factor
L*: solve

    ``A[S_i, S_i] ĝ = e_i|_{S_i}``            (local SPD system)

then normalise ``g_i = ĝ / sqrt(ĝ_i)`` so that ``G A G^T`` has unit
diagonal.  ``ĝ_i = (A[S_i,S_i]^{-1})_{ii} > 0`` for SPD ``A``, so the
normalisation is always defined.

Two computation modes:

* **direct** — batched dense Cholesky via LAPACK (exact; Alg. 1 step 3 and
  Alg. 2 step 5);
* **approximate** — truncated CG at loose tolerance (the §5 precalculation
  used only to classify entry magnitudes before filtering).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import trace
from repro._typing import FloatArray, IndexArray
from repro.errors import NotSPDError, PatternError, ShapeError
from repro.kernels import ENV_VAR as KERNEL_ENV_VAR
from repro.kernels import get_backend
from repro.kernels.base import KernelBackend
from repro.solvers.direct import solve_spd_batched, solve_spd_stacked
from repro.solvers.local_cg import (
    DEFAULT_PRECALC_ITERATIONS,
    DEFAULT_PRECALC_RTOL,
    solve_spd_approximate_batched,
    solve_spd_approximate_stacked,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "FSAI_BACKENDS",
    "LocalSystemBucket",
    "gather_local_systems",
    "gather_local_systems_bucketed",
    "compute_g",
    "precalculate_g",
    "resolve_setup_backend",
    "setup_flops_direct",
    "setup_flops_precalc",
]

#: Legacy ``backend=`` values for the FSAI setup: the LAPACK-backed
#: bucketed path and the per-row reference loop.  Every other name is a
#: kernel-registry backend and routes through the ``fsai_setup`` op.
#: ``"reference"`` keeps its historical meaning (the per-row loop);
#: the kernel reference backend's setup op is reachable via
#: ``get_backend("reference").fsai_setup`` directly.
FSAI_BACKENDS = ("bucketed", "reference")


def _resolve_setup_backend(
    backend: Optional[str],
) -> Tuple[str, Union[str, KernelBackend]]:
    """Resolve a setup ``backend=`` argument.

    Precedence mirrors the solve side: an explicit name wins, otherwise
    ``$REPRO_KERNEL_BACKEND``, otherwise ``"auto"`` (numba when
    installed, numpy when not).  Returns ``("legacy", name)`` for the
    historical LAPACK paths or ``("kernel", backend_instance)`` for
    names handled by the kernel registry; unknown names raise
    :class:`~repro.errors.ConfigurationError` from the registry.
    """
    if backend is None:
        backend = os.environ.get(KERNEL_ENV_VAR, "").strip() or "auto"
    if backend in FSAI_BACKENDS:
        return "legacy", backend
    return "kernel", get_backend(backend)


def resolve_setup_backend(backend: Optional[str] = None) -> str:
    """Concrete setup-backend name ``backend`` resolves to right now.

    ``None`` applies the full default chain (env var, then ``"auto"``);
    registry names collapse to the backend actually selected (e.g.
    ``"numba"`` without numba installed resolves to ``"numpy"``).  This
    is the name :class:`repro.experiments.runner.CaseResult` records.
    """
    _, resolved = _resolve_setup_backend(backend)
    if isinstance(resolved, str):
        return resolved
    return resolved.name


def _check_pattern(a: CSRMatrix, pattern: Pattern) -> None:
    if a.n_rows != a.n_cols:
        raise ShapeError("FSAI requires a square matrix")
    if pattern.shape != a.shape:
        raise ShapeError(
            f"pattern shape {pattern.shape} does not match matrix {a.shape}"
        )
    if not pattern.is_lower_triangular():
        raise PatternError("FSAI pattern must be lower triangular")


def gather_local_systems(a: CSRMatrix, pattern: Pattern):
    """Extract the dense local systems ``(A[S_i,S_i], e_i|_{S_i})`` per row.

    Returns ``(systems, rhs)`` lists aligned with row order.  The diagonal
    position is the *last* index of each sorted lower-triangular row, which
    is where the unit right-hand side lives.
    """
    systems: List[np.ndarray] = []
    rhs: List[FloatArray] = []
    for i in range(pattern.n_rows):
        cols = pattern.row(i)
        if len(cols) == 0 or cols[-1] != i:
            raise PatternError(f"row {i} of FSAI pattern must contain the diagonal")
        local = a.submatrix(cols, cols)
        e = np.zeros(len(cols))
        e[-1] = 1.0
        systems.append(local)
        rhs.append(e)
    return systems, rhs


@dataclass(frozen=True)
class LocalSystemBucket:
    """All local systems of one row-length class, stacked for batched LAPACK.

    ``systems[j]`` is ``A[S_i, S_i]`` for ``i = rows[j]``; ``rhs[j]`` is the
    matching ``e_i|_{S_i}`` (unit in the last, i.e. diagonal, position).
    """

    size: int
    rows: IndexArray          # pattern rows of this bucket, ascending
    systems: np.ndarray       # (len(rows), size, size)
    rhs: np.ndarray           # (len(rows), size)


def _check_diagonals(pattern: Pattern) -> IndexArray:
    """Validate that every row ends in its diagonal; returns row lengths."""
    lengths = np.diff(pattern.indptr)
    last = np.full(pattern.n_rows, -1, dtype=np.int64)
    nonempty = lengths > 0
    last[nonempty] = pattern.indices[pattern.indptr[1:][nonempty] - 1]
    bad = last != np.arange(pattern.n_rows)
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise PatternError(f"row {i} of FSAI pattern must contain the diagonal")
    return lengths


def gather_local_systems_bucketed(
    a: CSRMatrix, pattern: Pattern
) -> List[LocalSystemBucket]:
    """Extract all local systems at once, bucketed by row length.

    Rows of equal pattern length ``k`` share one vectorised gather: their
    column sets stack into an ``(m, k)`` block, the ``(m, k, k)`` index grid
    ``(S[:, :, None], S[:, None, :])`` addresses every entry of every local
    system, and one :meth:`~repro.sparse.csr.CSRMatrix.gather_entries`
    lookup materialises the whole bucket.  Buckets appear in
    first-occurrence order of their size — the same order the per-row
    gather feeds :func:`~repro.solvers.direct.solve_spd_batched` — and rows
    ascend within each bucket, so downstream solves see byte-identical
    stacked inputs.
    """
    lengths = _check_diagonals(pattern)
    sizes, first_at = np.unique(lengths, return_index=True)
    buckets: List[LocalSystemBucket] = []
    for k in sizes[np.argsort(first_at)]:
        k = int(k)
        rows = np.flatnonzero(lengths == k)
        starts = pattern.indptr[rows]
        cols = pattern.indices[starts[:, None] + np.arange(k)]  # (m, k)
        shape = (len(rows), k, k)
        systems = a.gather_entries(
            np.broadcast_to(cols[:, :, None], shape),
            np.broadcast_to(cols[:, None, :], shape),
        )
        rhs = np.zeros((len(rows), k))
        rhs[:, -1] = 1.0
        buckets.append(
            LocalSystemBucket(size=k, rows=rows, systems=systems, rhs=rhs)
        )
    return buckets


def _assemble_g(pattern: Pattern, solutions: List[FloatArray]) -> CSRMatrix:
    """Normalise per-row solutions and assemble the CSR ``G``."""
    data = np.empty(pattern.nnz)
    for i, sol in enumerate(solutions):
        lo, hi = pattern.indptr[i], pattern.indptr[i + 1]
        pivot = sol[-1]
        if pivot <= 0 or not np.isfinite(pivot):
            raise NotSPDError(
                f"row {i}: non-positive diagonal solution {pivot:.3e} "
                "(matrix restriction not SPD)"
            )
        data[lo:hi] = sol / np.sqrt(pivot)
    return CSRMatrix.from_pattern(pattern, data)


def _scatter_rows(
    data: FloatArray, pattern: Pattern, bucket: LocalSystemBucket,
    values: np.ndarray,
) -> None:
    """Write per-row value blocks of one bucket into the CSR data array."""
    positions = pattern.indptr[bucket.rows][:, None] + np.arange(bucket.size)
    data[positions] = values


def compute_g(
    a: CSRMatrix, pattern: Pattern, *, backend: Optional[str] = None
) -> CSRMatrix:
    """Exact Frobenius-minimal ``G`` on ``pattern`` (batched direct solves).

    The result satisfies ``diag(G A G^T) = 1`` exactly (up to roundoff);
    :mod:`tests.fsai` asserts this invariant.

    ``backend=None`` (default) resolves through the kernel registry —
    ``$REPRO_KERNEL_BACKEND`` when set, ``"auto"`` otherwise — and runs
    the ``fsai_setup`` kernel op: grouped, identity-padded batched
    Cholesky with byte-identical output across all kernel backends (see
    :mod:`repro.kernels.setup`).  The legacy names stay available and
    bit-for-bit unchanged: ``backend="bucketed"`` gathers and solves
    whole row-length buckets with vectorised CSR indexing + LAPACK,
    ``backend="reference"`` is the original per-row ``submatrix`` loop.
    The op path and the LAPACK paths agree to solver roundoff
    (``~1e-12`` relative), not bitwise — they factorise differently.
    """
    _check_pattern(a, pattern)
    kind, resolved = _resolve_setup_backend(backend)
    label = resolved if isinstance(resolved, str) else resolved.name
    with trace.span(
        "fsai.frobenius", rows=pattern.n_rows, nnz=pattern.nnz, backend=label
    ):
        if trace.enabled():
            trace.add_counter("fsai.frobenius_flops", setup_flops_direct(pattern))
        if kind == "kernel":
            assert isinstance(resolved, KernelBackend)
            lengths = _check_diagonals(pattern)
            with trace.span(
                "fsai_setup",
                backend=resolved.name,
                threads=resolved.setup_threads(),
                rows=pattern.n_rows,
                nnz=pattern.nnz,
                mode="direct",
            ):
                data = resolved.fsai_setup(a, pattern, lengths=lengths)
            return CSRMatrix.from_pattern(pattern, data)
        if resolved == "reference":
            systems, rhs = gather_local_systems(a, pattern)
            solutions = solve_spd_batched(systems, rhs)
            return _assemble_g(pattern, solutions)
        buckets = gather_local_systems_bucketed(a, pattern)
        solved = [
            (b, solve_spd_stacked(b.systems, b.rhs, system_ids=b.rows))
            for b in buckets
        ]
        pivots = np.empty(pattern.n_rows)
        for b, sol in solved:
            pivots[b.rows] = sol[:, -1]
        bad = ~((pivots > 0) & np.isfinite(pivots))
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise NotSPDError(
                f"row {i}: non-positive diagonal solution {pivots[i]:.3e} "
                "(matrix restriction not SPD)"
            )
        data = np.empty(pattern.nnz)
        for b, sol in solved:
            _scatter_rows(data, pattern, b, sol / np.sqrt(sol[:, -1])[:, None])
        return CSRMatrix.from_pattern(pattern, data)


def _precalc_bucketed(
    a: CSRMatrix, pattern: Pattern, rtol: float, max_iterations: int
) -> CSRMatrix:
    """The bucketed truncated-CG precalculation body (shared by paths)."""
    buckets = gather_local_systems_bucketed(a, pattern)
    diag = a.diagonal()
    data = np.empty(pattern.nnz)
    for b in buckets:
        sol = solve_spd_approximate_stacked(
            b.systems, b.rhs, rtol=rtol, max_iterations=max_iterations
        )
        pivot = sol[:, -1]
        good = (pivot > 0) & np.isfinite(pivot)
        values = np.zeros_like(sol)
        values[good] = sol[good] / np.sqrt(pivot[good])[:, None]
        if not good.all():
            fb_diag = diag[b.rows[~good]]
            fb = np.ones(len(fb_diag))
            positive = fb_diag > 0
            fb[positive] = 1.0 / np.sqrt(fb_diag[positive])
            values[~good, -1] = fb
        _scatter_rows(data, pattern, b, values)
    return CSRMatrix.from_pattern(pattern, data)


def precalculate_g(
    a: CSRMatrix,
    pattern: Pattern,
    *,
    rtol: float = DEFAULT_PRECALC_RTOL,
    max_iterations: int = DEFAULT_PRECALC_ITERATIONS,
    backend: Optional[str] = None,
) -> CSRMatrix:
    """Approximate ``G`` via truncated CG on the local systems (§5).

    Cheap by construction: the returned values are order-of-magnitude
    estimates used exclusively by the filtering step.  Rows whose truncated
    solve produces a non-positive diagonal estimate fall back to a Jacobi
    guess (``1/sqrt(a_ii)`` on the diagonal, zeros elsewhere) — the filter
    then simply keeps that row's extension decisions conservative rather
    than aborting setup.

    ``backend`` resolves exactly as in :func:`compute_g`.  Kernel-registry
    names run the ``fsai_precalc`` kernel op — the truncated CG batched
    over the same identity-padded row-length groups as the exact setup,
    byte-identical across kernel backends (see
    :mod:`repro.kernels.precalc`).  The legacy names behave bit-for-bit
    as before; the op path agrees with them at the level that matters to
    §5 (the filtered pattern selected downstream), not bitwise — the
    legacy lockstep CG reduces in a different summation order.
    """
    _check_pattern(a, pattern)
    kind, resolved = _resolve_setup_backend(backend)
    label = resolved if isinstance(resolved, str) else resolved.name
    with trace.span(
        "fsai.precalc", rows=pattern.n_rows, nnz=pattern.nnz, backend=label
    ):
        if trace.enabled():
            trace.add_counter(
                "fsai.precalc_flops", setup_flops_precalc(pattern, max_iterations)
            )
        if kind == "kernel":
            assert isinstance(resolved, KernelBackend)
            lengths = _check_diagonals(pattern)
            with trace.span(
                "fsai_setup",
                backend=resolved.name,
                threads=resolved.setup_threads(),
                rows=pattern.n_rows,
                nnz=pattern.nnz,
                mode="precalc",
            ):
                data = resolved.fsai_precalc(
                    a, pattern, rtol=rtol,
                    max_iterations=max_iterations, lengths=lengths,
                )
            return CSRMatrix.from_pattern(pattern, data)
        if resolved == "reference":
            systems, rhs = gather_local_systems(a, pattern)
            solutions = solve_spd_approximate_batched(
                systems, rhs, rtol=rtol, max_iterations=max_iterations
            )
            diag = a.diagonal()
            data = np.empty(pattern.nnz)
            for i, sol in enumerate(solutions):
                lo, hi = pattern.indptr[i], pattern.indptr[i + 1]
                pivot = sol[-1]
                if pivot <= 0 or not np.isfinite(pivot):
                    fallback = np.zeros(hi - lo)
                    fallback[-1] = 1.0 / np.sqrt(diag[i]) if diag[i] > 0 else 1.0
                    data[lo:hi] = fallback
                else:
                    data[lo:hi] = sol / np.sqrt(pivot)
            return CSRMatrix.from_pattern(pattern, data)
        return _precalc_bucketed(a, pattern, rtol, max_iterations)


def setup_flops_direct(pattern: Pattern) -> int:
    """Flop estimate of the exact setup on ``pattern``.

    Per row of size ``k``: Cholesky ``k³/3`` + two triangular solves ``2k²``
    + gather/normalise ``O(k)``.  Feeds the §7.4 setup-overhead model.
    """
    k = pattern.row_lengths().astype(np.float64)
    return int(np.sum(k**3 / 3.0 + 2.0 * k**2 + 4.0 * k))


def setup_flops_precalc(
    pattern: Pattern, iterations: int = DEFAULT_PRECALC_ITERATIONS
) -> int:
    """Flop estimate of the truncated-CG precalculation on ``pattern``.

    Per row of size ``k``: ``min(iterations, k)`` CG steps (CG terminates in
    at most ``k`` steps on a ``k×k`` system, and the batched solver masks
    converged rows out), each a dense matvec ``2k²`` plus ``~8k`` of vector
    work.
    """
    k = pattern.row_lengths().astype(np.float64)
    steps = np.minimum(float(iterations), k)
    return int(np.sum(steps * (2.0 * k**2 + 8.0 * k)))
