"""Data series + ASCII renderings of the paper's figures (1-7).

Figures are returned as structured data (so tests and notebooks can consume
them) together with a plain-text rendering for terminal use — the library
has no plotting dependency by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.address import ArrayPlacement
from repro.experiments.campaign import CampaignResult
from repro.fsai.fillin import extend_pattern_cache_friendly, extension_entries
from repro.fsai.filtering import filter_extension_by_precalc
from repro.fsai.frobenius import precalculate_g
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "figure1_patterns",
    "render_pattern_ascii",
    "figure1",
    "BarSeries",
    "figure2_series",
    "render_bars",
    "Histogram",
    "figure3_histogram",
    "figure4_histogram",
    "figure7_histogram",
    "render_histogram",
]


# ----------------------------------------------------------------------
# Figure 1 — pattern extension example on a small matrix
# ----------------------------------------------------------------------
def figure1_patterns(
    a: CSRMatrix,
    placement: ArrayPlacement,
    *,
    filter_value: float = 0.01,
) -> Tuple[Pattern, Pattern, Pattern]:
    """The three stages of Figure 1: initial / extended / filtered pattern."""
    base = a.pattern.tril().with_full_diagonal()
    extended = extend_pattern_cache_friendly(base, placement, triangular="lower")
    g_approx = precalculate_g(a, extended)
    filtered = filter_extension_by_precalc(g_approx, base, filter_value)
    return base, extended, filtered


def render_pattern_ascii(
    pattern: Pattern,
    *,
    base: Optional[Pattern] = None,
    chars: str = ".#+",
) -> str:
    """Render a (small) pattern as an ASCII grid.

    ``chars`` = (absent, base entry, added entry); with ``base=None`` all
    entries use the base glyph.
    """
    mask = pattern.to_dense_mask()
    base_mask = base.to_dense_mask() if base is not None else mask
    rows = []
    for i in range(pattern.n_rows):
        row = []
        for j in range(pattern.n_cols):
            if not mask[i, j]:
                row.append(chars[0])
            elif base_mask[i, j]:
                row.append(chars[1])
            else:
                row.append(chars[2])
        rows.append("".join(row))
    return "\n".join(rows)


def figure1(a: CSRMatrix, placement: ArrayPlacement, *, filter_value: float = 0.01) -> str:
    """Full Figure 1 rendering: three labelled ASCII panels."""
    base, extended, filtered = figure1_patterns(
        a, placement, filter_value=filter_value
    )
    panels = [
        ("Initial lower-triangular pattern", render_pattern_ascii(base)),
        (
            f"Cache-friendly extension ({placement.line_bytes} B lines, "
            f"+{extension_entries(base, extended).nnz} entries)",
            render_pattern_ascii(extended, base=base),
        ),
        (
            f"Filtered pattern (filter={filter_value:g}, "
            f"+{extension_entries(base, filtered).nnz} entries kept)",
            render_pattern_ascii(filtered, base=base),
        ),
    ]
    return "\n\n".join(f"--- {title} ---\n{body}" for title, body in panels)


# ----------------------------------------------------------------------
# Figures 2 / 5 / 6 — per-matrix time decrease bars
# ----------------------------------------------------------------------
@dataclass
class BarSeries:
    """Per-matrix bar data: matrix ids and two improvement series."""

    ids: List[int]
    best_filter: List[float]
    common_filter: List[float]
    machine: str
    common_value: float


def figure2_series(
    campaign: CampaignResult, *, common_filter: float = 0.01
) -> BarSeries:
    """Figures 2/5/6 data: FSAIE(full) time decrease per matrix."""
    ids, best, common = [], [], []
    for r in campaign.results:
        ids.append(r.case.case_id)
        best.append(r.time_improvement(r.best_filter_run("fsaie_full")))
        common.append(r.time_improvement(r.get("fsaie_full", common_filter)))
    return BarSeries(
        ids=ids, best_filter=best, common_filter=common,
        machine=campaign.machine, common_value=common_filter,
    )


def render_bars(series: BarSeries, *, width: int = 50) -> str:
    """ASCII horizontal bars: one row per matrix, two marks per row."""
    lo = min(min(series.best_filter), min(series.common_filter), 0.0)
    hi = max(max(series.best_filter), max(series.common_filter), 1e-9)
    span = hi - lo if hi > lo else 1.0

    def bar(value: float) -> str:
        pos = int(round((value - lo) / span * (width - 1)))
        cells = ["-"] * width
        zero = int(round((0.0 - lo) / span * (width - 1)))
        cells[zero] = "|"
        cells[pos] = "#"
        return "".join(cells)

    lines = [
        f"Time decrease of FSAIE(full) vs FSAI on {series.machine} "
        f"(#: best filter; range {lo:.1f}%..{hi:.1f}%)"
    ]
    for cid, b, c in zip(series.ids, series.best_filter, series.common_filter):
        lines.append(f"{cid:>3} {bar(b)} best={b:6.2f}%  f={series.common_value:g}: {c:6.2f}%")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 3 / 4 / 7 — histograms
# ----------------------------------------------------------------------
@dataclass
class Histogram:
    """A labelled multi-series histogram over common bin edges."""

    edges: np.ndarray
    counts: Dict[str, np.ndarray]
    title: str
    xlabel: str
    median: Dict[str, float]


def _build_histogram(
    series: Dict[str, Sequence[float]],
    title: str,
    xlabel: str,
    *,
    n_bins: int = 10,
) -> Histogram:
    allvals = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    lo, hi = float(allvals.min()), float(allvals.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    counts = {
        k: np.histogram(np.asarray(list(v), dtype=float), bins=edges)[0]
        for k, v in series.items()
    }
    median = {k: float(np.median(np.asarray(list(v)))) for k, v in series.items()}
    return Histogram(edges=edges, counts=counts, title=title, xlabel=xlabel, median=median)


def figure3_histogram(campaign: CampaignResult, *, n_bins: int = 10) -> Histogram:
    """Figure 3: L1 misses on the multiplied vector per ``G`` nnz.

    Requires a campaign run with ``include_random_baseline=True``.
    """
    series = {
        "G_FSAI": [r.baseline.x_misses_per_g_nnz for r in campaign.results],
        "G_FSAIE(full)": [
            r.get("fsaie_full", 0.01).x_misses_per_g_nnz for r in campaign.results
        ],
        "G_random": [
            r.get("fsaie_random", 0.01).x_misses_per_g_nnz for r in campaign.results
        ],
    }
    return _build_histogram(
        series,
        title=f"L1 misses on p per G nnz in G^T G p ({campaign.machine})",
        xlabel="misses / nnz(G)",
        n_bins=n_bins,
    )


def figure4_histogram(campaign: CampaignResult, *, n_bins: int = 10) -> Histogram:
    """Figure 4: modelled Gflop/s of the ``G^T G p`` operation."""
    series = {
        "G_FSAI": [r.baseline.gflops for r in campaign.results],
        "G_FSAIE(full)": [
            r.get("fsaie_full", 0.01).gflops for r in campaign.results
        ],
        "G_random": [
            r.get("fsaie_random", 0.01).gflops for r in campaign.results
        ],
    }
    return _build_histogram(
        series,
        title=f"Gflop/s of the G^T G p operation ({campaign.machine})",
        xlabel="Gflop/s",
        n_bins=n_bins,
    )


def figure7_histogram(
    campaigns: Sequence[CampaignResult], *, n_bins: int = 10
) -> Histogram:
    """Figure 7: per-architecture histogram of best-filter time improvement."""
    series = {
        camp.machine: [
            r.time_improvement(r.best_filter_run("fsaie_full"))
            for r in camp.results
        ]
        for camp in campaigns
    }
    return _build_histogram(
        series,
        title="Time improvement of FSAIE(full), best filter per matrix",
        xlabel="time improvement %",
        n_bins=n_bins,
    )


def render_histogram(hist: Histogram, *, width: int = 40) -> str:
    """ASCII rendering: one block per series, one bar per bin."""
    peak = max(int(c.max()) for c in hist.counts.values()) or 1
    lines = [hist.title]
    for name, counts in hist.counts.items():
        lines.append(f"\n  {name}  (median {hist.median[name]:.3g})")
        for b in range(len(counts)):
            bar = "#" * int(round(counts[b] / peak * width))
            lines.append(
                f"  [{hist.edges[b]:>9.3g}, {hist.edges[b + 1]:>9.3g}) "
                f"{counts[b]:>3d} {bar}"
            )
    lines.append(f"\n  x-axis: {hist.xlabel}")
    return "\n".join(lines)
