"""Table 3 experiment: standard post-filtering vs precalculation filtering.

Both flows start from the *same* cache-friendly extended pattern and the
same filter value; they differ exactly as §5 describes:

* **proposed** — precalculate an approximate ``G``, drop weak extension
  entries from the pattern, recompute the exact ``G`` on the filtered
  pattern (Frobenius-minimal on the final pattern);
* **standard** — compute the exact ``G`` on the extended pattern, drop its
  weak extension entries, rescale rows (Alg. 1 step 4; *not* minimal).

The paper reports the result in iterations because the final entry counts
match; we additionally record both entry counts to verify that premise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arch.address import ArrayPlacement
from repro.collection.suite import MatrixCase
from repro.experiments.runner import make_rhs
from repro.fsai.extended import setup_fsaie_sp
from repro.fsai.fillin import extend_pattern_cache_friendly
from repro.fsai.filtering import standard_post_filter
from repro.fsai.frobenius import compute_g
from repro.fsai.patterns import fsai_initial_pattern
from repro.fsai.precond import FSAIApplication
from repro.solvers.cg import pcg
from repro.sparse.csr import CSRMatrix

__all__ = ["FilteringComparison", "compare_filtering_strategies", "table3_rows"]


@dataclass
class FilteringComparison:
    """Outcome of both filtering flows on one matrix at one filter value."""

    case_name: str
    filter_value: float
    iters_precalc: int
    iters_standard: int
    converged_precalc: bool
    converged_standard: bool
    nnz_precalc: int
    nnz_standard: int

    @property
    def iter_increase_pct(self) -> float:
        """Extra iterations the standard flow needs, in percent."""
        if self.iters_precalc == 0:
            return 0.0
        return 100.0 * (self.iters_standard - self.iters_precalc) / self.iters_precalc


def compare_filtering_strategies(
    a: CSRMatrix,
    placement: ArrayPlacement,
    filter_value: float,
    *,
    case_name: str = "?",
    rhs_seed: int = 2021,
    rtol: float = 1e-8,
    max_iterations: int = 10_000,
) -> FilteringComparison:
    """Run both flows on one matrix and solve with each preconditioner."""
    b = make_rhs(a, rhs_seed)
    # Proposed flow (§5) — exactly what setup_fsaie_sp does.
    proposed = setup_fsaie_sp(a, placement, filter_value=filter_value)
    res_p = pcg(
        a, b, preconditioner=proposed.application,
        rtol=rtol, max_iterations=max_iterations, record_history=False,
    )
    # Standard flow (Alg. 1 step 4) on the same extension.
    base = fsai_initial_pattern(a)
    extended = extend_pattern_cache_friendly(base, placement, triangular="lower")
    g_exact = compute_g(a, extended)
    g_std = standard_post_filter(g_exact, a, filter_value, base=base)
    res_s = pcg(
        a, b, preconditioner=FSAIApplication(g_std),
        rtol=rtol, max_iterations=max_iterations, record_history=False,
    )
    return FilteringComparison(
        case_name=case_name,
        filter_value=filter_value,
        iters_precalc=res_p.iterations,
        iters_standard=res_s.iterations,
        converged_precalc=res_p.converged,
        converged_standard=res_s.converged,
        nnz_precalc=proposed.final_pattern.nnz,
        nnz_standard=g_std.nnz,
    )


def table3_rows(
    cases: Sequence[MatrixCase],
    placement: ArrayPlacement,
    filters: Sequence[float] = (0.0, 0.001, 0.01, 0.1),
    *,
    max_iterations: int = 10_000,
) -> List[tuple]:
    """Aggregate rows ``(filter, avg_increase, highest_increase)``.

    Following the paper's footnote, matrices whose *standard* flow fails to
    converge are excluded from that filter's statistics (their increase is
    unbounded).
    """
    rows = []
    for f in filters:
        increases = []
        for case in cases:
            a = case.build()
            cmp = compare_filtering_strategies(
                a, placement, f, case_name=case.name,
                max_iterations=max_iterations,
            )
            if not cmp.converged_standard and cmp.converged_precalc:
                continue  # paper footnote 1: excluded from the table
            increases.append(cmp.iter_increase_pct)
        arr = np.asarray(increases) if increases else np.zeros(1)
        rows.append((f, float(arr.mean()), float(arr.max())))
    return rows
