"""Model-sensitivity analysis.

The reproduction substitutes measured wall-clock with a modelled time
(DESIGN.md §2), which introduces two free parameters: the cache-capacity
scale restoring paper-like footprint/L1 ratios, and the random-access
penalty in the roofline.  A reproduction claim is only credible if the
paper's *qualitative* conclusions do not depend on where exactly those
knobs sit — this module sweeps them and summarises whether each headline
shape survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


import repro.perf.costmodel as costmodel_mod
from repro.experiments.campaign import run_campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import filter_sweep_stats

__all__ = ["SensitivityPoint", "sweep_model_parameters", "render_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline metrics at one (cache_scale, penalty) setting."""

    cache_scale: float
    random_access_penalty: float
    avg_time_best_full: float
    avg_time_best_sp: float
    avg_time_f0_full: float
    avg_iters_f0_full: float

    @property
    def shapes_hold(self) -> bool:
        """The three penalty/scale-independent conclusions:

        1. FSAIE(full) improves average time at the best filter;
        2. FSAIE(full) >= FSAIE(sp) at the best filter;
        3. filter 0.0 underperforms the best filter.
        """
        return (
            self.avg_time_best_full > 0
            and self.avg_time_best_full >= self.avg_time_best_sp - 1.0
            and self.avg_time_f0_full < self.avg_time_best_full
        )


class _PenaltyOverride:
    """Context manager temporarily overriding the module-level penalty.

    The penalty is read at CostModel construction; the campaign constructs
    its models inside ``run_campaign``, so a scoped module-attribute
    override is the cleanest hook that doesn't thread one experimental knob
    through every API layer.
    """

    def __init__(self, value: float) -> None:
        self.value = value
        self._saved: Optional[float] = None

    def __enter__(self):
        self._saved = costmodel_mod.RANDOM_ACCESS_PENALTY
        costmodel_mod.RANDOM_ACCESS_PENALTY = self.value
        return self

    def __exit__(self, *exc):
        costmodel_mod.RANDOM_ACCESS_PENALTY = self._saved
        return False


def sweep_model_parameters(
    case_ids: Sequence[int],
    *,
    cache_scales: Sequence[float] = (0.25, 0.125, 0.0625),
    penalties: Sequence[float] = (4.0, 8.0, 16.0),
    machine: str = "skylake",
) -> List[SensitivityPoint]:
    """Run the campaign grid over the model-parameter sweep."""
    points: List[SensitivityPoint] = []
    for scale in cache_scales:
        for penalty in penalties:
            with _PenaltyOverride(penalty):
                cfg = ExperimentConfig(machine=machine, cache_scale=scale)
                camp = run_campaign(cfg, case_ids=case_ids)
            fu = filter_sweep_stats(camp, "fsaie_full")
            sp = filter_sweep_stats(camp, "fsaie_sp")
            points.append(
                SensitivityPoint(
                    cache_scale=scale,
                    random_access_penalty=penalty,
                    avg_time_best_full=fu["best"].avg_time,
                    avg_time_best_sp=sp["best"].avg_time,
                    avg_time_f0_full=fu["0"].avg_time,
                    avg_iters_f0_full=fu["0"].avg_iterations,
                )
            )
    return points


def render_sensitivity(points: Sequence[SensitivityPoint]) -> str:
    """Text table of the sweep with a holds/breaks verdict per point."""
    lines = [
        "Model-parameter sensitivity (FSAIE avg improvements vs FSAI)",
        f"{'scale':>7} {'penalty':>8} {'best full %':>12} {'best sp %':>10} "
        f"{'f=0 full %':>11} {'shapes':>7}",
    ]
    for p in points:
        lines.append(
            f"{p.cache_scale:>7g} {p.random_access_penalty:>8g} "
            f"{p.avg_time_best_full:>12.2f} {p.avg_time_best_sp:>10.2f} "
            f"{p.avg_time_f0_full:>11.2f} "
            f"{'hold' if p.shapes_hold else 'BREAK':>7}"
        )
    n_hold = sum(p.shapes_hold for p in points)
    lines.append(f"shapes hold at {n_hold}/{len(points)} parameter points")
    return "\n".join(lines)
