"""Parallel fault-tolerant campaign orchestrator with checkpoint/resume.

The paper's evaluation (§7) is a sweep of independent per-matrix
experiments — exactly the shape that parallelises at case granularity.
This module turns :func:`~repro.experiments.campaign.run_campaign` from a
strictly sequential in-process loop into a sharded, supervised execution:

* **Sharding** — each :class:`~repro.collection.suite.MatrixCase` becomes
  one task, dispatched to a pool of ``jobs`` worker *processes* (one
  process per case, so a crashed or wedged case can be killed without
  poisoning a long-lived worker).  Tasks are issued in
  longest-processing-time-first order via the static cost model in
  :func:`repro.parallel.cost.order_cases_by_cost`, which bounds makespan
  inflation from stragglers.
* **Isolation** — a case that raises is captured as a :class:`CaseFailure`
  (exception type, message, full traceback) instead of aborting the sweep;
  a case that exceeds ``timeout`` seconds is killed; a case whose worker
  dies (segfault, OOM kill) is recorded as a crash.  Every failure mode
  goes through the same bounded retry-with-backoff path first.
* **Checkpointing** — completed :class:`~repro.experiments.runner.CaseResult`
  records are appended to per-worker-slot JSONL shard files
  (``shard-NN.jsonl``) in ``checkpoint_dir`` the moment they finish, keyed
  by ``(machine, case_id, config_hash)``.  An interrupted campaign resumed
  with ``resume=True`` skips every already-checkpointed key and recomputes
  nothing.
* **Deterministic merge** — results are sorted by case id into the same
  :class:`~repro.experiments.campaign.CampaignResult` the sequential
  runner produces, so ``tables.py`` / ``figures.py`` / ``report.py`` are
  unchanged consumers and an orchestrated quick campaign is equal to the
  sequential one (asserted in ``tests/experiments/test_orchestrator.py``).

See ``docs/campaign_orchestration.md`` for the checkpoint format and the
nightly-pipeline wiring.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro import trace
from repro.collection.suite import MatrixCase, get_case, suite72
from repro.errors import CampaignIncompleteError, ConfigurationError
from repro.experiments.campaign import CampaignResult
from repro.experiments.runner import CaseResult, ExperimentConfig, run_case
from repro.fsai.registry import get_method
from repro.kernels import ENV_VAR as KERNEL_BACKEND_ENV_VAR
from repro.kernels import get_backend
from repro.parallel.cost import estimate_case_seconds, order_cases_by_cost
from repro.parallel.threadbudget import apply_thread_budget, thread_budget_env
from repro.perf.metrics import OrchestrationMetrics

__all__ = [
    "CHECKPOINT_VERSION",
    "CaseFailure",
    "OrchestratorResult",
    "run_campaign_parallel",
    "load_checkpoints",
    "checkpoint_key",
    "require_complete",
]

#: Bumped whenever the shard-record shape changes; mismatched records are
#: ignored on resume (recomputed, never misread).
CHECKPOINT_VERSION = 1

#: How often (seconds) the scheduler polls worker pipes.
_POLL_SECONDS = 0.02


# ----------------------------------------------------------------------
# Failure + result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaseFailure:
    """One case that exhausted its retry budget.

    ``kind`` is ``"error"`` (the case raised), ``"timeout"`` (killed after
    ``timeout`` seconds) or ``"crash"`` (the worker process died without
    reporting, e.g. a segfault or OOM kill); ``traceback`` carries the full
    worker-side trace for ``"error"`` and a synthesised one otherwise.
    """

    case_id: int
    case_name: str
    machine: str
    config_hash: str
    kind: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    elapsed_seconds: float

    def summary(self) -> str:
        return (
            f"[{self.machine}] case {self.case_id} ({self.case_name}) "
            f"{self.kind} after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "case_id": self.case_id,
            "case_name": self.case_name,
            "machine": self.machine,
            "config_hash": self.config_hash,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CaseFailure":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class OrchestratorResult:
    """Outcome of one orchestrated campaign: merged results + diagnostics."""

    campaign: CampaignResult
    failures: List[CaseFailure] = field(default_factory=list)
    metrics: Optional[OrchestrationMetrics] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        m = self.metrics
        lines = [
            f"machine            {self.campaign.machine}",
            f"cases completed    {len(self.campaign.results)}",
            f"case failures      {len(self.failures)}",
        ]
        if m is not None:
            lines += [
                f"workers            {m.jobs}",
                f"checkpoint-skipped {m.cases_skipped}",
                f"retries            {m.retries}",
                f"wall seconds       {m.wall_seconds:.2f}",
                f"throughput         {m.cases_per_second:.2f} cases/s",
            ]
        lines += [f"FAILED  {f.summary()}" for f in self.failures]
        return lines


def require_complete(result: OrchestratorResult) -> OrchestratorResult:
    """Raise :class:`CampaignIncompleteError` if any case failed."""
    if result.failures:
        detail = "\n".join(f.summary() for f in result.failures)
        raise CampaignIncompleteError(
            f"{len(result.failures)} case(s) failed in the "
            f"{result.campaign.machine} campaign:\n{detail}",
            result.failures,
        )
    return result


# ----------------------------------------------------------------------
# Checkpoint shards
# ----------------------------------------------------------------------
def checkpoint_key(machine: str, case_id: int, config_hash: str) -> Tuple[str, int, str]:
    """The identity under which a completed case is checkpointed."""
    return (machine, case_id, config_hash)


def _shard_path(checkpoint_dir: Path, slot: int) -> Path:
    return checkpoint_dir / f"shard-{slot:02d}.jsonl"


def _append_jsonl(path: Path, record: Dict[str, object]) -> None:
    # One open/write/close per record: a killed orchestrator loses at most
    # the line being written, and `json.loads` skips a torn tail on resume.
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")


def load_checkpoints(
    checkpoint_dir: Union[str, Path],
    config: ExperimentConfig,
    *,
    case_ids: Optional[Iterable[int]] = None,
) -> Dict[int, CaseResult]:
    """Completed cases recorded in ``checkpoint_dir`` for this config.

    Scans every ``shard-*.jsonl`` file; records are kept only when their
    ``(machine, case_id, config_hash)`` key matches ``config`` (and
    ``case_ids``, when given).  Malformed lines — e.g. the torn tail of a
    killed run — and version-mismatched records are skipped silently:
    resume must never be more fragile than recomputing.
    """
    checkpoint_dir = Path(checkpoint_dir)
    wanted = None if case_ids is None else set(case_ids)
    cfg_hash = config.config_hash()
    done: Dict[int, CaseResult] = {}
    for shard in sorted(checkpoint_dir.glob("shard-*.jsonl")):
        for line in shard.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("version") != CHECKPOINT_VERSION:
                    continue
                if record.get("machine") != config.machine:
                    continue
                if record.get("config_hash") != cfg_hash:
                    continue
                case_id = int(record["case_id"])
                if wanted is not None and case_id not in wanted:
                    continue
                done[case_id] = CaseResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError, ConfigurationError):
                continue
    return done


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _default_case_runner(case: MatrixCase, config: ExperimentConfig) -> CaseResult:
    return run_case(case, config)


def _worker_main(conn, case_runner, case, config, tracing=False,
                 kernel_backend=None, thread_env=None) -> None:
    """Run one case and report ``("ok", dict)`` or ``("error", dict)``.

    With ``tracing=True`` the case runs under a fresh per-worker collector;
    :func:`~repro.experiments.runner.run_case` attaches the span tree to
    the result, so it crosses the process boundary inside the result dict
    (and from there rides the JSONL checkpoint shards unchanged).

    ``kernel_backend`` is the backend name the *parent* resolved; pinning
    it into ``$REPRO_KERNEL_BACKEND`` here makes the worker solve with the
    same kernels regardless of start method — a fork inherits the parent's
    environment but not a ``use_backend(...)`` context override, and a
    spawn inherits neither.

    ``thread_env`` is the parent-computed thread budget
    (:func:`repro.parallel.threadbudget.thread_budget_env`): applied before
    the case runs so ``workers × threads`` never oversubscribes the
    machine, whatever threaded backend the case selects.
    """
    try:
        if kernel_backend is not None:
            os.environ[KERNEL_BACKEND_ENV_VAR] = kernel_backend
        if thread_env:
            apply_thread_budget(thread_env)
        if tracing:
            with trace.collecting():
                result = case_runner(case, config)
        else:
            result = case_runner(case, config)
        payload = ("ok", result.to_dict())
    except BaseException as exc:  # noqa: BLE001 — isolation is the point
        payload = (
            "error",
            {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        )
    try:
        conn.send(payload)
    finally:
        conn.close()


def _try_recv(conn):
    """Receive a worker message, or ``None`` on bare EOF (worker died).

    ``Connection.poll()`` returns True at end-of-stream too, so a readable
    pipe does not guarantee a payload.
    """
    try:
        return conn.recv()
    except (EOFError, OSError):
        return None


def _mp_context():
    # fork starts workers in milliseconds and keeps test-injected runners
    # picklable-by-inheritance; fall back to the platform default elsewhere.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
@dataclass
class _Task:
    case: MatrixCase
    attempt: int = 1
    ready_at: float = 0.0


@dataclass
class _Slot:
    task: _Task
    process: object
    conn: object
    started: float
    deadline: Optional[float]


class _ProgressReporter:
    """Per-worker heartbeats + cases/sec + cost-weighted ETA lines."""

    def __init__(self, sink, machine: str, total_cases: int,
                 heartbeat_seconds: float) -> None:
        self._sink = sink
        self._machine = machine
        self._total = total_cases
        self._heartbeat = heartbeat_seconds
        self._t0 = time.monotonic()
        self._last_beat = self._t0
        self._done = 0
        self._failed = 0
        self._done_cost = 0.0
        self._remaining_cost = 0.0

    def emit(self, text: str) -> None:
        if self._sink is not None:
            self._sink(f"[{self._machine}] {text}")

    def set_workload(self, cases: Iterable[MatrixCase]) -> None:
        self._remaining_cost = sum(estimate_case_seconds(c) for c in cases)

    def _eta(self) -> str:
        elapsed = time.monotonic() - self._t0
        if self._done_cost <= 0.0 or elapsed <= 0.0:
            return "eta ?"
        rate = self._done_cost / elapsed
        return f"eta ~{self._remaining_cost / rate:.0f}s"

    def case_done(self, slot: int, case: MatrixCase, seconds: float,
                  attempt: int) -> None:
        self._done += 1
        cost = estimate_case_seconds(case)
        self._done_cost += cost
        self._remaining_cost = max(0.0, self._remaining_cost - cost)
        elapsed = time.monotonic() - self._t0
        rate = self._done / elapsed if elapsed > 0 else 0.0
        self.emit(
            f"{self._done + self._failed}/{self._total} {case.name} "
            f"ok in {seconds:.2f}s (w{slot}, attempt {attempt}) | "
            f"{rate:.2f} cases/s | {self._eta()} | failures {self._failed}"
        )

    def case_retry(self, case: MatrixCase, attempt: int, kind: str,
                   delay: float) -> None:
        self.emit(
            f"{case.name} attempt {attempt} {kind} — retrying in {delay:.1f}s"
        )

    def case_failed(self, failure: CaseFailure) -> None:
        self._failed += 1
        cost = estimate_case_seconds(get_case(failure.case_id))
        self._remaining_cost = max(0.0, self._remaining_cost - cost)
        self.emit(
            f"{self._done + self._failed}/{self._total} "
            f"FAILED {failure.case_name}: {failure.error_type}: "
            f"{failure.message} ({failure.kind}, "
            f"{failure.attempts} attempts)"
        )

    def skipped(self, n: int) -> None:
        if n:
            self.emit(f"resume: skipping {n} checkpointed case(s)")

    def maybe_heartbeat(self, slots: Dict[int, _Slot]) -> None:
        now = time.monotonic()
        if now - self._last_beat < self._heartbeat:
            return
        self._last_beat = now
        busy = [
            f"w{i} {s.task.case.name} {now - s.started:.1f}s"
            for i, s in sorted(slots.items())
        ]
        self.emit(
            f"heartbeat {now - self._t0:.0f}s: "
            f"{'; '.join(busy) if busy else 'all workers idle'} | "
            f"{self._done}/{self._total} done, {self._failed} failed"
        )


def run_campaign_parallel(
    config: Optional[ExperimentConfig] = None,
    *,
    case_ids: Optional[Iterable[int]] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff_seconds: float = 1.0,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    heartbeat_seconds: float = 30.0,
    case_runner: Optional[Callable[[MatrixCase, ExperimentConfig], CaseResult]] = None,
    trace_spans: Optional[bool] = None,
) -> OrchestratorResult:
    """Run the campaign sharded across ``jobs`` worker processes.

    Parameters
    ----------
    config, case_ids:
        As in :func:`~repro.experiments.campaign.run_campaign`.
    jobs:
        Worker-process count; defaults to ``os.cpu_count()`` capped at the
        number of cases.  ``jobs=1`` still runs through the supervisor, so
        timeout/retry/checkpoint semantics are identical at any width.
    timeout:
        Per-case wall-clock budget in seconds; an over-budget worker is
        killed and the case retried.  ``None`` disables the limit.
    retries:
        Extra attempts after the first failure/timeout/crash (so a case
        runs at most ``retries + 1`` times).
    backoff_seconds:
        Linear backoff: attempt *k*'s re-dispatch waits ``backoff * k``.
    checkpoint_dir:
        Directory for JSONL shard files; created if missing.  ``None``
        disables checkpointing.
    resume:
        Skip cases already checkpointed under this config's
        ``(machine, case_id, config_hash)`` key.
    progress:
        Optional sink for progress/heartbeat lines (e.g. ``print``).
    case_runner:
        Module-level ``(case, config) -> CaseResult`` override, used by
        tests to inject failures/timeouts; defaults to
        :func:`~repro.experiments.runner.run_case`.
    trace_spans:
        Run each case under a worker-side trace collector so every merged
        :class:`CaseResult` carries its span tree (``trace_summary``).
        Defaults to the caller's own tracing state (``trace.enabled()``),
        so an orchestrated campaign inside ``trace.collecting()`` traces
        end to end; the parent additionally records one
        ``orchestrator.case`` event per completed case.
    """
    config = config or ExperimentConfig()
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    cases: List[MatrixCase] = (
        suite72() if case_ids is None else [get_case(i) for i in case_ids]
    )
    if jobs is None:
        jobs = min(os.cpu_count() or 1, max(1, len(cases)))
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    runner = case_runner or _default_case_runner
    if trace_spans is None:
        trace_spans = trace.enabled()
    # Resolve the kernel backend once in the parent (honouring any active
    # use_backend(...) override) and propagate the *name* to every worker.
    kernel_backend = get_backend().name
    # Thread-budget policy: jobs × per-worker threads ≤ cores, exported to
    # every worker so threaded setup kernels never oversubscribe the node.
    thread_env = thread_budget_env(jobs)
    cfg_hash = config.config_hash()
    ckpt_path: Optional[Path] = None
    if checkpoint_dir is not None:
        ckpt_path = Path(checkpoint_dir)
        ckpt_path.mkdir(parents=True, exist_ok=True)

    reporter = _ProgressReporter(
        progress, config.machine, len(cases), heartbeat_seconds
    )

    completed: Dict[int, CaseResult] = {}
    skipped = 0
    if resume and ckpt_path is not None:
        completed = load_checkpoints(
            ckpt_path, config, case_ids=[c.case_id for c in cases]
        )
        skipped = len(completed)
        reporter.skipped(skipped)

    # Filter-sweeping methods run once per filter; global/baseline methods
    # once per case; plus the FSAI baseline itself.
    n_setups = 1 + sum(
        len(config.filters) if get_method(m).uses_filter else 1
        for m in config.methods
    )
    todo = [
        c for c in order_cases_by_cost(cases, n_setups=n_setups)
        if c.case_id not in completed
    ]
    reporter.set_workload(todo)

    ctx = _mp_context()
    pending: List[_Task] = [_Task(case=c) for c in todo]
    slots: Dict[int, _Slot] = {}
    free_slots = list(range(min(jobs, max(1, len(pending)))))
    failures: List[CaseFailure] = []
    retry_count = 0
    t0 = time.monotonic()

    def launch(slot: int, task: _Task) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, runner, task.case, config, trace_spans,
                  kernel_backend, thread_env),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        now = time.monotonic()
        slots[slot] = _Slot(
            task=task,
            process=proc,
            conn=parent_conn,
            started=now,
            deadline=None if timeout is None else now + timeout,
        )

    def reap(slot: int) -> _Slot:
        s = slots.pop(slot)
        free_slots.append(slot)
        s.conn.close()
        return s

    def kill(proc) -> None:
        proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - terminate() suffices here
            proc.kill()
            proc.join()

    def settle(slot: int, kind: str, error: Dict[str, str]) -> None:
        """A case attempt failed; retry with backoff or record the failure."""
        nonlocal retry_count
        s = reap(slot)
        task, now = s.task, time.monotonic()
        if task.attempt <= retries:
            retry_count += 1
            delay = backoff_seconds * task.attempt
            reporter.case_retry(task.case, task.attempt, kind, delay)
            pending.append(
                _Task(case=task.case, attempt=task.attempt + 1,
                      ready_at=now + delay)
            )
        else:
            failure = CaseFailure(
                case_id=task.case.case_id,
                case_name=task.case.name,
                machine=config.machine,
                config_hash=cfg_hash,
                kind=kind,
                error_type=error["error_type"],
                message=error["message"],
                traceback=error["traceback"],
                attempts=task.attempt,
                elapsed_seconds=now - s.started,
            )
            failures.append(failure)
            reporter.case_failed(failure)
            if ckpt_path is not None:
                _append_jsonl(
                    ckpt_path / f"failures-{config.machine}.jsonl",
                    {"version": CHECKPOINT_VERSION, **failure.to_dict()},
                )

    def finish(slot: int, result_dict: Dict[str, object]) -> None:
        s = reap(slot)
        task = s.task
        elapsed = time.monotonic() - s.started
        completed[task.case.case_id] = CaseResult.from_dict(result_dict)
        trace.event(
            "orchestrator.case",
            elapsed,
            case_id=task.case.case_id,
            slot=slot,
            attempt=task.attempt,
        )
        if ckpt_path is not None:
            _append_jsonl(
                _shard_path(ckpt_path, slot),
                {
                    "version": CHECKPOINT_VERSION,
                    "machine": config.machine,
                    "case_id": task.case.case_id,
                    "case_name": task.case.name,
                    "config_hash": cfg_hash,
                    "attempts": task.attempt,
                    "elapsed_seconds": elapsed,
                    "result": result_dict,
                },
            )
        reporter.case_done(slot, task.case, elapsed, task.attempt)

    try:
        while pending or slots:
            now = time.monotonic()
            # Dispatch: pending is kept in cost order; backoff delays only
            # hold back the retried case itself, never the queue.
            if free_slots:
                ready = [t for t in pending if t.ready_at <= now]
                for task in ready[: len(free_slots)]:
                    pending.remove(task)
                    launch(free_slots.pop(0), task)

            for slot in list(slots):
                s = slots[slot]
                if s.conn.poll() or not s.process.is_alive():
                    message = _try_recv(s.conn) if s.conn.poll() else None
                    s.process.join()
                    if message is None:  # died without reporting
                        settle(slot, "crash", {
                            "error_type": "WorkerCrash",
                            "message": (
                                f"worker exited with code {s.process.exitcode} "
                                "without reporting a result"
                            ),
                            "traceback": "",
                        })
                    elif message[0] == "ok":
                        finish(slot, message[1])
                    else:
                        settle(slot, "error", message[1])
                elif s.deadline is not None and now > s.deadline:
                    kill(s.process)
                    settle(slot, "timeout", {
                        "error_type": "CaseTimeout",
                        "message": f"exceeded per-case timeout of {timeout}s",
                        "traceback": "",
                    })

            reporter.maybe_heartbeat(slots)
            if slots or pending:  # idle tick while awaiting results/backoff
                time.sleep(_POLL_SECONDS)
    finally:
        for s in slots.values():  # interrupted: leave no orphans behind
            kill(s.process)
            s.conn.close()

    wall = time.monotonic() - t0
    campaign = CampaignResult(
        config=config,
        results=[completed[cid] for cid in sorted(completed)],
        elapsed_seconds=wall,
    )
    metrics = OrchestrationMetrics(
        jobs=jobs,
        wall_seconds=wall,
        cases_total=len(cases),
        cases_completed=len(completed) - skipped,
        cases_skipped=skipped,
        failures=len(failures),
        retries=retry_count,
    )
    if ckpt_path is not None:
        (ckpt_path / f"orchestration-{config.machine}.json").write_text(
            json.dumps(metrics.to_dict(), indent=2) + "\n"
        )
    return OrchestratorResult(
        campaign=campaign, failures=failures, metrics=metrics
    )
