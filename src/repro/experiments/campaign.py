"""Campaign sweeps over the 72-case suite."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.collection.suite import MatrixCase, get_case, suite72
from repro.experiments.runner import CaseResult, ExperimentConfig, run_case

__all__ = ["CampaignResult", "run_campaign", "quick_case_ids", "QUICK_CASE_IDS"]

#: A 12-case cross-section of the suite — one per domain and difficulty
#: band — used by tests and ``--quick`` benchmark runs.
QUICK_CASE_IDS = (5, 9, 12, 21, 24, 28, 37, 46, 54, 59, 65, 72)


def quick_case_ids() -> Sequence[int]:
    """Case ids of the quick cross-section subset."""
    return QUICK_CASE_IDS


@dataclass
class CampaignResult:
    """Results of one campaign sweep on one machine."""

    config: ExperimentConfig
    results: List[CaseResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def machine(self) -> str:
        return self.config.machine

    def __len__(self) -> int:
        return len(self.results)

    def by_id(self, case_id: int) -> CaseResult:
        for r in self.results:
            if r.case.case_id == case_id:
                return r
        raise KeyError(f"case id {case_id} not in campaign")


def run_campaign(
    config: Optional[ExperimentConfig] = None,
    *,
    case_ids: Optional[Iterable[int]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run the campaign over (a subset of) the suite.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the paper's §7.1 setup on the
        Skylake machine model.
    case_ids:
        1-based Table 1 row ids to include; ``None`` runs all 72.
    progress:
        Optional sink for per-case progress lines (e.g. ``print``).
    """
    config = config or ExperimentConfig()
    cases: List[MatrixCase] = (
        suite72() if case_ids is None else [get_case(i) for i in case_ids]
    )
    out = CampaignResult(config=config)
    t0 = time.perf_counter()
    for case in cases:
        t_case = time.perf_counter()
        out.results.append(run_case(case, config))
        if progress is not None:
            progress(
                f"[{config.machine}] {case.name}: "
                f"{time.perf_counter() - t_case:.2f}s"
            )
    out.elapsed_seconds = time.perf_counter() - t0
    return out
