"""Text renderings of the paper's tables (1, 2, 3, 4, 5, §7.4, §7.7).

Every function takes campaign results and returns a plain-text table whose
columns mirror the paper's.  Tables 4 and 5 are :func:`table2` evaluated on
POWER9 / A64FX campaigns, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.experiments.campaign import CampaignResult
from repro.perf.metrics import ImprovementStats, summarize_improvements

__all__ = [
    "table1",
    "table2",
    "filter_sweep_stats",
    "table3",
    "setup_overhead",
    "extension_stats",
]


def _fmt_sci(x: float) -> str:
    return f"{x:.2E}"


def table1(campaign: CampaignResult, *, filter_value: float = 0.01) -> str:
    """Table 1: per-matrix setup/solve/iters for the three methods.

    Columns: id, name, rows, nnz, then (setup, solve, iters) for FSAI and
    (setup, solve, iters, %nnz) for FSAIE(sp) and FSAIE(full) at the given
    filter.
    """
    lines = [
        f"Table 1 — per-matrix results on {campaign.machine} "
        f"(filter = {filter_value:g}; times are modelled seconds)",
        f"{'ID':>3} {'Matrix':22} {'rows':>6} {'nnz':>8} | "
        f"{'FSAI setup':>10} {'solve':>9} {'iter':>5} | "
        f"{'E(sp) setup':>11} {'solve':>9} {'iter':>5} {'%NNZ':>7} | "
        f"{'E(full) setup':>13} {'solve':>9} {'iter':>5} {'%NNZ':>7}",
    ]
    for r in campaign.results:
        sp = r.get("fsaie_sp", filter_value)
        fu = r.get("fsaie_full", filter_value)
        b = r.baseline
        lines.append(
            f"{r.case.case_id:>3} {r.case.name:22} {r.n:>6} {r.nnz:>8} | "
            f"{_fmt_sci(b.setup_seconds):>10} {_fmt_sci(b.solve_seconds):>9} {b.iterations:>5} | "
            f"{_fmt_sci(sp.setup_seconds):>11} {_fmt_sci(sp.solve_seconds):>9} {sp.iterations:>5} {sp.pct_nnz:>7.2f} | "
            f"{_fmt_sci(fu.setup_seconds):>13} {_fmt_sci(fu.solve_seconds):>9} {fu.iterations:>5} {fu.pct_nnz:>7.2f}"
        )
    return "\n".join(lines)


def filter_sweep_stats(
    campaign: CampaignResult, method: str
) -> Dict[str, ImprovementStats]:
    """Improvement statistics per filter value plus the best-filter row.

    Keys are ``"0"``, ``"0.001"``, ... and ``"best"``.
    """
    out: Dict[str, ImprovementStats] = {}
    for f in campaign.config.filters:
        its = [r.iter_improvement(r.get(method, f)) for r in campaign.results]
        tms = [r.time_improvement(r.get(method, f)) for r in campaign.results]
        out[f"{f:g}"] = summarize_improvements(its, tms)
    best_runs = [r.best_filter_run(method) for r in campaign.results]
    its = [r.iter_improvement(br) for r, br in zip(campaign.results, best_runs)]
    tms = [r.time_improvement(br) for r, br in zip(campaign.results, best_runs)]
    out["best"] = summarize_improvements(its, tms)
    return out


def table2(campaign: CampaignResult, *, title: str = "Table 2") -> str:
    """Tables 2/4/5: average iteration & time improvements per filter value.

    The machine is whatever the campaign ran on — Table 2 is Skylake,
    Table 4 POWER9, Table 5 A64FX.
    """
    lines = [f"{title} — improvements vs FSAI on {campaign.machine} "
             f"({len(campaign)} matrices)"]
    for method, label in (("fsaie_sp", "FSAIE(sp)"), ("fsaie_full", "FSAIE(full)")):
        if not any(m == method for (m, _) in campaign.results[0].runs):
            continue
        lines.append(f"\n  {label}")
        lines.append(
            f"  {'Filter':>8} {'Avg iter %':>10} {'Avg time %':>10} "
            f"{'Highest imp':>11} {'Highest deg':>11}"
        )
        for key, st in filter_sweep_stats(campaign, method).items():
            lines.append(
                f"  {key:>8} {st.avg_iterations:>10.2f} {st.avg_time:>10.2f} "
                f"{st.highest_improvement:>11.2f} {st.highest_degradation:>11.2f}"
            )
    return "\n".join(lines)


def table3(
    rows: Sequence[Tuple[float, float, float]],
) -> str:
    """Table 3: iteration increase of standard vs precalc filtering.

    ``rows`` are ``(filter_value, avg_iter_increase_pct, highest_pct)``
    tuples produced by the Table 3 experiment (see
    ``benchmarks/bench_table3_filtering.py``).
    """
    lines = [
        "Table 3 — iteration increase when the standard post-filtering is "
        "used instead of the proposed precalculation filtering (FSAIE(sp))",
        f"  {'Filter':>8} {'Avg iter inc %':>15} {'Highest iter inc %':>19}",
    ]
    for f, avg, high in rows:
        lines.append(f"  {f:>8g} {avg:>15.2f} {high:>19.2f}")
    return "\n".join(lines)


def setup_overhead(campaign: CampaignResult, *, filter_value: float = 0.01) -> str:
    """§7.4: setup-phase overhead of FSAIE(full) relative to FSAI."""
    ratios = []
    for r in campaign.results:
        fu = r.get("fsaie_full", filter_value)
        if r.baseline.setup_seconds > 0:
            ratios.append(100.0 * (fu.setup_seconds / r.baseline.setup_seconds - 1.0))
    arr = np.asarray(ratios)
    return (
        f"Setup overhead of FSAIE(full) (filter={filter_value:g}) vs FSAI on "
        f"{campaign.machine}: avg {arr.mean():.0f}%  median {np.median(arr):.0f}%  "
        f"max {arr.max():.0f}% over {len(arr)} matrices"
    )


def extension_stats(
    campaigns: Iterable[CampaignResult], *, filter_value: float = 0.01
) -> str:
    """§7.7: average %NNZ added by FSAIE(full) per architecture.

    The paper reports 61% on Skylake/POWER9 and 93% on A64FX at filter 0.01
    — the line-size-driven difference this experiment reproduces.
    """
    lines = [f"Extension size (FSAIE(full), filter={filter_value:g})"]
    for camp in campaigns:
        pcts = [r.get("fsaie_full", filter_value).pct_nnz for r in camp.results]
        arr = np.asarray(pcts)
        line_bytes = camp.config.machine_model().line_bytes
        lines.append(
            f"  {camp.machine:8s} ({line_bytes:>3d} B lines): "
            f"avg +{arr.mean():.1f}% entries  (median +{np.median(arr):.1f}%)"
        )
    return "\n".join(lines)
