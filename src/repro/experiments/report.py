"""EXPERIMENTS.md generation: run every experiment, record paper vs measured.

``python -m repro report`` (or ``repro-fsai report``) runs the complete
campaign on all three machine models and writes ``EXPERIMENTS.md`` with one
section per experiment of DESIGN.md §4.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

import numpy as np

from repro.arch.address import ArrayPlacement
from repro.collection.suite import get_case
from repro.experiments.campaign import CampaignResult, run_campaign
from repro.experiments.orchestrator import require_complete, run_campaign_parallel
from repro.experiments.figures import (
    figure1,
    figure2_series,
    figure3_histogram,
    figure4_histogram,
    figure7_histogram,
    render_histogram,
)
from repro.experiments.correlation import paper_correlations
from repro.experiments.filtering_compare import table3_rows
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import (
    extension_stats,
    filter_sweep_stats,
    setup_overhead,
    table1,
)
from repro.collection.generators.fem import wathen

__all__ = ["generate_report", "run_all_campaigns"]

#: Paper-reported Table 2/4/5 rows: (machine, method) -> {filter: (iter, time)}
PAPER_SWEEPS = {
    ("skylake", "fsaie_sp"): {
        "0": (12.40, 2.89), "0.001": (12.25, 5.99), "0.01": (11.76, 9.59),
        "0.1": (6.32, 5.54), "best": (11.45, 11.16),
    },
    ("skylake", "fsaie_full"): {
        "0": (18.41, -3.69), "0.001": (17.88, 8.68), "0.01": (16.71, 12.75),
        "0.1": (8.90, 8.90), "best": (16.60, 15.02),
    },
    ("power9", "fsaie_full"): {
        "0": (18.55, -14.24), "0.001": (17.96, 2.49), "0.01": (16.90, 10.25),
        "0.1": (8.99, 8.56), "best": (15.15, 12.94),
    },
    ("a64fx", "fsaie_full"): {
        "0": (27.81, -17.52), "0.001": (26.47, 14.93), "0.01": (23.98, 20.08),
        "0.1": (13.36, 13.76), "best": (24.91, 22.85),
    },
}

#: Paper Table 3 rows: filter -> (avg iter increase %, highest %).
PAPER_TABLE3 = {0.0: (0.0, 0.88), 0.001: (0.0, 1.95), 0.01: (1.63, 113.9), 0.1: (7.95, 114.96)}


def run_all_campaigns(
    *,
    case_ids: Optional[Sequence[int]] = None,
    progress=None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
) -> Dict[str, CampaignResult]:
    """Run the full sweep on all three machines (random baseline on SKX).

    With any of ``jobs``/``timeout``/``checkpoint_dir``/``resume`` set, each
    machine's sweep goes through the fault-tolerant orchestrator
    (:func:`repro.experiments.orchestrator.run_campaign_parallel`); all
    three machines share one checkpoint directory (records are keyed by
    machine).  A report needs every case, so any unrecovered
    :class:`~repro.experiments.orchestrator.CaseFailure` raises
    :class:`~repro.errors.CampaignIncompleteError`.
    """
    orchestrated = (
        jobs is not None or timeout is not None
        or checkpoint_dir is not None or resume
    )
    campaigns = {}
    for machine in ("skylake", "power9", "a64fx"):
        cfg = ExperimentConfig(
            machine=machine,
            include_random_baseline=(machine == "skylake"),
        )
        if orchestrated:
            outcome = run_campaign_parallel(
                cfg, case_ids=case_ids, jobs=jobs, timeout=timeout,
                retries=retries, checkpoint_dir=checkpoint_dir,
                resume=resume, progress=progress,
            )
            campaigns[machine] = require_complete(outcome).campaign
        else:
            campaigns[machine] = run_campaign(
                cfg, case_ids=case_ids, progress=progress
            )
    return campaigns


def _sweep_comparison(campaign: CampaignResult, method: str, label: str) -> str:
    """Measured vs paper for one Table 2/4/5 block."""
    paper = PAPER_SWEEPS.get((campaign.machine, method))
    measured = filter_sweep_stats(campaign, method)
    out = ["| filter | paper avg iter % | measured | paper avg time % | measured |",
           "|---|---|---|---|---|"]
    for key, st in measured.items():
        p = paper.get(key) if paper else None
        p_it = f"{p[0]:.2f}" if p else "—"
        p_tm = f"{p[1]:.2f}" if p else "—"
        out.append(
            f"| {key} | {p_it} | {st.avg_iterations:.2f} | {p_tm} | {st.avg_time:.2f} |"
        )
    return f"**{label}**\n\n" + "\n".join(out)


def generate_report(
    *,
    case_ids: Optional[Sequence[int]] = None,
    campaigns: Optional[Dict[str, CampaignResult]] = None,
    progress=None,
    include_table1: bool = True,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
) -> str:
    """Produce the full EXPERIMENTS.md text."""
    campaigns = campaigns or run_all_campaigns(
        case_ids=case_ids, progress=progress, jobs=jobs, timeout=timeout,
        retries=retries, checkpoint_dir=checkpoint_dir, resume=resume,
    )
    sky = campaigns["skylake"]
    buf = io.StringIO()
    w = buf.write

    w("# EXPERIMENTS — paper-reported vs measured\n\n")
    w("Reproduction of every table and figure of Laut/Borrell/Casas, "
      "HPDC 2021, on the synthetic suite + simulated machines "
      "(substitutions: DESIGN.md §2). `measured` numbers are modelled "
      "seconds (roofline over simulated cache traffic) around *real* PCG "
      "iteration counts; absolute values differ from the paper by design, "
      "shapes are the reproduction target (DESIGN.md §5).\n\n")
    w(f"Campaign: {len(sky.results)} matrices × methods (fsaie_sp, fsaie_full)"
      f" × filters (0, 0.001, 0.01, 0.1) × 3 machines.\n\n")

    # E-T2 / E-T4 / E-T5
    w("## E-T2 — Table 2 (Skylake filter sweep)\n\n")
    w(_sweep_comparison(sky, "fsaie_sp", "FSAIE(sp) on Skylake") + "\n\n")
    w(_sweep_comparison(sky, "fsaie_full", "FSAIE(full) on Skylake") + "\n\n")
    w("## E-T4 — Table 4 (POWER9)\n\n")
    w(_sweep_comparison(campaigns["power9"], "fsaie_full", "FSAIE(full) on POWER9") + "\n\n")
    w("## E-T5 — Table 5 (A64FX, 256 B lines)\n\n")
    w(_sweep_comparison(campaigns["a64fx"], "fsaie_full", "FSAIE(full) on A64FX") + "\n\n")

    # E-T1
    if include_table1:
        w("## E-T1 — Table 1 (per-matrix, Skylake, filter = 0.01)\n\n")
        w("```\n" + table1(sky) + "\n```\n\n")

    # E-T3
    w("## E-T3 — Table 3 (filtering strategies)\n\n")
    t3_cases = [get_case(i) for i in (sky.results[i].case.case_id for i in range(len(sky.results)))]
    rows = table3_rows(t3_cases, ArrayPlacement.aligned(64))
    w("| filter | paper avg inc % | measured | paper highest % | measured |\n")
    w("|---|---|---|---|---|\n")
    for f, avg, high in rows:
        p = PAPER_TABLE3[f]
        w(f"| {f:g} | {p[0]:.2f} | {avg:.2f} | {p[1]:.2f} | {high:.2f} |\n")
    w("\n")

    # E-F2 / E-F5 / E-F6
    for mkey, fig in (("skylake", "E-F2 — Figure 2"), ("power9", "E-F5 — Figure 5"),
                      ("a64fx", "E-F6 — Figure 6")):
        series = figure2_series(campaigns[mkey])
        arr = np.asarray(series.best_filter)
        w(f"## {fig} ({mkey} per-matrix time decrease)\n\n")
        w(f"best-filter improvement: mean {arr.mean():.2f}%, median "
          f"{np.median(arr):.2f}%, min {arr.min():.2f}%, max {arr.max():.2f}% "
          f"({(arr > 0).sum()}/{len(arr)} matrices improved)\n\n")

    # E-F3 / E-F4
    w("## E-F3 — Figure 3 (L1 misses on p per G nnz)\n\n")
    h3 = figure3_histogram(sky)
    w("medians: " + ", ".join(f"{k} = {v:.3f}" for k, v in h3.median.items()) + "\n\n")
    w("```\n" + render_histogram(h3) + "\n```\n\n")
    w("## E-F4 — Figure 4 (Gflop/s of G^T G p)\n\n")
    h4 = figure4_histogram(sky)
    w("medians: " + ", ".join(f"{k} = {v:.1f}" for k, v in h4.median.items()) + "\n\n")
    w("```\n" + render_histogram(h4) + "\n```\n\n")

    # E-F7
    w("## E-F7 — Figure 7 (per-architecture improvement histograms)\n\n")
    h7 = figure7_histogram(list(campaigns.values()))
    w("```\n" + render_histogram(h7) + "\n```\n\n")

    # E-S74
    w("## E-S74 — §7.4 setup overhead\n\n")
    w(setup_overhead(sky) + "\n\n")
    w("(paper: ~180% average overhead of FSAIE(full) at filter 0.01)\n\n")

    # E-A3
    w("## E-A3 — §7.7 extension size per architecture\n\n")
    w("```\n" + extension_stats(campaigns.values()) + "\n```\n\n")
    w("(paper: +61% entries on Skylake/POWER9, +93% on A64FX at filter 0.01)\n\n")

    # Suite-fidelity correlations
    w("## Suite fidelity — paper-vs-measured rank correlations\n\n")
    w("```\n" + paper_correlations(sky).render() + "\n```\n\n")
    w("(positive iteration-count correlation means the synthetic suite "
      "preserves the paper's per-matrix difficulty ordering; see "
      "repro.experiments.correlation)\n\n")

    # E-F1
    w("## E-F1 — Figure 1 (pattern extension example)\n\n")
    demo = wathen(4, 4, seed=3)
    w("```\n" + figure1(demo, ArrayPlacement.aligned(64)) + "\n```\n")
    w(_ADDENDUM)
    return buf.getvalue()


#: Deviations discussion appended to every generated report.
_ADDENDUM = """
## Addendum — deviations and their causes

Three systematic deviations from the paper, all traceable to the scaled
synthetic suite and the modelled-time substitution (DESIGN.md §2):

1. **Iteration improvements match closely; time improvements are smaller
   and the best common filter shifts from 0.01 to 0.1.**  Measured average
   iteration reductions track the paper within ~1-3 points at every filter
   and on every architecture (see E-T2/E-T4/E-T5).  The *time* columns are
   compressed because the suite matrices are ~50x smaller: extension
   entries on short stencil rows are a larger *fraction* of each row, so
   the per-iteration cost of keeping them is relatively higher than on
   SuiteSparse-scale matrices, moving the cost/benefit crossover one filter
   notch to the right.  The paper's qualitative claims (filter=0.0 degrades
   time despite maximal iteration gains; an intermediate filter is best;
   per-matrix best-filter beats any common value) all hold — see
   `benchmarks/bench_sensitivity.py` for their robustness across the model
   parameter grid.

2. **Setup overhead (E-S74) is orders of magnitude larger than the paper's
   ~180%.**  Same scale effect, cubed: baseline local systems here are
   k ~ 5 wide (vs ~30-60 in SuiteSparse), extended ones are 2-4x wider, and
   the local-solve cost grows as k^3.  The §7.4 *conclusion* — setup
   amortises over repeated solves — is demonstrated directly in
   `examples/cfd_time_stepping.py`.

3. **Skylake and POWER9 numbers are exactly equal** (the paper reports
   "very similar" with small alignment/roundoff differences).  Both models
   share 64 B lines and per-core L1 geometry, and the deterministic
   simulation eliminates the allocation-alignment noise real machines add;
   the alignment sensitivity the paper attributes the residual differences
   to is quantified in `benchmarks/bench_ablation_alignment.py`.

## Beyond-paper experiments (see DESIGN.md §4, E-A rows)

| bench | finding |
|---|---|
| `bench_ablation_two_step.py` | two-step transpose extension keeps higher G^T line utilisation than the §6 joint variant; joint never wins on simulated misses |
| `bench_ablation_reordering.py` | RCM restores the locality a shuffle destroys; the fill-in invariant holds in every ordering |
| `bench_parallel_scaling.py` | SpMV saturates modelled DRAM bandwidth near the paper's core counts; nnz-balanced partitions beat row-balanced on skewed matrices |
| `bench_dynamic_pattern.py` | the cache extension composes with FSPAI-style dynamic patterns (§8/§9 complementarity), at ~zero extra misses per entry |
| `bench_miss_ratio_curves.py` | stack-distance miss-ratio curves generalise Figure 3 to all cache capacities |
| `bench_wall_time_motivation.py` | Python wall time separates cache-aware from random patterns by only ~1.1x while simulation shows ~16x — the motivation for modelled time |
| `bench_sensitivity.py` | headline shapes hold across the (cache scale x penalty) model grid |
| `bench_ablation_sparse_level.py` | the extension helps at every a-priori pattern level N (Alg. 1 generality) |

Regenerate everything: `repro-fsai report -o EXPERIMENTS.md` (~1 h full) or
`pytest benchmarks/ --benchmark-only` (quick scope).
"""
