"""Paper-vs-measured correlation analysis.

Absolute iteration counts cannot match the paper (the suite is synthetic
and scaled), but a faithful suite should preserve the paper's *difficulty
ordering*: matrices the paper found hard should be hard here too, and the
per-matrix improvement structure should correlate.  This module computes
rank correlations between paper-reported and measured per-matrix
quantities — a quantitative honesty check on the suite substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.campaign import CampaignResult

__all__ = ["spearman", "CorrelationReport", "paper_correlations"]


def _ranks(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank)."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.float64)
    ranks[order] = np.arange(1, len(x) + 1)
    # Average tied groups.
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            ranks[order[i: j + 1]] = ranks[order[i: j + 1]].mean()
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation coefficient (from scratch, tie-aware)."""
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length sequences of length >= 2")
    rx, ry = _ranks(x), _ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx @ rx) * (ry @ ry))
    return float((rx @ ry) / denom) if denom > 0 else 0.0


@dataclass(frozen=True)
class CorrelationReport:
    """Rank correlations between paper-reported and measured quantities."""

    iterations_rho: float
    improvement_rho: float
    pct_nnz_rho: float
    n_matrices: int

    def render(self) -> str:
        return (
            "Paper-vs-measured rank correlations "
            f"({self.n_matrices} matrices):\n"
            f"  FSAI iteration counts:        rho = {self.iterations_rho:+.3f}\n"
            f"  FSAIE(full) iter improvement: rho = {self.improvement_rho:+.3f}\n"
            f"  FSAIE(full) %NNZ added:       rho = {self.pct_nnz_rho:+.3f}"
        )


def paper_correlations(
    campaign: CampaignResult, *, filter_value: float = 0.01
) -> CorrelationReport:
    """Correlate the campaign's per-matrix results with Table 1's numbers."""
    paper_iters: List[float] = []
    meas_iters: List[float] = []
    paper_imp: List[float] = []
    meas_imp: List[float] = []
    paper_pct: List[float] = []
    meas_pct: List[float] = []
    for r in campaign.results:
        p = r.case.paper
        full = r.get("fsaie_full", filter_value)
        paper_iters.append(p.fsai_iters)
        meas_iters.append(r.baseline.iterations)
        paper_imp.append(
            100.0 * (p.fsai_iters - p.full_iters) / p.fsai_iters
        )
        meas_imp.append(r.iter_improvement(full))
        paper_pct.append(p.full_pct_nnz)
        meas_pct.append(full.pct_nnz)
    return CorrelationReport(
        iterations_rho=spearman(paper_iters, meas_iters),
        improvement_rho=spearman(paper_imp, meas_imp),
        pct_nnz_rho=spearman(paper_pct, meas_pct),
        n_matrices=len(campaign.results),
    )
