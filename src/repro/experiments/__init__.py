"""Experiment harness.

Regenerates every table and figure of the paper's evaluation (§7) on the
synthetic suite + simulated machines:

* :mod:`~repro.experiments.runner` — one (matrix × method × filter ×
  machine) measurement;
* :mod:`~repro.experiments.campaign` — sweeps over the 72-case suite;
* :mod:`~repro.experiments.orchestrator` — parallel fault-tolerant
  campaign execution with per-case timeout/retry and JSONL
  checkpoint/resume;
* :mod:`~repro.experiments.tables` — Table 1/2/3/4/5 + §7.4/§7.7 text
  renderings;
* :mod:`~repro.experiments.figures` — Figure 1-7 data series and ASCII
  renderings;
* :mod:`~repro.experiments.report` — EXPERIMENTS.md generation
  (paper-reported vs measured, per experiment).
"""

from repro.experiments.runner import (
    ExperimentConfig,
    MethodRun,
    CaseResult,
    run_case,
)
from repro.experiments.campaign import CampaignResult, run_campaign, quick_case_ids
from repro.experiments.orchestrator import (
    CaseFailure,
    OrchestratorResult,
    load_checkpoints,
    require_complete,
    run_campaign_parallel,
)

__all__ = [
    "ExperimentConfig",
    "MethodRun",
    "CaseResult",
    "run_case",
    "CampaignResult",
    "run_campaign",
    "quick_case_ids",
    "CaseFailure",
    "OrchestratorResult",
    "load_checkpoints",
    "require_complete",
    "run_campaign_parallel",
]
