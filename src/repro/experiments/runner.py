"""Single-experiment runner: one matrix × method × filter × machine.

Responsibilities split exactly as in DESIGN.md §2: *iteration counts* come
from real PCG solves with the actually-computed preconditioners; *times* come
from the roofline cost model over simulated cache traffic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro import trace
from repro.arch.address import ArrayPlacement
from repro.arch.machine import MachineModel
from repro.arch.presets import get_machine
from repro.collection.suite import MatrixCase, get_case
from repro.errors import ConfigurationError
from repro.fsai.frobenius import resolve_setup_backend
from repro.fsai.extended import (
    FSAISetup,
    setup_fsai,
    setup_fsaie_full,
    setup_fsaie_random,
)
from repro.fsai.registry import get_method
from repro.kernels import get_backend
from repro.perf.costmodel import CostModel, KernelCost
from repro.solvers.cg import pcg
from repro.sparse.csr import CSRMatrix
from repro.trace import TraceSummary

__all__ = ["ExperimentConfig", "MethodRun", "CaseResult", "run_case", "make_rhs"]

#: Filter sweep of the paper's Tables 2/4/5.
PAPER_FILTERS: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.1)


@dataclass(frozen=True)
class ExperimentConfig:
    """Campaign-wide knobs (defaults reproduce the paper's §7.1 setup)."""

    machine: str = "skylake"
    filters: Tuple[float, ...] = PAPER_FILTERS
    methods: Tuple[str, ...] = ("fsaie_sp", "fsaie_full")
    rtol: float = 1e-8
    max_iterations: int = 10_000
    #: Cache-capacity scale restoring paper footprint/L1 ratios (DESIGN §2).
    cache_scale: float = 0.125
    rhs_seed: int = 2021
    precalc_rtol: float = 1e-2
    precalc_iterations: int = 20
    #: Sweep budget for the global iterative methods (``gsai_*``); the
    #: executed count per case lands in :attr:`MethodRun.sweeps`.
    global_sweeps: int = 30
    include_random_baseline: bool = False
    #: FSAI setup backend (``None`` = resolve via ``$REPRO_KERNEL_BACKEND``,
    #: then ``"auto"``); legacy names ``bucketed``/``reference`` select the
    #: LAPACK paths, anything else routes through the ``fsai_setup`` op.
    setup_backend: Optional[str] = None

    def machine_model(self) -> MachineModel:
        return get_machine(self.machine)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation (tuples become lists)."""
        return {
            "machine": self.machine,
            "filters": list(self.filters),
            "methods": list(self.methods),
            "rtol": self.rtol,
            "max_iterations": self.max_iterations,
            "cache_scale": self.cache_scale,
            "rhs_seed": self.rhs_seed,
            "precalc_rtol": self.precalc_rtol,
            "precalc_iterations": self.precalc_iterations,
            "global_sweeps": self.global_sweeps,
            "include_random_baseline": self.include_random_baseline,
            "setup_backend": self.setup_backend,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentConfig":
        d = dict(payload)
        d["filters"] = tuple(d["filters"])
        d["methods"] = tuple(d["methods"])
        # Pre-global-methods payloads (checkpoints, IPC from older shards)
        # lack the sweep budget; the historical behaviour is the default.
        d.setdefault("global_sweeps", cls.global_sweeps)
        return cls(**d)

    def config_hash(self) -> str:
        """Stable short digest identifying this configuration.

        Checkpoint records are keyed by ``(machine, case_id, config_hash)``
        so a resumed campaign never reuses results produced under different
        experiment knobs.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]


@dataclass
class MethodRun:
    """Measured + modelled outcome of one preconditioner on one matrix."""

    method: str
    filter_value: Optional[float]
    iterations: int
    converged: bool
    relative_residual: float
    setup_seconds: float
    solve_seconds: float
    g_nnz: int
    pct_nnz: float
    x_misses_per_g_nnz: float
    gflops: float
    #: Global-iteration sweeps actually executed (``None`` for the local
    #: Frobenius methods; threaded from :attr:`FSAISetup.sweeps`).
    sweeps: Optional[int] = None

    def __repr__(self) -> str:
        f = "-" if self.filter_value is None else f"{self.filter_value:g}"
        return (
            f"MethodRun({self.method}/f={f}: {self.iterations} iters, "
            f"solve={self.solve_seconds:.3e}s)"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "filter_value": self.filter_value,
            "iterations": self.iterations,
            "converged": self.converged,
            "relative_residual": self.relative_residual,
            "setup_seconds": self.setup_seconds,
            "solve_seconds": self.solve_seconds,
            "g_nnz": self.g_nnz,
            "pct_nnz": self.pct_nnz,
            "x_misses_per_g_nnz": self.x_misses_per_g_nnz,
            "gflops": self.gflops,
            "sweeps": self.sweeps,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MethodRun":
        # Older payloads predate ``sweeps``; the field default covers them.
        return cls(**payload)


@dataclass
class CaseResult:
    """All method runs for one matrix on one machine."""

    case: MatrixCase
    n: int
    nnz: int
    machine: str
    baseline: MethodRun
    runs: Dict[Tuple[str, Optional[float]], MethodRun] = field(
        default_factory=dict
    )
    #: Per-case span tree, set when the case ran under ``trace.collecting``
    #: (campaign artifacts then carry phase breakdowns; see docs/tracing.md).
    trace_summary: Optional[TraceSummary] = None
    #: Name of the kernel backend that actually ran the solves
    #: (``numpy``/``numba``/``reference``) — resolved *inside* the process
    #: that executed the case, so orchestrated campaigns record which
    #: implementation produced each result even across worker processes.
    kernel_backend: Optional[str] = None
    #: Concrete setup backend the FSAI local solves used, resolved the same
    #: way (inside the executing process, after env/auto resolution).
    setup_backend: Optional[str] = None

    def get(self, method: str, filter_value: Optional[float] = None) -> MethodRun:
        return self.runs[(method, filter_value)]

    def best_filter_run(self, method: str) -> MethodRun:
        """Run with the lowest modelled solve time for ``method``."""
        candidates = [r for (m, _), r in self.runs.items() if m == method]
        if not candidates:
            raise KeyError(f"no runs for method {method!r}")
        return min(candidates, key=lambda r: r.solve_seconds)

    def time_improvement(self, run: MethodRun) -> float:
        """Solve-time decrease vs the FSAI baseline, percent."""
        return 100.0 * (self.baseline.solve_seconds - run.solve_seconds) / self.baseline.solve_seconds

    def iter_improvement(self, run: MethodRun) -> float:
        """Iteration-count decrease vs the FSAI baseline, percent."""
        if self.baseline.iterations == 0:
            return 0.0
        return 100.0 * (self.baseline.iterations - run.iterations) / self.baseline.iterations

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation for checkpoint shards and IPC.

        The :class:`MatrixCase` is stored by id + name only — it is fully
        reconstructable from the suite registry, and storing the id keeps
        checkpoint records small and forward-compatible.
        """
        payload: Dict[str, object] = {
            "case_id": self.case.case_id,
            "case_name": self.case.name,
            "n": self.n,
            "nnz": self.nnz,
            "machine": self.machine,
            "baseline": self.baseline.to_dict(),
            "runs": [
                {"method": m, "filter_value": f, "run": r.to_dict()}
                for (m, f), r in self.runs.items()
            ],
        }
        if self.trace_summary is not None:
            payload["trace_summary"] = self.trace_summary.to_dict()
        if self.kernel_backend is not None:
            payload["kernel_backend"] = self.kernel_backend
        if self.setup_backend is not None:
            payload["setup_backend"] = self.setup_backend
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CaseResult":
        case = get_case(int(payload["case_id"]))
        if case.name != payload["case_name"]:
            raise ConfigurationError(
                f"checkpoint case id {payload['case_id']} names "
                f"{payload['case_name']!r} but the suite registry has "
                f"{case.name!r} — suite and checkpoint disagree"
            )
        return cls(
            case=case,
            n=int(payload["n"]),
            nnz=int(payload["nnz"]),
            machine=str(payload["machine"]),
            baseline=MethodRun.from_dict(payload["baseline"]),
            runs={
                (e["method"], e["filter_value"]): MethodRun.from_dict(e["run"])
                for e in payload["runs"]
            },
            trace_summary=(
                TraceSummary.from_dict(payload["trace_summary"])  # type: ignore[arg-type]
                if "trace_summary" in payload
                else None
            ),
            kernel_backend=payload.get("kernel_backend"),  # type: ignore[arg-type]
            setup_backend=payload.get("setup_backend"),  # type: ignore[arg-type]
        )


def make_rhs(a: CSRMatrix, seed: int) -> np.ndarray:
    """Paper §7.1 right-hand side: uniform in [-1, 1], max-norm normalised."""
    rng = np.random.default_rng(seed)
    b = rng.uniform(-1.0, 1.0, a.n_rows)
    max_norm = a.max_norm()
    return b / max_norm if max_norm > 0 else b


def _evaluate(
    a: CSRMatrix,
    b: np.ndarray,
    setup: FSAISetup,
    model: CostModel,
    spmv_a_cost: KernelCost,
    config: ExperimentConfig,
) -> MethodRun:
    with trace.span(
        "case.evaluate",
        method=setup.method,
        filter_value=setup.filter_value,
    ):
        result = pcg(
            a, b,
            preconditioner=setup.application,
            rtol=config.rtol,
            max_iterations=config.max_iterations,
            record_history=False,
        )
        app_cost = model.fsai_application_cost(
            setup.application.g_pattern, setup.application.gt_pattern
        )
        vector_seconds = (12 * 8 * a.n_rows) / model.machine.memory_bandwidth_bps
        iter_seconds = spmv_a_cost.seconds + app_cost.seconds + vector_seconds
        x_misses = app_cost.bytes_x_misses // model.machine.line_bytes
        if trace.enabled():
            trace.add_counter("pattern.final_nnz", setup.final_pattern.nnz)
        return MethodRun(
            method=setup.method,
            filter_value=setup.filter_value,
            iterations=result.iterations,
            converged=result.converged,
            relative_residual=result.relative_residual,
            setup_seconds=model.setup_seconds(setup),
            solve_seconds=result.iterations * iter_seconds,
            g_nnz=setup.final_pattern.nnz,
            pct_nnz=setup.nnz_increase_pct,
            x_misses_per_g_nnz=x_misses / setup.final_pattern.nnz,
            gflops=app_cost.gflops(),
            sweeps=getattr(setup, "sweeps", None),
        )


def run_case(
    case: MatrixCase,
    config: ExperimentConfig,
    *,
    a: Optional[CSRMatrix] = None,
) -> CaseResult:
    """Run the full method × filter grid for one matrix.

    ``a`` can be passed to reuse an already-built matrix (campaign code
    shares it across machines).

    When tracing is enabled (``trace.collecting()``), the whole grid runs
    under a root ``"case"`` span whose tree is attached to the returned
    result as :attr:`CaseResult.trace_summary` — this is how per-case span
    trees survive serialisation through orchestrator shard records.
    """
    if not trace.enabled():
        return _run_case(case, config, a=a)
    with trace.span(
        "case", case_id=case.case_id, case_name=case.name, machine=config.machine
    ) as root:
        result = _run_case(case, config, a=a)
    result.trace_summary = TraceSummary.from_span(root)
    return result


def _run_case(
    case: MatrixCase,
    config: ExperimentConfig,
    *,
    a: Optional[CSRMatrix] = None,
) -> CaseResult:
    with trace.span("case.prepare"):
        a = a if a is not None else case.build()
        b = make_rhs(a, config.rhs_seed + case.case_id)
        machine = config.machine_model()
        placement = ArrayPlacement.aligned(machine.line_bytes)
        model = CostModel(
            machine, cache_scale=config.cache_scale, placement=placement
        )
        spmv_a_cost = model.spmv_cost(a.pattern)

    baseline_setup = setup_fsai(a, setup_backend=config.setup_backend)
    baseline = _evaluate(a, b, baseline_setup, model, spmv_a_cost, config)

    result = CaseResult(
        case=case, n=a.n_rows, nnz=a.nnz, machine=machine.name,
        baseline=baseline, kernel_backend=get_backend().name,
        setup_backend=resolve_setup_backend(config.setup_backend),
    )
    reference_full: Optional[FSAISetup] = None
    for method in config.methods:
        spec = get_method(method)
        if not spec.selectable:
            raise ConfigurationError(
                f"method {method!r} cannot be selected directly; "
                f"use the dedicated config switch for it"
            )
        if spec.uses_filter:
            for filter_value in config.filters:
                setup = spec.builder(
                    a, placement,
                    filter_value=filter_value,
                    precalc_rtol=config.precalc_rtol,
                    precalc_iterations=config.precalc_iterations,
                    setup_backend=config.setup_backend,
                )
                if method == "fsaie_full" and filter_value == 0.01:
                    reference_full = setup
                result.runs[(method, filter_value)] = _evaluate(
                    a, b, setup, model, spmv_a_cost, config
                )
        else:
            # Filter-free methods (baseline re-runs, global iterations)
            # execute once per case under the key ``(method, None)``.
            kwargs: Dict[str, object] = {"setup_backend": config.setup_backend}
            if spec.uses_sweeps:
                kwargs["sweeps"] = config.global_sweeps
            setup = spec.builder(a, **kwargs)
            result.runs[(method, None)] = _evaluate(
                a, b, setup, model, spmv_a_cost, config
            )

    if config.include_random_baseline:
        if reference_full is None:
            reference_full = setup_fsaie_full(
                a, placement, filter_value=0.01,
                precalc_rtol=config.precalc_rtol,
                precalc_iterations=config.precalc_iterations,
                setup_backend=config.setup_backend,
            )
        random_setup = setup_fsaie_random(
            a, reference_full, seed=case.case_id,
            setup_backend=config.setup_backend,
        )
        result.runs[("fsaie_random", 0.01)] = _evaluate(
            a, b, random_setup, model, spmv_a_cost, config
        )
    return result
