"""The 72-matrix synthetic campaign suite.

Each :class:`MatrixCase` mirrors one row of the paper's Table 1: same
application domain, a generator whose conditioning knob is tuned so the
*relative* difficulty ordering of the suite resembles the paper's
(iteration counts from single digits to thousands), and the paper's
reported numbers attached as :class:`PaperRow` metadata so the experiment
harness can print paper-vs-measured tables.

Sizes are scaled down from SuiteSparse (~1.8 K - 526 K rows) to ~0.4 K - 5 K
rows so the complete campaign — all methods × all filters × 72 matrices —
runs in minutes on a laptop; DESIGN.md §2 documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.collection.generators.fd import (
    anisotropic_poisson2d,
    poisson2d,
    poisson3d,
    thermal_conduction2d,
)
from repro.collection.generators.fem import (
    elasticity2d,
    mass2d,
    scaled_stiffness2d,
    shifted_helmholtz2d,
    wathen,
)
from repro.collection.generators.graphs import circuit_network, economic_network
from repro.collection.generators.optimization import (
    bound_constrained_hessian,
    minimal_surface_hessian,
)
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix

__all__ = ["PaperRow", "MatrixCase", "suite72", "get_case", "case_names"]


@dataclass(frozen=True)
class PaperRow:
    """Numbers the paper reports for this matrix (Table 1, Skylake).

    ``fsai_iters``/``fsai_solve`` are the baseline columns;
    ``full_iters``/``full_pct_nnz`` are the FSAIE(full) columns at
    *filter* = 0.01.  Used only for reporting, never by algorithms.
    """

    rows: int
    nnz: int
    fsai_iters: int
    fsai_solve: float
    full_iters: int
    full_pct_nnz: float


_GENERATORS: Dict[str, Callable[..., CSRMatrix]] = {
    "poisson2d": poisson2d,
    "poisson3d": poisson3d,
    "anisotropic_poisson2d": anisotropic_poisson2d,
    "thermal_conduction2d": thermal_conduction2d,
    "elasticity2d": elasticity2d,
    "mass2d": mass2d,
    "wathen": wathen,
    "scaled_stiffness2d": scaled_stiffness2d,
    "shifted_helmholtz2d": shifted_helmholtz2d,
    "circuit_network": circuit_network,
    "economic_network": economic_network,
    "bound_constrained_hessian": bound_constrained_hessian,
    "minimal_surface_hessian": minimal_surface_hessian,
}


@dataclass(frozen=True)
class MatrixCase:
    """One campaign matrix: generator recipe + paper metadata."""

    case_id: int
    name: str
    domain: str
    generator: str
    params: Tuple[Tuple[str, object], ...]
    paper: PaperRow

    def build(self) -> CSRMatrix:
        """Instantiate the matrix (deterministic — seeds are in params)."""
        if self.generator not in _GENERATORS:
            raise ConfigurationError(f"unknown generator {self.generator!r}")
        return _GENERATORS[self.generator](**dict(self.params))

    def __str__(self) -> str:
        return f"[{self.case_id:2d}] {self.name} ({self.domain})"


def _case(cid, name, domain, gen, params, rows, nnz, it, solve, fit, pct):
    return MatrixCase(
        case_id=cid,
        name=name,
        domain=domain,
        generator=gen,
        params=tuple(sorted(params.items())),
        paper=PaperRow(
            rows=rows, nnz=nnz, fsai_iters=it, fsai_solve=solve,
            full_iters=fit, full_pct_nnz=pct,
        ),
    )


# ----------------------------------------------------------------------
# The 72 rows.  Generator knobs are chosen so that measured FSAI iteration
# counts land in the same difficulty band as the paper's (single digits for
# mass-dominated rows, thousands for the badly-scaled structural rows).
# Names carry a ``-syn`` suffix to make the substitution explicit.
# ----------------------------------------------------------------------
def _build_registry() -> List[MatrixCase]:
    E, S, A, P = "elasticity2d", "scaled_stiffness2d", "anisotropic_poisson2d", "poisson2d"
    cases = [
        _case(1, "shipsec5-syn", "Structural", S,
              dict(nx=56, ny=28, decades=5.0, seed=1), 179860, 4598604, 1615, 1.08, 1437, 20.82),
        _case(2, "offshore-syn", "Electromagnetics", A,
              dict(nx=58, ny=58, epsilon=3e-3, theta=0.35), 259789, 4242673, 782, 0.897, 751, 30.86),
        _case(3, "smt-syn", "Structural", E,
              dict(nx=42, ny=14, poisson=0.42), 25710, 3749582, 884, 0.432, 515, 33.19),
        _case(4, "parabolic_fem-syn", "CFD", A,
              dict(nx=62, ny=62, epsilon=1e-3, theta=0.0), 525825, 3674625, 1460, 2.26, 1054, 119.98),
        _case(5, "Dubcova3-syn", "2D/3D", P,
              dict(nx=56, ny=56), 146689, 3636643, 153, 0.119, 107, 110.01),
        _case(6, "shipsec1-syn", "Structural", S,
              dict(nx=52, ny=26, decades=5.5, seed=6), 140874, 3568176, 1985, 1.10, 1945, 19.49),
        _case(7, "nd3k-syn", "2D/3D", "poisson3d",
              dict(nx=13), 9000, 3279690, 406, 0.197, 336, 3.03),
        _case(8, "cfd2-syn", "CFD", A,
              dict(nx=52, ny=52, epsilon=5e-4, theta=0.6), 123440, 3085406, 2600, 1.21, 1862, 120.11),
        _case(9, "nasasrb-syn", "Structural", S,
              dict(nx=48, ny=32, decades=6.0, seed=9), 54870, 2677324, 2768, 1.10, 2739, 8.87),
        _case(10, "oilpan-syn", "Structural", E,
              dict(nx=52, ny=12, poisson=0.35), 73752, 2148558, 1620, 0.585, 1326, 47.70),
        _case(11, "cfd1-syn", "CFD", A,
              dict(nx=44, ny=44, epsilon=2e-3, theta=0.45), 70656, 1825580, 932, 0.356, 739, 113.35),
        _case(12, "qa8fm-syn", "Acoustics", "shifted_helmholtz2d",
              dict(nx=40, sigma=40.0), 66127, 1660579, 13, 0.00414, 11, 28.70),
        _case(13, "2cubes_sphere-syn", "Electromagnetics", "shifted_helmholtz2d",
              dict(nx=42, sigma=60.0), 101492, 1647264, 12, 0.0056, 11, 17.30),
        _case(14, "thermomech_dM-syn", "Thermal", "thermal_conduction2d",
              dict(nx=44, contrast=5.0, mass_shift=20.0, seed=14), 204316, 1423116, 9, 0.0058, 9, 2.42),
        _case(15, "msc10848-syn", "Structural", E,
              dict(nx=36, ny=12, poisson=0.38), 10848, 1229776, 712, 0.218, 528, 21.51),
        _case(16, "Dubcova2-syn", "2D/3D", P,
              dict(nx=44, ny=44), 65025, 1030225, 158, 0.0604, 106, 162.91),
        _case(17, "gyro-syn", "Model Reduction", S,
              dict(nx=40, ny=40, decades=7.0, seed=17), 17361, 1021159, 4457, 1.72, 3400, 35.16),
        _case(18, "gyro_k-syn", "Model Reduction", S,
              dict(nx=40, ny=40, decades=7.0, seed=18), 17361, 1021159, 4444, 1.54, 3450, 35.16),
        _case(19, "olafu-syn", "Structural", E,
              dict(nx=44, ny=11, poisson=0.40), 16146, 1015156, 1782, 0.417, 1336, 22.64),
        _case(20, "bundle1-syn", "Computer Graphics/Vision", "economic_network",
              dict(n=1200, clique_size=12, leak=2.0, seed=20), 10581, 770811, 22, 0.00682, 20, 0.01),
        _case(21, "G2_circuit-syn", "Circuit Simulation", "circuit_network",
              dict(n=2400, leak=2e-4, seed=21), 150102, 726674, 1026, 0.384, 772, 215.71),
        _case(22, "Pres_Poisson-syn", "CFD", P,
              dict(nx=38, ny=38), 14822, 715804, 285, 0.0653, 130, 61.49),
        _case(23, "thermomech_TC-syn", "Thermal", "thermal_conduction2d",
              dict(nx=40, contrast=4.0, mass_shift=25.0, seed=23), 102158, 711558, 9, 0.00394, 9, 3.65),
        _case(24, "cbuckle-syn", "Structural", E,
              dict(nx=28, ny=10, poisson=0.30), 13681, 676515, 114, 0.0248, 101, 24.08),
        _case(25, "finan512-syn", "Economic", "economic_network",
              dict(n=1600, clique_size=8, leak=0.8, seed=25), 74752, 596992, 10, 0.00288, 9, 42.53),
        _case(26, "crystm03-syn", "Materials", "mass2d",
              dict(nx=38), 24696, 583770, 13, 0.00345, 11, 26.34),
        _case(27, "thermal1-syn", "Thermal", "thermal_conduction2d",
              dict(nx=42, contrast=1e4, seed=27), 82654, 574458, 735, 0.280, 532, 189.89),
        _case(28, "wathen120-syn", "Random 2D/3D", "wathen",
              dict(nx=22, ny=22, seed=28), 36441, 565761, 25, 0.0061, 19, 98.41),
        _case(29, "apache1-syn", "Structural", S,
              dict(nx=42, ny=42, decades=4.5, seed=29), 80800, 542184, 1663, 0.443, 1574, 73.41),
        _case(30, "gridgena-syn", "Optimization", A,
              dict(nx=40, ny=40, epsilon=8e-4, theta=0.25), 48962, 512084, 1729, 0.432, 1205, 141.49),
        _case(31, "wathen100-syn", "Random 2D/3D", "wathen",
              dict(nx=20, ny=20, seed=31), 30401, 471601, 25, 0.00467, 19, 98.18),
        _case(32, "bcsstk17-syn", "Structural", E,
              dict(nx=40, ny=10, poisson=0.33), 10974, 428650, 627, 0.127, 491, 28.78),
        _case(33, "cvxbqp1-syn", "Optimization", "circuit_network",
              dict(n=2200, leak=5e-5, extra_edges=0.15, seed=33), 50000, 349968, 5032, 1.60, 5045, 0.22),
        _case(34, "Kuu-syn", "Structural", E,
              dict(nx=24, ny=8, poisson=0.30), 7102, 340200, 147, 0.0301, 115, 44.54),
        _case(35, "shallow_water2-syn", "CFD", "thermal_conduction2d",
              dict(nx=40, contrast=2.0, mass_shift=8.0, seed=35), 81920, 327680, 14, 0.00342, 10, 161.23),
        _case(36, "shallow_water1-syn", "CFD", "thermal_conduction2d",
              dict(nx=40, contrast=1.5, mass_shift=30.0, seed=36), 81920, 327680, 8, 0.002, 6, 59.76),
        _case(37, "crystm02-syn", "Materials", "mass2d",
              dict(nx=34), 13965, 322905, 13, 0.00305, 11, 18.40),
        _case(38, "bcsstk16-syn", "Structural", "shifted_helmholtz2d",
              dict(nx=34, sigma=2.0), 4884, 290378, 83, 0.0232, 79, 16.08),
        _case(39, "s2rmq4m1-syn", "Structural", E,
              dict(nx=34, ny=9, poisson=0.36, e_modulus=2.0), 5489, 263351, 360, 0.0746, 353, 17.41),
        _case(40, "s1rmq4m1-syn", "Structural", E,
              dict(nx=34, ny=9, poisson=0.34, e_modulus=1.5), 5489, 262411, 299, 0.0617, 290, 20.99),
        _case(41, "Dubcova1-syn", "2D/3D", P,
              dict(nx=32, ny=32), 16129, 253009, 84, 0.0175, 55, 167.32),
        _case(42, "bcsstk25-syn", "Structural", S,
              dict(nx=36, ny=36, decades=6.5, seed=42), 15439, 252241, 3880, 0.697, 3366, 38.13),
        _case(43, "bcsstk28-syn", "Structural", E,
              dict(nx=38, ny=8, poisson=0.44), 4410, 219024, 1003, 0.221, 715, 39.46),
        _case(44, "s2rmt3m1-syn", "Structural", E,
              dict(nx=32, ny=8, poisson=0.37, e_modulus=2.0), 5489, 217681, 384, 0.0772, 350, 29.05),
        _case(45, "s1rmt3m1-syn", "Structural", E,
              dict(nx=32, ny=8, poisson=0.35, e_modulus=1.5), 5489, 217651, 320, 0.0636, 301, 32.16),
        _case(46, "minsurfo-syn", "Optimization", "minimal_surface_hessian",
              dict(nx=38, seed=46), 40806, 203622, 42, 0.00921, 29, 356.20),
        _case(47, "jnlbrng1-syn", "Optimization", "bound_constrained_hessian",
              dict(nx=38, active_fraction=0.4, barrier=30.0, seed=47), 40000, 199200, 62, 0.0138, 60, 58.40),
        _case(48, "torsion1-syn", "Optimization", "bound_constrained_hessian",
              dict(nx=38, active_fraction=0.55, barrier=60.0, seed=48), 40000, 197608, 31, 0.00688, 23, 206.92),
        _case(49, "obstclae-syn", "Optimization", "bound_constrained_hessian",
              dict(nx=38, active_fraction=0.55, barrier=60.0, seed=49), 40000, 197608, 31, 0.0068, 23, 206.92),
        _case(50, "t2dah_e-syn", "Model Reduction", "mass2d",
              dict(nx=30, density=3.0), 11445, 176117, 32, 0.00601, 15, 127.74),
        _case(51, "nasa2910-syn", "Structural", E,
              dict(nx=30, ny=8, poisson=0.32), 2910, 174296, 390, 0.106, 331, 24.55),
        _case(52, "Muu-syn", "Structural", "mass2d",
              dict(nx=24, density=1.0), 7102, 170134, 10, 0.00184, 8, 16.54),
        _case(53, "bcsstk24-syn", "Structural", E,
              dict(nx=30, ny=7, poisson=0.41), 3562, 159910, 773, 0.151, 363, 20.17),
        _case(54, "bcsstk18-syn", "Structural", S,
              dict(nx=30, ny=30, decades=5.0, seed=54), 11948, 149090, 547, 0.116, 489, 34.02),
        _case(55, "ted_B-syn", "Thermal", "thermal_conduction2d",
              dict(nx=32, contrast=3.0, mass_shift=18.0, seed=55), 10605, 144579, 9, 0.00162, 8, 14.54),
        _case(56, "ted_B_unscaled-syn", "Thermal", "thermal_conduction2d",
              dict(nx=32, contrast=3.0, mass_shift=18.0, seed=56), 10605, 144579, 9, 0.00153, 8, 14.54),
        _case(57, "bodyy6-syn", "Structural", "bound_constrained_hessian",
              dict(nx=32, active_fraction=0.05, barrier=4.0, seed=57), 19366, 134208, 594, 0.135, 599, 24.55),
        _case(58, "bodyy5-syn", "Structural", "bound_constrained_hessian",
              dict(nx=32, active_fraction=0.12, barrier=8.0, seed=58), 18589, 128853, 241, 0.0606, 243, 31.81),
        _case(59, "aft01-syn", "Acoustics", "shifted_helmholtz2d",
              dict(nx=30, sigma=0.02), 8205, 125567, 418, 0.0813, 320, 54.98),
        _case(60, "bodyy4-syn", "Structural", "bound_constrained_hessian",
              dict(nx=32, active_fraction=0.25, barrier=15.0, seed=60), 17546, 121550, 97, 0.0235, 97, 44.64),
        _case(61, "bcsstk15-syn", "Structural", E,
              dict(nx=26, ny=7, poisson=0.31), 3948, 117816, 240, 0.0581, 220, 41.91),
        _case(62, "crystm01-syn", "Materials", "mass2d",
              dict(nx=28), 4875, 105339, 13, 0.00397, 11, 17.26),
        _case(63, "nasa4704-syn", "Structural", E,
              dict(nx=34, ny=7, poisson=0.43), 4704, 104756, 1410, 0.306, 1217, 32.10),
        _case(64, "msc04515-syn", "Structural", E,
              dict(nx=28, ny=7, poisson=0.39), 4515, 97707, 572, 0.103, 434, 50.49),
        _case(65, "fv3-syn", "2D/3D", P,
              dict(nx=28, ny=28), 9801, 87025, 126, 0.0246, 124, 97.97),
        _case(66, "fv2-syn", "2D/3D", "shifted_helmholtz2d",
              dict(nx=26, sigma=25.0), 9801, 87025, 15, 0.00283, 14, 97.97),
        _case(67, "fv1-syn", "2D/3D", "shifted_helmholtz2d",
              dict(nx=26, sigma=30.0), 9604, 85264, 15, 0.00282, 14, 93.14),
        _case(68, "bcsstk13-syn", "CFD", A,
              dict(nx=26, ny=26, epsilon=1.5e-3, theta=0.5), 2003, 83883, 566, 0.176, 496, 41.15),
        _case(69, "sts4098-syn", "Structural", E,
              dict(nx=22, ny=7, poisson=0.29), 4098, 72356, 100, 0.0181, 86, 51.71),
        _case(70, "nasa2146-syn", "Structural", E,
              dict(nx=22, ny=6, poisson=0.33), 2146, 72250, 108, 0.0212, 105, 31.30),
        _case(71, "bcsstk14-syn", "Structural", E,
              dict(nx=20, ny=6, poisson=0.30), 1806, 63454, 115, 0.0261, 105, 16.71),
        _case(72, "bcsstk27-syn", "Structural", "shifted_helmholtz2d",
              dict(nx=20, sigma=1.0), 1224, 56126, 90, 0.0184, 89, 15.70),
    ]
    ids = [c.case_id for c in cases]
    if ids != list(range(1, 73)):
        raise ConfigurationError("suite registry ids must be 1..72 in order")
    return cases


_REGISTRY: List[MatrixCase] = _build_registry()


def suite72() -> List[MatrixCase]:
    """The full 72-case campaign suite, ordered by Table 1 row id."""
    return list(_REGISTRY)


def get_case(key) -> MatrixCase:
    """Look up a case by 1-based id or by name."""
    if isinstance(key, int):
        if not 1 <= key <= len(_REGISTRY):
            raise KeyError(f"case id {key} out of range 1..{len(_REGISTRY)}")
        return _REGISTRY[key - 1]
    for c in _REGISTRY:
        if c.name == key or c.name == f"{key}-syn":
            return c
    raise KeyError(f"no case named {key!r}")


def case_names() -> List[str]:
    return [c.name for c in _REGISTRY]
