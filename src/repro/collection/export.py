"""Suite export: write the synthetic campaign matrices as Matrix Market.

Lets downstream users inspect the suite with standard sparse tooling, swap
it for real SuiteSparse downloads, or archive the exact matrices behind a
set of published numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional

from repro.collection.suite import MatrixCase, suite72
from repro.sparse.io_mm import write_matrix_market

__all__ = ["export_suite"]


def export_suite(
    directory,
    *,
    cases: Optional[Iterable[MatrixCase]] = None,
    symmetric: bool = True,
) -> List[Path]:
    """Write every case to ``directory/<id>_<name>.mtx``; returns the paths.

    Files carry a comment header with the case's provenance (generator +
    parameters + the paper row it mirrors) so an exported suite remains
    self-describing.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for case in (cases if cases is not None else suite72()):
        a = case.build()
        path = directory / f"{case.case_id:02d}_{case.name}.mtx"
        params = ", ".join(f"{k}={v}" for k, v in case.params)
        comment = (
            f"repro synthetic suite case {case.case_id}: {case.name}\n"
            f"domain: {case.domain}\n"
            f"generator: {case.generator}({params})\n"
            f"mirrors SuiteSparse row: {case.name.removesuffix('-syn')} "
            f"(n={case.paper.rows}, nnz={case.paper.nnz})"
        )
        write_matrix_market(a, path, symmetric=symmetric, comment=comment)
        written.append(path)
    return written
