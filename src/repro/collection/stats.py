"""Structural statistics of suite matrices.

Campaign debugging and suite curation need quick answers to "what does this
matrix look like": size, density, bandwidth, row-length spread, diagonal
dominance, spectrum enclosure.  :func:`matrix_stats` computes them in one
pass; :func:`suite_report` renders the whole suite as a table (also
available as ``repro-fsai suite --detail``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.collection.suite import MatrixCase, suite72
from repro.sparse.csr import CSRMatrix
from repro.sparse.ordering import bandwidth
from repro.sparse.validate import gershgorin_bounds

__all__ = ["MatrixStats", "matrix_stats", "suite_report"]


@dataclass(frozen=True)
class MatrixStats:
    """One-pass structural summary of a square sparse matrix."""

    n: int
    nnz: int
    density: float
    bandwidth: int
    avg_row_nnz: float
    max_row_nnz: int
    diag_dominance: float  # min_i a_ii / sum_{j!=i} |a_ij| (inf if no offdiag)
    gershgorin_lo: float
    gershgorin_hi: float

    @property
    def gershgorin_cond_bound(self) -> float:
        """Upper bound on the condition number from the enclosure.

        Only meaningful when the lower bound is positive; ``inf`` otherwise
        (Gershgorin cannot certify definiteness then).
        """
        if self.gershgorin_lo <= 0:
            return float("inf")
        return self.gershgorin_hi / self.gershgorin_lo


def matrix_stats(a: CSRMatrix) -> MatrixStats:
    """Compute the summary for one matrix."""
    rows = a.row_ids()
    offdiag = rows != a.indices
    offdiag_sums = np.bincount(
        rows[offdiag], weights=np.abs(a.data[offdiag]), minlength=a.n_rows
    )
    diag = a.diagonal()
    with np.errstate(divide="ignore"):
        ratios = np.where(offdiag_sums > 0, diag / np.maximum(offdiag_sums, 1e-300), np.inf)
    lo, hi = gershgorin_bounds(a)
    lengths = a.pattern.row_lengths()
    return MatrixStats(
        n=a.n_rows,
        nnz=a.nnz,
        density=a.nnz / (a.n_rows * a.n_cols) if a.n_rows else 0.0,
        bandwidth=bandwidth(a),
        avg_row_nnz=float(lengths.mean()) if len(lengths) else 0.0,
        max_row_nnz=int(lengths.max()) if len(lengths) else 0,
        diag_dominance=float(ratios.min()) if len(ratios) else float("inf"),
        gershgorin_lo=lo,
        gershgorin_hi=hi,
    )


def suite_report(cases: Optional[Iterable[MatrixCase]] = None) -> str:
    """Per-case structural table over (a subset of) the suite."""
    lines = [
        f"{'id':>3} {'name':24} {'n':>6} {'nnz':>7} {'bw':>6} "
        f"{'avg row':>8} {'diag dom':>9} {'gersh cond<=':>13} {'paper it':>9}"
    ]
    for case in (cases if cases is not None else suite72()):
        st = matrix_stats(case.build())
        cond = (
            f"{st.gershgorin_cond_bound:.1e}"
            if np.isfinite(st.gershgorin_cond_bound) else "-"
        )
        lines.append(
            f"{case.case_id:>3} {case.name:24} {st.n:>6} {st.nnz:>7} "
            f"{st.bandwidth:>6} {st.avg_row_nnz:>8.1f} "
            f"{min(st.diag_dominance, 999.9):>9.2f} {cond:>13} "
            f"{case.paper.fsai_iters:>9}"
        )
    return "\n".join(lines)
