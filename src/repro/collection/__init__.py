"""Synthetic matrix collection.

The paper evaluates on 72 SPD matrices of the SuiteSparse collection
(Table 1).  SuiteSparse is not available offline, so this subpackage
generates a 72-entry synthetic suite that mirrors the paper's set
row-by-row: same application domain, comparable conditioning spread, SPD by
construction, scaled to sizes where the full campaign runs in minutes (the
substitution is documented in DESIGN.md §2).

Generators are honest discretisations, not random SPD noise:

* finite differences — Poisson 2D/3D, anisotropic diffusion,
  heterogeneous thermal conduction (:mod:`.generators.fd`);
* finite elements — Q4 plane-stress elasticity, consistent mass matrices,
  Wathen random-density mass, scaled stiffness, shifted Helmholtz
  (:mod:`.generators.fem`);
* graphs — circuit networks, clique-structured economic models
  (:mod:`.generators.graphs`);
* optimisation — bound-constrained QP Hessians à la ``jnlbrng``/``torsion``
  /``obstclae``/``minsurfo`` (:mod:`.generators.optimization`).

:func:`suite72` instantiates the full campaign set with per-entry metadata
(paper row id, domain, the paper's measured FSAI iterations for
EXPERIMENTS.md comparisons).
"""

from repro.collection.generators.fd import (
    poisson2d,
    poisson3d,
    anisotropic_poisson2d,
    thermal_conduction2d,
)
from repro.collection.generators.fem import (
    elasticity2d,
    mass2d,
    wathen,
    scaled_stiffness2d,
    shifted_helmholtz2d,
)
from repro.collection.generators.graphs import circuit_network, economic_network
from repro.collection.generators.optimization import (
    bound_constrained_hessian,
    minimal_surface_hessian,
)
from repro.collection.suite import MatrixCase, suite72, get_case, case_names

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic_poisson2d",
    "thermal_conduction2d",
    "elasticity2d",
    "mass2d",
    "wathen",
    "scaled_stiffness2d",
    "shifted_helmholtz2d",
    "circuit_network",
    "economic_network",
    "bound_constrained_hessian",
    "minimal_surface_hessian",
    "MatrixCase",
    "suite72",
    "get_case",
    "case_names",
]
