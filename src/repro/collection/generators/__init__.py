"""Matrix generators grouped by discretisation family."""
