"""Graph-structured generators (circuit simulation / economics domains).

Both generators build weighted graph Laplacians plus a positive diagonal
"leak" term — the standard SPD structure of nodal circuit analysis — with
degree distributions chosen to mimic their domains: near-planar locality for
circuits (``G2_circuit``), clique-of-entities coupling for economic models
(``finan512``).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.construct import csr_from_coo_arrays
from repro.sparse.csr import CSRMatrix

__all__ = ["circuit_network", "economic_network"]


def _laplacian_from_edges(
    n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray, leak: np.ndarray
) -> CSRMatrix:
    """Weighted graph Laplacian + diagonal leak (SPD for positive leak)."""
    rows = np.concatenate([u, v, u, v, np.arange(n)])
    cols = np.concatenate([v, u, u, v, np.arange(n)])
    vals = np.concatenate([-w, -w, w, w, leak])
    return csr_from_coo_arrays(n, n, rows, cols, vals)


def circuit_network(
    n: int, *, extra_edges: float = 0.3, leak: float = 1e-3, seed: int = 0
) -> CSRMatrix:
    """Nodal-analysis matrix of a quasi-planar resistor network.

    Nodes sit on a virtual line with mostly short-range connections (chain +
    random short skips) plus a few long-range "supply rail" edges — the
    structure that gives circuit matrices their characteristic mostly-banded
    pattern with outliers.  Small ``leak`` (grounded capacitors / sources)
    keeps the Laplacian SPD but barely so, reproducing the slow convergence
    of ``G2_circuit``.
    """
    if n < 4:
        raise ValueError("need at least 4 nodes")
    rng = np.random.default_rng(seed)
    # Backbone chain.
    u = [np.arange(n - 1)]
    v = [np.arange(1, n)]
    # Short-range skips.
    n_skip = int(extra_edges * n)
    su = rng.integers(0, n - 3, n_skip)
    sv = su + rng.integers(2, 16, n_skip)
    sv = np.minimum(sv, n - 1)
    u.append(su)
    v.append(sv)
    # A few long rails.
    n_rail = max(n // 200, 2)
    ru = rng.integers(0, n, n_rail)
    rv = rng.integers(0, n, n_rail)
    ok = ru != rv
    u.append(np.minimum(ru[ok], rv[ok]))
    v.append(np.maximum(ru[ok], rv[ok]))
    uu = np.concatenate(u)
    vv = np.concatenate(v)
    # Conductances: log-uniform over ~3 decades (component value spread).
    w = 10.0 ** rng.uniform(-1.5, 1.5, len(uu))
    leak_vec = np.full(n, leak)
    return _laplacian_from_edges(n, uu, vv, w, leak_vec)


def economic_network(
    n: int, *, clique_size: int = 8, leak: float = 0.5, seed: int = 0
) -> CSRMatrix:
    """Clique-structured SPD matrix (economic/financial domain).

    Entities form fully-coupled groups (sectors) of ``clique_size`` with
    sparse inter-group links — the block structure of the paper's
    ``finan512`` portfolio-optimisation row, which converges in ~10
    iterations thanks to its strong diagonal.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    rng = np.random.default_rng(seed)
    groups = np.arange(n) // clique_size
    n_groups = int(groups[-1]) + 1
    u_list, v_list = [], []
    # Intra-clique complete coupling.
    for g in range(n_groups):
        members = np.flatnonzero(groups == g)
        if len(members) < 2:
            continue
        iu, iv = np.triu_indices(len(members), k=1)
        u_list.append(members[iu])
        v_list.append(members[iv])
    # Sparse inter-group links: each group couples to ~2 random others via
    # one representative node.
    for g in range(n_groups):
        reps = rng.integers(0, n, 2)
        own = g * clique_size
        ok = reps != own
        u_list.append(np.full(ok.sum(), own))
        v_list.append(reps[ok])
    uu = np.concatenate(u_list)
    vv = np.concatenate(v_list)
    lo = np.minimum(uu, vv)
    hi = np.maximum(uu, vv)
    w = rng.uniform(0.1, 1.0, len(lo))
    leak_vec = np.full(n, leak) + rng.uniform(0, leak, n)
    return _laplacian_from_edges(n, lo, hi, w, leak_vec)
