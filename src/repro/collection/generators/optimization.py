"""Optimisation-domain generators.

The paper's optimisation rows (``jnlbrng1``, ``torsion1``, ``obstclae``,
``minsurfo``, ``gridgena``, ``cvxbqp1``) are Hessians of bound-constrained
variational problems — Laplacian-like operators plus state-dependent
diagonal terms.  Two generators cover the family:

* :func:`bound_constrained_hessian` — 5-point Laplacian plus a random
  positive diagonal that is *active* (large) on a random subset of nodes,
  mimicking the active-set barrier structure;
* :func:`minimal_surface_hessian` — the linearised minimal-surface operator
  with spatially varying coefficients from a synthetic surface gradient.
"""

from __future__ import annotations

import numpy as np

from repro.collection.generators.fd import poisson2d
from repro.sparse.construct import csr_from_coo_arrays
from repro.sparse.csr import CSRMatrix

__all__ = ["bound_constrained_hessian", "minimal_surface_hessian"]


def bound_constrained_hessian(
    nx: int,
    ny: int = 0,
    *,
    active_fraction: float = 0.3,
    barrier: float = 50.0,
    seed: int = 0,
) -> CSRMatrix:
    """Hessian of a bound-constrained quadratic (``jnlbrng``/``torsion`` style).

    ``A = L + D`` where ``L`` is the 5-point Laplacian and ``D`` is zero
    except on a random ``active_fraction`` of nodes, where it takes values
    ``~barrier``.  The strong diagonal on the active set clusters part of
    the spectrum and yields the fast-converging (tens of iterations)
    behaviour of the paper's optimisation rows.
    """
    ny = ny or nx
    if not 0.0 <= active_fraction <= 1.0:
        raise ValueError("active_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    L = poisson2d(nx, ny)
    n = L.n_rows
    active = rng.uniform(size=n) < active_fraction
    d = np.where(active, barrier * rng.uniform(0.5, 1.5, n), 0.0)
    rows = np.concatenate([L.row_ids(), np.arange(n)])
    cols = np.concatenate([L.indices, np.arange(n)])
    vals = np.concatenate([L.data, d])
    return csr_from_coo_arrays(n, n, rows, cols, vals)


def minimal_surface_hessian(
    nx: int, ny: int = 0, *, amplitude: float = 2.0, seed: int = 0
) -> CSRMatrix:
    """Linearised minimal-surface operator (``minsurfo`` style).

    Discretises ``-div( ∇u / sqrt(1 + |∇w|²) )`` for a synthetic random
    smooth surface ``w``: face coefficients vary smoothly in (0, 1], giving
    the mildly heterogeneous SPD operator of obstacle/minimal-surface
    problems.
    """
    ny = ny or nx
    rng = np.random.default_rng(seed)
    # Smooth random surface: sum of a few low-frequency sines.
    x = np.linspace(0, np.pi, nx + 2)
    y = np.linspace(0, np.pi, ny + 2)
    X, Y = np.meshgrid(x, y, indexing="ij")
    w = np.zeros_like(X)
    for _ in range(4):
        fx, fy = rng.integers(1, 4, 2)
        w += amplitude / 4.0 * np.sin(fx * X + rng.uniform(0, np.pi)) * np.sin(
            fy * Y + rng.uniform(0, np.pi)
        )
    gx, gy = np.gradient(w)
    coeff = 1.0 / np.sqrt(1.0 + gx**2 + gy**2)  # (nx+2, ny+2) > 0

    n = nx * ny
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    i, j = i.ravel(), j.ravel()
    k = i * ny + j
    rows, cols, vals = [k], [k], [np.zeros(n)]
    diag = np.zeros(n)
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ii, jj = i + di, j + dj
        # Face coefficient: average of the two cell values (interior grid is
        # offset by 1 in the padded coefficient array).
        c = 0.5 * (coeff[i + 1, j + 1] + coeff[ii + 1, jj + 1])
        inside = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        rows.append(k[inside])
        cols.append(ii[inside] * ny + jj[inside])
        vals.append(-c[inside])
        np.add.at(diag, k, c)  # boundary faces contribute only to diagonal
    vals[0] = diag
    return csr_from_coo_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )
