"""Finite-element generators (structural / materials / acoustics domains).

All assemblies are vectorised: one reference element matrix is computed
(numerically, by Gauss quadrature where applicable), per-element scalings are
broadcast, and the global scatter is a single COO round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.construct import csr_from_coo_arrays
from repro.sparse.csr import CSRMatrix

__all__ = [
    "q4_stiffness_element",
    "q4_mass_element",
    "elasticity_q4_element",
    "elasticity2d",
    "mass2d",
    "wathen",
    "scaled_stiffness2d",
    "shifted_helmholtz2d",
]


# ----------------------------------------------------------------------
# Reference elements
# ----------------------------------------------------------------------
def _gauss2x2():
    g = 1.0 / np.sqrt(3.0)
    pts = [(-g, -g), (g, -g), (g, g), (-g, g)]
    return pts, [1.0] * 4


def _q4_shape_derivatives(xi: float, eta: float) -> np.ndarray:
    """d/d(xi,eta) of the four bilinear shape functions, rows = (xi, eta)."""
    return 0.25 * np.array(
        [
            [-(1 - eta), (1 - eta), (1 + eta), -(1 + eta)],
            [-(1 - xi), -(1 + xi), (1 + xi), (1 - xi)],
        ]
    )


def q4_stiffness_element(hx: float = 1.0, hy: float = 1.0) -> np.ndarray:
    """4×4 bilinear-quad Laplace stiffness on an ``hx × hy`` rectangle.

    Computed by 2×2 Gauss quadrature of ``∫ ∇Nᵢ · ∇Nⱼ``; nodes ordered CCW
    from the bottom-left corner.
    """
    J = np.diag([hx / 2.0, hy / 2.0])
    Jinv = np.linalg.inv(J)
    detJ = hx * hy / 4.0
    ke = np.zeros((4, 4))
    pts, wts = _gauss2x2()
    for (xi, eta), w in zip(pts, wts):
        dN = Jinv @ _q4_shape_derivatives(xi, eta)  # physical gradients
        ke += w * detJ * (dN.T @ dN)
    return ke


def q4_mass_element(hx: float = 1.0, hy: float = 1.0) -> np.ndarray:
    """4×4 consistent mass matrix of a bilinear quad (CCW node order)."""
    base = np.array(
        [
            [4.0, 2.0, 1.0, 2.0],
            [2.0, 4.0, 2.0, 1.0],
            [1.0, 2.0, 4.0, 2.0],
            [2.0, 1.0, 2.0, 4.0],
        ]
    )
    return (hx * hy / 36.0) * base


def elasticity_q4_element(
    e_modulus: float = 1.0, poisson: float = 0.3, hx: float = 1.0, hy: float = 1.0
) -> np.ndarray:
    """8×8 plane-stress Q4 elasticity element stiffness (2 dof/node).

    Standard isoparametric formulation: ``∫ Bᵀ D B`` with 2×2 Gauss
    quadrature, dofs ordered ``(u₁, v₁, u₂, v₂, …)`` CCW from bottom-left.
    """
    if not -1.0 < poisson < 0.5:
        raise ValueError(f"invalid Poisson ratio {poisson}")
    D = (e_modulus / (1.0 - poisson**2)) * np.array(
        [
            [1.0, poisson, 0.0],
            [poisson, 1.0, 0.0],
            [0.0, 0.0, (1.0 - poisson) / 2.0],
        ]
    )
    J = np.diag([hx / 2.0, hy / 2.0])
    Jinv = np.linalg.inv(J)
    detJ = hx * hy / 4.0
    ke = np.zeros((8, 8))
    pts, wts = _gauss2x2()
    for (xi, eta), w in zip(pts, wts):
        dN = Jinv @ _q4_shape_derivatives(xi, eta)
        B = np.zeros((3, 8))
        B[0, 0::2] = dN[0]
        B[1, 1::2] = dN[1]
        B[2, 0::2] = dN[1]
        B[2, 1::2] = dN[0]
        ke += w * detJ * (B.T @ D @ B)
    return ke


# ----------------------------------------------------------------------
# Mesh connectivity helpers
# ----------------------------------------------------------------------
def _q4_connectivity(nx: int, ny: int) -> np.ndarray:
    """(n_elements, 4) node ids, CCW from bottom-left, grid numbering."""
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    i, j = i.ravel(), j.ravel()

    def node(a, b):
        return a * (ny + 1) + b

    return np.stack(
        [node(i, j), node(i + 1, j), node(i + 1, j + 1), node(i, j + 1)], axis=1
    )


def _assemble(
    n_nodes: int, conn: np.ndarray, element_matrices: np.ndarray
) -> CSRMatrix:
    """Scatter per-element dense matrices into a global CSR.

    ``element_matrices`` is ``(n_elements, k, k)`` (or ``(k, k)`` broadcast),
    ``conn`` is ``(n_elements, k)``.
    """
    n_el, k = conn.shape
    em = np.broadcast_to(element_matrices, (n_el, k, k))
    rows = np.repeat(conn, k, axis=1).ravel()
    cols = np.tile(conn, (1, k)).ravel()
    vals = em.transpose(0, 2, 1).reshape(n_el, -1).ravel()
    # Note: em is symmetric so the transpose only fixes row/col pairing
    # conventions; values land identically either way.
    return csr_from_coo_arrays(n_nodes, n_nodes, rows, cols, vals)


def _eliminate(matrix: CSRMatrix, keep_mask: np.ndarray) -> CSRMatrix:
    """Restrict a matrix to the dofs where ``keep_mask`` is True."""
    keep_idx = np.flatnonzero(keep_mask)
    renumber = -np.ones(matrix.n_rows, dtype=np.int64)
    renumber[keep_idx] = np.arange(len(keep_idx))
    rows = matrix.row_ids()
    ok = keep_mask[rows] & keep_mask[matrix.indices]
    return csr_from_coo_arrays(
        len(keep_idx), len(keep_idx),
        renumber[rows[ok]], renumber[matrix.indices[ok]], matrix.data[ok],
    )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def elasticity2d(
    nx: int, ny: int = 0, *, e_modulus: float = 1.0, poisson: float = 0.3
) -> CSRMatrix:
    """Plane-stress cantilever stiffness matrix (structural domain).

    Q4 mesh of ``nx × ny`` elements, clamped along the ``x = 0`` edge
    (those dofs eliminated).  Conditioning grows with aspect ratio and mesh
    size, landing in the thousands-of-iterations regime of the paper's
    ``shipsec``/``nasasrb`` structural rows at moderate sizes.
    """
    ny = ny or max(nx // 4, 2)
    conn4 = _q4_connectivity(nx, ny)
    # Expand node connectivity to 2-dof connectivity.
    conn8 = np.empty((conn4.shape[0], 8), dtype=np.int64)
    conn8[:, 0::2] = 2 * conn4
    conn8[:, 1::2] = 2 * conn4 + 1
    n_dofs = 2 * (nx + 1) * (ny + 1)
    ke = elasticity_q4_element(e_modulus, poisson, hx=1.0, hy=1.0)
    full = _assemble(n_dofs, conn8, ke)
    # Clamp x = 0 edge: nodes with i == 0.
    node_ids = np.arange((nx + 1) * (ny + 1))
    clamped_nodes = node_ids[node_ids // (ny + 1) == 0]
    keep = np.ones(n_dofs, dtype=bool)
    keep[2 * clamped_nodes] = False
    keep[2 * clamped_nodes + 1] = False
    return _eliminate(full, keep)


def mass2d(nx: int, ny: int = 0, *, density: float = 1.0) -> CSRMatrix:
    """Consistent FE mass matrix (materials domain — ``crystm``-like).

    Spectrally equivalent to its diagonal: condition number O(1) regardless
    of size, so PCG converges in ~10-15 iterations like the paper's
    materials rows.
    """
    ny = ny or nx
    conn = _q4_connectivity(nx, ny)
    me = density * q4_mass_element()
    return _assemble((nx + 1) * (ny + 1), conn, me)


#: The Wathen 8-node serendipity element mass matrix (Higham's gallery),
#: node order alternating corner/mid-side CCW from the bottom-left corner.
_WATHEN_ELEMENT = (
    np.array(
        [
            [6.0, -6.0, 2.0, -8.0, 3.0, -8.0, 2.0, -6.0],
            [-6.0, 32.0, -6.0, 20.0, -8.0, 16.0, -8.0, 20.0],
            [2.0, -6.0, 6.0, -6.0, 2.0, -8.0, 3.0, -8.0],
            [-8.0, 20.0, -6.0, 32.0, -6.0, 20.0, -8.0, 16.0],
            [3.0, -8.0, 2.0, -6.0, 6.0, -6.0, 2.0, -8.0],
            [-8.0, 16.0, -8.0, 20.0, -6.0, 32.0, -6.0, 20.0],
            [2.0, -8.0, 3.0, -8.0, 2.0, -6.0, 6.0, -6.0],
            [-6.0, 20.0, -8.0, 16.0, -8.0, 20.0, -6.0, 32.0],
        ]
    )
    / 45.0
)


def wathen(nx: int, ny: int = 0, *, seed: int = 0) -> CSRMatrix:
    """The Wathen matrix: random-density serendipity FE mass matrix.

    The paper's ``wathen100``/``wathen120`` rows ("Random 2D/3D problem").
    Global size ``3·nx·ny + 2·nx + 2·ny + 1``; per-element densities are
    ``100 · U(0,1)`` as in the classic gallery definition.
    """
    ny = ny or nx
    rng = np.random.default_rng(seed)
    # Node numbering: corners, horizontal mid-edges, vertical mid-edges.
    n_corner = (nx + 1) * (ny + 1)
    n_hmid = nx * (ny + 1)

    def corner(i, j):
        return i * (ny + 1) + j

    def hmid(i, j):  # midpoint of horizontal edge (i..i+1, j)
        return n_corner + i * (ny + 1) + j

    def vmid(i, j):  # midpoint of vertical edge (i, j..j+1)
        return n_corner + n_hmid + i * ny + j

    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    i, j = i.ravel(), j.ravel()
    conn = np.stack(
        [
            corner(i, j), hmid(i, j), corner(i + 1, j), vmid(i + 1, j),
            corner(i + 1, j + 1), hmid(i, j + 1), corner(i, j + 1), vmid(i, j),
        ],
        axis=1,
    )
    rho = 100.0 * rng.uniform(size=(len(i), 1, 1))
    elements = rho * _WATHEN_ELEMENT[None, :, :]
    n = 3 * nx * ny + 2 * nx + 2 * ny + 1
    return _assemble(n, conn, elements)


def scaled_stiffness2d(
    nx: int, ny: int = 0, *, decades: float = 4.0, seed: int = 0
) -> CSRMatrix:
    """Laplace stiffness with wildly varying element scales.

    Per-element coefficients are log-uniform over ``decades`` orders of
    magnitude — a surrogate for the badly-scaled model-reduction and
    ``bcsstk`` structural rows whose FSAI-preconditioned solves need
    thousands of iterations.  Dirichlet on the ``x = 0`` edge.
    """
    ny = ny or nx
    rng = np.random.default_rng(seed)
    conn = _q4_connectivity(nx, ny)
    scales = 10.0 ** rng.uniform(-decades / 2, decades / 2, size=(len(conn), 1, 1))
    ke = q4_stiffness_element()
    n_nodes = (nx + 1) * (ny + 1)
    full = _assemble(n_nodes, conn, scales * ke[None, :, :])
    keep = np.ones(n_nodes, dtype=bool)
    keep[np.arange(ny + 1)] = False  # i == 0 edge
    return _eliminate(full, keep)


def shifted_helmholtz2d(
    nx: int, ny: int = 0, *, sigma: float = 1.0
) -> CSRMatrix:
    """SPD shifted Helmholtz operator ``K + σ M`` (acoustics domain).

    Large ``σ`` is mass-dominated (the ~13-iteration ``qa8fm`` regime),
    small ``σ`` approaches pure stiffness.  ``σ`` must be positive to stay
    SPD (the indefinite ``K − k²M`` Helmholtz is outside CG's remit and the
    paper's test set).
    """
    ny = ny or nx
    if sigma <= 0:
        raise ValueError("sigma must be positive for an SPD operator")
    conn = _q4_connectivity(nx, ny)
    el = q4_stiffness_element() + sigma * q4_mass_element()
    return _assemble((nx + 1) * (ny + 1), conn, el)
