"""Finite-difference generators (CFD / thermal / generic 2D-3D domains).

All generators return SPD :class:`~repro.sparse.csr.CSRMatrix` objects
assembled fully vectorised (stencil offsets broadcast over the whole grid —
no per-node Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.construct import csr_from_coo_arrays
from repro.sparse.csr import CSRMatrix

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic_poisson2d",
    "thermal_conduction2d",
]


def _grid_index2d(nx: int, ny: int):
    i, j = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    return i.ravel(), j.ravel()


def poisson2d(nx: int, ny: int = 0) -> CSRMatrix:
    """5-point Laplacian on an ``nx × ny`` grid with Dirichlet boundaries.

    The canonical "2D/3D problem" matrix: condition number grows like
    ``O(h^{-2})``, giving the few-hundred-iteration regime of the paper's
    Dubcova/fv rows at our scales.
    """
    ny = ny or nx
    if nx < 2 or ny < 2:
        raise ValueError("grid must be at least 2x2")
    n = nx * ny
    i, j = _grid_index2d(nx, ny)
    k = i * ny + j
    rows = [k]
    cols = [k]
    vals = [np.full(n, 4.0)]
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ii, jj = i + di, j + dj
        ok = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        rows.append(k[ok])
        cols.append(ii[ok] * ny + jj[ok])
        vals.append(np.full(ok.sum(), -1.0))
    return csr_from_coo_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def poisson3d(nx: int, ny: int = 0, nz: int = 0) -> CSRMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid, Dirichlet boundaries."""
    ny = ny or nx
    nz = nz or nx
    if min(nx, ny, nz) < 2:
        raise ValueError("grid must be at least 2x2x2")
    n = nx * ny * nz
    i, j, m = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    i, j, m = i.ravel(), j.ravel(), m.ravel()
    k = (i * ny + j) * nz + m
    rows = [k]
    cols = [k]
    vals = [np.full(n, 6.0)]
    for di, dj, dl in (
        (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)
    ):
        ii, jj, ll = i + di, j + dj, m + dl
        ok = (
            (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
            & (ll >= 0) & (ll < nz)
        )
        rows.append(k[ok])
        cols.append((ii[ok] * ny + jj[ok]) * nz + ll[ok])
        vals.append(np.full(ok.sum(), -1.0))
    return csr_from_coo_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def anisotropic_poisson2d(
    nx: int, ny: int = 0, *, epsilon: float = 1e-2, theta: float = 0.0
) -> CSRMatrix:
    """Rotated anisotropic diffusion — the classic CFD stress test.

    Discretises ``-div(K ∇u)`` with a constant diffusion tensor of
    eigenvalues ``(1, epsilon)`` rotated by ``theta`` radians, using the
    standard 9-point stencil.  Small ``epsilon`` produces the strong
    directional coupling (and slow CG convergence) typical of boundary-layer
    CFD meshes such as the paper's ``cfd1``/``cfd2`` rows.

    The mixed-derivative cross terms of the 9-point stencil keep the matrix
    symmetric; SPD holds for ``epsilon > 0`` and moderate rotation.
    """
    ny = ny or nx
    eps = float(epsilon)
    if eps <= 0:
        raise ValueError("epsilon must be positive")
    c, s = np.cos(theta), np.sin(theta)
    # Diffusion tensor entries.
    kxx = c * c + eps * s * s
    kyy = s * s + eps * c * c
    kxy = (1.0 - eps) * c * s
    n = nx * ny
    i, j = _grid_index2d(nx, ny)
    k = i * ny + j
    # 9-point stencil weights (standard second-order FD of the rotated
    # operator; see e.g. Trottenberg et al., Multigrid, §7.7).
    stencil = {
        (0, 0): 2.0 * kxx + 2.0 * kyy,
        (1, 0): -kxx,
        (-1, 0): -kxx,
        (0, 1): -kyy,
        (0, -1): -kyy,
        (1, 1): -kxy / 2.0,
        (-1, -1): -kxy / 2.0,
        (1, -1): kxy / 2.0,
        (-1, 1): kxy / 2.0,
    }
    rows, cols, vals = [], [], []
    for (di, dj), w in stencil.items():
        if w == 0.0:
            continue
        ii, jj = i + di, j + dj
        ok = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        rows.append(k[ok])
        cols.append(ii[ok] * ny + jj[ok])
        vals.append(np.full(ok.sum(), w))
    return csr_from_coo_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def thermal_conduction2d(
    nx: int, ny: int = 0, *, contrast: float = 1e3, seed: int = 0,
    mass_shift: float = 0.0,
) -> CSRMatrix:
    """Heterogeneous heat conduction with lognormal-ish material jumps.

    Harmonic-mean face conductivities over a piecewise-random coefficient
    field: the heterogeneity contrast controls conditioning.  A positive
    ``mass_shift`` adds ``shift·diag`` (an implicit-Euler time step), pushing
    the matrix towards the very-well-conditioned regime of the paper's
    ``thermomech`` rows (which converge in ~9 iterations).
    """
    ny = ny or nx
    if contrast < 1:
        raise ValueError("contrast must be >= 1")
    rng = np.random.default_rng(seed)
    # Cell conductivities: log-uniform in [1/sqrt(contrast), sqrt(contrast)].
    log_half = 0.5 * np.log(contrast)
    kappa = np.exp(rng.uniform(-log_half, log_half, size=(nx + 1, ny + 1)))
    n = nx * ny
    i, j = _grid_index2d(nx, ny)
    k = i * ny + j

    def face_conductivity(ii, jj, ii2, jj2):
        # Harmonic mean of the two adjacent cell coefficients.
        a = kappa[ii % (nx + 1), jj % (ny + 1)]
        b = kappa[ii2 % (nx + 1), jj2 % (ny + 1)]
        return 2.0 * a * b / (a + b)

    rows, cols, vals = [k], [k], [np.zeros(n)]
    diag = np.zeros(n)
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ii, jj = i + di, j + dj
        ok = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        w = face_conductivity(i[ok], j[ok], ii[ok], jj[ok])
        rows.append(k[ok])
        cols.append(ii[ok] * ny + jj[ok])
        vals.append(-w)
        np.add.at(diag, k[ok], w)
    # Dirichlet boundary: faces to the boundary contribute only to diagonal.
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ii, jj = i + di, j + dj
        out = ~((ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny))
        w = face_conductivity(i[out], j[out], i[out], j[out])
        np.add.at(diag, k[out], w)
    if mass_shift > 0:
        diag += mass_shift * diag.mean() + mass_shift
    vals[0] = diag
    return csr_from_coo_arrays(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )
