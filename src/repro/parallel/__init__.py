"""Thread-parallel execution model.

The paper's implementation is OpenMP-parallel and every experiment runs on
all 40-48 cores of the node (§7.1); SpMV parallelises over row blocks and
the FSAI setup over rows (§4.2: "easily parallelized using threading-based
approaches").  This subpackage models that:

* :class:`~repro.parallel.partition.RowPartition` — contiguous row-block
  partitions balanced by rows or by stored entries, with load-imbalance
  metrics;
* :mod:`~repro.parallel.cost` — a parallel roofline: per-core compute on
  the slowest block, shared memory bandwidth, per-thread private L1s
  simulated independently;
* :mod:`~repro.parallel.threadbudget` — the campaign thread-budget policy
  (``workers × threads ≤ cores``) exported to orchestrator workers.
"""

from repro.parallel.partition import RowPartition
from repro.parallel.threadbudget import (
    THREAD_ENV_VARS,
    apply_thread_budget,
    thread_budget_env,
    threads_per_worker,
)
from repro.parallel.cost import (
    ParallelSpMVCost,
    estimate_case_seconds,
    order_cases_by_cost,
    parallel_spmv_cost,
    parallel_speedup_curve,
    simulate_parallel_l1_misses,
)

__all__ = [
    "RowPartition",
    "THREAD_ENV_VARS",
    "apply_thread_budget",
    "thread_budget_env",
    "threads_per_worker",
    "ParallelSpMVCost",
    "estimate_case_seconds",
    "order_cases_by_cost",
    "parallel_spmv_cost",
    "parallel_speedup_curve",
    "simulate_parallel_l1_misses",
]
