"""Parallel roofline for thread-parallel SpMV.

Model
-----
With ``p`` threads on contiguous row blocks:

* compute time is set by the slowest block at the per-core sustained rate
  ``machine.spmv_flops / machine.cores``;
* streamed bytes share the node's memory bandwidth (the aggregate roofline
  term — SpMV saturates DRAM long before compute on all three target
  systems, which is why the paper uses all cores);
* every thread has a private L1: the x-vector misses of each block are
  simulated against a fresh cache, and their line fills are charged to the
  shared bandwidth with the random-access penalty.

This reproduces the two first-order parallel effects: bandwidth saturation
(speedup flattens at the roofline knee) and load imbalance (nnz-balanced
partitions beat row-balanced ones on skewed matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.address import ArrayPlacement
from repro.arch.machine import MachineModel
from repro.cachesim.spmv_sim import simulate_spmv
from repro.errors import ConfigurationError
from repro.parallel.partition import RowPartition
from repro.perf.costmodel import (
    RANDOM_ACCESS_PENALTY,
    STREAM_BYTES_PER_NNZ,
    STREAM_BYTES_PER_ROW,
    scale_caches,
)
from repro.sparse.pattern import Pattern

__all__ = [
    "ParallelSpMVCost",
    "simulate_parallel_l1_misses",
    "parallel_spmv_cost",
    "parallel_speedup_curve",
    "estimate_case_seconds",
    "order_cases_by_cost",
]


@dataclass(frozen=True)
class ParallelSpMVCost:
    """Modelled cost of one thread-parallel SpMV."""

    n_threads: int
    seconds: float
    compute_seconds: float
    memory_seconds: float
    imbalance: float
    x_misses_total: int

    @property
    def bound(self) -> str:
        """Which roofline term dominates: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


def simulate_parallel_l1_misses(
    pattern: Pattern,
    machine: MachineModel,
    partition: RowPartition,
    *,
    placement: Optional[ArrayPlacement] = None,
    cache_scale: float = 1.0,
    include_streams: bool = True,
) -> List[int]:
    """Per-thread x-vector L1 miss counts (private caches).

    Each block is replayed against its own (scaled) L1 — threads do not
    share first-level caches on any of the paper's machines.
    """
    placement = placement or ArrayPlacement.aligned(machine.line_bytes)
    sim_machine = scale_caches(machine, cache_scale)
    misses = []
    for t in range(partition.n_parts):
        sub = partition.restrict_pattern(pattern, t)
        if sub.nnz == 0:
            misses.append(0)
            continue
        res = simulate_spmv(
            sub, sim_machine, placement=placement,
            include_streams=include_streams,
        )
        misses.append(res.x_misses)
    return misses


def parallel_spmv_cost(
    pattern: Pattern,
    machine: MachineModel,
    n_threads: int,
    *,
    partition: Optional[RowPartition] = None,
    placement: Optional[ArrayPlacement] = None,
    cache_scale: float = 1.0,
) -> ParallelSpMVCost:
    """Parallel roofline cost of ``y = A x`` with ``n_threads`` threads."""
    if n_threads < 1 or n_threads > machine.cores:
        raise ConfigurationError(
            f"n_threads must be in [1, {machine.cores}], got {n_threads}"
        )
    partition = partition or RowPartition.by_nnz(pattern, n_threads)
    if partition.n_parts != n_threads:
        raise ConfigurationError("partition size disagrees with n_threads")

    nnz_per_block = partition.nnz_per_block(pattern).astype(np.float64)
    per_core_flops = machine.spmv_flops / machine.cores

    # Compute: slowest block.
    compute_seconds = float(
        (2.0 * nnz_per_block.max()) / per_core_flops
    )

    # Memory: aggregate streams + penalised x-line fills over all threads.
    misses = simulate_parallel_l1_misses(
        pattern, machine, partition,
        placement=placement, cache_scale=cache_scale,
    )
    streamed = (
        STREAM_BYTES_PER_NNZ * pattern.nnz
        + STREAM_BYTES_PER_ROW * pattern.n_rows
    )
    x_bytes = sum(misses) * machine.line_bytes
    memory_seconds = (
        streamed + RANDOM_ACCESS_PENALTY * x_bytes
    ) / machine.memory_bandwidth_bps

    return ParallelSpMVCost(
        n_threads=n_threads,
        seconds=max(compute_seconds, memory_seconds),
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        imbalance=partition.imbalance(pattern),
        x_misses_total=int(sum(misses)),
    )


# ----------------------------------------------------------------------
# Campaign scheduling cost model.
#
# The orchestrator (repro.experiments.orchestrator) shards the suite at
# case granularity; with heterogeneous cases, longest-processing-time-first
# ordering bounds the makespan at (4/3 - 1/3p) x optimal, so it needs a
# *static* per-case cost estimate available without building the matrix.
# ----------------------------------------------------------------------

#: Equivalent-iterations weight of one preconditioner setup (the k^3 local
#: solves + simulated application cost dominate cheap, fast-converging
#: cases; calibrated on the quick cross-section).
SETUP_EQUIVALENT_ITERATIONS = 60.0


def estimate_case_seconds(case, *, n_setups: int = 9) -> float:
    """Static cost estimate of one campaign case, in arbitrary seconds.

    Uses only the suite registry's paper metadata — the synthetic suite is
    tuned so its per-case difficulty ordering tracks the paper's, which
    makes ``fsai_iters`` a usable iteration-count proxy and ``nnz`` a
    usable size proxy (sizes are uniformly scaled down, preserving order).
    Absolute values are meaningless; only the *relative* ordering and the
    rough magnitude ratios matter for scheduling and ETA estimation.

    Parameters
    ----------
    case:
        A :class:`repro.collection.suite.MatrixCase`.
    n_setups:
        Number of preconditioner setups the experiment grid performs per
        case (methods x filters + baseline); default matches
        :class:`~repro.experiments.runner.ExperimentConfig` defaults.
    """
    iters = float(case.paper.fsai_iters)
    size = float(np.sqrt(case.paper.nnz))
    return 1e-6 * size * (iters + n_setups * SETUP_EQUIVALENT_ITERATIONS)


def order_cases_by_cost(cases, *, n_setups: int = 9):
    """Cases sorted most-expensive-first (LPT order), ties by case id.

    Deterministic: equal estimates fall back to ascending case id, so the
    orchestrator's task queue is reproducible run-to-run.
    """
    return sorted(
        cases,
        key=lambda c: (-estimate_case_seconds(c, n_setups=n_setups), c.case_id),
    )


def parallel_speedup_curve(
    pattern: Pattern,
    machine: MachineModel,
    thread_counts: Sequence[int],
    *,
    cache_scale: float = 1.0,
) -> List[ParallelSpMVCost]:
    """Cost at each thread count (nnz-balanced partitions)."""
    return [
        parallel_spmv_cost(
            pattern, machine, p, cache_scale=cache_scale
        )
        for p in thread_counts
    ]
