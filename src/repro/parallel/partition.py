"""Row-block partitions for thread-parallel SpMV and FSAI setup.

Contiguous row blocks are the standard OpenMP ``schedule(static)``
decomposition for CSR SpMV: each thread owns a slice of rows (and hence a
slice of ``y``), reads of ``x`` are shared.  Balancing by *stored entries*
rather than rows is the classic fix for skewed row-length distributions
(FE matrices with boundary rows, circuit matrices with hub nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._typing import IndexArray, as_index_array
from repro.errors import ConfigurationError, ShapeError
from repro.sparse.pattern import Pattern

__all__ = ["RowPartition"]


@dataclass(frozen=True)
class RowPartition:
    """A partition of ``n_rows`` rows into contiguous blocks.

    ``boundaries`` has ``n_parts + 1`` entries with ``boundaries[t]`` the
    first row of block ``t``; empty blocks are legal (more threads than
    rows).
    """

    boundaries: IndexArray

    def __post_init__(self) -> None:
        b = as_index_array(self.boundaries)
        if len(b) < 2 or b[0] != 0 or np.any(np.diff(b) < 0):
            raise ConfigurationError(f"invalid partition boundaries {b}")
        object.__setattr__(self, "boundaries", b)

    # ------------------------------------------------------------------
    @classmethod
    def by_rows(cls, n_rows: int, n_parts: int) -> "RowPartition":
        """Equal row counts (±1) per block — OpenMP ``schedule(static)``."""
        if n_parts < 1:
            raise ConfigurationError("need at least one part")
        return cls(np.linspace(0, n_rows, n_parts + 1).astype(np.int64))

    @classmethod
    def by_nnz(cls, pattern: Pattern, n_parts: int) -> "RowPartition":
        """Balance stored entries per block (greedy prefix-sum splitting)."""
        if n_parts < 1:
            raise ConfigurationError("need at least one part")
        cum = np.asarray(pattern.indptr, dtype=np.float64)
        total = cum[-1]
        targets = total * np.arange(1, n_parts) / n_parts
        cuts = np.searchsorted(cum, targets, side="left")
        boundaries = np.concatenate(
            [[0], cuts, [pattern.n_rows]]
        ).astype(np.int64)
        # Enforce monotonicity (possible when many empty rows collapse cuts).
        boundaries = np.maximum.accumulate(boundaries)
        return cls(boundaries)

    # ------------------------------------------------------------------
    @property
    def n_parts(self) -> int:
        return len(self.boundaries) - 1

    @property
    def n_rows(self) -> int:
        return int(self.boundaries[-1])

    def block(self, t: int) -> Tuple[int, int]:
        """Half-open row range ``[lo, hi)`` of block ``t``."""
        if not 0 <= t < self.n_parts:
            raise IndexError(f"block {t} out of range")
        return int(self.boundaries[t]), int(self.boundaries[t + 1])

    def rows_per_block(self) -> IndexArray:
        return np.diff(self.boundaries)

    def nnz_per_block(self, pattern: Pattern) -> IndexArray:
        """Stored entries owned by each block."""
        if pattern.n_rows != self.n_rows:
            raise ShapeError(
                f"partition covers {self.n_rows} rows, pattern has {pattern.n_rows}"
            )
        return np.diff(pattern.indptr[self.boundaries])

    def imbalance(self, pattern: Pattern) -> float:
        """Load imbalance ``max/mean`` of per-block nnz (1.0 = perfect).

        Blocks are weighted by stored entries — the flop- and stream-count
        proxy for SpMV work.
        """
        loads = self.nnz_per_block(pattern).astype(np.float64)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    def block_of_row(self, i: int) -> int:
        """Block owning row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range")
        return int(np.searchsorted(self.boundaries, i, side="right") - 1)

    def restrict_pattern(self, pattern: Pattern, t: int) -> Pattern:
        """Sub-pattern of block ``t``'s rows (row indices re-based to 0)."""
        lo, hi = self.block(t)
        indptr = pattern.indptr[lo: hi + 1] - pattern.indptr[lo]
        indices = pattern.indices[pattern.indptr[lo]: pattern.indptr[hi]]
        return Pattern(hi - lo, pattern.n_cols, indptr, indices, _validated=True)

    def __repr__(self) -> str:
        return f"RowPartition(n_parts={self.n_parts}, n_rows={self.n_rows})"
