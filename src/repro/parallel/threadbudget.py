"""Thread-budget policy for multi-process campaign runs.

A campaign worker pool multiplies two levels of parallelism: ``jobs``
worker *processes*, each of which may run a threaded kernel backend (the
numba ``prange`` kernels honour ``NUMBA_NUM_THREADS``).  Left alone,
``jobs × default-thread-pool`` oversubscribes the machine — every worker
would size its pool to *all* cores.  The policy here is the obvious
ceiling: ``workers × threads ≤ cores``, i.e. each worker gets
``cores // jobs`` threads (at least one).

The orchestrator computes the budget once in the parent
(:func:`thread_budget_env`) and ships it to each worker, which applies it
(:func:`apply_thread_budget`) before running any case: the env vars cover
freshly imported runtimes, and the best-effort ``numba.set_num_threads``
call covers the fork-inherited numba whose thread layer ignored the env
because it was already initialised in the parent.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "THREAD_ENV_VARS",
    "threads_per_worker",
    "thread_budget_env",
    "apply_thread_budget",
]

#: Environment variables the budget is exported through: numba's own knob
#: plus OpenMP's, which covers numba's OMP thread layer and any
#: OpenMP-backed BLAS the worker links.
THREAD_ENV_VARS = ("NUMBA_NUM_THREADS", "OMP_NUM_THREADS")


def threads_per_worker(jobs: int, *, cores: Optional[int] = None) -> int:
    """Threads each of ``jobs`` workers may use: ``max(1, cores // jobs)``."""
    if cores is None:
        cores = os.cpu_count() or 1
    return max(1, cores // max(1, jobs))


def thread_budget_env(jobs: int, *, cores: Optional[int] = None) -> Dict[str, str]:
    """Environment mapping exporting the per-worker budget."""
    budget = str(threads_per_worker(jobs, cores=cores))
    return {var: budget for var in THREAD_ENV_VARS}


def apply_thread_budget(env: Dict[str, str]) -> None:
    """Apply a budget inside a worker process.

    Sets the env vars (authoritative for anything imported after this
    point) and, when numba is importable, resizes its live thread pool —
    a forked worker inherits the parent's already-initialised threading
    layer, which only ``numba.set_num_threads`` can shrink.  Failures of
    the live resize are swallowed: the env vars still bound any runtime
    initialised later, and a missing/unconfigurable numba must never
    break a campaign.
    """
    os.environ.update(env)
    try:
        import numba

        numba.set_num_threads(int(env.get("NUMBA_NUM_THREADS", "1")))
    except Exception:  # noqa: BLE001 - best effort by design
        pass
