"""Sparse-matrix substrate.

This subpackage is a self-contained sparse linear-algebra layer implemented
from scratch on top of NumPy.  It provides the three classic coordinate /
compressed containers (:class:`COOMatrix`, :class:`CSRMatrix`,
:class:`CSCMatrix`), a structure-only :class:`Pattern` type used heavily by
the FSAI pattern machinery, vectorised SpMV kernels, symbolic operations
(transpose, triangular parts, union, pattern powers), thresholding, and
Matrix Market I/O.

Design notes
------------
* All index arrays are ``int64`` and all value arrays ``float64``
  (see :mod:`repro._typing`); cache-line arithmetic elsewhere in the library
  assumes 8-byte elements.
* CSR rows always keep their column indices **sorted and unique**; this is
  validated on construction (cheaply, vectorised) and preserved by every
  operation in this package.  The cache-friendly fill-in algorithm relies on
  this invariant.
* Kernels avoid per-element Python work: SpMV is ``data * x[indices]``
  followed by a ``bincount`` segmented reduction, which is the fastest
  pure-NumPy formulation for matrices with many short rows (the common case
  for FE/FD discretisations).
"""

from repro.sparse.pattern import Pattern
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.construct import (
    csr_from_dense,
    csr_identity,
    csr_from_coo_arrays,
    csr_diagonal_matrix,
)
from repro.sparse.symbolic import (
    pattern_power,
    threshold_pattern,
    symmetrize_pattern,
)
from repro.sparse.io_mm import read_matrix_market, write_matrix_market

__all__ = [
    "Pattern",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "csr_from_dense",
    "csr_identity",
    "csr_from_coo_arrays",
    "csr_diagonal_matrix",
    "pattern_power",
    "threshold_pattern",
    "symmetrize_pattern",
    "read_matrix_market",
    "write_matrix_market",
]
