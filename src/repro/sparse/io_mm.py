"""Matrix Market I/O.

The paper's experimental set comes from the SuiteSparse collection, which is
distributed in Matrix Market format.  This reader/writer supports the subset
used by SPD problems: ``matrix coordinate real {general|symmetric}`` and
``matrix coordinate pattern {general|symmetric}`` (pattern files get unit
values).  Symmetric files store the lower triangle; reading mirrors it.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

import numpy as np

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def _open_maybe(path_or_file: Union[str, Path, TextIO], mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def read_matrix_market(source: Union[str, Path, TextIO]) -> CSRMatrix:
    """Read a Matrix Market coordinate file into a CSR matrix.

    Supports ``real``/``integer``/``pattern`` fields and ``general``/
    ``symmetric`` symmetries.  Symmetric storage is expanded to full storage
    (off-diagonal entries mirrored).
    """
    fh, should_close = _open_maybe(source, "r")
    try:
        header = fh.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise MatrixFormatError(f"not a MatrixMarket file: {header[:60]!r}")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise MatrixFormatError(f"malformed header: {header!r}")
        _, obj, fmt, field, symmetry = (t.lower() for t in tokens[:5])
        if obj != "matrix" or fmt != "coordinate":
            raise MatrixFormatError(
                f"only 'matrix coordinate' supported, got {obj!r} {fmt!r}"
            )
        if field not in ("real", "integer", "pattern"):
            raise MatrixFormatError(f"unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise MatrixFormatError(f"unsupported symmetry {symmetry!r}")

        # Skip comments, read the size line.
        line = fh.readline()
        while line and line.lstrip().startswith("%"):
            line = fh.readline()
        if not line:
            raise MatrixFormatError("missing size line")
        parts = line.split()
        if len(parts) != 3:
            raise MatrixFormatError(f"malformed size line: {line!r}")
        n_rows, n_cols, nnz = (int(p) for p in parts)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        k = 0
        for line in fh:
            s = line.strip()
            if not s or s.startswith("%"):
                continue
            if k >= nnz:
                raise MatrixFormatError("more entries than declared")
            toks = s.split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            if field != "pattern":
                if len(toks) < 3:
                    raise MatrixFormatError(f"missing value on line {line!r}")
                vals[k] = float(toks[2])
            k += 1
        if k != nnz:
            raise MatrixFormatError(f"declared {nnz} entries, found {k}")

        if symmetry == "symmetric":
            r, c, v = rows[:k], cols[:k], vals[:k]
            off = r != c
            rows = np.concatenate([r, c[off]])
            cols = np.concatenate([c, r[off]])
            vals = np.concatenate([v, v[off]])
        return COOMatrix(n_rows, n_cols, rows, cols, vals).to_csr()
    finally:
        if should_close:
            fh.close()


def write_matrix_market(
    matrix: CSRMatrix,
    target: Union[str, Path, TextIO],
    *,
    symmetric: bool = False,
    comment: str = "",
) -> None:
    """Write a CSR matrix as ``matrix coordinate real`` Matrix Market text.

    With ``symmetric=True``, only the lower triangle is emitted and the header
    declares ``symmetric`` (the reader mirrors it back).
    """
    out = matrix.tril() if symmetric else matrix
    symmetry = "symmetric" if symmetric else "general"
    fh, should_close = _open_maybe(target, "w")
    try:
        fh.write(f"%%MatrixMarket matrix coordinate real {symmetry}\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {out.nnz}\n")
        rows = out.row_ids()
        buf: List[str] = []
        for r, c, v in zip(rows, out.indices, out.data):
            buf.append(f"{r + 1} {c + 1} {v:.17g}\n")
            if len(buf) >= 4096:
                fh.write("".join(buf))
                buf.clear()
        fh.write("".join(buf))
    finally:
        if should_close:
            fh.close()


def matrix_market_string(matrix: CSRMatrix, **kwargs) -> str:
    """Render a matrix to Matrix Market text in memory."""
    buf = io.StringIO()
    write_matrix_market(matrix, buf, **kwargs)
    return buf.getvalue()
