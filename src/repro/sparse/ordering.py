"""Matrix reorderings (bandwidth reduction / locality).

Cache behaviour of SpMV depends on the matrix ordering: a small bandwidth
keeps the touched ``x`` lines clustered, which both reduces baseline misses
and concentrates the cache-friendly fill-in's opportunities.  The paper
evaluates matrices in their native SuiteSparse orderings; this module adds
the classic Reverse Cuthill–McKee (RCM) reordering so the interaction
between ordering and cache-aware fill-in can be studied (see
``benchmarks/bench_ablation_reordering.py``).

Implemented from scratch on the CSR structure:

* :func:`reverse_cuthill_mckee` — BFS from a pseudo-peripheral vertex,
  neighbours visited in increasing-degree order, final order reversed;
* :func:`permute_symmetric` — ``P A P^T`` for a permutation vector;
* :func:`bandwidth` / :func:`profile` — the quality metrics RCM targets.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro._typing import IndexArray, as_index_array
from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "bandwidth",
    "profile",
    "reverse_cuthill_mckee",
    "permute_symmetric",
    "pseudo_peripheral_vertex",
]


def bandwidth(a) -> int:
    """Half-bandwidth ``max |i - j|`` over stored entries (0 if empty)."""
    pattern = a if isinstance(a, Pattern) else a.pattern
    if pattern.nnz == 0:
        return 0
    rows, cols = pattern.coo()
    return int(np.abs(rows - cols).max())


def profile(a) -> int:
    """Envelope profile: ``sum_i (i - min_col(i))`` over non-empty rows."""
    pattern = a if isinstance(a, Pattern) else a.pattern
    total = 0
    for i in range(pattern.n_rows):
        row = pattern.row(i)
        if len(row):
            total += int(i - min(row[0], i))
    return total


def _adjacency(pattern: Pattern):
    """Symmetrised adjacency rows (diagonal removed)."""
    sym = pattern.union(pattern.transpose())
    def neighbours(v: int) -> np.ndarray:
        row = sym.row(v)
        return row[row != v]
    return sym, neighbours


def pseudo_peripheral_vertex(pattern: Pattern, start: int = 0) -> int:
    """George–Liu pseudo-peripheral vertex: repeat BFS towards the most
    eccentric low-degree vertex until the eccentricity stops growing."""
    if pattern.n_rows != pattern.n_cols:
        raise ShapeError("ordering requires a square pattern")
    if pattern.n_rows == 0:
        raise ShapeError("empty pattern")
    sym, neighbours = _adjacency(pattern)
    degrees = sym.row_lengths()

    def bfs_levels(root: int) -> Tuple[np.ndarray, int]:
        level = -np.ones(pattern.n_rows, dtype=np.int64)
        level[root] = 0
        q = deque([root])
        depth = 0
        while q:
            v = q.popleft()
            for w in neighbours(v):
                if level[w] < 0:
                    level[w] = level[v] + 1
                    depth = max(depth, int(level[w]))
                    q.append(w)
        return level, depth

    root = int(start)
    _, ecc = bfs_levels(root)
    while True:
        level, depth = bfs_levels(root)
        last = np.flatnonzero(level == depth)
        if len(last) == 0:
            return root
        candidate = int(last[np.argmin(degrees[last])])
        _, new_depth = bfs_levels(candidate)
        if new_depth <= depth:
            return root
        root, ecc = candidate, new_depth


def reverse_cuthill_mckee(a) -> IndexArray:
    """RCM permutation ``perm`` such that ``A[perm][:, perm]`` has a small
    bandwidth.  ``perm[k]`` is the original index of new row ``k``.

    Handles disconnected graphs (each component BFS'd from its own
    pseudo-peripheral vertex).
    """
    pattern = a if isinstance(a, Pattern) else a.pattern
    if pattern.n_rows != pattern.n_cols:
        raise ShapeError("ordering requires a square matrix")
    n = pattern.n_rows
    sym, neighbours = _adjacency(pattern)
    degrees = np.asarray(sym.row_lengths())

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed in range(n):
        if visited[seed]:
            continue
        # Restrict the pseudo-peripheral search to this component by
        # starting from its first unvisited vertex.
        root = _component_peripheral(pattern, seed, neighbours)
        visited[root] = True
        order[pos] = root
        pos += 1
        q = deque([root])
        while q:
            v = q.popleft()
            nbrs = neighbours(v)
            nbrs = nbrs[~visited[nbrs]]
            for w in nbrs[np.argsort(degrees[nbrs], kind="stable")]:
                if not visited[w]:
                    visited[w] = True
                    order[pos] = w
                    pos += 1
                    q.append(w)
    if pos != n:  # pragma: no cover - defensive
        raise RuntimeError("RCM failed to visit every vertex")
    return order[::-1].copy()


def _component_peripheral(pattern: Pattern, seed: int, neighbours) -> int:
    """Pseudo-peripheral vertex of the component containing ``seed``."""
    # Cheap variant of George-Liu restricted to the reachable set.
    level = {seed: 0}
    q = deque([seed])
    far = seed
    while q:
        v = q.popleft()
        for w in neighbours(v):
            if w not in level:
                level[w] = level[v] + 1
                far = int(w)
                q.append(w)
    return far


def permute_symmetric(a: CSRMatrix, perm: IndexArray) -> CSRMatrix:
    """``P A P^T`` where ``P`` maps original index ``perm[k]`` to ``k``.

    Preserves symmetry and SPD-ness; the returned matrix is the same
    operator in the new labelling.
    """
    perm = as_index_array(perm)
    if a.n_rows != a.n_cols:
        raise ShapeError("symmetric permutation requires a square matrix")
    if sorted(perm.tolist()) != list(range(a.n_rows)):
        raise ShapeError("perm must be a permutation of 0..n-1")
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(len(perm), dtype=np.int64)
    rows = inverse[a.row_ids()]
    cols = inverse[a.indices]
    from repro.sparse.construct import csr_from_coo_arrays

    return csr_from_coo_arrays(a.n_rows, a.n_cols, rows, cols, a.data)
