"""Coordinate-format sparse matrix.

COO is the assembly format: generators emit (row, col, value) triplets, the
triplets are summed on duplicates, and the result is converted to CSR for
computation.  The class is deliberately small — the heavy lifting happens in
:class:`repro.sparse.csr.CSRMatrix`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._typing import FloatArray, IndexArray, as_index_array, as_value_array
from repro.errors import PatternError, ShapeError

__all__ = ["COOMatrix"]


class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Duplicated coordinates are allowed and are **summed** when converting to
    CSR (standard FE-assembly semantics).
    """

    __slots__ = ("n_rows", "n_cols", "row", "col", "data")

    def __init__(self, n_rows: int, n_cols: int, row, col, data) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row: IndexArray = as_index_array(row)
        self.col: IndexArray = as_index_array(col)
        self.data: FloatArray = as_value_array(data)
        if not (len(self.row) == len(self.col) == len(self.data)):
            raise ShapeError(
                f"triplet arrays disagree in length: "
                f"{len(self.row)}/{len(self.col)}/{len(self.data)}"
            )
        if len(self.row):
            if self.row.min() < 0 or self.row.max() >= self.n_rows:
                raise PatternError("row index out of range")
            if self.col.min() < 0 or self.col.max() >= self.n_cols:
                raise PatternError("col index out of range")

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summation)."""
        return len(self.data)

    def canonical(self) -> "COOMatrix":
        """Return a copy with duplicates summed and entries row-major sorted.

        Explicit zeros are preserved (they are structural entries).
        """
        if not len(self.row):
            return COOMatrix(self.n_rows, self.n_cols, self.row, self.col, self.data)
        order = np.lexsort((self.col, self.row))
        r, c, v = self.row[order], self.col[order], self.data[order]
        new_group = np.ones(len(r), dtype=bool)
        new_group[1:] = (np.diff(r) != 0) | (np.diff(c) != 0)
        group_ids = np.cumsum(new_group) - 1
        n_groups = int(group_ids[-1]) + 1
        summed = np.bincount(group_ids, weights=v, minlength=n_groups)
        starts = np.flatnonzero(new_group)
        return COOMatrix(self.n_rows, self.n_cols, r[starts], c[starts], summed)

    def to_csr(self):
        """Convert to :class:`~repro.sparse.csr.CSRMatrix` (duplicates summed)."""
        from repro.sparse.csr import CSRMatrix

        canon = self.canonical()
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(canon.row, minlength=self.n_rows), out=indptr[1:]
        )
        return CSRMatrix(
            self.n_rows, self.n_cols, indptr, canon.col, canon.data,
            _validated=True,
        )

    def to_dense(self) -> np.ndarray:
        """Dense array with duplicates summed (small matrices / testing)."""
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.row, self.col), self.data)
        return dense

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.n_cols, self.n_rows, self.col, self.row, self.data)

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
