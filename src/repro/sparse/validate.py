"""Validation utilities for sparse matrices.

Experiment code calls these before long campaigns so that malformed inputs
fail fast with a precise message instead of producing NaNs thousands of CG
iterations later.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotSPDError, NotSymmetricError, ShapeError
from repro.sparse.csr import CSRMatrix

__all__ = [
    "require_square",
    "require_symmetric",
    "require_positive_diagonal",
    "check_spd_sample",
    "gershgorin_bounds",
]


def require_square(a: CSRMatrix) -> None:
    """Raise :class:`ShapeError` unless ``a`` is square."""
    if a.n_rows != a.n_cols:
        raise ShapeError(f"matrix must be square, got {a.shape}")


def require_symmetric(a: CSRMatrix, tol: float = 1e-12) -> None:
    """Raise :class:`NotSymmetricError` unless ``a`` is numerically symmetric."""
    require_square(a)
    if not a.is_symmetric(tol):
        raise NotSymmetricError(
            f"matrix {a.shape} is not symmetric within tolerance {tol}"
        )


def require_positive_diagonal(a: CSRMatrix) -> None:
    """Raise :class:`NotSPDError` if any diagonal entry is <= 0.

    A positive diagonal is necessary (not sufficient) for SPD; it is the
    cheap screen applied before every FSAI setup.
    """
    require_square(a)
    d = a.diagonal()
    bad = np.flatnonzero(d <= 0)
    if len(bad):
        raise NotSPDError(
            f"non-positive diagonal at rows {bad[:5].tolist()}"
            + ("..." if len(bad) > 5 else "")
        )


def check_spd_sample(a: CSRMatrix, n_probes: int = 8, seed: int = 0) -> None:
    """Probabilistic SPD check: ``v^T A v > 0`` for random probe vectors.

    Cheap (``n_probes`` SpMVs) and catches gross indefiniteness; the
    definitive check happens implicitly inside the FSAI Cholesky solves.
    """
    require_square(a)
    rng = np.random.default_rng(seed)
    for _ in range(n_probes):
        v = rng.standard_normal(a.n_rows)
        quad = float(v @ a.matvec(v))
        if quad <= 0:
            raise NotSPDError(f"probe vector gives v^T A v = {quad:.3e} <= 0")


def gershgorin_bounds(a: CSRMatrix) -> tuple:
    """Gershgorin eigenvalue enclosure ``(lo, hi)`` of a square matrix.

    Useful for sanity-checking generator conditioning targets: all
    eigenvalues lie in ``[lo, hi]``.
    """
    require_square(a)
    d = a.diagonal()
    rows = a.row_ids()
    offdiag = np.abs(a.data) * (rows != a.indices)
    radius = np.bincount(rows, weights=offdiag, minlength=a.n_rows)
    return float(np.min(d - radius)), float(np.max(d + radius))
