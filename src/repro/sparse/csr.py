"""Compressed Sparse Row matrix and its SpMV kernels.

:class:`CSRMatrix` is the computational workhorse of the library: the CG
solver, the FSAI preconditioner application and the cache simulator all
consume CSR.  Kernels are fully vectorised (no per-element Python):

* ``A @ x``  —  gather ``x[indices]``, multiply by ``data``, segment-sum with
  ``np.bincount`` over a cached row-id expansion;
* ``A.T @ x`` —  scatter-add formulation with ``np.bincount`` over column
  indices, which lets us apply ``G`` and ``G^T`` from a single stored matrix
  exactly as the paper's FSAI application does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._typing import (
    FloatArray,
    IndexArray,
    as_index_array,
    as_value_array,
)
from repro.errors import ShapeError
from repro.sparse.pattern import Pattern, _validate_structure

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Sparse matrix in Compressed Sparse Row format.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr, indices:
        CSR structure; indices must be sorted and unique within each row.
    data:
        Values aligned with ``indices``.  Explicit zeros are legal structural
        entries (FSAI patterns routinely carry them).
    """

    __slots__ = (
        "n_rows", "n_cols", "indptr", "indices", "data", "_row_ids",
        "_entry_keys",
    )

    def __init__(
        self, n_rows: int, n_cols: int, indptr, indices, data, *,
        _validated: bool = False,
    ) -> None:
        self.indptr: IndexArray = as_index_array(indptr)
        self.indices: IndexArray = as_index_array(indices)
        self.data: FloatArray = as_value_array(data)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        if not _validated:
            _validate_structure(self.n_rows, self.n_cols, self.indptr, self.indices)
        if len(self.data) != len(self.indices):
            raise ShapeError(
                f"data has {len(self.data)} entries, indices has {len(self.indices)}"
            )
        self._row_ids: Optional[IndexArray] = None  # lazy np.repeat expansion
        self._entry_keys: Optional[IndexArray] = None  # lazy row-major keys

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return len(self.data)

    @property
    def pattern(self) -> Pattern:
        """Structure-only view of this matrix (shares index arrays)."""
        return Pattern(
            self.n_rows, self.n_cols, self.indptr, self.indices, _validated=True
        )

    def row_ids(self) -> IndexArray:
        """Row id of every stored entry (cached ``np.repeat`` expansion)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_ids

    def row(self, i: int) -> Tuple[IndexArray, FloatArray]:
        """``(columns, values)`` of row ``i`` (views, do not mutate)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def entry_keys(self) -> IndexArray:
        """Row-major key ``row * n_cols + col`` of every stored entry.

        Sorted ascending by construction (rows ascend, columns are sorted
        within each row), so :meth:`gather_entries` can binary-search it.
        Cached like :meth:`row_ids`.
        """
        if self._entry_keys is None:
            self._entry_keys = self.row_ids() * np.int64(self.n_cols) + self.indices
        return self._entry_keys

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _gather_product(
        self, x: FloatArray, gather_ids: IndexArray,
        scratch: Optional[FloatArray],
    ) -> FloatArray:
        """``data * x[gather_ids]``, into ``scratch`` when one is supplied."""
        if scratch is None:
            return self.data * x[gather_ids]
        if scratch.shape != (self.nnz,):
            raise ShapeError(
                f"scratch has shape {scratch.shape}, expected ({self.nnz},)"
            )
        np.take(x, gather_ids, out=scratch)
        np.multiply(scratch, self.data, out=scratch)
        return scratch

    def matvec(
        self, x: FloatArray, out: Optional[FloatArray] = None,
        *, scratch: Optional[FloatArray] = None,
    ) -> FloatArray:
        """``y = A @ x`` — vectorised CSR SpMV.

        ``out`` may be supplied to receive the result.  ``scratch`` — an
        ``nnz``-length float buffer — eliminates the per-call gather/product
        allocation (``np.take``/``np.multiply`` with ``out=``), which is the
        only allocation the CG hot loop would otherwise make per iteration.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        prod = self._gather_product(x, self.indices, scratch)
        y = np.bincount(self.row_ids(), weights=prod, minlength=self.n_rows)
        if out is not None:
            out[:] = y
            return out
        return y

    def rmatvec(
        self, x: FloatArray, out: Optional[FloatArray] = None,
        *, scratch: Optional[FloatArray] = None,
    ) -> FloatArray:
        """``y = A.T @ x`` without materialising the transpose.

        Scatter formulation: every stored entry ``(i, j, v)`` contributes
        ``v * x[i]`` to ``y[j]``.  ``scratch`` works as in :meth:`matvec`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_rows,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_rows},)")
        prod = self._gather_product(x, self.row_ids(), scratch)
        y = np.bincount(self.indices, weights=prod, minlength=self.n_cols)
        if out is not None:
            out[:] = y
            return out
        return y

    def __matmul__(self, x):
        return self.matvec(x)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def diagonal(self) -> FloatArray:
        """Main-diagonal values; structurally-absent positions read as 0."""
        n = min(self.n_rows, self.n_cols)
        diag = np.zeros(n)
        rows = self.row_ids()
        hit = (rows == self.indices) & (rows < n)
        diag[rows[hit]] = self.data[hit]
        return diag

    def _tri(self, *, lower: bool, keep_diagonal: bool) -> "CSRMatrix":
        rows = self.row_ids()
        if lower:
            keep = self.indices <= rows if keep_diagonal else self.indices < rows
        else:
            keep = self.indices >= rows if keep_diagonal else self.indices > rows
        return self._masked(keep)

    def tril(self, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Lower-triangular part as a new CSR matrix."""
        return self._tri(lower=True, keep_diagonal=keep_diagonal)

    def triu(self, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Upper-triangular part as a new CSR matrix."""
        return self._tri(lower=False, keep_diagonal=keep_diagonal)

    def _masked(self, keep: np.ndarray) -> "CSRMatrix":
        """New matrix keeping only entries where ``keep`` is True."""
        rows = self.row_ids()[keep]
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=self.n_rows), out=indptr[1:])
        return CSRMatrix(
            self.n_rows, self.n_cols, indptr, self.indices[keep], self.data[keep],
            _validated=True,
        )

    def drop_small(self, threshold: float, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Drop entries with ``|a_ij| <= threshold`` (optionally sparing the diagonal)."""
        keep = np.abs(self.data) > threshold
        if keep_diagonal:
            keep |= self.row_ids() == self.indices
        return self._masked(keep)

    def prune_zeros(self) -> "CSRMatrix":
        """Remove explicitly stored zeros."""
        return self._masked(self.data != 0.0)

    def submatrix(self, rows: IndexArray, cols: IndexArray) -> np.ndarray:
        """Dense ``A[rows][:, cols]`` gather — the FSAI local system extractor.

        ``rows`` and ``cols`` must each be sorted ascending.  Runs in
        ``O(sum of selected row lengths)`` with per-row vectorised gathers,
        which is the dominant pattern in FSAI setup (many tiny dense systems).
        """
        rows = as_index_array(rows)
        cols = as_index_array(cols)
        out = np.zeros((len(rows), len(cols)))
        for k, i in enumerate(rows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            row_cols = self.indices[lo:hi]
            row_vals = self.data[lo:hi]
            pos = np.searchsorted(cols, row_cols)
            pos_ok = pos < len(cols)
            hit = pos_ok & (cols[np.minimum(pos, len(cols) - 1)] == row_cols)
            out[k, pos[hit]] = row_vals[hit]
        return out

    def gather_entries(self, rows: IndexArray, cols: IndexArray) -> np.ndarray:
        """Values at positions ``(rows[j], cols[j])``; absent entries read 0.

        ``rows`` and ``cols`` may have any (matching) shape — the bucketed
        FSAI gather passes whole ``(batch, k, k)`` index blocks — and the
        values come back in that shape.  One binary search over the cached
        row-major :meth:`entry_keys` replaces the per-row searches of
        :meth:`submatrix`, so extracting every local system of a pattern
        bucket is a single vectorised lookup.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ShapeError(f"rows shape {rows.shape} != cols shape {cols.shape}")
        out = np.zeros(rows.shape)
        if rows.size == 0:
            return out
        if (rows.min() < 0 or rows.max() >= self.n_rows
                or cols.min() < 0 or cols.max() >= self.n_cols):
            raise ShapeError("gather_entries index out of range")
        keys = self.entry_keys()
        if len(keys) == 0:
            return out
        query = rows * np.int64(self.n_cols) + cols
        pos = np.searchsorted(keys, query)
        pos_c = np.minimum(pos, len(keys) - 1)
        hit = keys[pos_c] == query
        out[hit] = self.data[pos_c[hit]]
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """CSR matrix of ``A.T`` (explicit structure transpose)."""
        order = np.lexsort((self.row_ids(), self.indices))
        new_rows = self.indices[order]
        new_cols = self.row_ids()[order]
        new_data = self.data[order]
        indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_rows, minlength=self.n_cols), out=indptr[1:])
        return CSRMatrix(
            self.n_cols, self.n_rows, indptr, new_cols, new_data, _validated=True
        )

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def to_coo(self):
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.n_rows, self.n_cols, self.row_ids().copy(),
            self.indices.copy(), self.data.copy(),
        )

    def to_csc(self):
        from repro.sparse.csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(
            self.n_rows, self.n_cols, t.indptr, t.indices, t.data, _validated=True
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        dense[self.row_ids(), self.indices] = self.data
        return dense

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.n_rows, self.n_cols, self.indptr.copy(), self.indices.copy(),
            self.data.copy(), _validated=True,
        )

    def with_data(self, data: FloatArray) -> "CSRMatrix":
        """Same structure, new values (used when recomputing G on a fixed pattern)."""
        return CSRMatrix(
            self.n_rows, self.n_cols, self.indptr, self.indices, data,
            _validated=True,
        )

    @classmethod
    def from_pattern(cls, pattern: Pattern, data=None) -> "CSRMatrix":
        """Matrix over ``pattern``; values default to zero."""
        if data is None:
            data = np.zeros(pattern.nnz)
        return cls(
            pattern.n_rows, pattern.n_cols, pattern.indptr, pattern.indices,
            data, _validated=True,
        )

    # ------------------------------------------------------------------
    # Algebra helpers
    # ------------------------------------------------------------------
    def scale_rows(self, s: FloatArray) -> "CSRMatrix":
        """Return ``diag(s) @ A``."""
        s = as_value_array(s)
        if s.shape != (self.n_rows,):
            raise ShapeError("row scale vector has wrong length")
        return self.with_data(self.data * s[self.row_ids()])

    def scale_cols(self, s: FloatArray) -> "CSRMatrix":
        """Return ``A @ diag(s)``."""
        s = as_value_array(s)
        if s.shape != (self.n_cols,):
            raise ShapeError("column scale vector has wrong length")
        return self.with_data(self.data * s[self.indices])

    def frobenius_norm(self) -> float:
        """Frobenius norm of the stored values."""
        return float(np.sqrt(np.dot(self.data, self.data)))

    def max_norm(self) -> float:
        """Largest absolute stored value (0 for an empty matrix)."""
        return float(np.abs(self.data).max()) if self.nnz else 0.0

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Numerical symmetry check via ``‖A - A^T‖_max <= tol·‖A‖_max``."""
        if self.n_rows != self.n_cols:
            return False
        t = self.transpose()
        if not np.array_equal(t.indptr, self.indptr) or not np.array_equal(
            t.indices, self.indices
        ):
            # Structurally asymmetric — compare densely only for tiny matrices,
            # otherwise declare asymmetric (value-symmetric but structurally
            # asymmetric matrices do not occur in this library).
            return False
        scale = max(self.max_norm(), 1.0)
        return bool(np.abs(t.data - self.data).max() <= tol * scale) if self.nnz else True

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
