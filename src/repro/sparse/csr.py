"""Compressed Sparse Row matrix and its SpMV kernels.

:class:`CSRMatrix` is the computational workhorse of the library: the CG
solver, the FSAI preconditioner application and the cache simulator all
consume CSR.  The kernels themselves live in :mod:`repro.kernels` — a
pluggable backend registry (``numpy``/``numba``/``reference``) —
:meth:`matvec`/:meth:`rmatvec` validate shapes, then delegate to the
active backend.  The matrix caches the structure views the backends need
(row-id expansion, row segment starts, the column-grouped entry
permutation) so repeated products pay for them once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._einsum import _einsum
from repro._typing import (
    FloatArray,
    IndexArray,
    as_index_array,
    as_value_array,
)
from repro.errors import ShapeError
from repro.kernels import get_backend
from repro.sparse.pattern import Pattern, _validate_structure

__all__ = ["CSRMatrix", "ColSegments", "EllView"]

#: ELL fast-path gates (see :meth:`CSRMatrix.ell_view`): below the nnz
#: floor the segment-sum path's fixed cost is already negligible, and the
#: tiny-matrix scratch contract stays observable; above the padding ratio
#: the zero-filled tail would waste more bandwidth than the per-segment
#: reduction machinery costs.
_ELL_MIN_NNZ = 256
_ELL_MAX_PAD = 1.5

#: A DIA view stores ``n_diagonals * n`` values; build it only when that
#: is within this factor of the stored entry count (true stencils sit
#: near 1.0, anything unstructured blows past it immediately).
_DIA_MAX_FILL = 1.5

#: Hybrid (HYB) split gates for matrices that are *almost* stencils:
#: diagonals at least this occupied go into the DIA part (below ~25%
#: occupancy the padded einsum row costs more than scattering the same
#: entries through ``bincount``), and the split is only worthwhile when
#: the DIA part captures at least this fraction of the stored entries.
_HYB_MIN_OCCUPANCY = 0.25
_HYB_MIN_COVERAGE = 0.5

#: A HYB remainder whose rows pad to within this factor is stored in ELL
#: form (gather + einsum row-dot beats the ``bincount`` scatter); sparser
#: remainders stay COO.  Looser than ``_ELL_MAX_PAD`` because the
#: alternative here is the pricey scatter, not a tuned segment sum.
_HYB_REM_MAX_PAD = 2.0

#: Cache slot sentinel: "not computed yet" (``None`` means "ineligible").
_UNSET = object()


@dataclass(frozen=True)
class ColSegments:
    """Column-grouped view of a CSR matrix's entries (cached, immutable).

    ``rows``/``data`` are the entry row ids and values permuted into
    column-major order (stable sort by column, so row order is preserved
    within a column); ``starts`` marks each column group's first position.
    ``cols`` lists the group's column ids, or ``None`` when every column
    is non-empty (then group ``j`` is column ``j``).  This is exactly the
    structure a transpose product needs: ``A.T @ x`` is a gather over
    ``rows`` followed by one segment sum per group.
    """

    rows: IndexArray
    data: FloatArray
    starts: IndexArray
    cols: Optional[IndexArray]


class DiaView:
    """Diagonal (DIA) view of a stencil-structured CSR matrix (cached).

    For matrices whose entries concentrate on a few diagonals — the
    discretized-PDE shape of the paper's suite — SpMV needs no gather at
    all: ``y[i] = sum_d data[d, i] * x[i + offset_d]`` where each shifted
    ``x`` is a *contiguous window* of a zero-padded copy.  The view owns
    that padded buffer and a precomputed sliding-window view over it, so
    one product is: refill the pad interior, select ``k`` window rows
    (``k`` contiguous copies, no random access), one ``einsum`` row-dot.

    Almost-stencils (a dominant band plus scattered off-band entries, as
    boundary conditions and irregular couplings produce) get a *hybrid*
    split in the spirit of the classic HYB format: the well-occupied
    diagonals form the DIA part and the leftover entries are applied as a
    COO remainder through one gather + ``bincount`` scatter per product.

    When the remainder is empty, offsets ascend, so per output element
    the ``k`` terms accumulate in column order — the same sequential
    order as the CSR reference kernel, keeping the pure-stencil fast path
    bit-exact, not just close.  A non-empty remainder reorders the
    accumulation (DIA terms first, scattered terms second), which is
    float-associativity-accurate rather than bitwise.

    The padded buffer is per-matrix mutable scratch: products on the same
    matrix are not re-entrant (single-threaded solver loops, the only
    consumer, never interleave them).
    """

    __slots__ = (
        "data", "sel", "xp", "windows", "lo", "n_in", "n_out",
        "rem_out", "rem_in", "rem_data", "rem_buf", "rem_ell",
        "xpm", "windows_m",
    )

    def __init__(self, data: FloatArray, offsets: IndexArray,
                 n_in: int, n_out: int,
                 rem_out: Optional[IndexArray] = None,
                 rem_in: Optional[IndexArray] = None,
                 rem_data: Optional[FloatArray] = None,
                 rem_ell: Optional["EllView"] = None) -> None:
        self.data = data  # (k, n_out): data[d, i] = A[i, i + offsets[d]]
        lo = max(0, -int(offsets[0]))
        hi = max(0, int(offsets[-1]) + n_out - n_in)
        self.xp = np.zeros(n_in + lo + hi)
        self.windows = np.lib.stride_tricks.sliding_window_view(self.xp, n_out)
        self.sel = offsets + lo
        self.lo = lo
        self.n_in = n_in
        self.n_out = n_out
        self.rem_out = rem_out  # COO remainder (HYB split), or None
        self.rem_in = rem_in
        self.rem_data = rem_data
        self.rem_buf = None if rem_data is None else np.empty(len(rem_data))
        self.rem_ell = rem_ell  # row-padded remainder (see _HYB_REM_MAX_PAD)
        self.xpm = None  # (pad_len, k) twin of ``xp``, sized lazily per k
        self.windows_m = None  # sliding windows over ``xpm``, rebuilt with it

    def apply(self, x: FloatArray, out: FloatArray) -> FloatArray:
        """``out[i] = sum_d data[d, i] * x[i + offset_d]`` (+ remainder)."""
        self.xp[self.lo:self.lo + self.n_in] = x
        _einsum("kn,kn->n", self.data, self.windows[self.sel], out=out)
        if self.rem_ell is not None:
            out += _einsum(
                "ij,ij->i", self.rem_ell.data, x.take(self.rem_ell.gather_ids)
            )
        elif self.rem_out is not None:
            np.multiply(self.rem_data, x[self.rem_in], out=self.rem_buf)
            out += np.bincount(
                self.rem_out, weights=self.rem_buf, minlength=self.n_out,
            )
        return out

    def apply_multi(self, x: FloatArray, out: FloatArray) -> FloatArray:
        """Blocked :meth:`apply`: ``out[:, j] = A @ x[:, j]`` for every column.

        The zero-padded buffer grows a column axis (sized lazily to the
        block width and kept until the width changes, so a solver's
        repeated products reuse it).  The product itself is the blocked
        twin of :meth:`apply`'s row-dot: select the same ``k`` window
        slices of the padded block and contract the diagonal axis in one
        einsum.  That contraction sums diagonals in the same ascending
        order per output element as the single-vector kernel, so the
        pure-stencil multi path stays bit-identical to ``k`` single
        applies — and one call amortizes dispatch overhead across the
        whole block, which is where the multi-RHS throughput win lives.
        """
        k = x.shape[1]
        if self.xpm is None or self.xpm.shape[1] != k:
            self.xpm = np.zeros((len(self.xp), k))
            self.windows_m = np.lib.stride_tricks.sliding_window_view(
                self.xpm, self.n_out, axis=0
            )
        self.xpm[self.lo:self.lo + self.n_in] = x
        _einsum("dn,dkn->nk", self.data, self.windows_m[self.sel], out=out)
        if self.rem_ell is not None:
            out += _einsum(
                "nw,nwk->nk", self.rem_ell.data,
                x.take(self.rem_ell.gather_ids, axis=0),
            )
        elif self.rem_out is not None:
            for j in range(k):  # bincount is 1-D; column loop keeps the
                # scatter order identical to the single-vector remainder
                np.multiply(self.rem_data, x[self.rem_in, j], out=self.rem_buf)
                out[:, j] += np.bincount(
                    self.rem_out, weights=self.rem_buf, minlength=self.n_out,
                )
        return out


def _build_dia(
    offs_per_entry: np.ndarray, out_ids: IndexArray, in_ids: IndexArray,
    values: FloatArray, n_in: int, n_out: int,
) -> Optional[DiaView]:
    """DIA view over entries at ``(out_ids, out_ids + offs_per_entry)``.

    Pure stencils (every diagonal worth storing) get an exact DIA view;
    almost-stencils get the HYB split with the under-occupied diagonals'
    entries kept as a COO remainder; anything unstructured returns
    ``None`` and the caller falls back to ELL / segment sums.
    """
    nnz = len(values)
    if nnz < _ELL_MIN_NNZ:
        return None
    offsets, counts = np.unique(offs_per_entry, return_counts=True)
    k = len(offsets)
    if k == 0:
        return None
    if k * n_out <= _DIA_MAX_FILL * nnz:  # true stencil: exact DIA
        data = np.zeros((k, n_out))
        data[np.searchsorted(offsets, offs_per_entry), out_ids] = values
        return DiaView(data, offsets, n_in, n_out)
    dense = offsets[counts >= _HYB_MIN_OCCUPANCY * n_out]
    if len(dense) == 0:
        return None
    on_band = np.isin(offs_per_entry, dense)
    if int(on_band.sum()) < _HYB_MIN_COVERAGE * nnz:
        return None
    data = np.zeros((len(dense), n_out))
    data[
        np.searchsorted(dense, offs_per_entry[on_band]), out_ids[on_band]
    ] = values[on_band]
    off_band = ~on_band
    rem_out, rem_in = out_ids[off_band], in_ids[off_band]
    rem_values = values[off_band]
    # Dense-ish remainders are cheaper row-padded (gather + einsum) than
    # scattered through bincount; group them by output id first.
    order = np.argsort(rem_out, kind="stable")
    rem_ell = _build_ell(
        np.bincount(rem_out, minlength=n_out), rem_in[order],
        rem_values[order], n_out, max_pad=_HYB_REM_MAX_PAD,
    )
    if rem_ell is not None:
        return DiaView(data, dense, n_in, n_out, rem_ell=rem_ell)
    return DiaView(
        data, dense, n_in, n_out,
        rem_out=rem_out, rem_in=rem_in, rem_data=rem_values,
    )


@dataclass(frozen=True)
class EllView:
    """Row-padded (ELLPACK) view of a CSR matrix (cached, immutable).

    Every row is padded to the widest row's length: ``gather_ids`` and
    ``data`` are ``(n_rows, width)`` arrays where padding slots gather
    index 0 against a stored value of 0.0, so a product over the padded
    arrays equals the exact CSR product.  SpMV then collapses to one 2-D
    gather and one ``einsum`` row-dot — two NumPy calls with no
    per-segment reduction machinery — which is the numpy backend's fast
    path for the near-uniform row lengths of FEM/stencil matrices.
    """

    gather_ids: IndexArray
    data: FloatArray


def _build_ell(
    counts: np.ndarray, gather_ids: IndexArray, values: FloatArray,
    n_groups: int, max_pad: float = _ELL_MAX_PAD,
) -> Optional[EllView]:
    """Pad ``counts``-sized groups to uniform width, or ``None`` if wasteful."""
    nnz = len(values)
    if nnz < _ELL_MIN_NNZ:
        return None
    width = int(counts.max()) if n_groups else 0
    if width == 0 or n_groups * width > max_pad * nnz:
        return None
    idx = np.zeros((n_groups, width), dtype=np.int64)
    dat = np.zeros((n_groups, width))
    valid = np.arange(width) < counts[:, None]
    idx[valid] = gather_ids
    dat[valid] = values
    return EllView(gather_ids=idx, data=dat)


class CSRMatrix:
    """Sparse matrix in Compressed Sparse Row format.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr, indices:
        CSR structure; indices must be sorted and unique within each row.
    data:
        Values aligned with ``indices``.  Explicit zeros are legal structural
        entries (FSAI patterns routinely carry them).
    """

    __slots__ = (
        "n_rows", "n_cols", "indptr", "indices", "data", "_row_ids",
        "_entry_keys", "_row_segments", "_col_segments", "_ell", "_ell_t",
        "_dia", "_dia_t", "_fingerprint",
    )

    def __init__(
        self, n_rows: int, n_cols: int, indptr, indices, data, *,
        _validated: bool = False,
    ) -> None:
        self.indptr: IndexArray = as_index_array(indptr)
        self.indices: IndexArray = as_index_array(indices)
        self.data: FloatArray = as_value_array(data)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        if not _validated:
            _validate_structure(self.n_rows, self.n_cols, self.indptr, self.indices)
        if len(self.data) != len(self.indices):
            raise ShapeError(
                f"data has {len(self.data)} entries, indices has {len(self.indices)}"
            )
        self._row_ids: Optional[IndexArray] = None  # lazy np.repeat expansion
        self._entry_keys: Optional[IndexArray] = None  # lazy row-major keys
        self._row_segments: Optional[Tuple] = None  # lazy kernel row starts
        self._col_segments: Optional[ColSegments] = None  # lazy column view
        self._ell = _UNSET  # lazy row-padded view (None = ineligible)
        self._ell_t = _UNSET  # lazy column-padded view for A.T products
        self._dia = _UNSET  # lazy diagonal view (None = not a stencil)
        self._dia_t = _UNSET  # lazy diagonal view of A.T
        self._fingerprint: Optional[str] = None  # lazy content hash

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return len(self.data)

    @property
    def pattern(self) -> Pattern:
        """Structure-only view of this matrix (shares index arrays)."""
        return Pattern(
            self.n_rows, self.n_cols, self.indptr, self.indices, _validated=True
        )

    def fingerprint(self) -> str:
        """Content hash over dimensions, structure and values (cached).

        The preconditioner cache (:mod:`repro.fsai.cache`) keys on this:
        two matrices fingerprint equal exactly when they would produce the
        same FSAI factor.  SHA-256 over the raw array bytes — a one-time
        linear pass, cached because callers (the cache, campaign dedup)
        probe repeatedly with the same object.  Mutating ``data`` in place
        after the first call is outside the contract, as with every other
        cached view on this class.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(np.int64([self.n_rows, self.n_cols]).tobytes())
            h.update(np.ascontiguousarray(self.indptr).tobytes())
            h.update(np.ascontiguousarray(self.indices).tobytes())
            h.update(np.ascontiguousarray(self.data).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def row_ids(self) -> IndexArray:
        """Row id of every stored entry (cached ``np.repeat`` expansion)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_ids

    def row(self, i: int) -> Tuple[IndexArray, FloatArray]:
        """``(columns, values)`` of row ``i`` (views, do not mutate)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def entry_keys(self) -> IndexArray:
        """Row-major key ``row * n_cols + col`` of every stored entry.

        Sorted ascending by construction (rows ascend, columns are sorted
        within each row), so :meth:`gather_entries` can binary-search it.
        Cached like :meth:`row_ids`.
        """
        if self._entry_keys is None:
            self._entry_keys = self.row_ids() * np.int64(self.n_cols) + self.indices
        return self._entry_keys

    def row_segments(self) -> Tuple[IndexArray, Optional[IndexArray]]:
        """``(starts, rows)`` for per-row segment sums (cached).

        Without empty rows — the common case for SPD systems and FSAI
        factors — ``rows`` is ``None`` and ``starts`` is ``indptr[:-1]``,
        directly usable as ``np.add.reduceat`` offsets.  With empty rows,
        ``starts`` holds only the non-empty rows' offsets and ``rows``
        their row ids (the empty-row correction of the numpy backend).
        """
        if self._row_segments is None:
            starts = self.indptr[:-1]
            if self.n_rows and np.all(starts != self.indptr[1:]):
                self._row_segments = (starts, None)
            else:
                rows = np.flatnonzero(starts != self.indptr[1:])
                self._row_segments = (starts[rows], rows)
        return self._row_segments

    def col_segments(self) -> ColSegments:
        """Column-grouped entry view for transpose products (cached).

        One stable argsort of ``indices`` permutes the entries into
        column-major order; the result is cached so every later
        ``A.T @ x`` is a gather plus one ``reduceat`` — no bincount, no
        transpose materialisation.
        """
        if self._col_segments is None:
            order = np.argsort(self.indices, kind="stable")
            sorted_cols = self.indices[order]
            starts = np.flatnonzero(
                np.diff(sorted_cols, prepend=np.int64(-1)) != 0
            )
            cols: Optional[IndexArray] = sorted_cols[starts]
            if cols is not None and len(cols) == self.n_cols:
                cols = None  # every column non-empty: group j is column j
            self._col_segments = ColSegments(
                rows=self.row_ids()[order],
                data=self.data[order],
                starts=starts,
                cols=cols,
            )
        return self._col_segments

    def dia_view(self) -> Optional[DiaView]:
        """Diagonal view for the numpy backend's stencil SpMV (cached).

        ``None`` unless the entries concentrate on few enough diagonals
        (``_DIA_MAX_FILL``, or the ``_HYB_*`` split for almost-stencils);
        see :class:`DiaView` for the product shape.
        """
        if self._dia is _UNSET:
            self._dia = _build_dia(
                self.indices - self.row_ids(), self.row_ids(), self.indices,
                self.data, self.n_cols, self.n_rows,
            ) if self.n_rows == self.n_cols else None
        return self._dia

    def dia_t_view(self) -> Optional[DiaView]:
        """Diagonal view of ``A.T`` for stencil transpose products (cached)."""
        if self._dia_t is _UNSET:
            self._dia_t = _build_dia(
                self.row_ids() - self.indices, self.indices, self.row_ids(),
                self.data, self.n_rows, self.n_cols,
            ) if self.n_rows == self.n_cols else None
        return self._dia_t

    def ell_view(self) -> Optional[EllView]:
        """Row-padded view for the numpy backend's SpMV fast path (cached).

        Returns ``None`` when padding would be wasteful: fewer than
        ``_ELL_MIN_NNZ`` entries, or the widest row forcing more than
        ``_ELL_MAX_PAD``× the stored entry count.  Empty rows need no
        correction here — their padded slots contribute exact zeros.
        """
        if self._ell is _UNSET:
            self._ell = _build_ell(
                np.diff(self.indptr), self.indices, self.data, self.n_rows
            )
        return self._ell

    def ell_t_view(self) -> Optional[EllView]:
        """Column-padded view for transpose products (cached).

        The column-grouped permutation of :meth:`col_segments` padded to
        the fullest column's length, so ``A.T @ x`` becomes the same
        gather + row-dot shape as :meth:`ell_view` gives ``A @ x``.
        """
        if self._ell_t is _UNSET:
            seg = self.col_segments()
            ends = np.append(seg.starts[1:], self.nnz)
            group_counts = ends - seg.starts
            if seg.cols is None:
                counts = group_counts
            else:
                counts = np.zeros(self.n_cols, dtype=np.int64)
                counts[seg.cols] = group_counts
            self._ell_t = _build_ell(counts, seg.rows, seg.data, self.n_cols)
        return self._ell_t

    # ------------------------------------------------------------------
    # Kernels (delegated to the repro.kernels backend registry)
    # ------------------------------------------------------------------
    def _check_scratch(self, scratch: Optional[FloatArray]) -> None:
        if scratch is not None and scratch.shape != (self.nnz,):
            raise ShapeError(
                f"scratch has shape {scratch.shape}, expected ({self.nnz},)"
            )

    def matvec(
        self, x: FloatArray, out: Optional[FloatArray] = None,
        *, scratch: Optional[FloatArray] = None, backend=None,
    ) -> FloatArray:
        """``y = A @ x`` — CSR SpMV via the active kernel backend.

        ``out`` may be supplied to receive the result.  ``scratch`` — an
        ``nnz``-length float buffer — eliminates the per-call gather/product
        allocation on the numpy backends, which is the only allocation the
        CG hot loop would otherwise make per iteration.  ``backend`` names
        a registered kernel backend (default: the registry's active one).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        self._check_scratch(scratch)
        return get_backend(backend).spmv(self, x, out=out, scratch=scratch)

    def rmatvec(
        self, x: FloatArray, out: Optional[FloatArray] = None,
        *, scratch: Optional[FloatArray] = None, backend=None,
    ) -> FloatArray:
        """``y = A.T @ x`` without materialising the transpose.

        Every stored entry ``(i, j, v)`` contributes ``v * x[i]`` to
        ``y[j]``; the active backend chooses between scatter-add and the
        cached column-grouped segment sum.  ``out``/``scratch``/``backend``
        work as in :meth:`matvec`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_rows,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_rows},)")
        self._check_scratch(scratch)
        return get_backend(backend).spmv_t(self, x, out=out, scratch=scratch)

    def __matmul__(self, x):
        return self.matvec(x)

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def diagonal(self) -> FloatArray:
        """Main-diagonal values; structurally-absent positions read as 0."""
        n = min(self.n_rows, self.n_cols)
        diag = np.zeros(n)
        rows = self.row_ids()
        hit = (rows == self.indices) & (rows < n)
        diag[rows[hit]] = self.data[hit]
        return diag

    def _tri(self, *, lower: bool, keep_diagonal: bool) -> "CSRMatrix":
        rows = self.row_ids()
        if lower:
            keep = self.indices <= rows if keep_diagonal else self.indices < rows
        else:
            keep = self.indices >= rows if keep_diagonal else self.indices > rows
        return self._masked(keep)

    def tril(self, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Lower-triangular part as a new CSR matrix."""
        return self._tri(lower=True, keep_diagonal=keep_diagonal)

    def triu(self, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Upper-triangular part as a new CSR matrix."""
        return self._tri(lower=False, keep_diagonal=keep_diagonal)

    def _masked(self, keep: np.ndarray) -> "CSRMatrix":
        """New matrix keeping only entries where ``keep`` is True."""
        rows = self.row_ids()[keep]
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=self.n_rows), out=indptr[1:])
        return CSRMatrix(
            self.n_rows, self.n_cols, indptr, self.indices[keep], self.data[keep],
            _validated=True,
        )

    def drop_small(self, threshold: float, *, keep_diagonal: bool = True) -> "CSRMatrix":
        """Drop entries with ``|a_ij| <= threshold`` (optionally sparing the diagonal)."""
        keep = np.abs(self.data) > threshold
        if keep_diagonal:
            keep |= self.row_ids() == self.indices
        return self._masked(keep)

    def prune_zeros(self) -> "CSRMatrix":
        """Remove explicitly stored zeros."""
        return self._masked(self.data != 0.0)

    def submatrix(self, rows: IndexArray, cols: IndexArray) -> np.ndarray:
        """Dense ``A[rows][:, cols]`` gather — the FSAI local system extractor.

        ``rows`` and ``cols`` must each be sorted ascending.  Runs in
        ``O(sum of selected row lengths)`` with per-row vectorised gathers,
        which is the dominant pattern in FSAI setup (many tiny dense systems).
        """
        rows = as_index_array(rows)
        cols = as_index_array(cols)
        out = np.zeros((len(rows), len(cols)))
        for k, i in enumerate(rows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            row_cols = self.indices[lo:hi]
            row_vals = self.data[lo:hi]
            pos = np.searchsorted(cols, row_cols)
            pos_ok = pos < len(cols)
            hit = pos_ok & (cols[np.minimum(pos, len(cols) - 1)] == row_cols)
            out[k, pos[hit]] = row_vals[hit]
        return out

    def gather_entries(self, rows: IndexArray, cols: IndexArray) -> np.ndarray:
        """Values at positions ``(rows[j], cols[j])``; absent entries read 0.

        ``rows`` and ``cols`` may have any (matching) shape — the bucketed
        FSAI gather passes whole ``(batch, k, k)`` index blocks — and the
        values come back in that shape.  One binary search over the cached
        row-major :meth:`entry_keys` replaces the per-row searches of
        :meth:`submatrix`, so extracting every local system of a pattern
        bucket is a single vectorised lookup.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ShapeError(f"rows shape {rows.shape} != cols shape {cols.shape}")
        out = np.zeros(rows.shape)
        if rows.size == 0:
            return out
        if (rows.min() < 0 or rows.max() >= self.n_rows
                or cols.min() < 0 or cols.max() >= self.n_cols):
            raise ShapeError("gather_entries index out of range")
        keys = self.entry_keys()
        if len(keys) == 0:
            return out
        query = rows * np.int64(self.n_cols) + cols
        pos = np.searchsorted(keys, query)
        pos_c = np.minimum(pos, len(keys) - 1)
        hit = keys[pos_c] == query
        out[hit] = self.data[pos_c[hit]]
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """CSR matrix of ``A.T`` (explicit structure transpose)."""
        order = np.lexsort((self.row_ids(), self.indices))
        new_rows = self.indices[order]
        new_cols = self.row_ids()[order]
        new_data = self.data[order]
        indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_rows, minlength=self.n_cols), out=indptr[1:])
        return CSRMatrix(
            self.n_cols, self.n_rows, indptr, new_cols, new_data, _validated=True
        )

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def to_coo(self):
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.n_rows, self.n_cols, self.row_ids().copy(),
            self.indices.copy(), self.data.copy(),
        )

    def to_csc(self):
        from repro.sparse.csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(
            self.n_rows, self.n_cols, t.indptr, t.indices, t.data, _validated=True
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        dense[self.row_ids(), self.indices] = self.data
        return dense

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.n_rows, self.n_cols, self.indptr.copy(), self.indices.copy(),
            self.data.copy(), _validated=True,
        )

    def with_data(self, data: FloatArray) -> "CSRMatrix":
        """Same structure, new values (used when recomputing G on a fixed pattern)."""
        return CSRMatrix(
            self.n_rows, self.n_cols, self.indptr, self.indices, data,
            _validated=True,
        )

    @classmethod
    def from_pattern(cls, pattern: Pattern, data=None) -> "CSRMatrix":
        """Matrix over ``pattern``; values default to zero."""
        if data is None:
            data = np.zeros(pattern.nnz)
        return cls(
            pattern.n_rows, pattern.n_cols, pattern.indptr, pattern.indices,
            data, _validated=True,
        )

    # ------------------------------------------------------------------
    # Algebra helpers
    # ------------------------------------------------------------------
    def scale_rows(self, s: FloatArray) -> "CSRMatrix":
        """Return ``diag(s) @ A``."""
        s = as_value_array(s)
        if s.shape != (self.n_rows,):
            raise ShapeError("row scale vector has wrong length")
        return self.with_data(self.data * s[self.row_ids()])

    def scale_cols(self, s: FloatArray) -> "CSRMatrix":
        """Return ``A @ diag(s)``."""
        s = as_value_array(s)
        if s.shape != (self.n_cols,):
            raise ShapeError("column scale vector has wrong length")
        return self.with_data(self.data * s[self.indices])

    def frobenius_norm(self) -> float:
        """Frobenius norm of the stored values."""
        return float(np.sqrt(np.dot(self.data, self.data)))

    def max_norm(self) -> float:
        """Largest absolute stored value (0 for an empty matrix)."""
        return float(np.abs(self.data).max()) if self.nnz else 0.0

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Numerical symmetry check via ``‖A - A^T‖_max <= tol·‖A‖_max``."""
        if self.n_rows != self.n_cols:
            return False
        t = self.transpose()
        if not np.array_equal(t.indptr, self.indptr) or not np.array_equal(
            t.indices, self.indices
        ):
            # Structurally asymmetric — compare densely only for tiny matrices,
            # otherwise declare asymmetric (value-symmetric but structurally
            # asymmetric matrices do not occur in this library).
            return False
        scale = max(self.max_norm(), 1.0)
        return bool(np.abs(t.data - self.data).max() <= tol * scale) if self.nnz else True

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
