"""Structure-only sparsity patterns.

A :class:`Pattern` is the CSR *skeleton* of a sparse matrix — row pointers and
column indices, no values.  The FSAI pipeline manipulates patterns long before
any numerical value exists (pattern powers, cache-friendly extension,
filtering), so patterns are a first-class type here rather than an implicit
property of a matrix.

Invariants (checked at construction):

* ``indptr`` has length ``n_rows + 1``, starts at 0, is non-decreasing and
  ends at ``len(indices)``;
* within each row, column indices are strictly increasing (sorted + unique);
* all column indices lie in ``[0, n_cols)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro._typing import IndexArray, as_index_array
from repro.errors import PatternError, ShapeError

__all__ = ["Pattern"]


def _validate_structure(
    n_rows: int, n_cols: int, indptr: IndexArray, indices: IndexArray
) -> None:
    if n_rows < 0 or n_cols < 0:
        raise ShapeError(f"negative dimensions ({n_rows}, {n_cols})")
    if indptr.ndim != 1 or indices.ndim != 1:
        raise PatternError("indptr and indices must be 1-D arrays")
    if len(indptr) != n_rows + 1:
        raise PatternError(
            f"indptr has length {len(indptr)}, expected n_rows+1={n_rows + 1}"
        )
    if n_rows == 0:
        if len(indices) != 0 or (len(indptr) and indptr[0] != 0):
            raise PatternError("empty pattern must have empty indices")
        return
    if indptr[0] != 0:
        raise PatternError("indptr must start at 0")
    if indptr[-1] != len(indices):
        raise PatternError(
            f"indptr ends at {indptr[-1]} but indices has {len(indices)} entries"
        )
    if np.any(np.diff(indptr) < 0):
        raise PatternError("indptr must be non-decreasing")
    if len(indices):
        if indices.min() < 0 or indices.max() >= n_cols:
            raise PatternError(
                f"column indices out of range [0, {n_cols}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        # Sorted-unique within each row <=> diff(indices) > 0 everywhere except
        # at row boundaries.  Vectorised check: positions where diff <= 0 must
        # coincide exactly with row starts.
        diffs = np.diff(indices)
        row_starts = indptr[1:-1]  # index into `indices` where each new row begins
        bad = np.flatnonzero(diffs <= 0) + 1  # positions in `indices`
        if len(bad) and not np.isin(bad, row_starts).all():
            raise PatternError("column indices must be sorted and unique per row")


class Pattern:
    """An immutable CSR-style sparsity pattern.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        ``int64`` array of row pointers, length ``n_rows + 1``.
    indices:
        ``int64`` array of column indices, sorted and unique within each row.
    _validated:
        Internal fast path: skip structural validation when the caller
        guarantees the invariants already hold (used by internal kernels that
        construct patterns from already-canonical data).
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr,
        indices,
        *,
        _validated: bool = False,
    ) -> None:
        indptr = as_index_array(indptr)
        indices = as_index_array(indices)
        if not _validated:
            _validate_structure(n_rows, n_cols, indptr, indices)
        object.__setattr__(self, "n_rows", int(n_rows))
        object.__setattr__(self, "n_cols", int(n_cols))
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Pattern is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, n_rows: int, n_cols: int, rows: Iterable[Iterable[int]]) -> "Pattern":
        """Build a pattern from per-row iterables of column indices.

        Indices are sorted and de-duplicated per row.
        """
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for i, row in enumerate(rows):
            cols = np.unique(as_index_array(list(row)))
            chunks.append(cols)
            indptr[i + 1] = indptr[i] + len(cols)
        if len(chunks) != n_rows:
            raise ShapeError(f"got {len(chunks)} rows, expected {n_rows}")
        indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return cls(n_rows, n_cols, indptr, indices)

    @classmethod
    def from_coo(
        cls, n_rows: int, n_cols: int, row: IndexArray, col: IndexArray
    ) -> "Pattern":
        """Build a pattern from (possibly unsorted, duplicated) COO index pairs."""
        row = as_index_array(row)
        col = as_index_array(col)
        if row.shape != col.shape:
            raise ShapeError("row and col arrays must have equal length")
        if len(row):
            if row.min() < 0 or row.max() >= n_rows:
                raise PatternError("row index out of range")
            if col.min() < 0 or col.max() >= n_cols:
                raise PatternError("col index out of range")
        # Sort lexicographically by (row, col) then drop duplicates.
        order = np.lexsort((col, row))
        row, col = row[order], col[order]
        if len(row):
            keep = np.ones(len(row), dtype=bool)
            keep[1:] = (np.diff(row) != 0) | (np.diff(col) != 0)
            row, col = row[keep], col[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=n_rows), out=indptr[1:])
        return cls(n_rows, n_cols, indptr, col, _validated=True)

    @classmethod
    def from_dense_mask(cls, mask) -> "Pattern":
        """Build a pattern from a 2-D boolean mask (nonzero = present)."""
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ShapeError("mask must be 2-D")
        row, col = np.nonzero(mask)
        return cls.from_coo(mask.shape[0], mask.shape[1], row, col)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "Pattern":
        """Pattern with no entries."""
        return cls(
            n_rows, n_cols, np.zeros(n_rows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64), _validated=True,
        )

    @classmethod
    def identity(cls, n: int) -> "Pattern":
        """Diagonal pattern of order ``n``."""
        return cls(
            n, n, np.arange(n + 1, dtype=np.int64), np.arange(n, dtype=np.int64),
            _validated=True,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(len(self.indices))

    def row(self, i: int) -> IndexArray:
        """Column indices of row ``i`` (a view, do not mutate)."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def row_lengths(self) -> IndexArray:
        """Vector of per-row entry counts."""
        return np.diff(self.indptr)

    def __contains__(self, ij: Tuple[int, int]) -> bool:
        i, j = ij
        row = self.row(i)
        pos = np.searchsorted(row, j)
        return bool(pos < len(row) and row[pos] == j)

    def iter_rows(self) -> Iterator[IndexArray]:
        """Yield the column-index array of each row in order."""
        for i in range(self.n_rows):
            yield self.indices[self.indptr[i]: self.indptr[i + 1]]

    def coo(self) -> Tuple[IndexArray, IndexArray]:
        """Return ``(row, col)`` coordinate arrays in row-major order."""
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        return rows, self.indices.copy()

    def density(self) -> float:
        """Fraction of stored entries over the full dense size."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "Pattern":
        """Pattern of the transposed matrix (CSR of the transpose)."""
        rows, cols = self.coo()
        return Pattern.from_coo(self.n_cols, self.n_rows, cols, rows)

    @property
    def T(self) -> "Pattern":
        return self.transpose()

    def _tri(self, *, lower: bool, keep_diagonal: bool) -> "Pattern":
        rows, cols = self.coo()
        if lower:
            keep = cols <= rows if keep_diagonal else cols < rows
        else:
            keep = cols >= rows if keep_diagonal else cols > rows
        return Pattern.from_coo(self.n_rows, self.n_cols, rows[keep], cols[keep])

    def tril(self, *, keep_diagonal: bool = True) -> "Pattern":
        """Lower-triangular restriction of the pattern."""
        return self._tri(lower=True, keep_diagonal=keep_diagonal)

    def triu(self, *, keep_diagonal: bool = True) -> "Pattern":
        """Upper-triangular restriction of the pattern."""
        return self._tri(lower=False, keep_diagonal=keep_diagonal)

    def with_full_diagonal(self) -> "Pattern":
        """Return a pattern guaranteed to include every diagonal position.

        FSAI requires ``i in S_i`` for every row; generators occasionally
        produce patterns with structurally-zero diagonal entries, which this
        repairs.
        """
        n = min(self.n_rows, self.n_cols)
        rows, cols = self.coo()
        diag = np.arange(n, dtype=np.int64)
        return Pattern.from_coo(
            self.n_rows,
            self.n_cols,
            np.concatenate([rows, diag]),
            np.concatenate([cols, diag]),
        )

    def union(self, other: "Pattern") -> "Pattern":
        """Set union of two patterns with identical shapes."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        r1, c1 = self.coo()
        r2, c2 = other.coo()
        return Pattern.from_coo(
            self.n_rows, self.n_cols,
            np.concatenate([r1, r2]), np.concatenate([c1, c2]),
        )

    def intersection(self, other: "Pattern") -> "Pattern":
        """Set intersection of two patterns with identical shapes."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        key_self = self._keys()
        key_other = other._keys()
        common = np.intersect1d(key_self, key_other, assume_unique=True)
        rows = (common // self.n_cols).astype(np.int64)
        cols = (common % self.n_cols).astype(np.int64)
        return Pattern.from_coo(self.n_rows, self.n_cols, rows, cols)

    def difference(self, other: "Pattern") -> "Pattern":
        """Entries of ``self`` not present in ``other``."""
        if self.shape != other.shape:
            raise ShapeError(f"shape mismatch {self.shape} vs {other.shape}")
        keys = np.setdiff1d(self._keys(), other._keys(), assume_unique=True)
        rows = (keys // self.n_cols).astype(np.int64)
        cols = (keys % self.n_cols).astype(np.int64)
        return Pattern.from_coo(self.n_rows, self.n_cols, rows, cols)

    def is_subset_of(self, other: "Pattern") -> bool:
        """True iff every entry of ``self`` appears in ``other``."""
        if self.shape != other.shape:
            return False
        return bool(np.isin(self._keys(), other._keys(), assume_unique=True).all())

    def _keys(self) -> IndexArray:
        """Linearised (row-major) position keys — sorted, unique."""
        rows, cols = self.coo()
        return rows * self.n_cols + cols

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_lower_triangular(self) -> bool:
        rows, cols = self.coo()
        return bool(np.all(cols <= rows))

    def is_upper_triangular(self) -> bool:
        rows, cols = self.coo()
        return bool(np.all(cols >= rows))

    def has_full_diagonal(self) -> bool:
        """True iff every row ``i < min(shape)`` contains column ``i``."""
        n = min(self.n_rows, self.n_cols)
        for i in range(n):
            if (i, i) not in self:
                return False
        return True

    def is_structurally_symmetric(self) -> bool:
        """True iff the pattern equals its transpose (requires square)."""
        return self.n_rows == self.n_cols and self == self.transpose()

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.indices.tobytes(), self.indptr.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Pattern(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density():.4g})"
        )

    def to_dense_mask(self) -> np.ndarray:
        """Dense boolean mask of the pattern (small matrices / debugging)."""
        mask = np.zeros(self.shape, dtype=bool)
        rows, cols = self.coo()
        mask[rows, cols] = True
        return mask
