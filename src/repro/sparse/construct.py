"""Construction helpers for CSR matrices."""

from __future__ import annotations

import numpy as np

from repro._typing import as_index_array, as_value_array
from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = [
    "csr_from_dense",
    "csr_identity",
    "csr_from_coo_arrays",
    "csr_diagonal_matrix",
]


def csr_from_dense(dense, *, drop_tolerance: float = 0.0) -> CSRMatrix:
    """Build a CSR matrix from a dense 2-D array.

    Entries with ``|a_ij| <= drop_tolerance`` are treated as structural zeros.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ShapeError("dense input must be 2-D")
    mask = np.abs(dense) > drop_tolerance
    rows, cols = np.nonzero(mask)
    return csr_from_coo_arrays(
        dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols]
    )


def csr_identity(n: int, *, scale: float = 1.0) -> CSRMatrix:
    """``scale * I`` of order ``n`` in CSR form."""
    idx = np.arange(n, dtype=np.int64)
    return CSRMatrix(
        n, n, np.arange(n + 1, dtype=np.int64), idx, np.full(n, float(scale)),
        _validated=True,
    )


def csr_diagonal_matrix(diag) -> CSRMatrix:
    """CSR matrix with the given main diagonal."""
    diag = as_value_array(diag)
    n = len(diag)
    return CSRMatrix(
        n, n, np.arange(n + 1, dtype=np.int64),
        np.arange(n, dtype=np.int64), diag, _validated=True,
    )


def csr_from_coo_arrays(n_rows: int, n_cols: int, row, col, data) -> CSRMatrix:
    """Assemble CSR from triplet arrays (duplicates summed)."""
    return COOMatrix(
        n_rows, n_cols, as_index_array(row), as_index_array(col),
        as_value_array(data),
    ).to_csr()
