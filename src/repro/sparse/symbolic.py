"""Symbolic (structure-only) sparse operations.

These implement step 1-2 of the paper's Algorithm 1: threshold ``A`` into
``Ã`` and take the pattern of ``Ã^N`` (the *sparse level* ``N`` of the
preconditioner).  The pattern product is the classic Gustavson symbolic
phase without the numeric phase, delegated to the shared SpGEMM planner
(:mod:`repro.kernels.spgemm`) — one vectorised product expansion instead
of a Python loop of per-row set unions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.pattern import Pattern

__all__ = [
    "pattern_multiply",
    "pattern_power",
    "threshold_matrix",
    "threshold_pattern",
    "symmetrize_pattern",
]


def pattern_multiply(a: Pattern, b: Pattern) -> Pattern:
    """Pattern of the product ``A @ B`` (symbolic sparse GEMM).

    Row ``i`` of the result is the union of the rows ``b[k]`` over the column
    indices ``k`` present in ``a`` row ``i``, computed by the vectorised
    SpGEMM symbolic phase (:func:`repro.kernels.spgemm.spgemm_pattern`).
    """
    from repro.kernels.spgemm import spgemm_pattern

    return spgemm_pattern(a, b)


def pattern_power(p: Pattern, n: int) -> Pattern:
    """Pattern of ``P^n`` for a square pattern ``P`` and ``n >= 1``.

    ``n = 1`` returns ``p`` itself; higher powers are built by repeated
    symbolic multiplication (``n`` is small — the paper uses levels 1-3 — so
    no exponentiation-by-squaring is needed, and the straightforward product
    chain also keeps intermediate densification visible to callers profiling
    setup cost).
    """
    if p.n_rows != p.n_cols:
        raise ShapeError("pattern_power requires a square pattern")
    if n < 1:
        raise ValueError(f"power must be >= 1, got {n}")
    result = p
    for _ in range(n - 1):
        result = pattern_multiply(result, p)
    return result


def threshold_matrix(a: CSRMatrix, tau: float, *, keep_diagonal: bool = True) -> CSRMatrix:
    """Produce ``Ã`` by dropping entries small relative to the diagonal.

    Paper Alg. 1 step 1 ("Threshold A to produce Ã").  We use the standard
    scale-independent criterion of Chow [11]: keep ``a_ij`` iff

    ``|a_ij| > tau * sqrt(|a_ii| * |a_jj|)``

    which is invariant under symmetric diagonal scaling of ``A``.  Diagonal
    entries are always kept when ``keep_diagonal`` (FSAI requires them).
    """
    if a.n_rows != a.n_cols:
        raise ShapeError("threshold_matrix requires a square matrix")
    if tau < 0:
        raise ValueError("threshold must be non-negative")
    diag = np.abs(a.diagonal())
    rows = a.row_ids()
    scale = np.sqrt(diag[rows] * diag[a.indices])
    keep = np.abs(a.data) > tau * scale
    if keep_diagonal:
        keep |= rows == a.indices
    return a._masked(keep)


def threshold_pattern(a: CSRMatrix, tau: float) -> Pattern:
    """Pattern of ``Ã`` (see :func:`threshold_matrix`)."""
    return threshold_matrix(a, tau).pattern


def symmetrize_pattern(p: Pattern) -> Pattern:
    """Union of a square pattern with its transpose."""
    if p.n_rows != p.n_cols:
        raise ShapeError("symmetrize_pattern requires a square pattern")
    return p.union(p.transpose())
