"""Compressed Sparse Column matrix.

The paper's discussion (§4) notes that traversing ``A`` in column order with
CSC swaps the roles of ``x`` and ``y`` in the cache analysis; we provide CSC
for completeness and for column-oriented access in the cache simulator.
Internally a CSC matrix stores the CSR structure of its transpose.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._typing import FloatArray, IndexArray, as_index_array, as_value_array
from repro.errors import ShapeError
from repro.sparse.pattern import Pattern, _validate_structure

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Sparse matrix in Compressed Sparse Column format.

    ``indptr``/``indices`` compress *columns*: ``indices[indptr[j]:indptr[j+1]]``
    are the row indices of column ``j``, sorted and unique.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data", "_col_ids")

    def __init__(
        self, n_rows: int, n_cols: int, indptr, indices, data, *,
        _validated: bool = False,
    ) -> None:
        self.indptr: IndexArray = as_index_array(indptr)
        self.indices: IndexArray = as_index_array(indices)
        self.data: FloatArray = as_value_array(data)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        if not _validated:
            # Structure is the CSR structure of the transpose.
            _validate_structure(self.n_cols, self.n_rows, self.indptr, self.indices)
        if len(self.data) != len(self.indices):
            raise ShapeError("data/indices length mismatch")
        self._col_ids = None

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def pattern(self) -> Pattern:
        """Pattern of the matrix itself (row-major), not of its transpose."""
        return self.to_csr().pattern

    def col_ids(self) -> IndexArray:
        """Column id of every stored entry."""
        if self._col_ids is None:
            self._col_ids = np.repeat(
                np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr)
            )
        return self._col_ids

    def col(self, j: int) -> Tuple[IndexArray, FloatArray]:
        """``(rows, values)`` of column ``j`` (views)."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def matvec(self, x: FloatArray, out: Optional[FloatArray] = None) -> FloatArray:
        """``y = A @ x`` via column-order scatter (gathers x sequentially)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        prod = self.data * x[self.col_ids()]
        y = np.bincount(self.indices, weights=prod, minlength=self.n_rows)
        if out is not None:
            out[:] = y
            return out
        return y

    def rmatvec(self, x: FloatArray, out: Optional[FloatArray] = None) -> FloatArray:
        """``y = A.T @ x`` via per-column gather."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_rows,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_rows},)")
        prod = self.data * x[self.indices]
        y = np.bincount(self.col_ids(), weights=prod, minlength=self.n_cols)
        if out is not None:
            out[:] = y
            return out
        return y

    def __matmul__(self, x):
        return self.matvec(x)

    def to_csr(self):
        """Convert to :class:`~repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        # CSC(A) stores CSR(A^T): transpose that structure back.
        helper = CSRMatrix(
            self.n_cols, self.n_rows, self.indptr, self.indices, self.data,
            _validated=True,
        )
        return helper.transpose()

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        dense[self.indices, self.col_ids()] = self.data
        return dense

    def transpose(self) -> "CSCMatrix":
        return self.to_csr().transpose().to_csc()

    @property
    def T(self) -> "CSCMatrix":
        return self.transpose()

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
