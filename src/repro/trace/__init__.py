"""``repro.trace`` — zero-dependency structured tracing and counters.

Usage::

    from repro import trace

    with trace.collecting() as collector:        # enable + fresh collector
        with trace.span("fsai.setup", rows=n):   # hierarchical spans
            trace.add_counter("flops", 123)      # typed counters
    summary = trace.TraceSummary.from_collector(collector)
    trace.write_json("trace.json", summary)
    trace.write_chrome_trace("trace.chrome.json", summary)

Tracing is **off by default** and the disabled fast path is a single
boolean check (asserted < 1 µs per no-op span by the overhead test), so
hot paths stay instrumented unconditionally.  See ``docs/tracing.md``.
"""

from repro.trace.core import (
    Collector,
    SpanRecord,
    add_counter,
    collecting,
    current_span,
    disable,
    enable,
    enabled,
    event,
    set_attr,
    span,
)
from repro.trace.histogram import LatencyHistogram
from repro.trace.export import (
    JSON_SCHEMA,
    to_chrome_trace,
    to_json_dict,
    write_chrome_trace,
    write_json,
)
from repro.trace.summary import TraceSummary

__all__ = [
    "Collector",
    "LatencyHistogram",
    "SpanRecord",
    "TraceSummary",
    "JSON_SCHEMA",
    "add_counter",
    "collecting",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "event",
    "set_attr",
    "span",
    "to_chrome_trace",
    "to_json_dict",
    "write_chrome_trace",
    "write_json",
]
