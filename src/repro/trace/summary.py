"""Embeddable trace summaries for campaign artifacts.

A :class:`TraceSummary` is the JSON-able distillation of a collector (or a
single span tree): the serialised span forest plus any collector-level
counters.  It is small enough to embed in
:class:`~repro.experiments.runner.CaseResult` and
:class:`~repro.perf.regression.RegressionRecord` payloads — which is how
per-case span trees cross the orchestrator's worker-process boundary via
the existing JSONL shard records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.trace.core import Collector, CounterValue, SpanRecord

__all__ = ["TraceSummary"]


@dataclass
class TraceSummary:
    """Serialised span forest + loose counters, with aggregation helpers."""

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, CounterValue] = field(default_factory=dict)

    @classmethod
    def from_collector(cls, collector: Collector) -> "TraceSummary":
        return cls(spans=list(collector.roots), counters=dict(collector.counters))

    @classmethod
    def from_span(cls, record: SpanRecord) -> "TraceSummary":
        return cls(spans=[record])

    def iter_spans(self) -> Iterator[SpanRecord]:
        for root in self.spans:
            yield from root.iter_spans()

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per span name, summed over the whole forest.

        Parent and child spans both contribute under their own names (a
        parent's time *includes* its children's) — sum sibling leaf phases,
        not a parent with its children, when composing percentages.
        """
        out: Dict[str, float] = {}
        for record in self.iter_spans():
            if record.duration >= 0.0:
                out[record.name] = out.get(record.name, 0.0) + record.duration
        return out

    def counter_totals(self) -> Dict[str, CounterValue]:
        totals: Dict[str, CounterValue] = dict(self.counters)
        for root in self.spans:
            for key, val in root.total_counters().items():
                totals[key] = totals.get(key, 0) + val
        return totals

    def structure(self) -> Tuple[Any, ...]:
        """Timing-free forest shape (see :meth:`SpanRecord.structure`)."""
        return tuple(root.structure() for root in self.spans)

    def total_seconds(self) -> float:
        """Wall seconds covered by the root spans."""
        return sum(max(root.duration, 0.0) for root in self.spans)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": [root.to_dict() for root in self.spans],
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceSummary":
        return cls(
            spans=[SpanRecord.from_dict(s) for s in payload.get("spans", [])],
            counters=dict(payload.get("counters", {})),
        )

    def summary_lines(self) -> List[str]:
        """Human-readable phase/counter breakdown for CLI output."""
        phases = self.phase_seconds()
        total = self.total_seconds()
        lines = ["phase breakdown (inclusive seconds):"]
        for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {name:<28} {seconds * 1e3:10.2f} ms  {pct:5.1f}%")
        counters = self.counter_totals()
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name:<28} {counters[name]:g}")
        return lines
