"""Structured tracing core: hierarchical spans, typed counters, collector.

Design constraints (in priority order):

1. **Zero cost when off.**  Tracing is disabled by default; ``span()``
   then returns a shared no-op context manager and ``add_counter()``
   returns after one module-global boolean check.  The overhead test
   asserts a disabled span costs well under a microsecond, so hot loops
   (CG iterations, per-trace cache replays) can stay instrumented
   unconditionally.
2. **Hierarchy via context variables.**  The current-span stack lives in a
   :class:`contextvars.ContextVar`, so spans nest correctly per thread
   (and per asyncio task, should one appear) without any locking on the
   enter/exit path.
3. **Thread/process safety.**  Finished root spans are appended to the
   active :class:`Collector` under a lock (threads share one collector).
   Worker *processes* serialise their span trees with
   :meth:`SpanRecord.to_dict` and ship them through the orchestrator's
   existing JSONL shard records; nothing shares mutable state across the
   process boundary.

The public surface is re-exported by :mod:`repro.trace`; see
``docs/tracing.md`` for the full API and schema documentation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "SpanRecord",
    "Collector",
    "span",
    "event",
    "add_counter",
    "set_attr",
    "current_span",
    "enabled",
    "enable",
    "disable",
    "collecting",
]

#: Counter values are plain numbers; attrs may also carry short strings.
CounterValue = Union[int, float]
AttrValue = Union[int, float, str, bool, None]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span: a named, timed tree node.

    ``start`` is seconds since the owning collector's epoch
    (``time.perf_counter`` based, so only differences are meaningful);
    ``duration`` is -1.0 while the span is still open.
    """

    name: str
    start: float
    duration: float = -1.0
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    counters: Dict[str, CounterValue] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def add_counter(self, name: str, value: CounterValue = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def total_counters(self) -> Dict[str, CounterValue]:
        """Counter totals over this span and all descendants."""
        totals: Dict[str, CounterValue] = dict(self.counters)
        for child in self.children:
            for key, val in child.total_counters().items():
                totals[key] = totals.get(key, 0) + val
        return totals

    def iter_spans(self) -> Iterator["SpanRecord"]:
        """Depth-first pre-order walk over this subtree."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def structure(self) -> Tuple[str, Tuple[Any, ...]]:
        """Timing-free shape of the subtree: ``(name, child structures)``.

        Used by parity tests: a parallel campaign must produce the same
        span *structure* as a sequential one even though durations differ.
        """
        return (self.name, tuple(c.structure() for c in self.children))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_seconds": self.start,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            start=float(payload["start_seconds"]),
            duration=float(payload["duration_seconds"]),
            attrs=dict(payload.get("attrs", {})),
            counters=dict(payload.get("counters", {})),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class Collector:
    """Thread-safe sink for finished root spans and span-less counters."""

    def __init__(self) -> None:
        self.epoch: float = time.perf_counter()
        self.roots: List[SpanRecord] = []
        #: Counters recorded while no span was open (e.g. scheduler-level).
        self.counters: Dict[str, CounterValue] = {}
        self._lock = threading.Lock()

    def add_root(self, record: SpanRecord) -> None:
        with self._lock:
            self.roots.append(record)

    def add_counter(self, name: str, value: CounterValue = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def total_counters(self) -> Dict[str, CounterValue]:
        """Counter totals over every recorded span plus loose counters."""
        totals: Dict[str, CounterValue] = dict(self.counters)
        for root in self.roots:
            for key, val in root.total_counters().items():
                totals[key] = totals.get(key, 0) + val
        return totals


# ----------------------------------------------------------------------
# Module state — the fast path reads one boolean.
# ----------------------------------------------------------------------
_enabled: bool = False
_collector: Optional[Collector] = None
_stack: ContextVar[Tuple[SpanRecord, ...]] = ContextVar(
    "repro_trace_stack", default=()
)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add_counter(self, name: str, value: CounterValue = 1) -> None:
        pass

    def set_attr(self, name: str, value: AttrValue) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one :class:`SpanRecord` into the tree."""

    __slots__ = ("record", "_token", "_t0")

    def __init__(self, name: str, attrs: Dict[str, AttrValue]) -> None:
        self.record = SpanRecord(name=name, start=0.0, attrs=attrs)
        self._token = None
        self._t0 = 0.0

    def __enter__(self) -> SpanRecord:
        collector = _collector
        epoch = collector.epoch if collector is not None else 0.0
        self._token = _stack.set(_stack.get() + (self.record,))
        self._t0 = time.perf_counter()
        self.record.start = self._t0 - epoch
        return self.record

    def __exit__(self, *exc: object) -> bool:
        self.record.duration = time.perf_counter() - self._t0
        if self._token is not None:
            _stack.reset(self._token)
        stack = _stack.get()
        if stack:
            stack[-1].children.append(self.record)
        elif _collector is not None:
            _collector.add_root(self.record)
        return False


def enabled() -> bool:
    """True while a collector is installed and tracing is on."""
    return _enabled


def span(name: str, **attrs: AttrValue):
    """Open a hierarchical span: ``with trace.span("fsai.setup", rows=n):``.

    Returns a context manager.  When tracing is enabled, entering yields
    the live :class:`SpanRecord` (so callers may attach counters/attrs
    directly); when disabled, a shared no-op object with the same methods.
    """
    if not _enabled:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def event(name: str, seconds: float, **attrs: AttrValue) -> None:
    """Record an already-measured span of known duration.

    Used where the timing exists before the trace record can (e.g. the
    orchestrator learns a case's elapsed time from the worker process).
    The event is attached at the current stack position like a span that
    just closed.
    """
    if not _enabled:
        return
    collector = _collector
    now = time.perf_counter()
    epoch = collector.epoch if collector is not None else 0.0
    record = SpanRecord(
        name=name, start=now - epoch - seconds, duration=seconds, attrs=attrs
    )
    stack = _stack.get()
    if stack:
        stack[-1].children.append(record)
    elif collector is not None:
        collector.add_root(record)


def add_counter(name: str, value: CounterValue = 1) -> None:
    """Add ``value`` to counter ``name`` on the innermost open span.

    Counters recorded outside any span accumulate on the collector
    itself.  No-op (one boolean check) while tracing is disabled.
    """
    if not _enabled:
        return
    stack = _stack.get()
    if stack:
        stack[-1].add_counter(name, value)
    elif _collector is not None:
        _collector.add_counter(name, value)


def set_attr(name: str, value: AttrValue) -> None:
    """Set an attribute on the innermost open span (no-op when disabled)."""
    if not _enabled:
        return
    stack = _stack.get()
    if stack:
        stack[-1].attrs[name] = value


def current_span() -> Optional[SpanRecord]:
    """The innermost open span, or ``None``."""
    stack = _stack.get()
    return stack[-1] if stack else None


def enable(collector: Optional[Collector] = None) -> Collector:
    """Install ``collector`` (a fresh one by default) and turn tracing on."""
    global _enabled, _collector
    _collector = collector if collector is not None else Collector()
    _enabled = True
    return _collector


def disable() -> None:
    """Turn tracing off and detach the collector."""
    global _enabled, _collector
    _enabled = False
    _collector = None


@contextmanager
def collecting(
    collector: Optional[Collector] = None,
) -> Iterator[Collector]:
    """Enable tracing for the duration of the ``with`` block.

    Restores the previous enabled-state and collector on exit, so nested
    ``collecting()`` blocks each see their own collector.
    """
    global _enabled, _collector
    prev_enabled, prev_collector = _enabled, _collector
    active = enable(collector)
    try:
        yield active
    finally:
        _enabled, _collector = prev_enabled, prev_collector
