"""Log-bucketed latency histograms with percentile estimation.

The serving layer (:mod:`repro.serve`) needs per-request latency
percentiles that are cheap to record on the hot path, mergeable across
runs, and serialisable into bench artifacts.  A fixed geometric bucket
ladder gives all three: recording is one ``bisect`` into a precomputed
boundary list, merging is element-wise addition, and the JSON form is a
short count vector.

Accuracy contract: a percentile estimate is the **upper edge** of the
bucket containing the target rank (clamped to the exact observed
maximum), so with the default ``factor=2`` growth an estimate is at most
2x the true value and never below it — the conservative direction for a
latency SLO gate.  Exact ``count``/``total``/``min``/``max`` are kept on
the side, so means and extremes carry no bucketing error.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Sequence

__all__ = ["LatencyHistogram"]

#: Default ladder: 1 µs lower edge, doubling per bucket.  32 buckets
#: reach past 2000 s — far beyond any per-request latency this system
#: can produce — and the final bucket is an unbounded overflow catch-all.
DEFAULT_START = 1e-6
DEFAULT_FACTOR = 2.0
DEFAULT_BUCKETS = 32


class LatencyHistogram:
    """Geometric-bucket histogram over non-negative durations (seconds).

    Not thread-safe by itself; callers that record from several threads
    (e.g. :class:`repro.serve.metrics.ServiceMetrics`) hold their own
    lock around :meth:`record`.
    """

    __slots__ = ("_edges", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        start: float = DEFAULT_START,
        factor: float = DEFAULT_FACTOR,
        n_buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if start <= 0.0:
            raise ValueError(f"start must be positive, got {start}")
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1, got {factor}")
        if n_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {n_buckets}")
        # Upper edges of the first n-1 buckets; the last bucket is
        # unbounded.  Bucket 0 additionally catches everything <= start.
        self._edges: List[float] = [
            start * factor**i for i in range(n_buckets - 1)
        ]
        self.counts: List[int] = [0] * n_buckets
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = 0.0

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one duration (negative values are clamped to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        index = bisect_left(self._edges, seconds)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (ladders must match)."""
        if other._edges != self._edges:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of recorded durations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-th percentile (0 <= q <= 100).

        Returns 0.0 when empty.  The estimate is the upper edge of the
        bucket holding the target rank, clamped to the exact observed
        ``max`` (so ``percentile(100) == max`` always).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the target observation, 1-based, ceil semantics.
        rank = max(1, int(-(-q * self.count // 100)))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                edge = (
                    self._edges[i] if i < len(self._edges) else float("inf")
                )
                return min(edge, self.max)
        return self.max  # pragma: no cover - ranks always land above

    def percentiles(self, qs: Sequence[float]) -> Dict[str, float]:
        """``{"p50": ..., "p99": ...}``-style map for several percentiles."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self._edges[0],
            "factor": self._edges[1] / self._edges[0],
            "counts": list(self.counts),
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LatencyHistogram":
        hist = cls(
            start=float(payload["start"]),
            factor=float(payload["factor"]),
            n_buckets=len(payload["counts"]),
        )
        hist.counts = [int(c) for c in payload["counts"]]
        hist.count = int(payload["count"])
        hist.total = float(payload["total_seconds"])
        hist.max = float(payload["max_seconds"])
        hist.min = float(payload["min_seconds"]) if hist.count else float("inf")
        return hist

    def __repr__(self) -> str:
        if self.count == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(count={self.count}, "
            f"mean={self.mean * 1e3:.3f}ms, "
            f"p99<={self.percentile(99) * 1e3:.3f}ms)"
        )
