"""Trace exporters: stable JSON schema + Chrome-trace event files.

Two output formats, both derivable from a :class:`TraceSummary`:

* **JSON** (``schema: "repro.trace/1"``) — the queryable artifact: the
  full span forest with attrs/counters, plus pre-aggregated per-phase
  seconds and counter totals so downstream tooling does not need to walk
  the tree.  Shape is documented in ``docs/tracing.md`` and treated like
  ``RegressionRecord``: stable, versioned, diffable.
* **Chrome trace** — the Trace Event Format consumed by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: one
  complete ("ph": "X") event per span with microsecond timestamps.  Root
  spans that carry a ``pid``/``tid`` attribute (e.g. per-case trees from
  orchestrator workers) keep their own lanes.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.trace.core import SpanRecord
from repro.trace.summary import TraceSummary

__all__ = [
    "JSON_SCHEMA",
    "to_json_dict",
    "write_json",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Bumped whenever the JSON export shape changes incompatibly.
JSON_SCHEMA = "repro.trace/1"


def to_json_dict(summary: TraceSummary, *, label: str = "") -> Dict[str, Any]:
    """Stable JSON shape: schema tag, environment, forest, aggregates."""
    return {
        "schema": JSON_SCHEMA,
        "label": label,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "phase_seconds": summary.phase_seconds(),
        "counter_totals": summary.counter_totals(),
        "counters": dict(summary.counters),
        "spans": [root.to_dict() for root in summary.spans],
    }


def write_json(
    path: Union[str, Path], summary: TraceSummary, *, label: str = ""
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_json_dict(summary, label=label), indent=2) + "\n")
    return path


def _chrome_args(record: SpanRecord) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(record.attrs)
    args.update(record.counters)
    return args


def _emit_events(
    record: SpanRecord, events: List[Dict[str, Any]], pid: int, tid: int
) -> None:
    events.append(
        {
            "name": record.name,
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": max(record.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "cat": record.name.split(".", 1)[0],
            "args": _chrome_args(record),
        }
    )
    for child in record.children:
        _emit_events(child, events, pid, tid)


def to_chrome_trace(summary: TraceSummary) -> Dict[str, Any]:
    """Trace Event Format document (load in Perfetto / chrome://tracing).

    Each root span gets its own ``tid`` lane unless it carries explicit
    ``pid``/``tid`` attrs (orchestrator workers stamp their own), so
    per-case trees from different worker processes render side by side.
    """
    events: List[Dict[str, Any]] = []
    for lane, root in enumerate(summary.spans):
        pid = int(root.attrs.get("pid", 1))  # type: ignore[arg-type]
        tid = int(root.attrs.get("tid", lane + 1))  # type: ignore[arg-type]
        _emit_events(root, events, pid, tid)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path], summary: TraceSummary) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(summary)) + "\n")
    return path
