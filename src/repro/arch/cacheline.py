"""Cache-line block arithmetic.

Free-function helpers over :class:`~repro.arch.address.ArrayPlacement` used by
the fill-in algorithm (§4.2), the cache simulator and the traffic estimators.
All functions are vectorised over index arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._typing import IndexArray, as_index_array
from repro.arch.address import ArrayPlacement

__all__ = [
    "line_of_index",
    "line_span",
    "lines_touched",
    "distinct_lines_count",
    "group_by_line",
]


def line_of_index(indices, placement: ArrayPlacement) -> IndexArray:
    """Cache-line id of each element index (vectorised §4.1 mapping)."""
    return np.asarray(placement.line_of(as_index_array(indices)), dtype=np.int64)


def line_span(i: int, n: int, placement: ArrayPlacement) -> Tuple[int, int]:
    """Clipped ``[first, last]`` element range sharing element ``i``'s line."""
    return placement.line_span(i, n)


def lines_touched(indices, placement: ArrayPlacement) -> IndexArray:
    """Sorted unique cache-line ids touched by a set of element indices."""
    return np.unique(line_of_index(indices, placement))


def distinct_lines_count(indices, placement: ArrayPlacement) -> int:
    """Number of distinct cache lines touched by the given element indices.

    This is the paper's notion of the x-vector footprint of one pattern row:
    the fill-in algorithm may add any column whose line is already counted
    here without increasing the row's compulsory miss count.
    """
    return int(len(lines_touched(indices, placement)))


def group_by_line(indices, placement: ArrayPlacement):
    """Group sorted element indices by cache line.

    Yields ``(line_id, members)`` pairs where ``members`` is the sub-array of
    ``indices`` mapping to ``line_id``.  Input must be sorted ascending
    (pattern rows always are).
    """
    indices = as_index_array(indices)
    if len(indices) == 0:
        return
    lines = line_of_index(indices, placement)
    boundaries = np.flatnonzero(np.diff(lines)) + 1
    start = 0
    for b in list(boundaries) + [len(indices)]:
        yield int(lines[start]), indices[start:b]
        start = b
