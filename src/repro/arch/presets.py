"""Preset machine models for the paper's three evaluation systems (§7.1).

Numbers are taken from the paper where stated (core counts, frequencies,
64 B vs 256 B cache lines) and from public specifications / STREAM-class
measurements for the remaining parameters.  The absolute bandwidth and flop
figures only scale modelled times; the paper's qualitative results depend on
the *ratios* (flops added per extra cache line) and above all on the line
size, which is exact.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.machine import CacheLevelSpec, MachineModel

__all__ = ["SKYLAKE", "POWER9", "A64FX", "MACHINES", "get_machine"]

GB = 1e9

#: Dual-socket 24-core Intel Xeon Platinum 8160 ("Skylake-SP"), 2.1 GHz,
#: 12x8 GiB DDR4-2667.  64 B lines; 32 KiB/8-way L1D per core.
SKYLAKE = MachineModel(
    name="skylake",
    cores=48,
    frequency_ghz=2.1,
    cache_levels=(
        CacheLevelSpec("L1", 32 * 1024, 8, 64, latency_cycles=4),
        CacheLevelSpec("L2", 1024 * 1024, 16, 64, latency_cycles=14),
        CacheLevelSpec("L3", 33 * 1024 * 1024, 16, 64, latency_cycles=50),
    ),
    memory_bandwidth_bps=205 * GB,
    peak_flops=3200e9,
    spmv_flops=40e9,
    description="2x Intel Xeon Platinum 8160, 12x8GB DDR4-2667 (paper §7.1)",
)

#: Dual-socket 20-core IBM POWER9 8335-GTH, 2.4 GHz, 16x32 GiB DIMMs.
#: 64 B lines; 32 KiB/8-way L1D per core.
POWER9 = MachineModel(
    name="power9",
    cores=40,
    frequency_ghz=2.4,
    cache_levels=(
        CacheLevelSpec("L1", 32 * 1024, 8, 64, latency_cycles=4),
        CacheLevelSpec("L2", 512 * 1024, 8, 64, latency_cycles=12),
        CacheLevelSpec("L3", 10 * 1024 * 1024, 20, 64, latency_cycles=40),
    ),
    memory_bandwidth_bps=230 * GB,
    peak_flops=1536e9,
    spmv_flops=35e9,
    description="2x IBM POWER9 8335-GTH, 16x32GB DIMMs (paper §7.1)",
)

#: 48-core Fujitsu A64FX, 2.2 GHz, HBM2.  256 B cache lines — four times the
#: x86/POWER line size, which is the key architectural lever of §7.6.
A64FX = MachineModel(
    name="a64fx",
    cores=48,
    frequency_ghz=2.2,
    cache_levels=(
        CacheLevelSpec("L1", 64 * 1024, 4, 256, latency_cycles=5),
        CacheLevelSpec("L2", 8 * 1024 * 1024, 16, 256, latency_cycles=37),
    ),
    memory_bandwidth_bps=830 * GB,
    peak_flops=2700e9,
    spmv_flops=120e9,
    description="1x Fujitsu A64FX, HBM2, 256B cache lines (paper §7.1)",
)

#: Registry of all preset machines keyed by lowercase name.
MACHINES: Dict[str, MachineModel] = {
    m.name: m for m in (SKYLAKE, POWER9, A64FX)
}


def get_machine(name: str) -> MachineModel:
    """Look up a preset machine model by (case-insensitive) name."""
    key = name.lower()
    if key not in MACHINES:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        )
    return MACHINES[key]
