"""Virtual-address placement model for vectors (§4.1).

The paper determines the position of ``x[i]`` inside its cache line from the
*offset bits* of its virtual address: because first-level caches are
virtually indexed and physically tagged, virtual and physical offset (and
index) bits coincide, so ``address_virtual(x[i]) mod elements_per_line``
gives the element's slot within its line.

In this reproduction a vector is described by an :class:`ArrayPlacement`: its
base virtual address plus the line size of the target machine.  The class
answers the two questions the fill-in algorithm asks:

* which cache line does element ``i`` live in?
* which element range ``[first, last]`` shares that line?

``ArrayPlacement.for_numpy`` reads the *actual* base address of a NumPy
buffer via the array interface, so the model can mirror a concrete
allocation; experiments default to aligned placements (offset 0) and sweep
misaligned ones explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arch.machine import BYTES_PER_ELEMENT
from repro.errors import ConfigurationError

__all__ = ["ArrayPlacement"]


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of a double-precision vector in virtual memory.

    Parameters
    ----------
    line_bytes:
        Cache-line size of the target machine (power of two).
    base_address:
        Virtual address of element 0.  Must be 8-byte aligned (doubles are);
        it need *not* be line-aligned — the paper's §4.1 modulo arithmetic
        handles arbitrary element offsets within the first line.
    """

    line_bytes: int
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError(
                f"line_bytes must be a positive power of two, got {self.line_bytes}"
            )
        if self.line_bytes < BYTES_PER_ELEMENT:
            raise ConfigurationError("line smaller than one element")
        if self.base_address % BYTES_PER_ELEMENT:
            raise ConfigurationError(
                "base_address must be 8-byte aligned for double precision"
            )

    @classmethod
    def aligned(cls, line_bytes: int) -> "ArrayPlacement":
        """Placement starting exactly at a line boundary (offset 0)."""
        return cls(line_bytes=line_bytes, base_address=0)

    @classmethod
    def with_element_offset(cls, line_bytes: int, offset_elements: int) -> "ArrayPlacement":
        """Placement whose element 0 sits ``offset_elements`` slots into a line."""
        epl = line_bytes // BYTES_PER_ELEMENT
        return cls(
            line_bytes=line_bytes,
            base_address=(offset_elements % epl) * BYTES_PER_ELEMENT,
        )

    @classmethod
    def for_numpy(cls, array: np.ndarray, line_bytes: int) -> "ArrayPlacement":
        """Placement mirroring the actual virtual address of a NumPy buffer."""
        if array.dtype.itemsize != BYTES_PER_ELEMENT:
            raise ConfigurationError("placement model assumes 8-byte elements")
        address = array.__array_interface__["data"][0]
        return cls(line_bytes=line_bytes, base_address=address)

    # ------------------------------------------------------------------
    @property
    def elements_per_line(self) -> int:
        """Elements stored per cache line (8 for 64 B, 32 for 256 B)."""
        return self.line_bytes // BYTES_PER_ELEMENT

    @property
    def element_offset(self) -> int:
        """Slot of element 0 within its cache line (§4.1 modulo)."""
        return (self.base_address % self.line_bytes) // BYTES_PER_ELEMENT

    def address_of(self, i) -> "np.ndarray | int":
        """Virtual address of element(s) ``i``."""
        return self.base_address + np.asarray(i, dtype=np.int64) * BYTES_PER_ELEMENT

    def line_of(self, i) -> "np.ndarray | int":
        """Cache-line id of element(s) ``i`` (vectorised).

        Line ids are virtual-address based, i.e. element 0 of a misaligned
        vector may share a line with whatever precedes it; within a single
        vector only relative ids matter.
        """
        return (np.asarray(i, dtype=np.int64) + self.element_offset) // self.elements_per_line

    def slot_of(self, i) -> "np.ndarray | int":
        """Slot of element(s) ``i`` within their cache line."""
        return (np.asarray(i, dtype=np.int64) + self.element_offset) % self.elements_per_line

    def line_span(self, i: int, n: int) -> Tuple[int, int]:
        """Element range ``[first, last]`` (clipped to ``[0, n)``) sharing
        element ``i``'s cache line.

        This is the "initial and final columns matching the cache line of
        ``x_j``" computation of Algorithm 3, line 10.
        """
        if not 0 <= i < n:
            raise IndexError(f"element {i} out of range [0, {n})")
        epl = self.elements_per_line
        line_start = ((i + self.element_offset) // epl) * epl - self.element_offset
        first = max(line_start, 0)
        last = min(line_start + epl - 1, n - 1)
        return int(first), int(last)

    def lines_used(self, n: int) -> int:
        """Number of distinct cache lines a vector of length ``n`` occupies."""
        if n <= 0:
            return 0
        first_line = self.line_of(0)
        last_line = self.line_of(n - 1)
        return int(last_line - first_line + 1)
