"""Machine models.

A :class:`MachineModel` bundles the handful of architectural parameters the
reproduction needs: the cache-line size (the single input of the fill-in
algorithm, §4.1), the cache hierarchy geometry (for the simulator of
:mod:`repro.cachesim`), and sustained bandwidth / flop-rate figures (for the
roofline cost model in :mod:`repro.perf`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError

__all__ = ["CacheLevelSpec", "MachineModel"]

#: Bytes per double-precision element; the paper (and this library) assume
#: 64-bit floating point values throughout.
BYTES_PER_ELEMENT = 8


def _require_power_of_two(value: int, name: str) -> None:
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry of one cache level.

    Attributes
    ----------
    name:
        Human-readable level name (``"L1"``, ``"L2"``, ...).
    size_bytes:
        Total capacity of the level.
    associativity:
        Number of ways per set.
    line_bytes:
        Cache-line size.  All levels of one machine share the line size in
        the systems the paper evaluates.
    latency_cycles:
        Approximate load-to-use latency, used only for reporting.
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        _require_power_of_two(self.line_bytes, "line_bytes")
        if self.associativity <= 0:
            raise ConfigurationError(
                f"associativity must be positive, got {self.associativity}"
            )
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.associativity}"
            )

    @property
    def n_lines(self) -> int:
        """Total number of lines the level can hold."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (``n_lines / associativity``)."""
        return self.n_lines // self.associativity

    @property
    def elements_per_line(self) -> int:
        """Double-precision elements per cache line."""
        return self.line_bytes // BYTES_PER_ELEMENT


@dataclass(frozen=True)
class MachineModel:
    """Architectural parameters of one evaluation system.

    The performance figures are *sustained* values for memory-bound sparse
    kernels, not marketing peaks — they parameterise the roofline model that
    converts simulated cache traffic into per-iteration times.
    """

    name: str
    cores: int
    frequency_ghz: float
    cache_levels: Tuple[CacheLevelSpec, ...]
    #: Sustained memory bandwidth for irregular streams, bytes/second.
    memory_bandwidth_bps: float
    #: Peak double-precision flop rate of the full node, flops/second.
    peak_flops: float
    #: Effective flop rate achievable by SpMV-like kernels (paper §7.3 notes
    #: SpMV rarely exceeds ~40 GF/s on wide-SIMD x86 nodes).
    spmv_flops: float
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.cache_levels:
            raise ConfigurationError("machine needs at least one cache level")
        line = self.cache_levels[0].line_bytes
        for lvl in self.cache_levels:
            if lvl.line_bytes != line:
                raise ConfigurationError(
                    "mixed line sizes across levels are not modelled"
                )
        if self.memory_bandwidth_bps <= 0 or self.peak_flops <= 0:
            raise ConfigurationError("bandwidth and flop rates must be positive")

    @property
    def line_bytes(self) -> int:
        """Cache-line size — the single architecture input of the fill-in."""
        return self.cache_levels[0].line_bytes

    @property
    def elements_per_line(self) -> int:
        """Double-precision elements per cache line (8 on 64 B, 32 on 256 B)."""
        return self.line_bytes // BYTES_PER_ELEMENT

    @property
    def l1(self) -> CacheLevelSpec:
        """First-level data cache."""
        return self.cache_levels[0]

    def level(self, name: str) -> CacheLevelSpec:
        """Look up a cache level by name (case-insensitive)."""
        for lvl in self.cache_levels:
            if lvl.name.lower() == name.lower():
                return lvl
        raise ConfigurationError(
            f"{self.name} has no cache level {name!r}; "
            f"levels: {[lvl.name for lvl in self.cache_levels]}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lvls = ", ".join(
            f"{lvl.name}={lvl.size_bytes // 1024}KiB/{lvl.associativity}w"
            for lvl in self.cache_levels
        )
        return (
            f"{self.name}: {self.cores} cores @ {self.frequency_ghz} GHz, "
            f"{self.line_bytes} B lines [{lvls}]"
        )
