"""Architecture models.

This subpackage encodes the *architecture inputs* of the paper's method:

* :class:`~repro.arch.machine.MachineModel` — cache-line size, cache
  geometry, memory bandwidth and peak flop rate of a target system;
* presets for the paper's three evaluation systems (§7.1):
  :data:`~repro.arch.presets.SKYLAKE`, :data:`~repro.arch.presets.POWER9`,
  :data:`~repro.arch.presets.A64FX`;
* :class:`~repro.arch.address.ArrayPlacement` — the virtual-address model of
  §4.1 that maps a vector element ``x[i]`` to its cache line and its offset
  within that line (``address_virtual(x[i]) mod elements_per_line``);
* cache-line block arithmetic used by the cache-friendly fill-in (§4.2).

The paper stresses that the *only* architecture input the fill-in algorithm
needs is the cache-line size; everything else (cache sizes, associativity,
bandwidth, flop rate) is used solely by the simulator and the cost model.
"""

from repro.arch.machine import CacheLevelSpec, MachineModel
from repro.arch.presets import A64FX, POWER9, SKYLAKE, MACHINES, get_machine
from repro.arch.address import ArrayPlacement
from repro.arch.cacheline import (
    line_of_index,
    line_span,
    lines_touched,
    distinct_lines_count,
)

__all__ = [
    "CacheLevelSpec",
    "MachineModel",
    "SKYLAKE",
    "POWER9",
    "A64FX",
    "MACHINES",
    "get_machine",
    "ArrayPlacement",
    "line_of_index",
    "line_span",
    "lines_touched",
    "distinct_lines_count",
]
