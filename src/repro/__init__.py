"""repro — reproduction of *Cache-aware Sparse Patterns for the Factorized
Sparse Approximate Inverse Preconditioner* (Laut, Borrell, Casas — HPDC 2021).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.sparse``
    From-scratch sparse linear algebra (COO/CSR/CSC, patterns, SpMV).
``repro.arch``
    Machine models (Skylake / POWER9 / A64FX) and the virtual-address /
    cache-line alignment model of §4.1.
``repro.cachesim``
    Set-associative LRU cache simulator replaying SpMV access streams.
``repro.solvers``
    CG / PCG with instrumentation, dense Cholesky, local iterative solves.
``repro.fsai``
    FSAI, cache-friendly fill-in, precalculation filtering, FSAIE(sp)/(full).
``repro.collection``
    Synthetic 72-matrix mirror of the paper's SuiteSparse test set.
``repro.perf``
    Roofline cost model and performance metrics.
``repro.experiments``
    Campaign runner and Table 1-5 / Figure 1-7 regeneration.

Quickstart
----------
>>> import numpy as np
>>> from repro.arch import SKYLAKE, ArrayPlacement
>>> from repro.collection import poisson2d
>>> from repro.fsai import setup_fsaie_full
>>> from repro.solvers import pcg
>>> A = poisson2d(32)
>>> placement = ArrayPlacement.aligned(SKYLAKE.line_bytes)
>>> setup = setup_fsaie_full(A, placement, filter_value=0.01)
>>> result = pcg(A, np.ones(A.n_rows), preconditioner=setup.application)
>>> result.converged
True
"""

from repro import errors
from repro.version import __version__

__all__ = ["errors", "__version__"]
