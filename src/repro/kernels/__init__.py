"""``repro.kernels`` — pluggable backends for the solve-side hot paths.

The PCG loop spends its time in three memory-bound primitives — the SpMV
with ``A``, the fused FSAI application ``G^T (G r)``, and the vector
updates — exactly the kernels the paper's §2 analysis identifies.  This
package routes all of them through a backend registry:

>>> from repro.kernels import get_backend
>>> backend = get_backend()          # $REPRO_KERNEL_BACKEND or "numpy"
>>> y = backend.spmv(a, x, out=y, scratch=ws)

Shipped backends:

``numpy`` (default)
    ``np.add.reduceat`` segment sums with caller-provided workspaces.
``numba``
    Parallel ``prange`` row loops, auto-detected; silently resolves to
    ``numpy`` when numba is not installed.
``reference``
    The seed's allocating ``np.bincount`` formulation, kept as the
    benchmark/property-test oracle.

See ``docs/kernels.md`` for the workspace contract and selection rules.
"""

from repro.kernels import numba_backend
from repro.kernels.base import KernelBackend, KernelInputWarning
from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.reference import ReferenceBackend
from repro.kernels.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "KernelInputWarning",
    "NumpyBackend",
    "ReferenceBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "use_backend",
]

register_backend("reference", ReferenceBackend)
register_backend("numpy", NumpyBackend)
register_backend("numba", numba_backend.make_backend)
