"""Kernel-backend interface: the solve-side hot-path primitives.

The paper's wall-time analysis (§2) shows PCG time is dominated by two
memory-bound kernels — the SpMV with ``A`` and the FSAI application
``z = G^T (G r)`` — so those, plus the PCG vector updates, are the
operations a backend must provide.  Everything else in the library stays
backend-agnostic and calls these primitives through the registry
(:func:`repro.kernels.get_backend`).

Operand contract
----------------
Sparse operands are duck-typed CSR objects (in practice
:class:`repro.sparse.csr.CSRMatrix`) exposing ``n_rows``, ``n_cols``,
``indptr``, ``indices``, ``data`` plus the cached structure helpers
``row_ids()``, ``row_segments()`` and ``col_segments()``.  Backends never
mutate operands; any auxiliary structure they need is cached on the
matrix so repeated calls (the CG loop) pay for it once.

Workspace contract
------------------
Every primitive accepts optional caller-owned buffers and allocates only
when they are omitted:

``out``
    Result vector (``n_rows`` for :meth:`spmv`, ``n_cols`` for
    :meth:`spmv_t`, ``n`` for :meth:`fsai_apply`).  Always returned, so
    call sites read uniformly whether they preallocated or not.
``scratch``
    ``nnz``-length float buffer for the gather product
    ``data * x[...]``.  The NumPy backends leave the (structure-ordered)
    products behind in it; other backends may ignore it entirely — its
    contents are backend-specific, only its role is contractual.
``tmp``
    ``n``-length float buffer holding the intermediate ``t = G r`` of the
    fused FSAI application.
``work``
    ``n``-length float buffer for :meth:`pcg_step`'s AXPY temporaries.

With all buffers supplied, a backend performs **no per-call heap
allocation** in ``spmv``/``fsai_apply``/``pcg_step``/``pcg_direction``
(the empty-row/empty-column correction path of the NumPy backend is the
one documented exception; FSAI factors and SPD system matrices never
take it).  See ``docs/kernels.md`` for the full rationale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """Abstract kernel backend: SpMV / FSAI-apply / PCG-update primitives.

    Implementations must be numerically equivalent — the property suite
    (``tests/kernels``) holds every registered backend to the dense
    reference within ``1e-13`` — but are free to differ in summation
    strategy, parallelism and workspace use.
    """

    #: Registry name; also stamped on trace spans (``backend=...``).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Sparse kernels
    # ------------------------------------------------------------------
    @abstractmethod
    def spmv(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A @ x`` over a CSR operand."""

    @abstractmethod
    def spmv_t(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A.T @ x`` without materialising the transpose."""

    @abstractmethod
    def fsai_apply(
        self, g: Any, r: np.ndarray, out: Optional[np.ndarray] = None,
        *, tmp: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused ``out = G^T (G r)`` from ``G``'s structure alone.

        The intermediate ``t = G r`` lives in ``tmp`` (never a fresh
        allocation when supplied), and the second product scatters through
        the same stored factor — no explicit ``G^T`` matrix is required.
        """

    # ------------------------------------------------------------------
    # Bound kernel handles (OSKI-style tuned operators)
    # ------------------------------------------------------------------
    def spmv_op(self, a: Any, scratch: Optional[np.ndarray] = None):
        """Return ``op(x, out) -> out`` for repeated products with ``a``.

        Solver loops multiply by the *same* matrix thousands of times;
        a bound handle lets a backend resolve the per-matrix strategy
        (format selection, cached views, workspaces) once instead of on
        every call.  The default just closes over :meth:`spmv`.
        """
        def op(x: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self.spmv(a, x, out=out, scratch=scratch)
        return op

    def fsai_apply_op(self, g: Any, tmp: np.ndarray,
                      scratch: Optional[np.ndarray] = None):
        """Return ``op(r, out) -> out`` applying ``G^T (G r)`` repeatedly.

        Same rationale as :meth:`spmv_op`, for the preconditioner
        application — the other half of every PCG iteration's cost.
        """
        def op(r: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self.fsai_apply(g, r, out=out, tmp=tmp, scratch=scratch)
        return op

    # ------------------------------------------------------------------
    # PCG vector primitives
    # ------------------------------------------------------------------
    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Euclidean inner product (shared default: BLAS ``np.dot``)."""
        return float(np.dot(u, v))

    @abstractmethod
    def pcg_step(
        self, alpha: float, x: np.ndarray, d: np.ndarray, r: np.ndarray,
        q: np.ndarray, work: Optional[np.ndarray] = None,
    ) -> float:
        """Fused PCG iterate update; returns the new ``r·r``.

        In place: ``x += alpha d``; ``r -= alpha q``; the squared residual
        norm of the updated ``r`` comes back so the convergence test needs
        no extra pass.
        """

    @abstractmethod
    def pcg_direction(self, beta: float, d: np.ndarray, z: np.ndarray) -> None:
        """In place ``d = z + beta d`` (the PCG search-direction update)."""

    # ------------------------------------------------------------------
    # Dense batched kernel (the §5 precalculation's lockstep local CG)
    # ------------------------------------------------------------------
    @abstractmethod
    def stacked_matvec(
        self, a_stack: np.ndarray, d_stack: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out[i] = a_stack[i] @ d_stack[i]`` over an ``(m, k, k)`` stack."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
