"""Kernel-backend interface: the solve-side hot-path primitives.

The paper's wall-time analysis (§2) shows PCG time is dominated by two
memory-bound kernels — the SpMV with ``A`` and the FSAI application
``z = G^T (G r)`` — so those, plus the PCG vector updates, are the
operations a backend must provide.  Serving many right-hand sides
against one operator adds their blocked twins: the SpMM ``A @ X`` over
an ``(n, k)`` block and the fused multi-vector FSAI application, which
amortise one traversal of the sparse index stream across ``k`` vectors.
Everything else in the library stays backend-agnostic and calls these
primitives through the registry (:func:`repro.kernels.get_backend`).

Operand contract
----------------
Sparse operands are duck-typed CSR objects (in practice
:class:`repro.sparse.csr.CSRMatrix`) exposing ``n_rows``, ``n_cols``,
``indptr``, ``indices``, ``data`` plus the cached structure helpers
``row_ids()``, ``row_segments()`` and ``col_segments()``.  Backends never
mutate operands; any auxiliary structure they need is cached on the
matrix so repeated calls (the CG loop) pay for it once.

Dense operands (``x``, the block ``X``, ``r``/``R``) are validated at
every public entry point: a non-float64 input is upcast to float64 with
a :class:`KernelInputWarning` (a silent float32 operand would otherwise
crash deep inside a workspace kernel, or quietly degrade precision), and
a non-contiguous input is compacted silently.  ``out`` buffers are the
caller's result storage and cannot be coerced — a wrong dtype or shape
raises immediately.  The *bound handles* (``spmv_op`` and friends) skip
this validation by contract: they are built once per solve for loops
that own their buffers.

Workspace contract
------------------
Every primitive accepts optional caller-owned buffers and allocates only
when they are omitted:

``out``
    Result buffer (``n_rows`` for :meth:`spmv`, ``n_cols`` for
    :meth:`spmv_t`, ``n`` for :meth:`fsai_apply`; the blocked variants
    take the ``(·, k)`` analogues).  Always returned, so call sites read
    uniformly whether they preallocated or not.
``scratch``
    ``nnz``-length float buffer (``(nnz, k)`` for the blocked kernels)
    for the gather product ``data * x[...]``.  The NumPy backends leave
    the (structure-ordered) products behind in it; other backends may
    ignore it entirely — its contents are backend-specific, only its
    role is contractual.  Backends that fall back to the column-loop
    defaults for the blocked kernels ignore ``scratch`` there.
``tmp``
    ``n``-length (``(n, k)`` for :meth:`fsai_apply_multi`) float buffer
    holding the intermediate ``t = G r`` of the fused FSAI application.
``work``
    ``n``-length float buffer for :meth:`pcg_step`'s AXPY temporaries.

With all buffers supplied, a backend performs **no per-call heap
allocation** in ``spmv``/``fsai_apply``/``pcg_step``/``pcg_direction``
(the empty-row/empty-column correction path of the NumPy backend is the
one documented exception; FSAI factors and SPD system matrices never
take it).  See ``docs/kernels.md`` for the full rationale.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

from repro import trace
from repro.kernels.precalc import run_fsai_precalc, solve_precalc_stack
from repro.kernels.setup import (
    gather_group_stack,
    run_fsai_setup,
    solve_group_stack,
)
from repro.kernels.spgemm import SpgemmPlan, plan_spgemm, spgemm_numeric

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.sparse.pattern import Pattern

__all__ = ["KernelBackend", "KernelInputWarning", "coerce_operand"]


def _pattern_view(m: Any) -> "Pattern":
    """Structure view of a duck-typed CSR operand (no validation copy)."""
    from repro.sparse.pattern import Pattern

    pattern = getattr(m, "pattern", None)
    if isinstance(pattern, Pattern):
        return pattern
    return Pattern(m.n_rows, m.n_cols, m.indptr, m.indices, _validated=True)


class KernelInputWarning(UserWarning):
    """A kernel operand needed upcasting to float64 at the boundary."""


def coerce_operand(
    x: Any, *, name: str = "x", ndim: Optional[int] = None,
) -> np.ndarray:
    """Validate a dense kernel input: float64, C-contiguous, right rank.

    Non-float64 inputs (float32 data files, integer RHS from tests) are
    upcast with a :class:`KernelInputWarning`; non-contiguous float64
    inputs (column slices of a block) are compacted silently — only the
    gather path's speed is at stake there, never correctness.
    """
    arr = np.asarray(x)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(
            f"kernel operand {name!r} must be {ndim}-D, got shape {arr.shape}"
        )
    if arr.dtype != np.float64:
        warnings.warn(
            f"kernel operand {name!r} has dtype {arr.dtype}; upcasting to "
            "float64 (supply float64 data to avoid the copy)",
            KernelInputWarning,
            stacklevel=3,
        )
        return np.ascontiguousarray(arr, dtype=np.float64)
    if not arr.flags.c_contiguous:
        return np.ascontiguousarray(arr)
    return arr


def _prepare_out(
    out: Optional[np.ndarray], shape: Tuple[int, ...], *, name: str = "out",
) -> np.ndarray:
    """Allocate ``out`` when omitted; reject unusable caller buffers.

    ``out`` is where the caller will read the result, so unlike inputs it
    cannot be coerced — a silent copy would leave the caller's buffer
    stale.  Wrong dtype or shape therefore raises.
    """
    if out is None:
        return np.empty(shape)
    if out.dtype != np.float64:
        raise TypeError(
            f"{name} buffer must be float64, got {out.dtype} "
            "(kernels write results in place; a cast copy would be lost)"
        )
    if out.shape != shape:
        raise ValueError(f"{name} has shape {out.shape}, expected {shape}")
    return out


class KernelBackend(ABC):
    """Abstract kernel backend: SpMV / SpMM / FSAI-apply / PCG primitives.

    Implementations must be numerically equivalent — the property suite
    (``tests/kernels``) holds every registered backend to the dense
    reference within ``1e-13`` — but are free to differ in summation
    strategy, parallelism and workspace use.

    The public entry points (:meth:`spmv`, :meth:`spmm`, …) validate
    operands and allocate missing ``out`` buffers, then delegate to the
    ``_``-prefixed hooks backends actually implement.  The blocked
    kernels (:meth:`spmm`, :meth:`spmm_t`, :meth:`fsai_apply_multi`)
    default to a column loop over the single-vector hooks, so a minimal
    backend — including the reference oracle — is automatically
    multi-RHS-correct with the exact per-column summation order of its
    single-vector kernels.
    """

    #: Registry name; also stamped on trace spans (``backend=...``).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Sparse kernels — public validated entry points
    # ------------------------------------------------------------------
    def spmv(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A @ x`` over a CSR operand."""
        x = coerce_operand(x, name="x", ndim=1)
        out = _prepare_out(out, (a.n_rows,))
        return self._spmv(a, x, out, scratch)

    def spmv_t(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A.T @ x`` without materialising the transpose."""
        x = coerce_operand(x, name="x", ndim=1)
        out = _prepare_out(out, (a.n_cols,))
        return self._spmv_t(a, x, out, scratch)

    def fsai_apply(
        self, g: Any, r: np.ndarray, out: Optional[np.ndarray] = None,
        *, tmp: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused ``out = G^T (G r)`` from ``G``'s structure alone.

        The intermediate ``t = G r`` lives in ``tmp`` (never a fresh
        allocation when supplied), and the second product scatters through
        the same stored factor — no explicit ``G^T`` matrix is required.
        """
        r = coerce_operand(r, name="r", ndim=1)
        out = _prepare_out(out, (g.n_rows,))
        return self._fsai_apply(g, r, out, tmp, scratch)

    def spmm(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A @ X`` over an ``(n_cols, k)`` block of vectors.

        One traversal of ``A``'s index stream serves all ``k`` columns —
        the multi-RHS amortisation the blocked PCG is built on.
        ``scratch``, when a backend uses it, is ``(nnz, k)``.
        """
        x = coerce_operand(x, name="X", ndim=2)
        out = _prepare_out(out, (a.n_rows, x.shape[1]))
        return self._spmm(a, x, out, scratch)

    def spmm_t(
        self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
        *, scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out = A.T @ X`` over an ``(n_rows, k)`` block."""
        x = coerce_operand(x, name="X", ndim=2)
        out = _prepare_out(out, (a.n_cols, x.shape[1]))
        return self._spmm_t(a, x, out, scratch)

    def fsai_apply_multi(
        self, g: Any, r: np.ndarray, out: Optional[np.ndarray] = None,
        *, tmp: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused ``out = G^T (G R)`` over an ``(n, k)`` residual block.

        The blocked twin of :meth:`fsai_apply`; ``tmp`` holds the
        ``(n, k)`` intermediate ``T = G R``.
        """
        r = coerce_operand(r, name="R", ndim=2)
        out = _prepare_out(out, (g.n_rows, r.shape[1]))
        return self._fsai_apply_multi(g, r, out, tmp, scratch)

    # ------------------------------------------------------------------
    # FSAI setup — the one *setup-side* kernel op
    # ------------------------------------------------------------------
    def fsai_setup(self, a: Any, pattern: Any, lengths=None) -> np.ndarray:
        """Normalised FSAI factor data for ``pattern`` over SPD ``a``.

        Solves every per-row local system ``A[S_i, S_i] ĝ = e_i`` in
        identity-padded groups and returns the ``pattern.nnz`` data array
        of the normalised factor ``G`` (see :mod:`repro.kernels.setup`
        for the grouping and determinism contract).  The driver is
        shared; backends override :meth:`_fsai_setup_build` (the gather)
        and :meth:`_fsai_setup_solve` (the batched Cholesky) — both must
        preserve the canonical per-element operation order so that every
        backend's output is byte-identical.

        Raises :class:`repro.errors.NotSPDError` when any local system
        is not SPD.  ``lengths`` is the caller's validated row-length
        array (recomputed when omitted).
        """
        return run_fsai_setup(self, a, pattern, lengths=lengths)

    def setup_threads(self) -> int:
        """Worker threads :meth:`fsai_setup` will use (1 = sequential).

        Stamped on ``fsai_setup`` trace spans and consulted by the
        orchestrator's thread-budget policy; parallel backends report
        their live thread-pool size.
        """
        return 1

    def _fsai_setup_build(
        self, keys, a_data, n_cols, indptr, indices, rows_parts, group, K,
    ) -> np.ndarray:
        # Default: vectorized packed lower-triangle gather via one
        # searchsorted over all k(k+1)/2 queries per bucket.  Gathered
        # values are exact copies of a_data (or exact 0.0), so any
        # override is automatically bit-compatible.
        return gather_group_stack(
            keys, a_data, n_cols, indptr, indices, rows_parts, group, K,
        )

    def _fsai_setup_solve(self, systems: np.ndarray) -> np.ndarray:
        # Default: the canonical vectorized fused-column Cholesky +
        # column back-substitution.  Overrides must replay the same
        # per-element operation sequence (see solve_group_stack).
        return solve_group_stack(systems)

    def fsai_precalc(
        self, a: Any, pattern: Any, *, rtol: float, max_iterations: int,
        lengths=None,
    ) -> np.ndarray:
        """Truncated-CG estimate data for ``pattern`` (the §5 precalc op).

        Runs the batched truncated CG on the same identity-padded groups
        as :meth:`fsai_setup` and returns the ``pattern.nnz`` data array
        of the *approximate* normalised factor used by the filtering
        step (see :mod:`repro.kernels.precalc` for the iteration
        schedule and determinism contract).  The driver is shared;
        backends reuse :meth:`_fsai_setup_build` for the gather and
        override :meth:`_fsai_precalc_solve` (the masked batched CG) —
        every backend's output is byte-identical.

        Breakdowns never raise: rows whose truncated estimate is not
        positive fall back to the Jacobi guess.  ``lengths`` is the
        caller's validated row-length array (recomputed when omitted).
        """
        return run_fsai_precalc(
            self, a, pattern, rtol, max_iterations, lengths=lengths
        )

    def _fsai_precalc_solve(
        self, systems: np.ndarray, rtol: float, max_iterations: int
    ) -> np.ndarray:
        # Default: the canonical batched masked CG.  Overrides must
        # replay the same per-element schedule (see solve_precalc_stack).
        return solve_precalc_stack(systems, rtol, max_iterations)

    # ------------------------------------------------------------------
    # SpGEMM — sparse × sparse products (setup-side, pattern-capped)
    # ------------------------------------------------------------------
    def spgemm(self, a: Any, b: Any, *, cap: Optional[Pattern] = None):
        """``A @ B`` over CSR operands, optionally capped to ``cap``.

        Runs both phases of the two-pass SpGEMM: the symbolic plan
        (:func:`repro.kernels.spgemm.plan_spgemm`) and the backend's
        numeric phase, returning a :class:`~repro.sparse.csr.CSRMatrix`
        on the product pattern — or on exactly ``cap``, with explicit
        zeros where no product lands (see the cap semantics in
        :mod:`repro.kernels.spgemm`).  Iterative callers multiplying on
        fixed structure should bind :meth:`spgemm_op` instead, which
        amortises the symbolic phase across products.
        """
        a_data = coerce_operand(a.data, name="a.data", ndim=1)
        b_data = coerce_operand(b.data, name="b.data", ndim=1)
        plan = plan_spgemm(_pattern_view(a), _pattern_view(b), cap=cap)
        with trace.span(
            "spgemm",
            backend=self.name,
            rows=plan.out.n_rows,
            nnz_out=plan.out.nnz,
            products=plan.n_products,
            capped=plan.capped,
        ):
            data = self._spgemm_numeric(plan, a_data, b_data)
        from repro.sparse.csr import CSRMatrix

        return CSRMatrix.from_pattern(plan.out, data)

    def spgemm_op(
        self,
        a_pattern: Optional[Pattern] = None,
        b_pattern: Optional[Pattern] = None,
        *,
        cap: Optional[Pattern] = None,
        plan: Optional[SpgemmPlan] = None,
    ):
        """Return ``op(a_data, b_data) -> data`` with the symbolic phase bound.

        The global SAI sweeps multiply on the *same* pattern pair dozens
        of times per setup; the bound handle runs :func:`plan_spgemm`
        once and every call is then pure numeric work.  Pass ``plan`` to
        reuse an already-built plan (it wins over the pattern arguments);
        the plan is exposed as ``op.plan`` for flop accounting.  Like the
        other bound handles, ``op`` skips per-call validation and opens
        no trace span.
        """
        if plan is None:
            if a_pattern is None or b_pattern is None:
                raise ValueError(
                    "spgemm_op needs either a prebuilt plan or both patterns"
                )
            plan = plan_spgemm(a_pattern, b_pattern, cap=cap)

        def op(a_data: np.ndarray, b_data: np.ndarray) -> np.ndarray:
            return self._spgemm_numeric(plan, a_data, b_data)

        op.plan = plan
        return op

    def _spgemm_numeric(
        self, plan: SpgemmPlan, a_data: np.ndarray, b_data: np.ndarray
    ) -> np.ndarray:
        # Default: the canonical vectorised gather-multiply-bincount
        # pass in the plan's Gustavson order.  Overrides must either
        # replay that accumulation order exactly (numba) or are held to
        # 1e-13 dense agreement instead (the reference oracle).
        return spgemm_numeric(plan, a_data, b_data)

    def spgemm_numeric_into(
        self,
        plan: SpgemmPlan,
        a_data: np.ndarray,
        b_data: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """Numeric phase written into a caller buffer.

        The global-SAI sweep loops call this dozens of times per setup
        with preallocated buffers; backends whose numeric kernel already
        writes in place (numba) override it to skip the copy.  Values
        are byte-identical to :meth:`_spgemm_numeric`.
        """
        np.copyto(out, self._spgemm_numeric(plan, a_data, b_data))
        return out

    # ------------------------------------------------------------------
    # Fused global-iteration sweep updates (see repro.fsai.global_iter)
    # ------------------------------------------------------------------
    # Each default below is the exact numpy expression the sweep loops
    # historically ran — overrides must stay byte-identical to it (the
    # cross-backend identity suite in tests/kernels/test_sweep_fused.py
    # pins this with tobytes() comparisons).  The numba backend fuses
    # each update with the capped SpGEMM row loop so the sweep touches
    # the pattern arrays once instead of materialising the intermediate
    # product and re-traversing it.

    def sweep_axpy_pair(
        self,
        x: np.ndarray,
        r: np.ndarray,
        w: np.ndarray,
        alpha: float,
    ) -> None:
        """Minimal-residual sweep update ``x += αr; r -= αw`` in place."""
        x += alpha * r
        r -= alpha * w

    def sweep_scale_add(
        self, d: np.ndarray, r: np.ndarray, c0: float, c1: float
    ) -> None:
        """Chebyshev direction update ``d = c0·d + c1·r`` in place."""
        d *= c0
        d += c1 * r

    def sweep_cheb_update(
        self,
        plan: SpgemmPlan,
        d: np.ndarray,
        b_data: np.ndarray,
        x: np.ndarray,
        r: np.ndarray,
        w: np.ndarray,
    ) -> None:
        """Chebyshev sweep core ``x += d; r -= P_S(D·A)`` (``w`` scratch).

        ``plan`` must be the factor-equation plan (a/out patterns are
        both the factor pattern ``S``); ``b_data`` is ``A``'s data.
        """
        x += d
        self.spgemm_numeric_into(plan, d, b_data, w)
        r -= w

    def sweep_ns_correction(
        self,
        plan: SpgemmPlan,
        z: np.ndarray,
        x: np.ndarray,
        x_next: np.ndarray,
        scratch: np.ndarray,
    ) -> np.ndarray:
        """Newton–Schulz correction ``x_next = 2x − P_S(Z·X)``.

        ``x_next`` must not alias ``x`` or ``scratch``; all three share
        the factor pattern's data layout.
        """
        self.spgemm_numeric_into(plan, z, x, scratch)
        np.multiply(x, 2.0, out=x_next)
        np.subtract(x_next, scratch, out=x_next)
        return x_next

    # ------------------------------------------------------------------
    # Implementation hooks (operands pre-validated, ``out`` allocated)
    # ------------------------------------------------------------------
    @abstractmethod
    def _spmv(self, a, x, out, scratch) -> np.ndarray: ...

    @abstractmethod
    def _spmv_t(self, a, x, out, scratch) -> np.ndarray: ...

    @abstractmethod
    def _fsai_apply(self, g, r, out, tmp, scratch) -> np.ndarray: ...

    def _spmm(self, a, x, out, scratch) -> np.ndarray:
        # Default: one contiguous column at a time through the
        # single-vector kernel — per-column summation order is then
        # *identical* to spmv, which is what makes this the oracle the
        # vectorized backends are tested against.
        xcol = np.empty(x.shape[0])
        ycol = np.empty(out.shape[0])
        for j in range(x.shape[1]):
            np.copyto(xcol, x[:, j])
            self._spmv(a, xcol, ycol, None)
            out[:, j] = ycol
        return out

    def _spmm_t(self, a, x, out, scratch) -> np.ndarray:
        xcol = np.empty(x.shape[0])
        ycol = np.empty(out.shape[0])
        for j in range(x.shape[1]):
            np.copyto(xcol, x[:, j])
            self._spmv_t(a, xcol, ycol, None)
            out[:, j] = ycol
        return out

    def _fsai_apply_multi(self, g, r, out, tmp, scratch) -> np.ndarray:
        k = r.shape[1]
        if tmp is None or tmp.shape != (g.n_rows, k):
            tmp = np.empty((g.n_rows, k))
        self._spmm(g, r, tmp, scratch)
        return self._spmm_t(g, tmp, out, scratch)

    # ------------------------------------------------------------------
    # Bound kernel handles (OSKI-style tuned operators)
    # ------------------------------------------------------------------
    def spmv_op(self, a: Any, scratch: Optional[np.ndarray] = None):
        """Return ``op(x, out) -> out`` for repeated products with ``a``.

        Solver loops multiply by the *same* matrix thousands of times;
        a bound handle lets a backend resolve the per-matrix strategy
        (format selection, cached views, workspaces) once instead of on
        every call.  Bound handles skip per-call operand validation — the
        solver validated its buffers when it allocated them.  The default
        just closes over :meth:`_spmv`.
        """
        def op(x: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self._spmv(a, x, out, scratch)
        return op

    def fsai_apply_op(self, g: Any, tmp: np.ndarray,
                      scratch: Optional[np.ndarray] = None):
        """Return ``op(r, out) -> out`` applying ``G^T (G r)`` repeatedly.

        Same rationale as :meth:`spmv_op`, for the preconditioner
        application — the other half of every PCG iteration's cost.
        """
        def op(r: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self._fsai_apply(g, r, out, tmp, scratch)
        return op

    def spmm_op(self, a: Any, scratch: Optional[np.ndarray] = None):
        """Return ``op(X, out) -> out`` for repeated block products.

        The blocked twin of :meth:`spmv_op`: the multi-RHS PCG binds one
        handle per solve, so each iteration's SpMM is a single call with
        the format dispatch already resolved.  ``scratch`` is the
        ``(nnz, k)`` gather workspace for backends that use one.
        """
        def op(x: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self._spmm(a, x, out, scratch)
        return op

    def fsai_apply_multi_op(self, g: Any, tmp: np.ndarray,
                            scratch: Optional[np.ndarray] = None):
        """Return ``op(R, out) -> out`` for the blocked FSAI application.

        ``tmp`` is the caller-owned ``(n, k)`` intermediate block.
        """
        def op(r: np.ndarray, out: np.ndarray) -> np.ndarray:
            return self._fsai_apply_multi(g, r, out, tmp, scratch)
        return op

    # ------------------------------------------------------------------
    # PCG vector primitives
    # ------------------------------------------------------------------
    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Euclidean inner product (shared default: BLAS ``np.dot``)."""
        return float(np.dot(u, v))

    @abstractmethod
    def pcg_step(
        self, alpha: float, x: np.ndarray, d: np.ndarray, r: np.ndarray,
        q: np.ndarray, work: Optional[np.ndarray] = None,
    ) -> float:
        """Fused PCG iterate update; returns the new ``r·r``.

        In place: ``x += alpha d``; ``r -= alpha q``; the squared residual
        norm of the updated ``r`` comes back so the convergence test needs
        no extra pass.
        """

    @abstractmethod
    def pcg_direction(self, beta: float, d: np.ndarray, z: np.ndarray) -> None:
        """In place ``d = z + beta d`` (the PCG search-direction update)."""

    # ------------------------------------------------------------------
    # Dense batched kernel (the §5 precalculation's lockstep local CG)
    # ------------------------------------------------------------------
    @abstractmethod
    def stacked_matvec(
        self, a_stack: np.ndarray, d_stack: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``out[i] = a_stack[i] @ d_stack[i]`` over an ``(m, k, k)`` stack."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
