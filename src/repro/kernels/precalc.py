"""Shared driver for the ``fsai_precalc`` kernel op (§5 precalculation).

The §5 precalculation runs a *truncated* CG (loose ``rtol``, capped
iteration count) on every local system ``A[S_i, S_i] ĝ = e_i`` to obtain
order-of-magnitude estimates of the factor entries — the cheap half of
Algorithm 2 that exists purely to classify weak entries before
filtering.  This op reuses the ``fsai_setup`` layout wholesale: the same
packed lower-triangle binary-search gather, the same identity-padded
row-length groups from :func:`repro.kernels.setup.plan_groups`, the same
batch-last ``(K, K, m)`` stacks.  What replaces the Cholesky is one
batched CG iteration loop per group with per-system convergence masking.

Determinism contract
--------------------
Every backend must produce **byte-identical** data.  The canonical
iteration schedule is defined by :func:`solve_precalc_stack` and replayed
scalar-for-scalar by the reference and numba backends:

* **Sequential reductions via strided einsum** — on a batch-last stack,
  ``np.einsum('jis,js->is', full, d)`` (the matvec) and
  ``np.einsum('js,js->s', d, q)`` (the dots) reduce over the *strided*
  axis ``j`` while streaming the contiguous batch axis innermost, which
  NumPy evaluates as a plain ascending-``j`` accumulation from a ``0.0``
  start — exactly the loop a scalar backend writes.  The one exception
  is a batch width of 1, where the reduction axis becomes contiguous and
  NumPy switches to pairwise summation; therefore the stack is
  **batch-padded to width ≥ 2** with one identity system (dropped at
  scatter) and the convergence compaction below never shrinks under two
  columns.
* **Symmetrisation** — the gather stores lower triangles; the batched
  solver forms ``full = systems + systemsᵀ`` (diagonal overwritten with
  the exact stored value), which turns a stored off-diagonal ``-0.0``
  into ``+0.0``.  Scalar replays must read off-diagonals as
  ``systems[max(i,j), min(i,j), s] + 0.0`` and the diagonal exactly.
* **Per-system masking** — a system leaves the active set when its
  curvature check fails (``dᵀq ≤ 0``: truncated-CG breakdown, frozen at
  the current iterate) or its residual norm drops to ``rtol`` (the rhs
  is a unit vector, so ``‖r‖ ≤ rtol`` *is* the relative test).  Frozen
  systems must never change another bit of ``x``: the ``x`` increment is
  masked to ``-0.0`` (the additive identity that preserves both zero
  signs) before the update, while ``r``/``d``/``rho`` are allowed to
  keep running vectorised — the active mask only ever shrinks, so their
  values never reach ``x`` again.
* **First iteration shortcut** — ``r₀ = d₀ = e_last`` exactly, so the
  first matvec is the (symmetrised) last row of each system and the
  first curvature is its diagonal entry; both are formed with a ``+0.0``
  pass, which is bit-equal to the sequential sum over the zero terms.
* **Convergence compaction** — when fewer than half the live systems
  remain active (and more than two are live), converged columns are
  compacted out, exactly like the blocked PCG.  Compaction is bitwise
  neutral: it only re-indexes contiguous copies.

Identity padding is bitwise neutral here for the same reason as in the
setup op: a padded identity block is decoupled from the real system, its
rhs block is zero, and every operation on exact zeros stays an exact
zero.

Relationship to the legacy bucketed path
----------------------------------------
The legacy ``_precalc_bucketed`` lockstep CG reduces over the *batch-
first* layout with pairwise-summed einsums, so its values differ from
this op in final ulps near the truncation boundary.  The contract is
therefore **not** bitwise agreement with the legacy path but agreement
where it matters: the filtered :class:`~repro.sparse.pattern.Pattern`
selected downstream is identical across the FD stencil suite (pinned by
``tests/fsai/test_precalc_equivalence.py``), and the Jacobi-fallback
normalisation (zeros except ``1/sqrt(a_ii)`` — or ``1.0`` for a
non-positive diagonal — in the last slot) is shared arithmetic and is
bit-for-bit the legacy fallback.  Unlike the exact setup, a breakdown
never raises: §5 wants a conservative estimate, not a diagnosis.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.setup import plan_groups

__all__ = [
    "symmetrize",
    "solve_precalc_stack",
    "run_fsai_precalc",
]


def symmetrize(systems: np.ndarray) -> np.ndarray:
    """Full symmetric stack from a packed lower-triangle ``(K, K, m)`` stack.

    ``full = systems + systemsᵀ`` with the diagonal overwritten by the
    exact stored values.  The transpose add turns a stored ``-0.0``
    off-diagonal into ``+0.0`` — scalar replays reproduce this by
    reading off-diagonals as ``systems[max, min, s] + 0.0``.
    """
    K = systems.shape[0]
    full = systems + systems.transpose(1, 0, 2)
    idx = np.arange(K)
    full[idx, idx, :] = systems[idx, idx, :]
    return full


def solve_precalc_stack(
    systems: np.ndarray, rtol: float, max_iterations: int
) -> np.ndarray:
    """Truncated CG on every system of a ``(K, K, m)`` lower stack.

    The canonical batched schedule every backend replays (see the module
    docstring for the determinism contract).  Returns the ``(K, m)``
    iterates; systems that broke down (``dᵀq ≤ 0``) stay frozen at their
    last iterate and ``max_iterations <= 0`` returns exact zeros — the
    driver's fallback classification owns both cases.
    """
    K, _, m = systems.shape
    x = np.zeros((K, m))
    if m == 0 or K == 0 or max_iterations <= 0:
        return x
    full = symmetrize(systems)
    if m == 1:
        # Keep the einsum reduction axis strided (see module docstring):
        # pad the batch with one identity system, dropped below.
        pad = np.zeros((K, K, 1))
        pad[np.arange(K), np.arange(K), 0] = 1.0
        full = np.concatenate([full, pad], axis=2)
    mw = full.shape[2]
    live = np.arange(mw)          # original column ids of the working set
    r = np.zeros((K, mw))
    r[-1] = 1.0                   # rhs is e_last; ‖r₀‖ = 1 exactly
    d = r.copy()
    rho = np.ones(mw)
    act = np.ones(mw, dtype=bool)
    xl = np.zeros((K, mw))
    first = True
    for _ in range(max_iterations):
        n_act = int(np.count_nonzero(act))
        if n_act == 0:
            break
        if n_act * 2 <= len(live) and len(live) > 2:
            keep = np.flatnonzero(act)
            if len(keep) < 2:     # retain frozen columns so width stays ≥ 2
                extra = np.flatnonzero(~act)[: 2 - len(keep)]
                keep = np.sort(np.concatenate([keep, extra]))
            x[:, live[live < m]] = xl[:, live < m]
            live = live[keep]
            xl = np.ascontiguousarray(xl[:, keep])
            full = np.ascontiguousarray(full[:, :, keep])
            r = np.ascontiguousarray(r[:, keep])
            d = np.ascontiguousarray(d[:, keep])
            rho = rho[keep]
            act = act[keep]
        mv = len(live)
        if first:
            # d = e_last exactly: the matvec is the symmetrised last row
            # and the curvature its diagonal; the +0.0 pass replays the
            # sequential sum over the zero terms bit-for-bit.
            q = full[K - 1] + 0.0
            dq = q[-1] + 0.0
            first = False
        else:
            q = np.einsum("jis,js->is", full, d)
            dq = np.einsum("js,js->s", d, q)
        ok = act & (dq > 0)       # curvature breakdown → frozen for good
        if not ok.any():
            break
        alpha = np.zeros(mv)
        alpha[ok] = rho[ok] / dq[ok]
        incx = alpha * d
        if not ok.all():
            np.copyto(incx, -0.0, where=~ok)  # frozen x: keep every bit
        xl += incx
        q *= alpha                # IEEE multiply commutes: q·α ≡ α·q
        r -= q
        rr = np.einsum("js,js->s", r, r)
        act = ok & (np.sqrt(rr) > rtol)
        beta = np.zeros(mv)
        nz = rho > 0
        beta[nz] = rr[nz] / rho[nz]
        d *= beta                 # IEEE add commutes: β·d + r ≡ r + β·d
        d += r
        rho = rr
    x[:, live[live < m]] = xl[:, live < m]
    return x


def run_fsai_precalc(
    backend, a, pattern, rtol: float, max_iterations: int, lengths=None
) -> np.ndarray:
    """Truncated-CG estimates for every local system of ``pattern``.

    The shared driver behind :meth:`KernelBackend.fsai_precalc`: plans
    the same groups as the setup op, reuses the backend's
    ``_fsai_setup_build`` gather hook (the gathered stacks are already
    bit-identical across backends), calls ``_fsai_precalc_solve`` per
    group and normalises ``g = ĝ / sqrt(ĝ_i)`` centrally.  Rows whose
    truncated estimate has a non-positive or non-finite diagonal fall
    back to the Jacobi guess — zeros except ``1/sqrt(a_ii)`` (or ``1.0``
    when ``a_ii ≤ 0``) in the diagonal slot — with arithmetic
    bit-identical to the legacy bucketed fallback.  Never raises on
    breakdown; §5 only needs a conservative magnitude estimate.

    ``lengths`` is the validated row-length array from
    ``repro.fsai.frobenius._check_diagonals`` (recomputed when omitted).
    Returns the ``pattern.nnz`` data array aligned with the pattern.
    """
    indptr = pattern.indptr
    if lengths is None:
        lengths = np.diff(indptr)
    nnz = int(indptr[-1])
    data = np.empty(nnz)
    diag = a.diagonal()
    keys = np.concatenate(
        [a.entry_keys(), np.asarray([-1], dtype=np.int64)]
    )
    n_cols = np.int64(a.n_cols)
    sizes, counts = np.unique(lengths, return_counts=True)
    for group in plan_groups(sizes.tolist(), counts.tolist()):
        K = group[-1]
        rows_parts = [np.flatnonzero(lengths == k) for k in group]
        systems = backend._fsai_setup_build(
            keys, a.data, n_cols, indptr, pattern.indices,
            rows_parts, group, K,
        )
        sol = backend._fsai_precalc_solve(systems, rtol, max_iterations)
        piv = sol[-1]
        good = (piv > 0) & np.isfinite(piv)
        with np.errstate(invalid="ignore", divide="ignore"):
            norm = sol / np.sqrt(piv)
        r0 = 0
        for k, rows in zip(group, rows_parts):
            r1 = r0 + len(rows)
            vals = norm[K - k:, r0:r1].T
            g = good[r0:r1]
            if not g.all():
                vals = vals.copy()
                fb_diag = diag[rows[~g]]
                fb = np.ones(len(fb_diag))
                positive = fb_diag > 0
                fb[positive] = 1.0 / np.sqrt(fb_diag[positive])
                vals[~g] = 0.0
                vals[~g, -1] = fb
            span = indptr[rows][:, None] + np.arange(k)
            data[span] = vals
            r0 = r1
    return data
