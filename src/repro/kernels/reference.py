"""Reference kernel backend — the seed's ``np.bincount`` formulation.

Kept verbatim as the oracle the improved backends are benchmarked and
property-tested against: segment sums via ``np.bincount`` over the cached
row-id expansion, a freshly allocated result per call, and the FSAI
application as two independent SpMVs.  Nothing here is tuned; that is the
point.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.kernels.base import KernelBackend

__all__ = ["ReferenceBackend"]


def _gather_product(
    data: np.ndarray, x: np.ndarray, gather_ids: np.ndarray,
    scratch: Optional[np.ndarray],
) -> np.ndarray:
    """``data * x[gather_ids]``, into ``scratch`` when one is supplied."""
    if scratch is None:
        return data * x[gather_ids]
    np.take(x, gather_ids, out=scratch)
    np.multiply(scratch, data, out=scratch)
    return scratch


class ReferenceBackend(KernelBackend):
    """Allocating bincount kernels (the pre-registry implementation)."""

    name = "reference"

    def spmv(self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
             *, scratch: Optional[np.ndarray] = None) -> np.ndarray:
        prod = _gather_product(a.data, x, a.indices, scratch)
        y = np.bincount(a.row_ids(), weights=prod, minlength=a.n_rows)
        if out is not None:
            out[:] = y
            return out
        return y

    def spmv_t(self, a: Any, x: np.ndarray, out: Optional[np.ndarray] = None,
               *, scratch: Optional[np.ndarray] = None) -> np.ndarray:
        prod = _gather_product(a.data, x, a.row_ids(), scratch)
        y = np.bincount(a.indices, weights=prod, minlength=a.n_cols)
        if out is not None:
            out[:] = y
            return out
        return y

    def fsai_apply(self, g: Any, r: np.ndarray,
                   out: Optional[np.ndarray] = None,
                   *, tmp: Optional[np.ndarray] = None,
                   scratch: Optional[np.ndarray] = None) -> np.ndarray:
        t = self.spmv(g, r, out=tmp, scratch=scratch)
        return self.spmv_t(g, t, out=out, scratch=scratch)

    def pcg_step(self, alpha: float, x: np.ndarray, d: np.ndarray,
                 r: np.ndarray, q: np.ndarray,
                 work: Optional[np.ndarray] = None) -> float:
        x += alpha * d
        r -= alpha * q
        return float(np.dot(r, r))

    def pcg_direction(self, beta: float, d: np.ndarray, z: np.ndarray) -> None:
        d *= beta
        d += z

    def stacked_matvec(self, a_stack: np.ndarray, d_stack: np.ndarray,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
        q = np.einsum("ijk,ik->ij", a_stack, d_stack)
        if out is not None:
            out[:] = q
            return out
        return q
