"""Reference kernel backend — the seed's ``np.bincount`` formulation.

Kept verbatim as the oracle the improved backends are benchmarked and
property-tested against: segment sums via ``np.bincount`` over the cached
row-id expansion, a freshly allocated result per call, and the FSAI
application as two independent SpMVs.  Nothing here is tuned; that is the
point.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.kernels.base import KernelBackend

__all__ = ["ReferenceBackend"]


def _gather_product(
    data: np.ndarray, x: np.ndarray, gather_ids: np.ndarray,
    scratch: Optional[np.ndarray],
) -> np.ndarray:
    """``data * x[gather_ids]``, into ``scratch`` when one is supplied."""
    if scratch is None:
        return data * x[gather_ids]
    np.take(x, gather_ids, out=scratch)
    np.multiply(scratch, data, out=scratch)
    return scratch


class ReferenceBackend(KernelBackend):
    """Allocating bincount kernels (the pre-registry implementation)."""

    name = "reference"

    def _spmv(self, a: Any, x: np.ndarray, out: np.ndarray,
              scratch: Optional[np.ndarray]) -> np.ndarray:
        prod = _gather_product(a.data, x, a.indices, scratch)
        out[:] = np.bincount(a.row_ids(), weights=prod, minlength=a.n_rows)
        return out

    def _spmv_t(self, a: Any, x: np.ndarray, out: np.ndarray,
                scratch: Optional[np.ndarray]) -> np.ndarray:
        prod = _gather_product(a.data, x, a.row_ids(), scratch)
        out[:] = np.bincount(a.indices, weights=prod, minlength=a.n_cols)
        return out

    def _fsai_apply(self, g: Any, r: np.ndarray, out: np.ndarray,
                    tmp: Optional[np.ndarray],
                    scratch: Optional[np.ndarray]) -> np.ndarray:
        if tmp is None:
            tmp = np.empty(g.n_rows)
        self._spmv(g, r, tmp, scratch)
        return self._spmv_t(g, tmp, out, scratch)

    # The blocked kernels (_spmm / _spmm_t / _fsai_apply_multi) are
    # deliberately the base class's column loop over the kernels above:
    # per column the summation order is exactly the single-vector
    # bincount order, which is what makes this backend the multi-RHS
    # agreement oracle too.

    def _spgemm_numeric(self, plan: Any, a_data: np.ndarray,
                        b_data: np.ndarray) -> np.ndarray:
        # Dense oracle: materialise both operands, multiply with BLAS,
        # gather at the output pattern.  Deliberately ignores the plan's
        # product enumeration — an independent derivation the sparse
        # numeric phases are property-tested against (1e-13, not bits).
        dense_a = np.zeros(plan.a_pattern.shape)
        rows, cols = plan.a_pattern.coo()
        dense_a[rows, cols] = a_data
        dense_b = np.zeros(plan.b_pattern.shape)
        rows, cols = plan.b_pattern.coo()
        dense_b[rows, cols] = b_data
        product = dense_a @ dense_b
        rows, cols = plan.out.coo()
        return np.ascontiguousarray(product[rows, cols])

    def _fsai_setup_solve(self, systems: np.ndarray) -> np.ndarray:
        # Scalar transcription of solve_group_stack, one system at a
        # time: every per-element operation (the ascending-t update
        # subtractions, the sqrt, the divisions, the back-sweep) happens
        # in exactly the order the vectorized form applies it to that
        # element, so the result is byte-identical — the oracle the
        # cross-backend bit-identity tests rest on.
        k, _, m = systems.shape
        x = np.zeros((k, m))
        with np.errstate(invalid="ignore", divide="ignore"):
            for s in range(m):
                L = np.zeros((k, k))
                col = np.zeros(k)
                for j in range(k):
                    for i in range(j, k):
                        col[i] = systems[i, j, s]
                    for t in range(j):
                        ljt = L[j, t]
                        for i in range(j, k):
                            col[i] -= L[i, t] * ljt
                    piv = np.sqrt(col[j])
                    L[j, j] = piv
                    for i in range(j + 1, k):
                        L[i, j] = col[i] / piv
                x[k - 1, s] = 1.0 / L[k - 1, k - 1]
                for i in range(k - 1, 0, -1):
                    x[i, s] = x[i, s] / L[i, i]
                    for t in range(i):
                        x[t, s] -= L[i, t] * x[i, s]
                x[0, s] = x[0, s] / L[0, 0]
        return x

    def _fsai_precalc_solve(self, systems: np.ndarray, rtol: float,
                            max_iterations: int) -> np.ndarray:
        # Scalar transcription of solve_precalc_stack, one independent
        # truncated CG per system.  Off-diagonals are read as
        # ``systems[max, min, s] + 0.0`` (the batched symmetrise adds the
        # +0.0 upper triangle) and every reduction is a plain ascending
        # accumulation from 0.0 — the exact order the batched strided
        # einsums evaluate in, so the result is byte-identical.  The
        # masked updates become per-system breaks: a system that fails
        # the curvature check or converges simply stops iterating.
        K, _, m = systems.shape
        x = np.zeros((K, m))
        if K == 0 or max_iterations <= 0:
            return x
        with np.errstate(invalid="ignore", divide="ignore"):
            for s in range(m):
                full = np.zeros((K, K))
                for i in range(K):
                    full[i, i] = systems[i, i, s]
                    for j in range(i):
                        v = systems[i, j, s] + 0.0
                        full[i, j] = v
                        full[j, i] = v
                xs = np.zeros(K)
                r = np.zeros(K)
                r[K - 1] = 1.0
                d = r.copy()
                q = np.zeros(K)
                rho = 1.0
                for _ in range(max_iterations):
                    for i in range(K):
                        acc = 0.0
                        for j in range(K):
                            acc += full[j, i] * d[j]
                        q[i] = acc
                    dq = 0.0
                    for j in range(K):
                        dq += d[j] * q[j]
                    if not dq > 0:
                        break
                    alpha = rho / dq
                    for i in range(K):
                        xs[i] += alpha * d[i]
                        r[i] -= alpha * q[i]
                    rr = 0.0
                    for i in range(K):
                        rr += r[i] * r[i]
                    if not np.sqrt(rr) > rtol:
                        break
                    beta = rr / rho
                    for i in range(K):
                        d[i] = r[i] + beta * d[i]
                    rho = rr
                x[:, s] = xs
        return x

    def pcg_step(self, alpha: float, x: np.ndarray, d: np.ndarray,
                 r: np.ndarray, q: np.ndarray,
                 work: Optional[np.ndarray] = None) -> float:
        x += alpha * d
        r -= alpha * q
        return float(np.dot(r, r))

    def pcg_direction(self, beta: float, d: np.ndarray, z: np.ndarray) -> None:
        d *= beta
        d += z

    def stacked_matvec(self, a_stack: np.ndarray, d_stack: np.ndarray,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
        q = np.einsum("ijk,ik->ij", a_stack, d_stack)
        if out is not None:
            out[:] = q
            return out
        return q
