"""SpGEMM planning: the symbolic phase of CSR×CSR products.

The global SAI iterations (:mod:`repro.fsai.global_iter`) and the FSAIE
pattern powers both multiply sparse matrices whose *structure* is fixed
across many products — only the values change between sweeps.  This
module therefore splits SpGEMM the classic two-pass way:

* **symbolic** (:func:`plan_spgemm`) — expand every scalar product
  ``a_ik · b_kj`` the multiplication generates, map each one to its
  output slot, and return the result :class:`~repro.sparse.pattern.Pattern`
  together with the three gather/scatter index arrays;
* **numeric** (:func:`spgemm_numeric`, or a backend's override of
  ``_spgemm_numeric``) — pure data-array arithmetic over a plan, with no
  index construction at all.

A plan is immutable and reusable: backends bind it into a handle
(``KernelBackend.spgemm_op``) so iterative callers pay the symbolic cost
once per pattern pair instead of once per product.

Cap semantics
-------------
``cap`` prescribes the output pattern exactly.  Products landing outside
``cap`` are dropped (the projection ``P_cap(A·B)``), and ``cap`` entries
no product reaches are kept as explicit ``0.0`` — the output structure is
``cap`` itself, never a subset, which is what lets a capped plan feed the
same buffers sweep after sweep.  Without ``cap`` the output pattern is
the exact structural product.

Determinism contract
--------------------
Products are enumerated in Gustavson order: for output entry ``(i, j)``,
the contributions ``a_ik · b_kj`` are accumulated in ascending order of
``k``'s position within row ``i`` of ``A``.  Each product is rounded once
(one multiply) and added into a zero-initialised accumulator in that
fixed order, so any two numeric phases that honour the plan's ordering —
the vectorised ``np.bincount`` default and the numba row-parallel kernel
— produce byte-identical data arrays.  The reference backend's dense
oracle deliberately does *not* honour it (it re-derives the result from
dense matmul) and is held to ``1e-13`` agreement instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ShapeError

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular:
    # repro.sparse/__init__ pulls in csr, which imports repro.kernels.
    from repro.sparse.pattern import Pattern

__all__ = ["SpgemmPlan", "plan_spgemm", "spgemm_pattern", "spgemm_numeric"]


@dataclass(frozen=True)
class SpgemmPlan:
    """Symbolic phase of one CSR×CSR product, frozen for reuse.

    ``a_sel``/``b_sel``/``out_sel`` are parallel arrays over the scalar
    products the multiplication generates: product ``p`` multiplies entry
    ``a_sel[p]`` of ``A``'s data with entry ``b_sel[p]`` of ``B``'s data
    and accumulates into slot ``out_sel[p]`` of the output data array
    (length ``out.nnz``).  Products appear in Gustavson order (see the
    module determinism contract).
    """

    a_pattern: Pattern
    b_pattern: Pattern
    #: Output structure: the exact product pattern, or ``cap`` verbatim.
    out: Pattern
    #: True when the plan was built with an output cap.
    capped: bool
    a_sel: np.ndarray
    b_sel: np.ndarray
    out_sel: np.ndarray

    @property
    def n_products(self) -> int:
        """Scalar multiply-adds one numeric pass performs."""
        return int(len(self.a_sel))

    @property
    def flops(self) -> int:
        """Flop count of one numeric pass (multiply + add per product)."""
        return 2 * self.n_products

    def __repr__(self) -> str:
        return (
            f"SpgemmPlan({self.a_pattern.shape} x {self.b_pattern.shape}, "
            f"nnz_out={self.out.nnz}, products={self.n_products}, "
            f"capped={self.capped})"
        )


def _expand_products(a: Pattern, b: Pattern):
    """Enumerate every scalar product of ``A @ B`` in Gustavson order.

    Returns ``(a_sel, b_sel, key)`` where ``key`` is the row-major
    linearised output position ``i * b.n_cols + j`` of each product.
    Fully vectorised: one segmented arange over ``B``-row slices.
    """
    a_rows = np.repeat(
        np.arange(a.n_rows, dtype=np.int64), np.diff(a.indptr)
    )
    counts = np.diff(b.indptr)[a.indices]
    total = int(counts.sum())
    a_sel = np.repeat(np.arange(len(a.indices), dtype=np.int64), counts)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    # Segmented arange: offset of each product within its B-row slice.
    seg_starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
    b_sel = np.repeat(b.indptr[a.indices], counts) + offsets
    key = a_rows[a_sel] * np.int64(b.n_cols) + b.indices[b_sel]
    return a_sel, b_sel, key


def plan_spgemm(
    a: Pattern, b: Pattern, *, cap: Optional[Pattern] = None
) -> SpgemmPlan:
    """Build the symbolic phase of ``A @ B`` (optionally capped).

    Raises :class:`~repro.errors.ShapeError` when the inner dimensions
    disagree or ``cap`` does not have the product's shape.
    """
    if a.n_cols != b.n_rows:
        raise ShapeError(f"inner dimensions disagree: {a.shape} x {b.shape}")
    if cap is not None and cap.shape != (a.n_rows, b.n_cols):
        raise ShapeError(
            f"cap shape {cap.shape} does not match product shape "
            f"{(a.n_rows, b.n_cols)}"
        )
    from repro.sparse.pattern import Pattern

    a_sel, b_sel, key = _expand_products(a, b)
    if cap is not None:
        cap_keys = cap._keys()
        pos = np.searchsorted(cap_keys, key)
        hit = pos < len(cap_keys)
        hit[hit] = cap_keys[pos[hit]] == key[hit]
        return SpgemmPlan(
            a_pattern=a, b_pattern=b, out=cap, capped=True,
            a_sel=a_sel[hit], b_sel=b_sel[hit],
            out_sel=pos[hit].astype(np.int64),
        )
    uniq, inverse = np.unique(key, return_inverse=True)
    out_rows = uniq // np.int64(b.n_cols)
    out_cols = uniq % np.int64(b.n_cols)
    indptr = np.zeros(a.n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=a.n_rows), out=indptr[1:])
    out = Pattern(a.n_rows, b.n_cols, indptr, out_cols, _validated=True)
    return SpgemmPlan(
        a_pattern=a, b_pattern=b, out=out, capped=False,
        a_sel=a_sel, b_sel=b_sel,
        # numpy >= 2.1 returns the inverse with the input's shape; 1-D
        # inputs are unaffected, but ravel() keeps the contract explicit.
        out_sel=np.asarray(inverse, dtype=np.int64).ravel(),
    )


def spgemm_pattern(a: Pattern, b: Pattern) -> Pattern:
    """Pattern of ``A @ B`` — the symbolic phase alone.

    This is the vectorised replacement for the per-row union loop that
    :func:`repro.sparse.symbolic.pattern_multiply` used to run; output is
    identical (row-major, sorted-unique per row).
    """
    return plan_spgemm(a, b).out


def spgemm_numeric(
    plan: SpgemmPlan, a_data: np.ndarray, b_data: np.ndarray
) -> np.ndarray:
    """Canonical vectorised numeric phase over a plan.

    One gather-multiply forms every product (rounded once each), then a
    single sequential ``np.bincount`` accumulates them into the output
    slots — ascending product index, which is exactly the plan's
    Gustavson order, so the result is the contract the numba kernel must
    (and does) reproduce bit for bit.
    """
    products = a_data[plan.a_sel] * b_data[plan.b_sel]
    return np.bincount(
        plan.out_sel, weights=products, minlength=plan.out.nnz
    )
