"""Improved pure-NumPy kernel backend.

Four SpMV strategies, picked per matrix in the spirit of OSKI's
structure-driven format selection:

* **DIA fast path** — stencil matrices (entries on a handful of
  diagonals, the discretized-PDE shape of the paper's suite) cache a
  diagonal view (:meth:`~repro.sparse.csr.CSRMatrix.dia_view`) whose
  product needs *no gather at all*: shifted contiguous windows of a
  padded input against the diagonal data, one ``einsum`` row-dot.
  Accumulation stays in column order, so the result is bit-identical to
  the reference kernel.
* **HYB fast path** — almost-stencils (a dominant band plus scattered
  couplings, as boundary conditions produce) split into a DIA part for
  the well-occupied diagonals plus a remainder for the leftovers —
  row-padded ELL when the remainder pads cheaply, one gather +
  ``bincount`` scatter otherwise.  The split reorders accumulation
  (band terms first, scattered terms second), so the HYB path is
  float-associativity-accurate (1e-13), not bitwise.
* **ELL fast path** — when the matrix caches a row-padded view
  (:meth:`~repro.sparse.csr.CSRMatrix.ell_view`, built for large
  matrices with near-uniform row lengths, the FEM/stencil shape of the
  paper's suite), SpMV is one 2-D gather plus one ``einsum`` row-dot:
  two NumPy calls, no per-segment reduction machinery.  The transpose
  product uses the column-padded twin
  (:meth:`~repro.sparse.csr.CSRMatrix.ell_t_view`).
* **Segment-sum fallback** — ``np.add.reduceat`` over the CSR ``indptr``
  (one C pass writing straight into the caller's ``out`` buffer), and
  over the cached column-grouped view for the transpose.  Matrices with
  empty rows/columns take a corrected gather path (the one documented
  allocation); SPD systems and triangular FSAI factors never do.

The fallback preserves summation order exactly: ``bincount`` accumulates
entries in trace order — row-major within a row (SpMV) and row-major
within a column after the stable column sort (SpMV^T) — the same
sequential order ``reduceat`` uses, so reference and numpy backends
agree bit for bit there.  The ELL row-dot may reassociate long-row sums
(pairwise partial sums), which is why backend agreement is asserted to
1e-13 rather than bitwise on ELL/HYB-sized matrices.

The blocked kernels (``_spmm``/``_spmm_t``/``_fsai_apply_multi``)
generalize each strategy to an ``(n, k)`` operand block: the DIA window
selection, the ELL gather, and the ``reduceat`` segment sum all move to
``axis=0`` with the column axis riding along, so one traversal of the
sparse structure serves all ``k`` right-hand sides.  Per column the
summation order is unchanged from the single-vector kernels — the
multi-RHS agreement tests hold every blocked path to the column-looped
oracle at the same tolerances as above.

Beyond the per-call kernels, the backend overrides the bound-handle
constructors (:meth:`spmv_op` / :meth:`fsai_apply_op` and their blocked
twins): format dispatch and view lookup happen once when the handle is
built, so the CG loop's per-iteration product is a direct call into the
resolved view.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro._einsum import _einsum
from repro.kernels.base import KernelBackend
from repro.kernels.reference import _gather_product

__all__ = ["NumpyBackend"]


def _gather_product_block(
    data: np.ndarray, x: np.ndarray, gather_ids: np.ndarray,
    scratch: Optional[np.ndarray],
) -> np.ndarray:
    """``data[:, None] * x[gather_ids]`` over an ``(n, k)`` block.

    The blocked twin of :func:`repro.kernels.reference._gather_product`;
    ``scratch`` is ``(nnz, k)`` and eliminates the per-call product
    allocation when supplied.
    """
    if scratch is None or scratch.shape != (len(gather_ids), x.shape[1]):
        return data[:, None] * x[gather_ids]
    np.take(x, gather_ids, axis=0, out=scratch)
    scratch *= data[:, None]
    return scratch


class NumpyBackend(KernelBackend):
    """Workspace-aware ``np.add.reduceat`` kernels (default backend)."""

    name = "numpy"

    def _spmv(self, a: Any, x: np.ndarray, out: np.ndarray,
              scratch: Optional[np.ndarray]) -> np.ndarray:
        if len(a.data) == 0:
            out[:] = 0.0
            return out
        dia = a.dia_view()
        if dia is not None:  # stencil fast path: no gather at all
            return dia.apply(x, out)
        ell = a.ell_view()
        if ell is not None:  # padded fast path: gather + einsum row-dot
            _einsum("ij,ij->i", ell.data, x.take(ell.gather_ids), out=out)
            return out
        prod = _gather_product(a.data, x, a.indices, scratch)
        starts, rows = a.row_segments()
        if rows is None:  # no empty rows: one reduceat straight into out
            np.add.reduceat(prod, starts, out=out)
        else:
            out[:] = 0.0
            out[rows] = np.add.reduceat(prod, starts)
        return out

    def _spmv_t(self, a: Any, x: np.ndarray, out: np.ndarray,
                scratch: Optional[np.ndarray]) -> np.ndarray:
        if len(a.data) == 0:
            out[:] = 0.0
            return out
        dia = a.dia_t_view()
        if dia is not None:
            return dia.apply(x, out)
        ell = a.ell_t_view()
        if ell is not None:
            _einsum("ij,ij->i", ell.data, x.take(ell.gather_ids), out=out)
            return out
        seg = a.col_segments()
        prod = _gather_product(seg.data, x, seg.rows, scratch)
        if seg.cols is None:  # no empty columns
            np.add.reduceat(prod, seg.starts, out=out)
        else:
            out[:] = 0.0
            out[seg.cols] = np.add.reduceat(prod, seg.starts)
        return out

    def _spmm(self, a: Any, x: np.ndarray, out: np.ndarray,
              scratch: Optional[np.ndarray]) -> np.ndarray:
        if len(a.data) == 0:
            out[:] = 0.0
            return out
        dia = a.dia_view()
        if dia is not None:  # stencil: one windowed einsum for all k columns
            return dia.apply_multi(x, out)
        ell = a.ell_view()
        if ell is not None:  # (n, w, k) gather + one batched row-dot
            _einsum(
                "nw,nwk->nk", ell.data, x.take(ell.gather_ids, axis=0), out=out
            )
            return out
        prod = _gather_product_block(a.data, x, a.indices, scratch)
        starts, rows = a.row_segments()
        if rows is None:
            np.add.reduceat(prod, starts, axis=0, out=out)
        else:
            out[:] = 0.0
            out[rows] = np.add.reduceat(prod, starts, axis=0)
        return out

    def _spmm_t(self, a: Any, x: np.ndarray, out: np.ndarray,
                scratch: Optional[np.ndarray]) -> np.ndarray:
        if len(a.data) == 0:
            out[:] = 0.0
            return out
        dia = a.dia_t_view()
        if dia is not None:
            return dia.apply_multi(x, out)
        ell = a.ell_t_view()
        if ell is not None:
            _einsum(
                "nw,nwk->nk", ell.data, x.take(ell.gather_ids, axis=0), out=out
            )
            return out
        seg = a.col_segments()
        prod = _gather_product_block(seg.data, x, seg.rows, scratch)
        if seg.cols is None:
            np.add.reduceat(prod, seg.starts, axis=0, out=out)
        else:
            out[:] = 0.0
            out[seg.cols] = np.add.reduceat(prod, seg.starts, axis=0)
        return out

    def spmv_op(self, a: Any, scratch: Optional[np.ndarray] = None):
        # Resolve the format once: repeated products (the CG loop) then
        # jump straight into the bound view with zero dispatch overhead.
        dia = a.dia_view()
        if dia is not None:
            return dia.apply
        return super().spmv_op(a, scratch)

    def spmm_op(self, a: Any, scratch: Optional[np.ndarray] = None):
        dia = a.dia_view()
        if dia is not None:
            return dia.apply_multi
        return super().spmm_op(a, scratch)

    def fsai_apply_op(self, g: Any, tmp: np.ndarray,
                      scratch: Optional[np.ndarray] = None):
        dia, dia_t = g.dia_view(), g.dia_t_view()
        if dia is not None and dia_t is not None:
            def op(r: np.ndarray, out: np.ndarray) -> np.ndarray:
                dia.apply(r, tmp)
                return dia_t.apply(tmp, out)
            return op
        return super().fsai_apply_op(g, tmp, scratch)

    def fsai_apply_multi_op(self, g: Any, tmp: np.ndarray,
                            scratch: Optional[np.ndarray] = None):
        dia, dia_t = g.dia_view(), g.dia_t_view()
        if dia is not None and dia_t is not None:
            def op(r: np.ndarray, out: np.ndarray) -> np.ndarray:
                dia.apply_multi(r, tmp)
                return dia_t.apply_multi(tmp, out)
            return op
        return super().fsai_apply_multi_op(g, tmp, scratch)

    def _fsai_apply(self, g: Any, r: np.ndarray, out: np.ndarray,
                    tmp: Optional[np.ndarray],
                    scratch: Optional[np.ndarray]) -> np.ndarray:
        # One pass over G's structure per product, intermediate in ``tmp``,
        # gather products recycled through the single ``scratch`` buffer —
        # zero allocations when the workspaces are supplied.
        if tmp is None:
            tmp = np.empty(g.n_rows)
        self._spmv(g, r, tmp, scratch)
        return self._spmv_t(g, tmp, out, scratch)

    def _fsai_apply_multi(self, g: Any, r: np.ndarray, out: np.ndarray,
                          tmp: Optional[np.ndarray],
                          scratch: Optional[np.ndarray]) -> np.ndarray:
        if tmp is None or tmp.shape != (g.n_rows, r.shape[1]):
            tmp = np.empty((g.n_rows, r.shape[1]))
        self._spmm(g, r, tmp, scratch)
        return self._spmm_t(g, tmp, out, scratch)

    def pcg_step(self, alpha: float, x: np.ndarray, d: np.ndarray,
                 r: np.ndarray, q: np.ndarray,
                 work: Optional[np.ndarray] = None) -> float:
        if work is None:
            x += alpha * d
            r -= alpha * q
        else:
            np.multiply(d, alpha, out=work)
            np.add(x, work, out=x)
            np.multiply(q, alpha, out=work)
            np.subtract(r, work, out=r)
        return float(np.dot(r, r))

    def pcg_direction(self, beta: float, d: np.ndarray, z: np.ndarray) -> None:
        np.multiply(d, beta, out=d)
        np.add(d, z, out=d)

    def stacked_matvec(self, a_stack: np.ndarray, d_stack: np.ndarray,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
        # einsum (not BLAS matmul) keeps the summation order identical to
        # the reference backend, so the lockstep local CG stays bit-exact
        # across backends.
        if out is None:
            return _einsum("ijk,ik->ij", a_stack, d_stack)
        _einsum("ijk,ik->ij", a_stack, d_stack, out=out)
        return out
