"""Shared driver for the ``fsai_setup`` kernel op.

FSAI setup solves one small dense SPD system per pattern row
(``A[S_i, S_i] ĝ = e_i``, diagonal last) and normalises
``g = ĝ / sqrt(ĝ_i)``.  The op reformulates the whole setup around three
ideas, all chosen so that every backend produces **byte-identical** CSR
data:

* **Packed lower-triangle gather** — the solver touches only the lower
  triangle of each (symmetric) local system, so the gather looks up
  ``k(k+1)/2`` entries per row instead of ``k²``, each found by binary
  search in the matrix's sorted :meth:`~repro.sparse.csr.CSRMatrix
  .entry_keys`.  Gathered values are exact copies of ``A``'s data (or an
  exact ``0.0``), so *how* a backend searches cannot change a single bit.
* **Identity-padded grouping** — row-length buckets are greedily merged
  (:func:`plan_groups`) until a group holds ``MIN_GROUP_ROWS`` systems or
  padding would exceed ``PAD_CAP``; smaller systems sit in the bottom-right
  corner of the group's common size ``K`` with an identity block top-left.
  Padding is bitwise neutral: the identity rows solve to exact zeros, and
  ``x - 0.0 == x`` in IEEE arithmetic.  The plan is a pure function of the
  row-length histogram, so every backend builds the same groups.
* **Batch-last layout** — group stacks are stored ``(K, K, m)`` with the
  system index *last*, so the vectorized solver's column slices
  (``systems[j:, j]``) stream contiguously over all ``m`` systems instead
  of striding ``K²`` doubles between consecutive batch elements.  This
  layout is worth ~25% end to end on the campaign workload.

The factorisation itself is a fused-column Cholesky plus a column-oriented
back-substitution (:func:`solve_group_stack`), written so its per-element
operation sequence is identical whether executed as NumPy vector ops, as
scalar Python (the reference oracle) or as a numba ``prange`` kernel —
that is the determinism contract the cross-backend property tests pin
down with ``tobytes()`` equality.

Failure handling is deferred, not masked: the solver runs under IEEE
semantics (``sqrt`` of a negative pivot yields NaN, division by a zero
pivot yields inf), any non-SPD pivot propagates a non-finite value into
the solution's diagonal entry, and the driver raises
:class:`~repro.errors.NotSPDError` naming the first offending row after
all groups are solved — the same diagnostic the LAPACK path produces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import NotSPDError

__all__ = [
    "MIN_GROUP_ROWS",
    "PAD_CAP",
    "plan_groups",
    "gather_group_stack",
    "solve_group_stack",
    "run_fsai_setup",
]

#: Merge row-length buckets until a group holds at least this many systems
#: (below it, per-group NumPy dispatch overhead dominates the solve).
MIN_GROUP_ROWS = 192

#: Never pad a size-``k0`` bucket into a group wider than
#: ``PAD_CAP * k0 + 1`` — padding work grows with ``K²`` per system.
PAD_CAP = 2.0

#: ``np.tril_indices(k)`` cache — the bench workload reuses a few dozen
#: distinct row lengths thousands of times.
_TRIL_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _tril_pairs(k: int) -> Tuple[np.ndarray, np.ndarray]:
    pair = _TRIL_CACHE.get(k)
    if pair is None:
        pair = np.tril_indices(k)
        _TRIL_CACHE[k] = pair
    return pair


def plan_groups(
    sizes: Sequence[int], counts: Sequence[int]
) -> List[List[int]]:
    """Greedy identity-padding plan over ascending row-length buckets.

    ``sizes``/``counts`` is the row-length histogram in ascending size
    order (``np.unique`` output).  Buckets are accumulated into the
    current group until it already holds :data:`MIN_GROUP_ROWS` systems
    or the next size would overshoot the padding cap; each group is then
    solved at its largest member size.  Deterministic for a given
    histogram — the cross-backend bit-identity guarantee rests on every
    backend seeing the same groups.
    """
    groups: List[List[int]] = []
    cur: List[int] = []
    cur_rows = 0
    k0 = 0
    for k, m in zip(sizes, counts):
        if cur and (cur_rows >= MIN_GROUP_ROWS or k > PAD_CAP * k0 + 1):
            groups.append(cur)
            cur, cur_rows = [], 0
        if not cur:
            k0 = k
        cur.append(int(k))
        cur_rows += int(m)
    if cur:
        groups.append(cur)
    return groups


def gather_group_stack(
    keys: np.ndarray,
    a_data: np.ndarray,
    n_cols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    rows_parts: Sequence[np.ndarray],
    group: Sequence[int],
    K: int,
) -> np.ndarray:
    """Vectorized build of one group's ``(K, K, m)`` lower stack.

    ``keys`` is the matrix's sorted row-major entry keys with a ``-1``
    sentinel appended (so ``searchsorted`` results can be probed without
    bound checks); only the lower triangle of each local system is
    gathered, and systems smaller than ``K`` are identity-padded in the
    top-left corner.  Pattern indices are valid by construction
    (``_check_diagonals`` ran upstream), so no bound checking is needed.
    """
    m_tot = sum(len(rows) for rows in rows_parts)
    systems = np.zeros((K, K, m_tot))
    r0 = 0
    for k, rows in zip(group, rows_parts):
        r1 = r0 + len(rows)
        starts = indptr[rows]
        cols_t = indices[starts[:, None] + np.arange(k)].T  # (k, m)
        ia, ib = _tril_pairs(k)
        query = cols_t[ia] * n_cols + cols_t[ib]  # (k(k+1)/2, m)
        pos = np.searchsorted(keys[:-1], query)
        hit = keys[pos] == query
        vals = np.where(hit, a_data[np.minimum(pos, len(keys) - 2)], 0.0)
        pad = K - k
        systems[pad + ia, pad + ib, r0:r1] = vals
        if pad:
            diag = np.arange(pad)
            systems[diag, diag, r0:r1] = 1.0
        r0 = r1
    return systems


def solve_group_stack(systems: np.ndarray) -> np.ndarray:
    """Solve ``A x = e_last`` for every system of a ``(K, K, m)`` stack.

    Fused-column Cholesky over the stored lower triangles followed by a
    column-oriented back-substitution, all slicing along the contiguous
    batch axis.  The per-element operation sequence — subtract the ``t``
    updates in ascending order, one ``sqrt``, one division, then the
    back-sweep divisions/updates — is the canonical order every backend
    reproduces exactly; reordering any of it would break cross-backend
    bit-identity.

    Runs under IEEE semantics: a non-SPD pivot turns into NaN/inf and
    propagates into ``x[-1]`` instead of raising here, so one batched
    pivot check after the solve replaces per-system screening.
    """
    k, _, m = systems.shape
    x = np.zeros((k, m))
    L = np.zeros_like(systems)
    with np.errstate(invalid="ignore", divide="ignore"):
        for j in range(k):
            col = systems[j:, j].copy()  # (k - j, m), contiguous over m
            for t in range(j):
                col -= L[j:, t] * L[j, t]
            piv = np.sqrt(col[0])
            L[j, j] = piv
            if j + 1 < k:
                L[j + 1:, j] = col[1:] / piv
        # L^T x = y with y = (0, …, 0, 1/L_kk): column-oriented back sweep.
        x[-1] = 1.0 / L[-1, -1]
        for i in range(k - 1, 0, -1):
            x[i] = x[i] / L[i, i]
            x[:i] -= L[i, :i] * x[i]
        x[0] = x[0] / L[0, 0]
    return x


def run_fsai_setup(backend, a, pattern, lengths=None) -> np.ndarray:
    """Solve every local system of ``pattern`` and return normalised data.

    The shared driver behind :meth:`KernelBackend.fsai_setup`: plans the
    groups, calls the backend's ``_fsai_setup_build`` /
    ``_fsai_setup_solve`` hooks per group, normalises
    ``g = ĝ / sqrt(ĝ_i)`` centrally (so the normalisation arithmetic is
    one implementation for all backends) and raises
    :class:`~repro.errors.NotSPDError` naming the first row whose pivot
    is non-positive or non-finite.

    ``lengths`` is the validated row-length array from
    ``repro.fsai.frobenius._check_diagonals`` (recomputed when omitted;
    callers are expected to have validated the diagonal-last invariant).
    Returns the ``pattern.nnz`` data array aligned with the pattern.
    """
    indptr = pattern.indptr
    if lengths is None:
        lengths = np.diff(indptr)
    n_rows = len(indptr) - 1
    nnz = int(indptr[-1])
    data = np.empty(nnz)
    pivots = np.empty(n_rows)
    keys = np.concatenate(
        [a.entry_keys(), np.asarray([-1], dtype=np.int64)]
    )
    n_cols = np.int64(a.n_cols)
    sizes, counts = np.unique(lengths, return_counts=True)
    for group in plan_groups(sizes.tolist(), counts.tolist()):
        K = group[-1]
        rows_parts = [np.flatnonzero(lengths == k) for k in group]
        systems = backend._fsai_setup_build(
            keys, a.data, n_cols, indptr, pattern.indices,
            rows_parts, group, K,
        )
        sol = backend._fsai_setup_solve(systems)  # (K, m)
        piv = sol[-1]
        with np.errstate(invalid="ignore"):
            norm = sol / np.sqrt(piv)
        r0 = 0
        for k, rows in zip(group, rows_parts):
            r1 = r0 + len(rows)
            pivots[rows] = piv[r0:r1]
            span = indptr[rows][:, None] + np.arange(k)
            data[span] = norm[K - k:, r0:r1].T
            r0 = r1
    bad = ~((pivots > 0) & np.isfinite(pivots))
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise NotSPDError(
            f"row {i}: non-positive diagonal solution {pivots[i]:.3e} "
            "(matrix restriction not SPD)"
        )
    return data
