"""Backend registry: name → :class:`~repro.kernels.base.KernelBackend`.

Selection order for :func:`get_backend` with no argument:

1. an active :func:`use_backend` override (tests, benchmarks);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default ``"numpy"`` backend.

``"auto"`` resolves to the fastest available backend (``numba`` when
importable, otherwise ``numpy``).  Requesting ``"numba"`` on a machine
without numba silently falls back to ``numpy`` — optional acceleration
must never become a hard dependency — while a genuinely unknown name
raises :class:`~repro.errors.ConfigurationError`.

Backends register lazily: a factory may return ``None`` to signal "not
available on this machine", which keeps it out of
:func:`available_backends` without failing imports.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.kernels.base import KernelBackend

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "register_backend",
    "use_backend",
]

#: Environment variable naming the default backend for this process.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Fallback backend: always available, pure NumPy.
DEFAULT_BACKEND = "numpy"

BackendFactory = Callable[[], Optional[KernelBackend]]

_factories: Dict[str, BackendFactory] = {}
_instances: Dict[str, KernelBackend] = {}
_override: Optional[KernelBackend] = None


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register ``factory`` under ``name`` (lazily instantiated, cached).

    The factory returns ``None`` when the backend cannot run here (e.g.
    numba is not installed); such backends resolve through the silent
    fallback instead of erroring.
    """
    key = name.strip().lower()
    if key in _factories:
        raise ConfigurationError(f"kernel backend {key!r} already registered")
    _factories[key] = factory


def _instance(name: str) -> Optional[KernelBackend]:
    cached = _instances.get(name)
    if cached is not None:
        return cached
    factory = _factories[name]
    backend = factory()
    if backend is not None:
        _instances[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of every backend that can actually run on this machine."""
    return tuple(n for n in _factories if _instance(n) is not None)


def get_backend(
    name: Union[str, KernelBackend, None] = None,
) -> KernelBackend:
    """Resolve a backend by name / override / environment (see module doc)."""
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        if _override is not None:
            return _override
        env = os.environ.get(ENV_VAR)
        name = env if env else DEFAULT_BACKEND
    key = name.strip().lower()
    if key == "auto":
        fast = _factories.get("numba")
        backend = _instance("numba") if fast is not None else None
        return backend if backend is not None else _require(DEFAULT_BACKEND)
    if key not in _factories:
        raise ConfigurationError(
            f"unknown kernel backend {key!r}; expected one of "
            f"{tuple(_factories)} or 'auto'"
        )
    backend = _instance(key)
    if backend is None:  # registered but unavailable here — silent fallback
        return _require(DEFAULT_BACKEND)
    return backend


def _require(name: str) -> KernelBackend:
    backend = _instance(name)
    if backend is None:  # pragma: no cover - numpy backend always constructs
        raise ConfigurationError(f"kernel backend {name!r} failed to initialise")
    return backend


@contextmanager
def use_backend(
    name: Union[str, KernelBackend],
) -> Iterator[KernelBackend]:
    """Scoped override of the default backend (nests; test/bench helper)."""
    global _override
    previous = _override
    _override = get_backend(name)
    try:
        yield _override
    finally:
        _override = previous
