"""Optional Numba-JIT kernel backend (parallel ``prange`` row loops).

Auto-detected: when numba is importable the backend registers as
``"numba"``; when it is not, :func:`make_backend` returns ``None`` and the
registry silently resolves ``"numba"`` to the numpy backend, so nothing —
imports, tier-1 tests, the CLI — ever depends on numba being installed.

Kernel shapes follow the OSKI/Williams-et-al. playbook for row-parallel
CSR: the SpMV and the first half of the fused FSAI application distribute
rows across threads (each row's dot product is independent); the
transpose scatter stays sequential (scatter-add races under ``prange``),
which matches the paper's observation that the ``G^T`` product is the
bandwidth-bound half.  The blocked kernels keep the same decomposition
with an inner loop over the ``k`` block columns, so each sparse entry is
read once and applied to all right-hand sides while it sits in register.
Functions compile lazily on first call; the first invocation therefore
pays JIT cost, every later call runs native code.

The setup-side op (``fsai_setup``) distributes whole local systems across
threads: a ``prange`` gather (per-system binary search into the sorted
entry keys) and a ``prange`` batched scalar Cholesky whose per-element
operation order replays :func:`repro.kernels.setup.solve_group_stack`
exactly, compiled with ``error_model="numpy"`` so non-SPD pivots
propagate NaN/inf IEEE-style instead of raising mid-kernel — the driver's
batched pivot check owns the diagnostics.  Output is byte-identical to
the numpy and reference backends.  The §5 precalculation op
(``fsai_precalc``) shares the gather and distributes one truncated CG
per system across threads, replaying the canonical masked schedule of
:func:`repro.kernels.precalc.solve_precalc_stack` scalar-for-scalar —
again byte-identical across backends.

The SpGEMM numeric phase is row-parallel Gustavson over a prebuilt
symbolic plan: each thread owns one output row (no scatter races), finds
output slots by binary search into the row's sorted columns, and
accumulates products in the plan's canonical order — byte-identical to
the numpy backend's bincount pass.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.kernels.base import KernelBackend

__all__ = ["make_backend", "NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the tier-1 environment has no numba
    NUMBA_AVAILABLE = False

if NUMBA_AVAILABLE:  # pragma: no cover - compiled paths need numba

    @njit(parallel=True)
    def _spmv_kernel(indptr, indices, data, x, out):
        for i in prange(len(indptr) - 1):
            acc = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                acc += data[k] * x[indices[k]]
            out[i] = acc

    @njit
    def _spmv_t_kernel(indptr, indices, data, x, out):
        out[:] = 0.0
        for i in range(len(indptr) - 1):
            xi = x[i]
            for k in range(indptr[i], indptr[i + 1]):
                out[indices[k]] += data[k] * xi

    @njit(parallel=True)
    def _fsai_apply_kernel(indptr, indices, data, r, out, tmp):
        n = len(indptr) - 1
        for i in prange(n):
            acc = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                acc += data[k] * r[indices[k]]
            tmp[i] = acc
        out[:] = 0.0
        for i in range(n):
            ti = tmp[i]
            for k in range(indptr[i], indptr[i + 1]):
                out[indices[k]] += data[k] * ti

    @njit(parallel=True)
    def _spmm_kernel(indptr, indices, data, x, out):
        width = x.shape[1]
        for i in prange(len(indptr) - 1):
            for j in range(width):
                out[i, j] = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                col = indices[k]
                for j in range(width):
                    out[i, j] += v * x[col, j]

    @njit
    def _spmm_t_kernel(indptr, indices, data, x, out):
        width = x.shape[1]
        out[:] = 0.0
        for i in range(len(indptr) - 1):
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                col = indices[k]
                for j in range(width):
                    out[col, j] += v * x[i, j]

    @njit(parallel=True)
    def _fsai_apply_multi_kernel(indptr, indices, data, r, out, tmp):
        n = len(indptr) - 1
        width = r.shape[1]
        for i in prange(n):
            for j in range(width):
                tmp[i, j] = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                col = indices[k]
                for j in range(width):
                    tmp[i, j] += v * r[col, j]
        out[:] = 0.0
        for i in range(n):
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                col = indices[k]
                for j in range(width):
                    out[col, j] += v * tmp[i, j]

    @njit(parallel=True)
    def _pcg_step_kernel(alpha, x, d, r, q):
        acc = 0.0
        for i in prange(len(x)):
            x[i] += alpha * d[i]
            ri = r[i] - alpha * q[i]
            r[i] = ri
            acc += ri * ri
        return acc

    @njit(parallel=True)
    def _pcg_direction_kernel(beta, d, z):
        for i in prange(len(d)):
            d[i] = z[i] + beta * d[i]

    @njit(parallel=True, error_model="numpy")
    def _fsai_gather_kernel(keys, a_data, n_cols, indptr, indices, rows,
                            systems):
        # One slot per local system; each thread binary-searches the
        # sorted entry keys for its lower-triangle entries and identity-
        # pads the top-left corner.  Values are exact copies of a_data
        # (or the pre-zeroed 0.0), so the output is bit-identical to the
        # vectorized searchsorted gather.
        K = systems.shape[0]
        nk = len(keys)
        for s in prange(len(rows)):
            row = rows[s]
            start = indptr[row]
            k = indptr[row + 1] - start
            p = K - k
            for d in range(p):
                systems[d, d, s] = 1.0
            for i in range(k):
                ci = indices[start + i]
                for j in range(i + 1):
                    key = ci * n_cols + indices[start + j]
                    lo, hi = 0, nk
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if keys[mid] < key:
                            lo = mid + 1
                        else:
                            hi = mid
                    if lo < nk and keys[lo] == key:
                        systems[p + i, p + j, s] = a_data[lo]

    @njit(parallel=True, error_model="numpy")
    def _fsai_solve_kernel(systems, x):
        # Scalar replay of solve_group_stack, one system per thread.
        # error_model="numpy" keeps IEEE semantics: a non-SPD pivot
        # becomes NaN/inf and propagates into x[-1] for the driver's
        # batched check instead of raising inside the parallel region.
        K = systems.shape[0]
        m = systems.shape[2]
        for s in prange(m):
            L = np.zeros((K, K))
            col = np.zeros(K)
            xl = np.zeros(K)
            for j in range(K):
                for i in range(j, K):
                    col[i] = systems[i, j, s]
                for t in range(j):
                    ljt = L[j, t]
                    for i in range(j, K):
                        col[i] -= L[i, t] * ljt
                piv = np.sqrt(col[j])
                L[j, j] = piv
                for i in range(j + 1, K):
                    L[i, j] = col[i] / piv
            xl[K - 1] = 1.0 / L[K - 1, K - 1]
            for i in range(K - 1, 0, -1):
                v = xl[i] / L[i, i]
                xl[i] = v
                for t in range(i):
                    xl[t] -= L[i, t] * v
            xl[0] = xl[0] / L[0, 0]
            for i in range(K):
                x[i, s] = xl[i]

    @njit(parallel=True, error_model="numpy")
    def _fsai_precalc_kernel(systems, rtol, max_iterations, x):
        # Scalar replay of solve_precalc_stack, one truncated CG per
        # thread.  Off-diagonals are read as systems[max, min, s] + 0.0
        # (matching the batched symmetrise) and every reduction is an
        # ascending accumulation from 0.0 — the order the strided
        # einsums evaluate in — so output is byte-identical to the numpy
        # and reference backends.  error_model="numpy" keeps IEEE
        # semantics for degenerate systems; breakdowns just break out.
        K = systems.shape[0]
        m = systems.shape[2]
        for s in prange(m):
            full = np.zeros((K, K))
            for i in range(K):
                full[i, i] = systems[i, i, s]
                for j in range(i):
                    v = systems[i, j, s] + 0.0
                    full[i, j] = v
                    full[j, i] = v
            xs = np.zeros(K)
            r = np.zeros(K)
            r[K - 1] = 1.0
            d = np.zeros(K)
            d[K - 1] = 1.0
            q = np.zeros(K)
            rho = 1.0
            for _ in range(max_iterations):
                for i in range(K):
                    acc = 0.0
                    for j in range(K):
                        acc += full[j, i] * d[j]
                    q[i] = acc
                dq = 0.0
                for j in range(K):
                    dq += d[j] * q[j]
                if not dq > 0:
                    break
                alpha = rho / dq
                for i in range(K):
                    xs[i] += alpha * d[i]
                    r[i] -= alpha * q[i]
                rr = 0.0
                for i in range(K):
                    rr += r[i] * r[i]
                if not np.sqrt(rr) > rtol:
                    break
                beta = rr / rho
                for i in range(K):
                    d[i] = r[i] + beta * d[i]
                rho = rr
            for i in range(K):
                x[i, s] = xs[i]

    @njit(parallel=True)
    def _spgemm_numeric_kernel(a_indptr, a_indices, a_data,
                               b_indptr, b_indices, b_data,
                               out_indptr, out_indices, out_data):
        # Row-parallel Gustavson: each thread owns one output row, so
        # there are no scatter races.  Per product the value is formed
        # with a single multiply and added immediately — the same
        # per-slot accumulation order as the plan's bincount pass (A-row
        # entry order, then B-row order), hence byte-identical output.
        # Output slots are found by binary search in the sorted out row;
        # capped plans drop products whose column is absent.
        for i in prange(len(a_indptr) - 1):
            lo = out_indptr[i]
            hi = out_indptr[i + 1]
            for p in range(lo, hi):
                out_data[p] = 0.0
            if hi == lo:
                continue
            for e in range(a_indptr[i], a_indptr[i + 1]):
                v = a_data[e]
                k = a_indices[e]
                for f in range(b_indptr[k], b_indptr[k + 1]):
                    col = b_indices[f]
                    left, right = lo, hi
                    while left < right:
                        mid = (left + right) // 2
                        if out_indices[mid] < col:
                            left = mid + 1
                        else:
                            right = mid
                    if left < hi and out_indices[left] == col:
                        out_data[left] += v * b_data[f]

    @njit(parallel=True)
    def _sweep_axpy_kernel(alpha, x, r, w):
        # Fused x += alpha*r; r -= alpha*w — one traversal instead of two
        # numpy passes plus two temporaries.  No fastmath, so the
        # multiply/add pair is never contracted into an FMA and the
        # result stays byte-identical to the numpy expressions.
        for i in prange(len(x)):
            x[i] += alpha * r[i]
            r[i] -= alpha * w[i]

    @njit(parallel=True)
    def _sweep_scale_add_kernel(d, r, c0, c1):
        for i in prange(len(d)):
            d[i] = d[i] * c0 + c1 * r[i]

    @njit(parallel=True)
    def _sweep_cheb_kernel(s_indptr, s_indices, d,
                           b_indptr, b_indices, b_data, x, r, w):
        # One row-parallel pass fusing the Chebyshev sweep core:
        # x += d, then r -= P_S(D·A) with the capped product accumulated
        # into the row's slice of ``w`` while it is cache-resident —
        # the full product array is never re-traversed.  Accumulation
        # replays the plan's Gustavson order (A-row entry order, then
        # B-row order, slot by binary search), so each w slot equals the
        # bincount pass bit-for-bit, and r -= w is the same subtraction
        # the unfused path performs.
        for i in prange(len(s_indptr) - 1):
            lo = s_indptr[i]
            hi = s_indptr[i + 1]
            for p in range(lo, hi):
                x[p] += d[p]
                w[p] = 0.0
            for e in range(lo, hi):
                v = d[e]
                k = s_indices[e]
                for f in range(b_indptr[k], b_indptr[k + 1]):
                    col = b_indices[f]
                    left, right = lo, hi
                    while left < right:
                        mid = (left + right) // 2
                        if s_indices[mid] < col:
                            left = mid + 1
                        else:
                            right = mid
                    if left < hi and s_indices[left] == col:
                        w[left] += v * b_data[f]
            for p in range(lo, hi):
                r[p] -= w[p]

    @njit(parallel=True)
    def _sweep_ns_kernel(s_indptr, s_indices, z, x, x_next, scratch):
        # Fused Newton–Schulz correction x_next = 2x − P_S(Z·X): the
        # capped product row accumulates into the scratch slice in plan
        # order, then the correction finalises the row in cache.  All
        # four arrays share the factor pattern S's data layout.
        for i in prange(len(s_indptr) - 1):
            lo = s_indptr[i]
            hi = s_indptr[i + 1]
            for p in range(lo, hi):
                scratch[p] = 0.0
            for e in range(lo, hi):
                v = z[e]
                k = s_indices[e]
                for f in range(s_indptr[k], s_indptr[k + 1]):
                    col = s_indices[f]
                    left, right = lo, hi
                    while left < right:
                        mid = (left + right) // 2
                        if s_indices[mid] < col:
                            left = mid + 1
                        else:
                            right = mid
                    if left < hi and s_indices[left] == col:
                        scratch[left] += v * x[f]
            for p in range(lo, hi):
                x_next[p] = 2.0 * x[p] - scratch[p]

    @njit(parallel=True)
    def _stacked_matvec_kernel(a_stack, d_stack, out):
        m, k = d_stack.shape
        for i in prange(m):
            for row in range(k):
                acc = 0.0
                for col in range(k):
                    acc += a_stack[i, row, col] * d_stack[i, col]
                out[i, row] = acc

    class NumbaBackend(KernelBackend):
        """JIT row-loop kernels; ``scratch`` buffers are accepted but unused."""

        name = "numba"

        def _spmv(self, a: Any, x: np.ndarray, out: np.ndarray,
                  scratch: Optional[np.ndarray]) -> np.ndarray:
            _spmv_kernel(a.indptr, a.indices, a.data,
                         np.ascontiguousarray(x), out)
            return out

        def _spmv_t(self, a: Any, x: np.ndarray, out: np.ndarray,
                    scratch: Optional[np.ndarray]) -> np.ndarray:
            _spmv_t_kernel(a.indptr, a.indices, a.data,
                           np.ascontiguousarray(x), out)
            return out

        def _fsai_apply(self, g: Any, r: np.ndarray, out: np.ndarray,
                        tmp: Optional[np.ndarray],
                        scratch: Optional[np.ndarray]) -> np.ndarray:
            if tmp is None:
                tmp = np.empty(g.n_rows)
            _fsai_apply_kernel(g.indptr, g.indices, g.data,
                               np.ascontiguousarray(r), out, tmp)
            return out

        def _spmm(self, a: Any, x: np.ndarray, out: np.ndarray,
                  scratch: Optional[np.ndarray]) -> np.ndarray:
            _spmm_kernel(a.indptr, a.indices, a.data,
                         np.ascontiguousarray(x), out)
            return out

        def _spmm_t(self, a: Any, x: np.ndarray, out: np.ndarray,
                    scratch: Optional[np.ndarray]) -> np.ndarray:
            _spmm_t_kernel(a.indptr, a.indices, a.data,
                           np.ascontiguousarray(x), out)
            return out

        def _fsai_apply_multi(self, g: Any, r: np.ndarray, out: np.ndarray,
                              tmp: Optional[np.ndarray],
                              scratch: Optional[np.ndarray]) -> np.ndarray:
            if tmp is None or tmp.shape != (g.n_rows, r.shape[1]):
                tmp = np.empty((g.n_rows, r.shape[1]))
            _fsai_apply_multi_kernel(g.indptr, g.indices, g.data,
                                     np.ascontiguousarray(r), out, tmp)
            return out

        def _spgemm_numeric(self, plan: Any, a_data: np.ndarray,
                            b_data: np.ndarray) -> np.ndarray:
            out_data = np.empty(plan.out.nnz)
            _spgemm_numeric_kernel(
                plan.a_pattern.indptr, plan.a_pattern.indices, a_data,
                plan.b_pattern.indptr, plan.b_pattern.indices, b_data,
                plan.out.indptr, plan.out.indices, out_data,
            )
            return out_data

        def spgemm_numeric_into(self, plan: Any, a_data: np.ndarray,
                                b_data: np.ndarray,
                                out: np.ndarray) -> np.ndarray:
            # The numeric kernel already writes in place; forwarding the
            # caller's buffer skips the per-sweep allocation + copy.
            _spgemm_numeric_kernel(
                plan.a_pattern.indptr, plan.a_pattern.indices, a_data,
                plan.b_pattern.indptr, plan.b_pattern.indices, b_data,
                plan.out.indptr, plan.out.indices, out,
            )
            return out

        def sweep_axpy_pair(self, x: np.ndarray, r: np.ndarray,
                            w: np.ndarray, alpha: float) -> None:
            _sweep_axpy_kernel(alpha, x, r, w)

        def sweep_scale_add(self, d: np.ndarray, r: np.ndarray,
                            c0: float, c1: float) -> None:
            _sweep_scale_add_kernel(d, r, c0, c1)

        def sweep_cheb_update(self, plan: Any, d: np.ndarray,
                              b_data: np.ndarray, x: np.ndarray,
                              r: np.ndarray, w: np.ndarray) -> None:
            # The fused kernel assumes the factor-equation plan shape
            # (out pattern is the A operand's pattern S); any other plan
            # falls back to the unfused default.
            if plan.out is not plan.a_pattern:
                super().sweep_cheb_update(plan, d, b_data, x, r, w)
                return
            _sweep_cheb_kernel(
                plan.a_pattern.indptr, plan.a_pattern.indices, d,
                plan.b_pattern.indptr, plan.b_pattern.indices, b_data,
                x, r, w,
            )

        def sweep_ns_correction(self, plan: Any, z: np.ndarray,
                                x: np.ndarray, x_next: np.ndarray,
                                scratch: np.ndarray) -> np.ndarray:
            # Requires the Newton–Schulz plan shape (a, b and out
            # patterns all the factor pattern S).
            if plan.out is not plan.a_pattern or plan.out is not plan.b_pattern:
                return super().sweep_ns_correction(
                    plan, z, x, x_next, scratch
                )
            _sweep_ns_kernel(
                plan.out.indptr, plan.out.indices, z, x, x_next, scratch
            )
            return x_next

        def _fsai_setup_build(self, keys, a_data, n_cols, indptr, indices,
                              rows_parts, group, K) -> np.ndarray:
            rows = (np.concatenate(rows_parts) if rows_parts
                    else np.empty(0, dtype=np.int64))
            systems = np.zeros((K, K, len(rows)))
            _fsai_gather_kernel(keys[:-1], a_data, np.int64(n_cols),
                                indptr, indices, rows, systems)
            return systems

        def _fsai_setup_solve(self, systems: np.ndarray) -> np.ndarray:
            x = np.zeros((systems.shape[0], systems.shape[2]))
            _fsai_solve_kernel(np.ascontiguousarray(systems), x)
            return x

        def _fsai_precalc_solve(self, systems: np.ndarray, rtol: float,
                                max_iterations: int) -> np.ndarray:
            x = np.zeros((systems.shape[0], systems.shape[2]))
            if systems.shape[0] and max_iterations > 0:
                _fsai_precalc_kernel(np.ascontiguousarray(systems),
                                     rtol, max_iterations, x)
            return x

        def setup_threads(self) -> int:
            import numba

            return int(numba.get_num_threads())

        def pcg_step(self, alpha: float, x: np.ndarray, d: np.ndarray,
                     r: np.ndarray, q: np.ndarray,
                     work: Optional[np.ndarray] = None) -> float:
            return float(_pcg_step_kernel(alpha, x, d, r, q))

        def pcg_direction(self, beta: float, d: np.ndarray,
                          z: np.ndarray) -> None:
            _pcg_direction_kernel(beta, d, z)

        def stacked_matvec(self, a_stack: np.ndarray, d_stack: np.ndarray,
                           out: Optional[np.ndarray] = None) -> np.ndarray:
            if out is None:
                out = np.empty_like(d_stack)
            _stacked_matvec_kernel(np.ascontiguousarray(a_stack),
                                   np.ascontiguousarray(d_stack), out)
            return out


def make_backend() -> Optional[KernelBackend]:
    """Registry factory: an instance when numba imports, ``None`` otherwise."""
    if not NUMBA_AVAILABLE:
        return None
    return NumbaBackend()  # pragma: no cover - needs numba
