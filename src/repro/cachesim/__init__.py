"""Cache-hierarchy simulator.

Pure Python cannot observe hardware cache behaviour, so this subpackage
*simulates* it (see DESIGN.md §2): an exact set-associative LRU cache replays
the memory-access stream of the SpMV kernels and reports hit/miss counts per
level, attributed to the structure that generated each access (the multiplied
vector ``x``, the matrix arrays, the output ``y``).

The three public layers:

* :class:`~repro.cachesim.cache.SetAssociativeCache` — one level, exact LRU;
* :class:`~repro.cachesim.hierarchy.CacheHierarchy` — L1→L2→(L3) stack;
* :mod:`~repro.cachesim.spmv_sim` — SpMV / FSAI-application trace generation
  and the measurement entry points used by the Figure 3 experiment.
"""

from repro.cachesim.cache import (
    CACHE_BACKENDS,
    CacheStats,
    SetAssociativeCache,
    InfiniteCache,
)
from repro.cachesim.engine import (
    LRUSimOutcome,
    count_leq_before,
    previous_occurrence,
    set_stack_distances,
    simulate_set_lru,
    stack_distances_vectorized,
)
from repro.cachesim.hierarchy import CacheHierarchy, LevelStats
from repro.cachesim.trace import (
    REGION_X,
    REGION_MATRIX,
    REGION_Y,
    spmv_trace,
    fsai_apply_trace,
)
from repro.cachesim.spmv_sim import (
    SpMVSimResult,
    simulate_spmv,
    simulate_fsai_application,
    misses_per_nnz,
)
from repro.cachesim.stackdist import (
    StackDistanceProfile,
    profile_stack_distances,
    stack_distances,
)
from repro.cachesim.prefetch import PrefetchingCache, PrefetchStats

__all__ = [
    "CACHE_BACKENDS",
    "CacheStats",
    "SetAssociativeCache",
    "InfiniteCache",
    "LRUSimOutcome",
    "count_leq_before",
    "previous_occurrence",
    "set_stack_distances",
    "simulate_set_lru",
    "stack_distances_vectorized",
    "CacheHierarchy",
    "LevelStats",
    "REGION_X",
    "REGION_MATRIX",
    "REGION_Y",
    "spmv_trace",
    "fsai_apply_trace",
    "SpMVSimResult",
    "simulate_spmv",
    "simulate_fsai_application",
    "misses_per_nnz",
    "StackDistanceProfile",
    "profile_stack_distances",
    "stack_distances",
    "PrefetchingCache",
    "PrefetchStats",
]
