"""Access-trace generation for the SpMV and FSAI-application kernels.

A trace is a sequence of cache-line ids in program order.  Line ids of
different data structures are kept in disjoint integer *regions* so that one
cache can be shared by all of them (matching reality) while per-structure
attribution stays possible:

* ``REGION_X``       — the multiplied vector (the paper's problem child);
* ``REGION_MATRIX``  — the CSR ``data``/``indices``/``indptr`` streams;
* ``REGION_Y``       — the output vector.

Streaming structures (matrix arrays, ``y``) are perfectly sequential, so only
their *line-boundary crossings* are emitted: the skipped accesses are
guaranteed hits on the most-recently-used line of their set and change
neither miss counts nor any eviction decision that matters to ``x``.  This
keeps trace length ~``nnz`` instead of ~``3·nnz``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._typing import IndexArray
from repro.arch.address import ArrayPlacement
from repro.sparse.pattern import Pattern

__all__ = [
    "REGION_X",
    "REGION_MATRIX",
    "REGION_Y",
    "REGION_Z",
    "TraceResult",
    "spmv_trace",
    "fsai_apply_trace",
]

#: Region bases: large disjoint offsets so line ids never collide.  Region
#: bases are multiples of large powers of two, so set-index distribution
#: within each region is preserved.
REGION_X = 0
REGION_MATRIX = 1 << 42
REGION_Y = 1 << 43
REGION_Z = 3 << 42  # second multiplied vector in G^T (G p)

#: Bytes consumed from the matrix streams per stored entry: 8 (value) +
#: 8 (int64 column index).  ``indptr`` adds 8 bytes/row, folded into the
#: per-row ``y`` stream cost.
_MATRIX_STREAM_BYTES_PER_NNZ = 16
_ROW_STREAM_BYTES_PER_ROW = 16  # y value + indptr entry


@dataclass
class TraceResult:
    """A generated access trace.

    Attributes
    ----------
    lines:
        Cache-line ids in program order.
    is_x:
        Boolean mask, True where the access belongs to the multiplied vector
        (``REGION_X``/``REGION_Z``).  Used for miss attribution.
    """

    lines: IndexArray
    is_x: np.ndarray

    def __len__(self) -> int:
        return len(self.lines)

    def concat(self, other: "TraceResult") -> "TraceResult":
        """Concatenate two traces in program order."""
        return TraceResult(
            np.concatenate([self.lines, other.lines]),
            np.concatenate([self.is_x, other.is_x]),
        )


def _stream_crossing_events(
    total_bytes: int, positions_bytes: np.ndarray, region: int, line_bytes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Line-boundary crossing events of a sequential byte stream.

    ``positions_bytes[k]`` is the stream offset consumed *before* program
    step ``k``; an event is emitted at the first step whose line differs from
    the previous one's.  Returns ``(step_indices, line_ids)``.
    """
    if total_bytes <= 0 or len(positions_bytes) == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    lines = positions_bytes // line_bytes
    first = np.ones(len(lines), dtype=bool)
    first[1:] = np.diff(lines) != 0
    steps = np.flatnonzero(first)
    return steps.astype(np.int64), (region // line_bytes + lines[steps]).astype(np.int64)


def spmv_trace(
    pattern: Pattern,
    x_placement: ArrayPlacement,
    *,
    include_streams: bool = True,
    x_region: int = REGION_X,
) -> TraceResult:
    """Trace of ``y = A x`` for a CSR matrix with the given pattern.

    Per stored entry (row-major order) one access to the line of ``x[col]``
    is emitted; with ``include_streams`` the boundary-crossing accesses of
    the matrix arrays and ``y`` are interleaved at their program positions,
    modelling the pollution those streams exert on the cache.

    ``x_region`` lets callers place the multiplied vector of a second product
    in a different address region (see :func:`fsai_apply_trace`).
    """
    nnz = pattern.nnz
    line_bytes = x_placement.line_bytes
    x_lines = (
        np.asarray(x_placement.line_of(pattern.indices), dtype=np.int64)
        + x_region // line_bytes
    )
    if not include_streams or nnz == 0:
        return TraceResult(x_lines, np.ones(nnz, dtype=bool))

    # Matrix stream: 16 bytes consumed per stored entry.
    mat_pos = np.arange(nnz, dtype=np.int64) * _MATRIX_STREAM_BYTES_PER_NNZ
    mat_steps, mat_lines = _stream_crossing_events(
        nnz * _MATRIX_STREAM_BYTES_PER_NNZ, mat_pos, REGION_MATRIX, line_bytes
    )
    # Row stream (y + indptr): 16 bytes per row, event at the row's first nnz.
    row_pos = np.arange(pattern.n_rows, dtype=np.int64) * _ROW_STREAM_BYTES_PER_ROW
    row_steps_raw, row_lines = _stream_crossing_events(
        pattern.n_rows * _ROW_STREAM_BYTES_PER_ROW, row_pos, REGION_Y, line_bytes
    )
    row_steps = pattern.indptr[:-1][row_steps_raw]

    # Merge the three event streams by program step; stream events sort
    # before the x access of the same step (operands are fetched before the
    # product is accumulated — the exact tie order is immaterial to misses).
    steps = np.concatenate([np.arange(nnz, dtype=np.int64), mat_steps, row_steps])
    lines = np.concatenate([x_lines, mat_lines, row_lines])
    is_x = np.zeros(len(lines), dtype=bool)
    is_x[:nnz] = True
    prio = np.ones(len(lines), dtype=np.int8)
    prio[:nnz] = 2  # x accesses after stream fetches within one step
    order = np.lexsort((prio, steps))
    return TraceResult(lines[order], is_x[order])


def fsai_apply_trace(
    g_pattern: Pattern,
    gt_pattern: Pattern,
    placement: ArrayPlacement,
    *,
    include_streams: bool = True,
) -> TraceResult:
    """Trace of the FSAI application ``q = G p`` followed by ``z = G^T q``.

    ``gt_pattern`` must be the CSR pattern of the matrix applied in the
    second product (i.e. the transpose pattern of ``G`` as stored, per §4.3
    the library stores ``G^T`` explicitly in CSR).  The multiplied vector of
    the first product (``p``) lives in ``REGION_X``; the intermediate ``q``
    is the multiplied vector of the second product and lives in ``REGION_Z``
    — both are attributed as "x" accesses, matching the paper's Figure 3
    metric (misses on the multiplied vector across the whole preconditioner
    application).
    """
    first = spmv_trace(
        g_pattern, placement, include_streams=include_streams, x_region=REGION_X
    )
    second = spmv_trace(
        gt_pattern, placement, include_streams=include_streams, x_region=REGION_Z
    )
    return first.concat(second)
