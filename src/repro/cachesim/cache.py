"""Exact set-associative LRU cache model.

The simulator operates at cache-line granularity: callers translate element
accesses to line ids (via :mod:`repro.arch.cacheline`) and feed the line-id
stream to :meth:`SetAssociativeCache.access_many`.  Within each set an
``OrderedDict`` gives O(1) LRU updates — the fastest pure-Python structure
for this access pattern (measured against list- and array-based variants).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.arch.machine import CacheLevelSpec
from repro.errors import ConfigurationError

__all__ = ["CacheStats", "SetAssociativeCache", "InfiniteCache"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or one simulated region)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 for an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum of two counters (aggregation across runs)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class SetAssociativeCache:
    """A single-level set-associative cache with true-LRU replacement.

    Line ids are arbitrary integers (virtual address // line size); the set
    index is ``line_id mod n_sets``, matching the index-bit slicing of
    physically- and virtually-indexed caches for our aligned line ids.
    """

    def __init__(self, spec: CacheLevelSpec) -> None:
        self.spec = spec
        self.n_sets = spec.n_sets
        self.ways = spec.associativity
        if self.n_sets <= 0:
            raise ConfigurationError(f"{spec.name}: zero sets")
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def contains(self, line_id: int) -> bool:
        """Non-mutating residency probe."""
        return int(line_id) in self._sets[int(line_id) % self.n_sets]

    def access(self, line_id: int) -> bool:
        """Access one line.  Returns True on hit, False on miss."""
        line_id = int(line_id)
        s = self._sets[line_id % self.n_sets]
        st = self.stats
        st.accesses += 1
        if line_id in s:
            s.move_to_end(line_id)
            st.hits += 1
            return True
        s[line_id] = None
        if len(s) > self.ways:
            s.popitem(last=False)
            st.evictions += 1
        st.misses += 1
        return False

    def access_many(self, line_ids: np.ndarray) -> np.ndarray:
        """Access a line-id stream; returns a boolean hit mask.

        The loop body is kept minimal (locals hoisted, no attribute lookups)
        — this is the hot path of every cache experiment.
        """
        line_ids = np.asarray(line_ids, dtype=np.int64)
        hits_mask = np.empty(len(line_ids), dtype=bool)
        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        n_hits = 0
        n_evict = 0
        for k, raw in enumerate(line_ids.tolist()):
            s = sets[raw % n_sets]
            if raw in s:
                s.move_to_end(raw)
                hits_mask[k] = True
                n_hits += 1
            else:
                s[raw] = None
                if len(s) > ways:
                    s.popitem(last=False)
                    n_evict += 1
                hits_mask[k] = False
        st = self.stats
        st.accesses += len(line_ids)
        st.hits += n_hits
        st.misses += len(line_ids) - n_hits
        st.evictions += n_evict
        return hits_mask

    @property
    def resident_lines(self) -> int:
        """Number of lines currently held."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.spec.name}, sets={self.n_sets}, "
            f"ways={self.ways}, stats={self.stats})"
        )


class InfiniteCache:
    """Idealised cache of unbounded capacity — misses are compulsory only.

    Used to separate compulsory (first-touch) misses from capacity/conflict
    misses when analysing pattern extensions: a cache-friendly extension adds
    zero compulsory misses *by construction*, which the property-based tests
    assert through this model.
    """

    def __init__(self, name: str = "INF") -> None:
        self.name = name
        self._seen: set = set()
        self.stats = CacheStats()

    def reset(self) -> None:
        self._seen.clear()
        self.stats = CacheStats()

    def contains(self, line_id: int) -> bool:
        return int(line_id) in self._seen

    def access(self, line_id: int) -> bool:
        line_id = int(line_id)
        self.stats.accesses += 1
        if line_id in self._seen:
            self.stats.hits += 1
            return True
        self._seen.add(line_id)
        self.stats.misses += 1
        return False

    def access_many(self, line_ids: np.ndarray) -> np.ndarray:
        line_ids = np.asarray(line_ids, dtype=np.int64)
        hits_mask = np.empty(len(line_ids), dtype=bool)
        seen = self._seen
        n_hits = 0
        for k, raw in enumerate(line_ids.tolist()):
            if raw in seen:
                hits_mask[k] = True
                n_hits += 1
            else:
                seen.add(raw)
                hits_mask[k] = False
        self.stats.accesses += len(line_ids)
        self.stats.hits += n_hits
        self.stats.misses += len(line_ids) - n_hits
        return hits_mask

    def __repr__(self) -> str:
        return f"InfiniteCache(lines={len(self._seen)}, stats={self.stats})"
