"""Exact set-associative LRU cache model.

The simulator operates at cache-line granularity: callers translate element
accesses to line ids (via :mod:`repro.arch.cacheline`) and feed the line-id
stream to :meth:`SetAssociativeCache.access_many`.

Two interchangeable backends produce bit-identical results:

* ``"vector"`` (default) — the offline engine of
  :mod:`repro.cachesim.engine`: per-set stack distances computed with
  sort/group NumPy primitives, hit iff distance ``< ways``.  Interpreter
  cost is O(log n) vectorized passes instead of O(n) dict operations.
* ``"reference"`` — the original per-access ``OrderedDict`` walk (O(1) LRU
  updates, the fastest pure-Python structure for this pattern).  Kept as
  the oracle the property tests compare the engine against, and used
  automatically for tiny traces where vectorization overhead dominates.

Both backends maintain the same live cache state, so scalar probes
(:meth:`access`, :meth:`contains`) and batch replays can be mixed freely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.machine import CacheLevelSpec
from repro.cachesim.engine import simulate_set_lru
from repro.errors import ConfigurationError

__all__ = ["CacheStats", "SetAssociativeCache", "InfiniteCache", "CACHE_BACKENDS"]

#: Recognised ``backend=`` values for the cache models.
CACHE_BACKENDS = ("vector", "reference")

#: Below this trace length the per-access loop beats the sort-based engine
#: (a handful of argsorts cost more than a few dozen dict operations).
_VECTOR_MIN_TRACE = 64


def _check_backend(backend: str) -> str:
    if backend not in CACHE_BACKENDS:
        raise ConfigurationError(
            f"unknown cache backend {backend!r}; expected one of {CACHE_BACKENDS}"
        )
    return backend


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or one simulated region)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 for an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum of two counters (aggregation across runs)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class SetAssociativeCache:
    """A single-level set-associative cache with true-LRU replacement.

    Line ids are arbitrary integers (virtual address // line size); the set
    index is ``line_id mod n_sets``, matching the index-bit slicing of
    physically- and virtually-indexed caches for our aligned line ids.
    """

    def __init__(self, spec: CacheLevelSpec, *, backend: str = "vector") -> None:
        self.spec = spec
        self.n_sets = spec.n_sets
        self.ways = spec.associativity
        self.backend = _check_backend(backend)
        if self.n_sets <= 0:
            raise ConfigurationError(f"{spec.name}: zero sets")
        self._set_store: List[OrderedDict] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        # Live state produced by the offline engine but not yet scattered
        # into the per-set OrderedDicts.  Replay-only workflows (the common
        # bench/simulation path) chain these arrays directly from one
        # access_many to the next and never pay the Python rebuild loop;
        # scalar probes materialise on demand via the ``_sets`` property.
        self._pending_state: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.stats = CacheStats()

    @property
    def _sets(self) -> List[OrderedDict]:
        """Per-set ``OrderedDict`` state, materialised on first need."""
        pending = self._pending_state
        if pending is not None:
            for s in self._set_store:
                if s:
                    s.clear()
            sets = self._set_store
            state_sets, state_lines = pending
            for set_idx, line in zip(state_sets.tolist(), state_lines.tolist()):
                sets[set_idx][line] = None
            self._pending_state = None
        return self._set_store

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._pending_state = None
        for s in self._set_store:
            s.clear()
        self.stats = CacheStats()

    def contains(self, line_id: int) -> bool:
        """Non-mutating residency probe."""
        return int(line_id) in self._sets[int(line_id) % self.n_sets]

    def access(self, line_id: int) -> bool:
        """Access one line.  Returns True on hit, False on miss."""
        line_id = int(line_id)
        s = self._sets[line_id % self.n_sets]
        st = self.stats
        st.accesses += 1
        if line_id in s:
            s.move_to_end(line_id)
            st.hits += 1
            return True
        s[line_id] = None
        if len(s) > self.ways:
            s.popitem(last=False)
            st.evictions += 1
        st.misses += 1
        return False

    def access_many(self, line_ids: np.ndarray) -> np.ndarray:
        """Access a line-id stream; returns a boolean hit mask.

        Dispatches to the offline vectorized engine unless the instance was
        built with ``backend="reference"`` (or the trace is too short to
        amortise the sort passes).  Both paths leave identical counters and
        identical live state behind.
        """
        line_ids = np.asarray(line_ids, dtype=np.int64)
        if self.backend == "reference" or len(line_ids) < _VECTOR_MIN_TRACE:
            return self._access_many_reference(line_ids)
        return self._access_many_vector(line_ids)

    def _access_many_reference(self, line_ids: np.ndarray) -> np.ndarray:
        """Per-access replay (the original oracle loop, locals hoisted)."""
        hits_mask = np.empty(len(line_ids), dtype=bool)
        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        n_hits = 0
        n_evict = 0
        for k, raw in enumerate(line_ids.tolist()):
            s = sets[raw % n_sets]
            if raw in s:
                s.move_to_end(raw)
                hits_mask[k] = True
                n_hits += 1
            else:
                s[raw] = None
                if len(s) > ways:
                    s.popitem(last=False)
                    n_evict += 1
                hits_mask[k] = False
        st = self.stats
        st.accesses += len(line_ids)
        st.hits += n_hits
        st.misses += len(line_ids) - n_hits
        st.evictions += n_evict
        return hits_mask

    def _warm_lines(self) -> np.ndarray:
        """Current contents as a warm-start prefix (per-set LRU order).

        When the last replay's state is still pending, its ``state_lines``
        array *is* the warm prefix (the engine reports residents grouped
        by set in LRU order), so back-to-back replays chain state without
        ever touching the OrderedDicts.
        """
        if self._pending_state is not None:
            return self._pending_state[1]
        resident: List[int] = []
        for s in self._set_store:
            if s:
                resident.extend(s.keys())
        return np.asarray(resident, dtype=np.int64)

    def _access_many_vector(self, line_ids: np.ndarray) -> np.ndarray:
        outcome = simulate_set_lru(
            line_ids, self.n_sets, self.ways, warm_lines=self._warm_lines()
        )
        # Keep the engine-reported final state as arrays; scalar probes
        # scatter it into the OrderedDicts lazily (the ``_sets`` property).
        self._pending_state = (outcome.state_sets, outcome.state_lines)
        n_hits = int(outcome.hits.sum())
        st = self.stats
        st.accesses += len(line_ids)
        st.hits += n_hits
        st.misses += len(line_ids) - n_hits
        st.evictions += outcome.evictions
        return outcome.hits

    @property
    def resident_lines(self) -> int:
        """Number of lines currently held."""
        if self._pending_state is not None:
            return len(self._pending_state[1])
        return sum(len(s) for s in self._set_store)

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.spec.name}, sets={self.n_sets}, "
            f"ways={self.ways}, stats={self.stats})"
        )


class InfiniteCache:
    """Idealised cache of unbounded capacity — misses are compulsory only.

    Used to separate compulsory (first-touch) misses from capacity/conflict
    misses when analysing pattern extensions: a cache-friendly extension adds
    zero compulsory misses *by construction*, which the property-based tests
    assert through this model.
    """

    def __init__(self, name: str = "INF", *, backend: str = "vector") -> None:
        self.name = name
        self.backend = _check_backend(backend)
        self._seen: set = set()
        self.stats = CacheStats()

    def reset(self) -> None:
        self._seen.clear()
        self.stats = CacheStats()

    def contains(self, line_id: int) -> bool:
        return int(line_id) in self._seen

    def access(self, line_id: int) -> bool:
        line_id = int(line_id)
        self.stats.accesses += 1
        if line_id in self._seen:
            self.stats.hits += 1
            return True
        self._seen.add(line_id)
        self.stats.misses += 1
        return False

    def access_many(self, line_ids: np.ndarray) -> np.ndarray:
        line_ids = np.asarray(line_ids, dtype=np.int64)
        if self.backend == "reference" or len(line_ids) < _VECTOR_MIN_TRACE:
            return self._access_many_reference(line_ids)
        # Vector path: a miss is the first in-trace touch of a line not
        # already seen; Python work is O(distinct lines), not O(accesses).
        seen = self._seen
        uniq, first_idx = np.unique(line_ids, return_index=True)
        new = np.fromiter(
            (u not in seen for u in uniq.tolist()), dtype=bool, count=len(uniq)
        )
        hits_mask = np.ones(len(line_ids), dtype=bool)
        hits_mask[first_idx[new]] = False
        seen.update(uniq[new].tolist())
        n_misses = int(new.sum())
        self.stats.accesses += len(line_ids)
        self.stats.hits += len(line_ids) - n_misses
        self.stats.misses += n_misses
        return hits_mask

    def _access_many_reference(self, line_ids: np.ndarray) -> np.ndarray:
        hits_mask = np.empty(len(line_ids), dtype=bool)
        seen = self._seen
        n_hits = 0
        for k, raw in enumerate(line_ids.tolist()):
            if raw in seen:
                hits_mask[k] = True
                n_hits += 1
            else:
                seen.add(raw)
                hits_mask[k] = False
        self.stats.accesses += len(line_ids)
        self.stats.hits += n_hits
        self.stats.misses += len(line_ids) - n_hits
        return hits_mask

    def __repr__(self) -> str:
        return f"InfiniteCache(lines={len(self._seen)}, stats={self.stats})"
