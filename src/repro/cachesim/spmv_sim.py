"""SpMV / FSAI-application cache simulation entry points.

These functions tie together trace generation (:mod:`repro.cachesim.trace`)
and the cache models (:mod:`repro.cachesim.cache`) and report the metric the
paper's Figure 3 uses: **L1 data-cache misses attributed to the multiplied
vector, normalised by the number of stored matrix entries**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro import trace as tracing
from repro.arch.address import ArrayPlacement
from repro.arch.machine import MachineModel
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.trace import TraceResult, fsai_apply_trace, spmv_trace
from repro.sparse.pattern import Pattern

__all__ = [
    "SpMVSimResult",
    "simulate_spmv",
    "simulate_fsai_application",
    "misses_per_nnz",
]


@dataclass(frozen=True)
class SpMVSimResult:
    """Outcome of one cache simulation.

    Attributes
    ----------
    x_accesses / x_misses:
        L1 accesses and misses attributed to the multiplied vector(s).
    total_accesses / total_misses:
        L1 counters over the whole trace (including streaming structures).
    nnz:
        Stored entries of the simulated pattern(s) — the normaliser of the
        paper's Figure 3 metric.
    memory_misses:
        Accesses that missed every simulated level (main-memory transfers);
        feeds the roofline cost model.
    """

    x_accesses: int
    x_misses: int
    total_accesses: int
    total_misses: int
    nnz: int
    memory_misses: int

    @property
    def x_miss_ratio(self) -> float:
        """Misses per access on the multiplied vector."""
        return self.x_misses / self.x_accesses if self.x_accesses else 0.0

    @property
    def x_misses_per_nnz(self) -> float:
        """The Figure 3 metric: x-vector L1 misses per stored entry."""
        return self.x_misses / self.nnz if self.nnz else 0.0


def _run(
    trace: TraceResult, hierarchy: CacheHierarchy, nnz: int, *,
    span_name: str = "cachesim.spmv_sim",
) -> SpMVSimResult:
    with tracing.span(span_name, accesses=len(trace.lines), nnz=nnz):
        l1_hits = hierarchy.access_many(trace.lines)
        x_mask = trace.is_x
        x_accesses = int(x_mask.sum())
        x_misses = int((~l1_hits[x_mask]).sum())
        l1 = hierarchy.l1.stats
        result = SpMVSimResult(
            x_accesses=x_accesses,
            x_misses=x_misses,
            total_accesses=l1.accesses,
            total_misses=l1.misses,
            nnz=nnz,
            memory_misses=hierarchy.memory_misses,
        )
        if tracing.enabled():
            tracing.add_counter("cachesim.l1_accesses", result.total_accesses)
            tracing.add_counter("cachesim.l1_misses", result.total_misses)
            tracing.add_counter("cachesim.x_misses", result.x_misses)
            tracing.add_counter("cachesim.memory_misses", result.memory_misses)
    return result


def simulate_spmv(
    pattern: Pattern,
    machine: MachineModel,
    *,
    placement: Optional[ArrayPlacement] = None,
    include_streams: bool = True,
    l1_only: bool = True,
    backend: str = "vector",
) -> SpMVSimResult:
    """Simulate one ``y = A x`` pass and report miss statistics.

    Parameters
    ----------
    pattern:
        CSR pattern of the traversed matrix.
    machine:
        Target machine (supplies cache geometry and line size).
    placement:
        Placement of ``x``; defaults to line-aligned.
    include_streams:
        Include the streaming accesses of the matrix arrays and ``y``
        (cache pollution).  Disable for the idealised analysis used in
        property tests.
    l1_only:
        Simulate only the L1 (fast, and all the paper's Figure 3 needs);
        ``False`` simulates the full hierarchy for memory-traffic numbers.
    backend:
        Cache replay engine: ``"vector"`` (offline sort-based engine) or
        ``"reference"`` (per-access oracle loop); bit-identical results.
    """
    placement = placement or ArrayPlacement.aligned(machine.line_bytes)
    trace = spmv_trace(pattern, placement, include_streams=include_streams)
    hierarchy = (
        CacheHierarchy.l1_only(machine, backend=backend) if l1_only
        else CacheHierarchy.for_machine(machine, backend=backend)
    )
    return _run(trace, hierarchy, pattern.nnz, span_name="cachesim.spmv_sim")


def simulate_fsai_application(
    g_pattern: Pattern,
    machine: MachineModel,
    *,
    gt_pattern: Optional[Pattern] = None,
    placement: Optional[ArrayPlacement] = None,
    include_streams: bool = True,
    l1_only: bool = True,
    repetitions: int = 1,
    backend: str = "vector",
) -> SpMVSimResult:
    """Simulate the preconditioner application ``G^T (G p)``.

    ``gt_pattern`` defaults to the transpose of ``g_pattern``; FSAIE(full)
    passes its separately-extended transpose pattern.  ``repetitions`` plays
    the application several times back-to-back (warm-cache steady state, as
    in the paper's repeated-solve measurements); statistics cover all
    repetitions.
    """
    placement = placement or ArrayPlacement.aligned(machine.line_bytes)
    gt = gt_pattern if gt_pattern is not None else g_pattern.transpose()
    trace = fsai_apply_trace(
        g_pattern, gt, placement, include_streams=include_streams
    )
    if repetitions > 1:
        reps = trace
        for _ in range(repetitions - 1):
            reps = reps.concat(trace)
        trace = reps
    hierarchy = (
        CacheHierarchy.l1_only(machine, backend=backend) if l1_only
        else CacheHierarchy.for_machine(machine, backend=backend)
    )
    nnz = (g_pattern.nnz + gt.nnz) // 2  # normalise by nnz(G) as the paper does
    return _run(
        trace, hierarchy, nnz * repetitions, span_name="cachesim.fsai_apply_sim"
    )


def misses_per_nnz(
    g_pattern: Pattern,
    machine: MachineModel,
    **kwargs,
) -> float:
    """Convenience wrapper returning only the Figure 3 metric."""
    return simulate_fsai_application(g_pattern, machine, **kwargs).x_misses_per_nnz
